//! Facade crate re-exporting the integrated-passives workspace — a
//! reproduction of Scheffler & Tröster, *Assessing the Cost
//! Effectiveness of Integrated Passives* (DATE 2000).
//!
//! See the individual crates for full documentation: [`units`], [`obs`],
//! [`sim`], [`report`], [`moe`], [`explore`], [`passives`], [`rf`],
//! [`layout`], [`core`], [`gps`] — and README.md / DESIGN.md / `docs/`
//! at the workspace root.
//!
//! The [`artifacts`] module is the named paper-artifact registry behind
//! the `ipass` CLI: every table and figure of the paper, buildable and
//! renderable to txt/CSV/Markdown/JSON/SVG.
//!
//! # Examples
//!
//! Reproduce the paper's headline decision (Fig. 6):
//!
//! ```
//! let fig6 = integrated_passives::gps::experiments::fig6()?;
//! assert!(fig6.table.best().name.contains("IP&SMD")); // solution 4 wins
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]

pub mod artifacts;

pub use ipass_core as core;
pub use ipass_explore as explore;
pub use ipass_gps as gps;
pub use ipass_layout as layout;
pub use ipass_moe as moe;
pub use ipass_obs as obs;
pub use ipass_passives as passives;
pub use ipass_report as report;
pub use ipass_rf as rf;
pub use ipass_sim as sim;
pub use ipass_units as units;
