//! `ipassd` — the long-running serving daemon for compiled flows.
//!
//! Boots the four committed paper solutions into a
//! [`FlowRegistry`] and serves the
//! newline-delimited JSON protocol (verbs `list`, `analyze`, `patch`,
//! `mc`, `stats`, `shutdown`) on a TCP listener:
//!
//! ```text
//! ipassd                                # serve on 127.0.0.1:7171
//! ipassd --addr 127.0.0.1:9000         # serve elsewhere
//! ipassd --threads 4                   # executor width for batches
//! ipassd --smoke                       # boot, self-test every verb, exit
//! echo '{"verb":"analyze","flow":"solution2"}' | nc 127.0.0.1 7171
//! ```
//!
//! All diagnostics go to stderr prefixed `info:`; anything else on
//! stderr is a bug (CI's serve-smoke step asserts exactly that).

use ipass_serve::{Client, FlowRegistry, Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: ipassd [--addr HOST:PORT] [--threads N] [--smoke]\n\
    \n\
    options:\n\
    \x20 --addr HOST:PORT   listen address (default 127.0.0.1:7171)\n\
    \x20 --threads N        executor threads for request batches (default 2)\n\
    \x20 --smoke            boot on an ephemeral port, run one query per verb\n\
    \x20                    plus one malformed request, then shut down\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::from("127.0.0.1:7171");
    let mut threads = 2usize;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(a) = it.next() else {
                    eprintln!("ipassd: --addr needs HOST:PORT\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                addr = a.clone();
            }
            "--threads" => {
                let Some(n) = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|n| *n > 0)
                else {
                    eprintln!("ipassd: --threads needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                threads = n;
            }
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ipassd: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let registry = match build_registry() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ipassd: building the flow registry failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if smoke {
        return smoke_test(registry, threads);
    }

    let config = ServerConfig {
        threads,
        ..ServerConfig::default()
    };
    let server = match Server::start(registry, &addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipassd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "info: ipassd serving on {} ({threads} executor threads)",
        server.addr()
    );
    eprintln!("info: send {{\"verb\":\"shutdown\"}} to stop");
    // Blocks until a client sends the shutdown verb; in-flight work is
    // drained before the listener threads join.
    server.wait();
    eprintln!("info: ipassd shut down cleanly");
    ExitCode::SUCCESS
}

/// The committed paper solutions under `ipass stats`-style short keys
/// (`solution1`..`solution4`), each announced on stderr with the
/// paper's descriptive label.
fn build_registry() -> Result<FlowRegistry, ipass_gps::experiments::ExperimentError> {
    let mut registry = FlowRegistry::new();
    for (index, (label, flow)) in ipass_gps::experiments::solution_flows()?
        .into_iter()
        .enumerate()
    {
        let key = format!("solution{}", index + 1);
        eprintln!("info: registered {key} — {label}");
        registry.register(&key, flow);
    }
    Ok(registry)
}

/// Boot on an ephemeral loopback port, drive one request per verb plus
/// one malformed line through a real client, check every answer, and
/// shut down cleanly. Exercises the same code path CI's serve-smoke
/// step gates on.
fn smoke_test(registry: FlowRegistry, threads: usize) -> ExitCode {
    let config = ServerConfig {
        threads,
        ..ServerConfig::default()
    };
    let server = match Server::start(registry, "127.0.0.1:0", config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipassd: smoke bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("info: smoke server on {}", server.addr());
    let mut client = match Client::connect(server.addr()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ipassd: smoke connect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // (request, must-contain fragment) — one per verb, plus the typed
    // error for a malformed line.
    let checks: &[(&str, &str)] = &[
        (
            r#"{"verb":"list"}"#,
            r#""flows":["solution1","solution2","solution3","solution4"]"#,
        ),
        (r#"{"verb":"analyze","flow":"solution2"}"#, r#""ok":true"#),
        (
            r#"{"verb":"patch","flow":"solution2","directives":[{"scale":"cost","slot":"functional test","factor":1.1}]}"#,
            r#""ok":true,"verb":"patch""#,
        ),
        (
            r#"{"verb":"mc","flow":"solution2","units":2000,"seed":42}"#,
            r#""ok":true,"verb":"mc""#,
        ),
        (r#"{"verb":"stats"}"#, r#""ok":true,"verb":"stats""#),
        ("definitely not json", r#""code":"malformed-json""#),
    ];
    for (request, fragment) in checks {
        let response = match client.request(request) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ipassd: smoke request {request:?} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !response.contains(fragment) {
            eprintln!("ipassd: smoke check failed: {request:?} answered {response}");
            return ExitCode::FAILURE;
        }
        eprintln!("info: smoke ok: {request}");
    }
    match client.request(r#"{"verb":"shutdown"}"#) {
        Ok(bye) if bye == r#"{"ok":true,"verb":"shutdown"}"# => {}
        Ok(bye) => {
            eprintln!("ipassd: smoke shutdown answered {bye}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("ipassd: smoke shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.wait();
    eprintln!(
        "info: smoke passed — all verbs answered, typed error on malformed input, clean shutdown"
    );
    ExitCode::SUCCESS
}
