//! `ipass` — the scriptable front end of the paper-artifact pipeline.
//!
//! ```text
//! ipass list                                  # registered artifacts
//! ipass artifact fig6 --format txt            # one artifact to stdout
//! ipass artifact fig6 --format svg --out f.svg
//! ipass regen [docs/artifacts/]               # rewrite the committed tree
//! ipass regen --check [docs/artifacts/]       # drift check, no writes
//! ipass stats solution2                       # probed counters vs proven bounds
//! ipass profile solution2 --json              # live wall-clock phase spans
//! ```
//!
//! `regen` is byte-deterministic: running it twice produces identical
//! files, and CI regenerates into the checkout and fails on any diff —
//! the committed docs cannot drift from the code.

use integrated_passives::artifacts;
use integrated_passives::report::Format;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: ipass <command>\n\
    \n\
    commands:\n\
    \x20 list                                     list registered artifacts\n\
    \x20 artifact <name> [--format F] [--out P]   render one artifact (F: txt|csv|md|json|svg; default txt)\n\
    \x20 regen [--check] [dir]                    regenerate the committed artifact tree (default docs/artifacts/)\n\
    \x20 lint [--deny-warnings]                   statically verify every committed solution flow (CI gate)\n\
    \x20 stats <solution> [--deny-warnings]       probed-run counters vs the statically proven bounds (solution1..4)\n\
    \x20 profile <solution> [--json]              live wall-clock phase spans of the stats pipeline\n";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("artifact") => artifact(&args[1..]),
        Some("regen") => regen(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some(other) => {
            eprintln!("ipass: unknown command {other:?}\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn list() -> ExitCode {
    let width = artifacts::specs()
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(0);
    for spec in artifacts::specs() {
        println!("{:width$}  {}", spec.name, spec.what);
    }
    ExitCode::SUCCESS
}

fn artifact(args: &[String]) -> ExitCode {
    let mut name: Option<&str> = None;
    let mut format = Format::Txt;
    let mut out: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let Some(f) = it.next().and_then(|v| Format::parse(v)) else {
                    eprintln!("ipass: --format needs one of txt|csv|md|json|svg");
                    return ExitCode::FAILURE;
                };
                format = f;
            }
            "--out" => {
                let Some(path) = it.next() else {
                    eprintln!("ipass: --out needs a path");
                    return ExitCode::FAILURE;
                };
                out = Some(path);
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other),
            other => {
                eprintln!("ipass: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(name) = name else {
        eprintln!("ipass: artifact needs a name (see `ipass list`)");
        return ExitCode::FAILURE;
    };
    let Some(spec) = artifacts::find(name) else {
        eprintln!("ipass: unknown artifact {name:?} (see `ipass list`)");
        return ExitCode::FAILURE;
    };
    let value = match spec.build() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ipass: building {name} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let content = match value.render(format) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ipass: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &content) {
                eprintln!("ipass: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        None => print!("{content}"),
    }
    ExitCode::SUCCESS
}

/// `ipass lint [--deny-warnings]` — run the `moe::verify` static pass
/// over every committed solution flow. Errors always fail; warnings
/// fail under `--deny-warnings` (the CI configuration); infos never do.
fn lint(args: &[String]) -> ExitCode {
    use integrated_passives::moe::Severity;
    let mut deny_warnings = false;
    for arg in args {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            other => {
                eprintln!("ipass: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let targets = match artifacts::lint_targets() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ipass: building the committed flows failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut errors, mut warnings, mut infos) = (0, 0, 0);
    for (label, compiled) in &targets {
        let diags = compiled.verify();
        errors += diags.count(Severity::Error);
        warnings += diags.count(Severity::Warning);
        infos += diags.count(Severity::Info);
        for d in diags.iter() {
            println!("{label}: {d}");
        }
    }
    println!(
        "ipass lint: {} flow(s) verified — {errors} error(s), {warnings} warning(s), \
         {infos} info(s)",
        targets.len(),
    );
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `ipass stats <solution> [--deny-warnings]` — run the selected
/// committed flow through the probed Monte Carlo engine and cross-check
/// every measured counter against the statically proven bounds. Any
/// violation fails; `--deny-warnings` (the CI configuration) also fails
/// on silently degraded caching (dropped or poison-recovered memo
/// entries).
fn stats(args: &[String]) -> ExitCode {
    let mut deny_warnings = false;
    let mut selector: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            other if selector.is_none() && !other.starts_with('-') => selector = Some(other),
            other => {
                eprintln!("ipass: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(index) = selector.and_then(artifacts::solution_index) else {
        eprintln!("ipass: stats needs a flow selector (solution1..solution4)");
        return ExitCode::FAILURE;
    };
    let run = match artifacts::measure_solution(index, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ipass: measuring the flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", artifacts::runstats_table_for(&run).to_txt());
    for v in &run.violations {
        eprintln!("ipass stats: BOUND VIOLATION: {v}");
    }
    let memo = run.stats.memo;
    if deny_warnings && (memo.dropped > 0 || memo.poisoned > 0) {
        eprintln!(
            "ipass stats: memo degraded under --deny-warnings: {} dropped, {} \
             poison-recovered entries",
            memo.dropped, memo.poisoned
        );
        return ExitCode::FAILURE;
    }
    if run.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `ipass profile <solution> [--json]` — the same pipeline as
/// `ipass stats`, timed: live wall-clock spans (build / bounds / mc /
/// executor chunks), as a table or as the trace's JSON form. Timings
/// are real here — only the committed `profile` artifact redacts them.
fn profile(args: &[String]) -> ExitCode {
    use integrated_passives::obs::Profiler;
    let mut json = false;
    let mut selector: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            other if selector.is_none() && !other.starts_with('-') => selector = Some(other),
            other => {
                eprintln!("ipass: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(index) = selector.and_then(artifacts::solution_index) else {
        eprintln!("ipass: profile needs a flow selector (solution1..solution4)");
        return ExitCode::FAILURE;
    };
    let profiler = Profiler::default();
    if let Err(e) = artifacts::measure_solution(index, Some(&profiler)) {
        eprintln!("ipass: profiling the flow failed: {e}");
        return ExitCode::FAILURE;
    }
    let trace = profiler.trace();
    if json {
        println!("{}", trace.to_json());
    } else {
        print!("{}", artifacts::profile_table_for(&trace, false).to_txt());
    }
    ExitCode::SUCCESS
}

fn regen(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut dir: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other),
            other => {
                eprintln!("ipass: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or("docs/artifacts/");
    if check {
        match artifacts::check(Path::new(dir)) {
            Ok(stale) if stale.is_empty() => {
                println!("ipass: {dir} is current");
                ExitCode::SUCCESS
            }
            Ok(stale) => {
                eprintln!(
                    "ipass: {dir} has drifted from the code — stale: {}",
                    stale.join(", ")
                );
                eprintln!("run `cargo run --release --bin ipass -- regen {dir}` and commit");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("ipass: check failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match artifacts::regen(Path::new(dir)) {
            Ok(count) => {
                println!("ipass: wrote {count} files under {dir}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ipass: regen failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
