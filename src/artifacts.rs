//! The named paper-artifact registry: every table and figure of the
//! paper as a buildable, renderable [`Artifact`].
//!
//! This is the layer the `ipass` CLI, the golden tests and the docs
//! drift gate share. Each entry names one artifact, knows how to
//! compute it from the domain crates, and documents it in one line.
//! Regeneration ([`regen`]) renders every artifact in every supported
//! format into `docs/artifacts/`, plus a composed Markdown page per
//! artifact and an index — all byte-deterministic, so CI can fail on
//! any drift between the committed docs and the code.

use ipass_gps::experiments;
use ipass_moe::{
    CompiledFlow, Probe, Profiler, RunStats, Severity, SimOptions, StaticBounds,
    DEFAULT_SUBASSEMBLY_RETRY_BUDGET,
};
use ipass_obs::{Trace, LANE_WIDTHS, OP_KINDS};
use ipass_report::{Artifact, Cell, DirSink, Findings, Format, MemorySink, Sink, Table};
use std::error::Error;
use std::path::Path;

/// The seed every seeded (Monte Carlo) artifact uses — part of the
/// artifact definition: changing it is a deliberate artifact change,
/// caught by the golden tests and the docs drift gate.
pub const ARTIFACT_SEED: u64 = 42;

/// One registered artifact.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// Registry name (the CLI's `<name>` and the file stem).
    pub name: &'static str,
    /// One-line description (shown by `ipass list`, embedded in the
    /// docs page).
    pub what: &'static str,
    build: fn() -> Result<Artifact, Box<dyn Error>>,
}

impl ArtifactSpec {
    /// Compute the artifact value.
    ///
    /// # Errors
    ///
    /// Propagates the underlying experiment's error (planning,
    /// evaluation or simulation failures).
    pub fn build(&self) -> Result<Artifact, Box<dyn Error>> {
        (self.build)()
    }
}

type Build = fn() -> Result<Artifact, Box<dyn Error>>;

const fn spec(name: &'static str, what: &'static str, build: Build) -> ArtifactSpec {
    ArtifactSpec { name, what, build }
}

/// Every registered artifact, in docs order.
pub fn specs() -> &'static [ArtifactSpec] {
    static SPECS: &[ArtifactSpec] = &[
        spec(
            "fig1",
            "Pure component vs mounted footprint area over the SMD sizes — the paper's motivation: bodies shrink, mounting overhead does not.",
            || Ok(Artifact::Series(experiments::fig1().artifact())),
        ),
        spec(
            "table1",
            "Area-relevant data: the paper's component areas next to in-crate thin-film synthesis and the SMD catalog.",
            || Ok(Artifact::Table(experiments::table1()?.artifact())),
        ),
        spec(
            "table2",
            "The cost and yield cards of the four implementations — the inputs of the MOE cost analysis.",
            || Ok(Artifact::Table(experiments::table2().artifact())),
        ),
        spec(
            "fig3",
            "Module area consumed by each build-up, as a percentage of the PCB reference (methodology step 3).",
            || Ok(Artifact::Table(experiments::fig3()?.artifact())),
        ),
        spec(
            "fig4",
            "The generic MOE production model of solution 2 run through the seeded Monte Carlo engine, vs the paper's illustration.",
            || Ok(Artifact::Table(experiments::fig4(ARTIFACT_SEED)?.artifact())),
        ),
        spec(
            "fig5",
            "Final cost per shipped unit (Eq. 1) for the four solutions, percent of the PCB reference vs the paper.",
            || Ok(Artifact::Table(experiments::fig5()?.artifact_table())),
        ),
        spec(
            "fig5_breakdown",
            "The Fig. 5 cost composition: direct cost and yield loss per shipped unit, chip cost as the paper's callout.",
            || Ok(Artifact::Breakdown(experiments::fig5()?.artifact_breakdown())),
        ),
        spec(
            "fig6",
            "The figure-of-merit decision table (perf × 1/size × 1/cost) with the paper's published column — solution 4 wins.",
            || Ok(Artifact::Table(experiments::fig6()?.artifact())),
        ),
        spec(
            "sensitivity",
            "Tornado sensitivity of solution 4's final cost to the Table 2 inputs (one compiled flow, every variant a parameter patch).",
            || {
                Ok(Artifact::Breakdown(experiments::sensitivity(3)?.artifact_titled(
                    "sensitivity — solution 4 final cost vs Table 2 inputs",
                )))
            },
        ),
        spec(
            "sensitivity_sol2",
            "The same tornado for solution 2 (MCM/WB/SMD) — the classic build-up's cost drivers.",
            || {
                Ok(Artifact::Breakdown(experiments::sensitivity(1)?.artifact_titled(
                    "sensitivity — solution 2 final cost vs Table 2 inputs",
                )))
            },
        ),
        spec(
            "lint",
            "Static verification of every committed solution flow: the moe::verify diagnostics (invariant violations, model lints) across the full artifact registry — `ipass lint` gates CI on this being warning-free.",
            || Ok(Artifact::Findings(lint_findings()?)),
        ),
        spec(
            "verify",
            "The verifier's statically proven per-unit bounds for each solution flow: RNG draws, booked cost and shipped-fraction support over every possible draw outcome.",
            || Ok(Artifact::Table(verify_table()?)),
        ),
        spec(
            "runstats",
            "The observability deterministic plane: solution 2's probed Monte Carlo run — exact draw/op/lane/rework counters, cross-checked at runtime against the statically proven bounds.",
            || Ok(Artifact::Table(runstats_table()?)),
        ),
        spec(
            "profile",
            "The observability wall-clock plane: phase spans of the solution-2 runstats pipeline (build, bounds, Monte Carlo, per-chunk). Committed totals are redacted — timings never enter the byte contract; `ipass profile` prints them live.",
            || Ok(Artifact::Table(profile_table()?)),
        ),
        spec(
            "design_space",
            "Solution 2's volume × substrate-yield design space: analytic screen, Pareto frontier over (final cost ↓, shipped fraction ↑), Monte-Carlo-confirmed band.",
            || {
                Ok(Artifact::Frontier(
                    experiments::design_space(1, 12)?.artifact(),
                ))
            },
        ),
    ];
    SPECS
}

/// Look up a registered artifact by name.
pub fn find(name: &str) -> Option<&'static ArtifactSpec> {
    specs().iter().find(|s| s.name == name)
}

/// The committed flows the `ipass lint` gate verifies: the four paper
/// solutions' production flows, compiled — every flow a registry
/// artifact evaluates passes through one of these programs.
///
/// # Errors
///
/// Propagates planning/compilation failures.
pub fn lint_targets() -> Result<Vec<(&'static str, CompiledFlow)>, Box<dyn Error>> {
    let mut targets = Vec::new();
    for (label, flow) in experiments::solution_flows()? {
        targets.push((label, flow.compiled()?));
    }
    Ok(targets)
}

/// The `lint` artifact: every verifier diagnostic across the committed
/// solution flows, paths prefixed with the flow's label.
fn lint_findings() -> Result<Findings, Box<dyn Error>> {
    let targets = lint_targets()?;
    let mut findings = Findings::new("lint — committed solution flows");
    let (mut errors, mut warnings, mut infos) = (0, 0, 0);
    for (label, compiled) in &targets {
        let diags = compiled.verify();
        errors += diags.count(Severity::Error);
        warnings += diags.count(Severity::Warning);
        infos += diags.count(Severity::Info);
        for d in diags.iter() {
            findings.push(
                d.severity.to_string(),
                d.code,
                format!("{label}: {}", d.path),
                &d.message,
            );
        }
    }
    Ok(findings
        .note(format!(
            "{} flow(s) verified: {errors} error(s), {warnings} warning(s), {infos} info(s)",
            targets.len(),
        ))
        .note(
            "`ipass lint --deny-warnings` (the CI gate) fails on any warning or error; \
             infos are observations",
        ))
}

/// The `verify` artifact: per-flow statically proven bounds — valid for
/// every draw outcome, not just in expectation.
fn verify_table() -> Result<Table, Box<dyn Error>> {
    let mut table = Table::new("verify — static per-unit bounds of the solution flows")
        .text_column("solution")
        .numeric_column("draws min", 0)
        .numeric_column("draws max", 0)
        .numeric_column("cost min", 2)
        .numeric_column("cost max", 2)
        .numeric_column("ship lo", 0)
        .numeric_column("ship hi", 0)
        .numeric_column("rework max", 0)
        .numeric_column("sub builds max", 0);
    for (label, compiled) in lint_targets()? {
        let b = compiled.static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)?;
        table = table.row(vec![
            Cell::text(label),
            Cell::int(b.draws_per_unit.lo as i64),
            Cell::int(b.draws_per_unit.hi as i64),
            Cell::num(b.cost_per_unit.lo),
            Cell::num(b.cost_per_unit.hi),
            Cell::num(b.shipped_fraction.lo.round()),
            Cell::num(b.shipped_fraction.hi.round()),
            Cell::int(b.rework_per_unit.hi as i64),
            Cell::int(b.sub_builds_per_unit.hi as i64),
        ]);
    }
    Ok(table.note(format!(
        "bounds hold for every possible draw outcome (not just in expectation), \
         at the default subassembly retry budget of {DEFAULT_SUBASSEMBLY_RETRY_BUDGET}; \
         cost bounds exclude NRE"
    )))
}

/// Monte Carlo unit budget of the `runstats` / `profile` artifacts and
/// the `ipass stats` / `ipass profile` verbs — like [`ARTIFACT_SEED`],
/// part of the artifact definition.
pub const STATS_UNITS: u64 = 20_000;

/// One committed flow's probed Monte Carlo run: the deterministic
/// [`RunStats`] snapshot next to the statically proven [`StaticBounds`]
/// and the runtime cross-check between them.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// The flow's registry label (the paper's solution name).
    pub label: &'static str,
    /// The deterministic-plane snapshot (probe on).
    pub stats: RunStats,
    /// Booked spend (NRE excluded) per started unit, off the report.
    pub cost_per_started: f64,
    /// Shipped over started units, off the report.
    pub shipped_fraction: f64,
    /// The statically proven per-unit bounds.
    pub bounds: StaticBounds,
    /// [`StaticBounds::violations`] of the measured counters — empty
    /// means the run landed inside every proven interval.
    pub violations: Vec<String>,
}

/// Resolve an `ipass stats` / `ipass profile` flow selector —
/// `solution1`..`solution4` or bare `1`..`4` — to its
/// [`lint_targets`] index.
pub fn solution_index(selector: &str) -> Option<usize> {
    let n: u32 = selector
        .strip_prefix("solution")
        .unwrap_or(selector)
        .parse()
        .ok()?;
    (1..=4).contains(&n).then(|| n as usize - 1)
}

/// Run one committed solution flow (by [`lint_targets`] index) through
/// the probed Monte Carlo engine at [`ARTIFACT_SEED`] /
/// [`STATS_UNITS`] and cross-check the measured counters against the
/// flow's static bounds. `profiler` additionally records the
/// wall-clock plane (`build` / `bounds` / `mc` phases plus the
/// executor's per-`chunk` spans).
///
/// # Errors
///
/// Propagates planning, compilation, bounds and simulation failures.
pub fn measure_solution(
    index: usize,
    profiler: Option<&Profiler>,
) -> Result<MeasuredRun, Box<dyn Error>> {
    let (label, compiled) = {
        let _span = profiler.map(|p| p.span("build"));
        let mut targets = lint_targets()?;
        if index >= targets.len() {
            return Err(format!("no solution flow at index {index}").into());
        }
        targets.swap_remove(index)
    };
    let bounds = {
        let _span = profiler.map(|p| p.span("bounds"));
        compiled.static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)?
    };
    let options = SimOptions::new(STATS_UNITS)
        .with_seed(ARTIFACT_SEED)
        .with_probe(Probe::ON);
    let summary = {
        let _span = profiler.map(|p| p.span("mc"));
        match profiler {
            Some(p) => compiled.simulate_summary_profiled(&options, p)?,
            None => compiled.simulate_summary(&options)?,
        }
    };
    let stats = summary.stats.expect("probed run carries stats");
    let cost_per_started = summary.report.total_spend().units() / summary.report.started();
    let shipped_fraction = summary.report.shipped_fraction();
    let violations = bounds.violations(&stats, cost_per_started, shipped_fraction);
    Ok(MeasuredRun {
        label,
        stats,
        cost_per_started,
        shipped_fraction,
        bounds,
        violations,
    })
}

/// The [`MeasuredRun`] as a counters-vs-bounds table (the `runstats`
/// artifact body, and what `ipass stats` prints).
pub fn runstats_table_for(run: &MeasuredRun) -> Table {
    let s = &run.stats;
    let b = &run.bounds;
    let yes_no = |ok: bool| Cell::text(if ok { "yes" } else { "NO" });
    let unbounded = || (Cell::Empty, Cell::Empty, Cell::text("-"));
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    let mut row = |name: &str, value: u64, (lo, hi, within): (Cell, Cell, Cell)| {
        rows.push(vec![Cell::text(name), Cell::count(value), lo, hi, within]);
    };
    row("units started", s.units, unbounded());
    row(
        "rng draws",
        s.draws,
        (
            Cell::count(b.draws_per_unit.lo.saturating_mul(s.units)),
            Cell::count(b.draws_per_unit.hi.saturating_mul(s.units)),
            yes_no(
                s.draws >= b.draws_per_unit.lo.saturating_mul(s.units)
                    && s.draws <= b.draws_per_unit.hi.saturating_mul(s.units),
            ),
        ),
    );
    for (bound, value, name) in [
        (b.draws_per_unit, s.draws_min, "draws/unit min"),
        (b.draws_per_unit, s.draws_max, "draws/unit max"),
    ] {
        row(
            name,
            value,
            (
                Cell::count(bound.lo),
                Cell::count(bound.hi),
                yes_no(bound.contains(value)),
            ),
        );
    }
    for (kind, &count) in OP_KINDS.iter().zip(&s.ops) {
        row(&format!("ops: {kind}"), count, unbounded());
    }
    for (&width, &count) in LANE_WIDTHS.iter().zip(&s.lanes) {
        row(&format!("units in width-{width} lanes"), count, unbounded());
    }
    row(
        "rework attempts",
        s.rework_attempts,
        (
            Cell::Empty,
            Cell::count(b.rework_per_unit.hi.saturating_mul(s.units)),
            yes_no(s.rework_attempts <= b.rework_per_unit.hi.saturating_mul(s.units)),
        ),
    );
    row(
        "sub-units built",
        s.sub_units_built,
        (
            Cell::count(b.sub_builds_per_unit.lo.saturating_mul(s.units)),
            Cell::count(b.sub_builds_per_unit.hi.saturating_mul(s.units)),
            yes_no(
                s.sub_units_built >= b.sub_builds_per_unit.lo.saturating_mul(s.units)
                    && s.sub_units_built <= b.sub_builds_per_unit.hi.saturating_mul(s.units),
            ),
        ),
    );
    let mut table = Table::new(format!(
        "runstats — measured counters, solution {}",
        run.label
    ))
    .text_column("counter")
    .integer_column("value")
    .integer_column("bound lo")
    .integer_column("bound hi")
    .text_column("within");
    for r in rows {
        table = table.row(r);
    }
    let violation_note = if run.violations.is_empty() {
        "all measured counters (and the report's cost per started unit and shipped \
         fraction) inside the statically proven bounds"
            .to_owned()
    } else {
        format!("BOUND VIOLATIONS: {}", run.violations.join("; "))
    };
    table
        .note(format!(
            "probed Monte Carlo run: {STATS_UNITS} units at seed {ARTIFACT_SEED}; \
             deterministic plane — bit-identical for any executor thread count"
        ))
        .note(violation_note)
        .note(
            "lane rows depend on the lane width (default 64); every other row is \
             also identical across widths",
        )
}

/// The `runstats` artifact: solution 2's probed run vs its bounds.
fn runstats_table() -> Result<Table, Box<dyn Error>> {
    Ok(runstats_table_for(&measure_solution(1, None)?))
}

/// The wall-clock [`Trace`] as a phase table. `redact` replaces the
/// timing column with `-` — the committed `profile` artifact does,
/// keeping the byte contract free of wall-clock noise; `ipass profile`
/// prints live totals.
pub fn profile_table_for(trace: &Trace, redact: bool) -> Table {
    let mut table = Table::new("profile — wall-clock phase spans, solution 2 runstats pipeline")
        .text_column("phase")
        .integer_column("spans")
        .text_column("total");
    for span in &trace.spans {
        table = table.row(vec![
            Cell::text(&span.name),
            Cell::count(span.count),
            if redact {
                Cell::text("-")
            } else {
                Cell::text(format!("{:.3} ms", span.total_ns as f64 / 1e6))
            },
        ]);
    }
    table.note(
        "wall-clock plane: span counts are deterministic, timings are not and never \
         feed the deterministic snapshot; committed totals are redacted — run \
         `ipass profile solution2` for live timings",
    )
}

/// The `profile` artifact: the solution-2 runstats pipeline's spans,
/// totals redacted.
fn profile_table() -> Result<Table, Box<dyn Error>> {
    let profiler = Profiler::default();
    measure_solution(1, Some(&profiler))?;
    Ok(profile_table_for(&profiler.trace(), true))
}

/// Build and render every artifact in every supported format into a
/// [`MemorySink`], including the composed per-artifact docs pages and
/// the index (under the same names `regen` writes).
///
/// # Errors
///
/// Propagates the first failing artifact build.
pub fn render_all() -> Result<MemorySink, Box<dyn Error>> {
    let mut sink = MemorySink::new();
    let mut index = String::from(
        "# Generated paper artifacts\n\n\
         Regenerate with `cargo run --release --bin ipass -- regen docs/artifacts/`.\n\
         Every file in this directory is generated — do not edit by hand; CI fails\n\
         on any diff between these files and the code.\n\n\
         | artifact | what |\n| :-- | :-- |\n",
    );
    for spec in specs() {
        let artifact = spec.build()?;
        // The raw sinks (md here is the bare table; the page below
        // embeds it).
        for format in artifact.formats() {
            if format == Format::Md {
                continue;
            }
            let content = artifact.render(format).expect("format from formats()");
            sink.write(spec.name, format, &content)?;
        }
        sink.write(spec.name, Format::Md, &page(spec, &artifact))?;
        index.push_str(&format!(
            "| [{}]({}.md) | {} |\n",
            spec.name, spec.name, spec.what
        ));
    }
    sink.write("README", Format::Md, &index)?;
    Ok(sink)
}

/// The composed docs page for one artifact: description, the rendered
/// Markdown table, the figure (when the artifact has an SVG form) and
/// links to the machine-readable files.
fn page(spec: &ArtifactSpec, artifact: &Artifact) -> String {
    let mut out = format!(
        "# `{}` — {}\n\n{}\n\n",
        spec.name,
        artifact.title(),
        spec.what
    );
    if artifact.formats().contains(&Format::Svg) {
        out.push_str(&format!("![{}]({}.svg)\n\n", spec.name, spec.name));
    }
    out.push_str(&artifact.render(Format::Md).expect("md is always supported"));
    out.push_str(&format!(
        "\nMachine-readable: [txt]({n}.txt) · [csv]({n}.csv) · [json]({n}.json)\n",
        n = spec.name
    ));
    out
}

/// Regenerate `dir` (the committed `docs/artifacts/` tree): render
/// everything and write it out. Returns the number of files written.
///
/// # Errors
///
/// Propagates artifact build failures and I/O errors.
pub fn regen(dir: &Path) -> Result<usize, Box<dyn Error>> {
    let rendered = render_all()?;
    let mut sink = DirSink::new(dir);
    for ((name, format), content) in rendered.entries() {
        sink.write(name, *format, content)?;
    }
    Ok(sink.written().len())
}

/// Compare a fresh rendering against the committed `dir` without
/// writing: the stale file names, empty when the docs are current.
///
/// # Errors
///
/// Propagates artifact build failures and I/O errors.
pub fn check(dir: &Path) -> Result<Vec<String>, Box<dyn Error>> {
    let rendered = render_all()?;
    Ok(ipass_report::diff_against_dir(&rendered, dir)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = specs().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate artifact names");
        assert!(find("table2").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn paper_artifacts_cover_the_required_formats() {
        // The acceptance bar: table2, fig5, fig6, the sensitivity
        // tornado and the design-space frontier must render in at
        // least txt, CSV and JSON.
        for name in ["table2", "fig5", "fig6", "sensitivity", "design_space"] {
            let spec = find(name).unwrap();
            let artifact = spec.build().unwrap();
            for format in [Format::Txt, Format::Csv, Format::Json] {
                assert!(artifact.render(format).is_ok(), "{name}/{format}");
            }
        }
    }
}
