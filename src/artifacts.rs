//! The named paper-artifact registry: every table and figure of the
//! paper as a buildable, renderable [`Artifact`].
//!
//! This is the layer the `ipass` CLI, the golden tests and the docs
//! drift gate share. Each entry names one artifact, knows how to
//! compute it from the domain crates, and documents it in one line.
//! Regeneration ([`regen`]) renders every artifact in every supported
//! format into `docs/artifacts/`, plus a composed Markdown page per
//! artifact and an index — all byte-deterministic, so CI can fail on
//! any drift between the committed docs and the code.

use ipass_gps::experiments;
use ipass_moe::{CompiledFlow, Severity, DEFAULT_SUBASSEMBLY_RETRY_BUDGET};
use ipass_report::{Artifact, Cell, DirSink, Findings, Format, MemorySink, Sink, Table};
use std::error::Error;
use std::path::Path;

/// The seed every seeded (Monte Carlo) artifact uses — part of the
/// artifact definition: changing it is a deliberate artifact change,
/// caught by the golden tests and the docs drift gate.
pub const ARTIFACT_SEED: u64 = 42;

/// One registered artifact.
#[derive(Debug, Clone, Copy)]
pub struct ArtifactSpec {
    /// Registry name (the CLI's `<name>` and the file stem).
    pub name: &'static str,
    /// One-line description (shown by `ipass list`, embedded in the
    /// docs page).
    pub what: &'static str,
    build: fn() -> Result<Artifact, Box<dyn Error>>,
}

impl ArtifactSpec {
    /// Compute the artifact value.
    ///
    /// # Errors
    ///
    /// Propagates the underlying experiment's error (planning,
    /// evaluation or simulation failures).
    pub fn build(&self) -> Result<Artifact, Box<dyn Error>> {
        (self.build)()
    }
}

type Build = fn() -> Result<Artifact, Box<dyn Error>>;

const fn spec(name: &'static str, what: &'static str, build: Build) -> ArtifactSpec {
    ArtifactSpec { name, what, build }
}

/// Every registered artifact, in docs order.
pub fn specs() -> &'static [ArtifactSpec] {
    static SPECS: &[ArtifactSpec] = &[
        spec(
            "fig1",
            "Pure component vs mounted footprint area over the SMD sizes — the paper's motivation: bodies shrink, mounting overhead does not.",
            || Ok(Artifact::Series(experiments::fig1().artifact())),
        ),
        spec(
            "table1",
            "Area-relevant data: the paper's component areas next to in-crate thin-film synthesis and the SMD catalog.",
            || Ok(Artifact::Table(experiments::table1()?.artifact())),
        ),
        spec(
            "table2",
            "The cost and yield cards of the four implementations — the inputs of the MOE cost analysis.",
            || Ok(Artifact::Table(experiments::table2().artifact())),
        ),
        spec(
            "fig3",
            "Module area consumed by each build-up, as a percentage of the PCB reference (methodology step 3).",
            || Ok(Artifact::Table(experiments::fig3()?.artifact())),
        ),
        spec(
            "fig4",
            "The generic MOE production model of solution 2 run through the seeded Monte Carlo engine, vs the paper's illustration.",
            || Ok(Artifact::Table(experiments::fig4(ARTIFACT_SEED)?.artifact())),
        ),
        spec(
            "fig5",
            "Final cost per shipped unit (Eq. 1) for the four solutions, percent of the PCB reference vs the paper.",
            || Ok(Artifact::Table(experiments::fig5()?.artifact_table())),
        ),
        spec(
            "fig5_breakdown",
            "The Fig. 5 cost composition: direct cost and yield loss per shipped unit, chip cost as the paper's callout.",
            || Ok(Artifact::Breakdown(experiments::fig5()?.artifact_breakdown())),
        ),
        spec(
            "fig6",
            "The figure-of-merit decision table (perf × 1/size × 1/cost) with the paper's published column — solution 4 wins.",
            || Ok(Artifact::Table(experiments::fig6()?.artifact())),
        ),
        spec(
            "sensitivity",
            "Tornado sensitivity of solution 4's final cost to the Table 2 inputs (one compiled flow, every variant a parameter patch).",
            || {
                Ok(Artifact::Breakdown(experiments::sensitivity(3)?.artifact_titled(
                    "sensitivity — solution 4 final cost vs Table 2 inputs",
                )))
            },
        ),
        spec(
            "sensitivity_sol2",
            "The same tornado for solution 2 (MCM/WB/SMD) — the classic build-up's cost drivers.",
            || {
                Ok(Artifact::Breakdown(experiments::sensitivity(1)?.artifact_titled(
                    "sensitivity — solution 2 final cost vs Table 2 inputs",
                )))
            },
        ),
        spec(
            "lint",
            "Static verification of every committed solution flow: the moe::verify diagnostics (invariant violations, model lints) across the full artifact registry — `ipass lint` gates CI on this being warning-free.",
            || Ok(Artifact::Findings(lint_findings()?)),
        ),
        spec(
            "verify",
            "The verifier's statically proven per-unit bounds for each solution flow: RNG draws, booked cost and shipped-fraction support over every possible draw outcome.",
            || Ok(Artifact::Table(verify_table()?)),
        ),
        spec(
            "design_space",
            "Solution 2's volume × substrate-yield design space: analytic screen, Pareto frontier over (final cost ↓, shipped fraction ↑), Monte-Carlo-confirmed band.",
            || {
                Ok(Artifact::Frontier(
                    experiments::design_space(1, 12)?.artifact(),
                ))
            },
        ),
    ];
    SPECS
}

/// Look up a registered artifact by name.
pub fn find(name: &str) -> Option<&'static ArtifactSpec> {
    specs().iter().find(|s| s.name == name)
}

/// The committed flows the `ipass lint` gate verifies: the four paper
/// solutions' production flows, compiled — every flow a registry
/// artifact evaluates passes through one of these programs.
///
/// # Errors
///
/// Propagates planning/compilation failures.
pub fn lint_targets() -> Result<Vec<(&'static str, CompiledFlow)>, Box<dyn Error>> {
    let mut targets = Vec::new();
    for (label, flow) in experiments::solution_flows()? {
        targets.push((label, flow.compiled()?));
    }
    Ok(targets)
}

/// The `lint` artifact: every verifier diagnostic across the committed
/// solution flows, paths prefixed with the flow's label.
fn lint_findings() -> Result<Findings, Box<dyn Error>> {
    let targets = lint_targets()?;
    let mut findings = Findings::new("lint — committed solution flows");
    let (mut errors, mut warnings, mut infos) = (0, 0, 0);
    for (label, compiled) in &targets {
        let diags = compiled.verify();
        errors += diags.count(Severity::Error);
        warnings += diags.count(Severity::Warning);
        infos += diags.count(Severity::Info);
        for d in diags.iter() {
            findings.push(
                d.severity.to_string(),
                d.code,
                format!("{label}: {}", d.path),
                &d.message,
            );
        }
    }
    Ok(findings
        .note(format!(
            "{} flow(s) verified: {errors} error(s), {warnings} warning(s), {infos} info(s)",
            targets.len(),
        ))
        .note(
            "`ipass lint --deny-warnings` (the CI gate) fails on any warning or error; \
             infos are observations",
        ))
}

/// The `verify` artifact: per-flow statically proven bounds — valid for
/// every draw outcome, not just in expectation.
fn verify_table() -> Result<Table, Box<dyn Error>> {
    let mut table = Table::new("verify — static per-unit bounds of the solution flows")
        .text_column("solution")
        .numeric_column("draws min", 0)
        .numeric_column("draws max", 0)
        .numeric_column("cost min", 2)
        .numeric_column("cost max", 2)
        .numeric_column("ship lo", 0)
        .numeric_column("ship hi", 0)
        .numeric_column("rework max", 0)
        .numeric_column("sub builds max", 0);
    for (label, compiled) in lint_targets()? {
        let b = compiled.static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)?;
        table = table.row(vec![
            Cell::text(label),
            Cell::int(b.draws_per_unit.lo as i64),
            Cell::int(b.draws_per_unit.hi as i64),
            Cell::num(b.cost_per_unit.lo),
            Cell::num(b.cost_per_unit.hi),
            Cell::num(b.shipped_fraction.lo.round()),
            Cell::num(b.shipped_fraction.hi.round()),
            Cell::int(b.rework_per_unit.hi as i64),
            Cell::int(b.sub_builds_per_unit.hi as i64),
        ]);
    }
    Ok(table.note(format!(
        "bounds hold for every possible draw outcome (not just in expectation), \
         at the default subassembly retry budget of {DEFAULT_SUBASSEMBLY_RETRY_BUDGET}; \
         cost bounds exclude NRE"
    )))
}

/// Build and render every artifact in every supported format into a
/// [`MemorySink`], including the composed per-artifact docs pages and
/// the index (under the same names `regen` writes).
///
/// # Errors
///
/// Propagates the first failing artifact build.
pub fn render_all() -> Result<MemorySink, Box<dyn Error>> {
    let mut sink = MemorySink::new();
    let mut index = String::from(
        "# Generated paper artifacts\n\n\
         Regenerate with `cargo run --release --bin ipass -- regen docs/artifacts/`.\n\
         Every file in this directory is generated — do not edit by hand; CI fails\n\
         on any diff between these files and the code.\n\n\
         | artifact | what |\n| :-- | :-- |\n",
    );
    for spec in specs() {
        let artifact = spec.build()?;
        // The raw sinks (md here is the bare table; the page below
        // embeds it).
        for format in artifact.formats() {
            if format == Format::Md {
                continue;
            }
            let content = artifact.render(format).expect("format from formats()");
            sink.write(spec.name, format, &content)?;
        }
        sink.write(spec.name, Format::Md, &page(spec, &artifact))?;
        index.push_str(&format!(
            "| [{}]({}.md) | {} |\n",
            spec.name, spec.name, spec.what
        ));
    }
    sink.write("README", Format::Md, &index)?;
    Ok(sink)
}

/// The composed docs page for one artifact: description, the rendered
/// Markdown table, the figure (when the artifact has an SVG form) and
/// links to the machine-readable files.
fn page(spec: &ArtifactSpec, artifact: &Artifact) -> String {
    let mut out = format!(
        "# `{}` — {}\n\n{}\n\n",
        spec.name,
        artifact.title(),
        spec.what
    );
    if artifact.formats().contains(&Format::Svg) {
        out.push_str(&format!("![{}]({}.svg)\n\n", spec.name, spec.name));
    }
    out.push_str(&artifact.render(Format::Md).expect("md is always supported"));
    out.push_str(&format!(
        "\nMachine-readable: [txt]({n}.txt) · [csv]({n}.csv) · [json]({n}.json)\n",
        n = spec.name
    ));
    out
}

/// Regenerate `dir` (the committed `docs/artifacts/` tree): render
/// everything and write it out. Returns the number of files written.
///
/// # Errors
///
/// Propagates artifact build failures and I/O errors.
pub fn regen(dir: &Path) -> Result<usize, Box<dyn Error>> {
    let rendered = render_all()?;
    let mut sink = DirSink::new(dir);
    for ((name, format), content) in rendered.entries() {
        sink.write(name, *format, content)?;
    }
    Ok(sink.written().len())
}

/// Compare a fresh rendering against the committed `dir` without
/// writing: the stale file names, empty when the docs are current.
///
/// # Errors
///
/// Propagates artifact build failures and I/O errors.
pub fn check(dir: &Path) -> Result<Vec<String>, Box<dyn Error>> {
    let rendered = render_all()?;
    Ok(ipass_report::diff_against_dir(&rendered, dir)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = specs().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate artifact names");
        assert!(find("table2").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn paper_artifacts_cover_the_required_formats() {
        // The acceptance bar: table2, fig5, fig6, the sensitivity
        // tornado and the design-space frontier must render in at
        // least txt, CSV and JSON.
        for name in ["table2", "fig5", "fig6", "sensitivity", "design_space"] {
            let spec = find(name).unwrap();
            let artifact = spec.build().unwrap();
            for format in [Format::Txt, Format::Csv, Format::Json] {
                assert!(artifact.render(format).is_ok(), "{name}/{format}");
            }
        }
    }
}
