//! The `ipass lint --deny-warnings` gate as an integration test: every
//! committed solution flow must pass static verification with zero
//! errors and zero warnings (infos are observations and allowed), and
//! the verifier's static bounds must exist and contain the analytic
//! report for each flow. CI runs the CLI form of this gate too; this
//! test keeps it enforced under plain `cargo test`.

use integrated_passives::artifacts;
use integrated_passives::moe::DEFAULT_SUBASSEMBLY_RETRY_BUDGET;

#[test]
fn committed_flows_verify_warning_free() {
    let targets = artifacts::lint_targets().expect("committed flows build");
    assert_eq!(targets.len(), 4, "the paper has four solutions");
    for (label, compiled) in &targets {
        let diags = compiled.verify();
        assert_eq!(
            diags.deny_warnings_failures(),
            0,
            "flow {label} has lint failures:\n{diags}"
        );
    }
}

#[test]
fn committed_flows_have_sound_static_bounds() {
    for (label, compiled) in artifacts::lint_targets().expect("committed flows build") {
        let bounds = compiled
            .static_bounds(DEFAULT_SUBASSEMBLY_RETRY_BUDGET)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let report = compiled
            .analyze()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let per_started = report.total_spend().units() / report.started();
        assert!(
            bounds.cost_per_unit.contains(per_started),
            "{label}: analytic cost {per_started} outside {:?}",
            bounds.cost_per_unit
        );
        assert!(
            bounds.shipped_fraction.contains(report.shipped_fraction()),
            "{label}: shipped fraction {} outside {:?}",
            report.shipped_fraction(),
            bounds.shipped_fraction
        );
    }
}

#[test]
fn lint_artifact_renders_and_reports_no_failures() {
    let spec = artifacts::find("lint").expect("lint artifact registered");
    let artifact = spec.build().expect("lint artifact builds");
    let txt = artifact
        .render(integrated_passives::report::Format::Txt)
        .unwrap();
    assert!(txt.contains("0 error(s), 0 warning(s)"), "{txt}");
}
