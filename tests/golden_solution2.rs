//! Golden seeded Monte Carlo values for the paper's solution-2 flow.
//!
//! These are the exact `CostReport` figures the PR-1 interpreter
//! produced (captured before the kernel compilation landed). The
//! compiled routing kernel must keep reproducing them bit for bit, for
//! every thread count — seeded results are part of the public contract,
//! not an implementation detail.

use ipass_core::{BuildUp, SelectionObjective};
use ipass_gps::{bom::gps_bom, table2::cost_inputs};
use ipass_moe::{
    analyze_line_reference, simulate_line_reference, sweep_patched, sweep_with, CostCategory,
    Executor, Flow, SimOptions,
};

fn solution2_flow() -> Flow {
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    plan.production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap()
}

#[test]
fn golden_seed3_100k_all_thread_counts() {
    let flow = solution2_flow();
    for threads in [1usize, 2, 4, 8] {
        let s = flow
            .simulate_summary(&SimOptions::new(100_000).with_seed(3).with_threads(threads))
            .unwrap();
        let r = &s.report;
        assert_eq!(r.started(), 100_000.0, "threads {threads}");
        assert_eq!(r.shipped(), 88_271.0);
        assert_eq!(r.good_shipped(), 88_144.0);
        assert_eq!(r.total_spend().units(), 23_972_919.433_580_898);
        assert_eq!(r.shipped_embodied().units(), 21_161_135.713_216_24);
        assert_eq!(r.by_category()[CostCategory::Chip].units(), 19_500_000.0);
        assert_eq!(
            r.by_category()[CostCategory::Substrate].units(),
            1_538_919.433_580_448_9
        );
        assert_eq!(
            r.by_category()[CostCategory::PassiveParts].units(),
            860_000.000_000_019_2
        );
        assert_eq!(
            r.by_category()[CostCategory::Assembly].units(),
            343_999.999_999_998_95
        );
        assert_eq!(
            r.by_category()[CostCategory::Packaging].units(),
            729_999.999_999_997_1
        );
        assert_eq!(r.by_category()[CostCategory::Test].units(), 1_000_000.0);
        assert_eq!(r.by_category()[CostCategory::Other].units(), 0.0);
        assert_eq!(s.scrapped, 11_729.0);
        assert_eq!(s.rework_attempts, 0);
        assert_eq!(s.sub_units_built, 0);
        let pareto = r.defect_pareto();
        assert_eq!(pareto[0].0, "chip assembly/RF chip (incoming)");
        assert_eq!(pareto[0].1, 0.048_64);
        assert_eq!(pareto[1].0, "packaging / mount on laminate");
        assert_eq!(pareto[1].1, 0.029_29);
        assert_eq!(pareto[2].0, "chip assembly");
        assert_eq!(pareto[2].1, 0.020_83);
        assert_eq!(pareto[3].0, "MCM-D(Si) substrate (incoming)");
        assert_eq!(pareto[3].1, 0.009_89);
    }
}

#[test]
fn golden_seed42_50k() {
    let s = solution2_flow()
        .simulate_summary(&SimOptions::new(50_000).with_seed(42))
        .unwrap();
    let r = &s.report;
    assert_eq!(r.started(), 50_000.0);
    assert_eq!(r.shipped(), 44_290.0);
    assert_eq!(r.good_shipped(), 44_233.0);
    assert_eq!(r.total_spend().units(), 11_986_459.716_790_242);
    assert_eq!(r.shipped_embodied().units(), 10_617_606.017_132_798);
    assert_eq!(
        r.by_category()[CostCategory::Substrate].units(),
        769_459.716_790_242_1
    );
    assert_eq!(s.scrapped, 5_710.0);
}

#[test]
fn analytic_ir_matches_line_oracle_on_solution2() {
    // The analytic golden: Flow::analyze now walks the compiled
    // routing program; on the real paper flow it must agree with the
    // retained Line-walking oracle to 1e-12 relative on every field.
    let flow = solution2_flow();
    let ir = flow.analyze().unwrap();
    let oracle = analyze_line_reference(flow.line(), flow.nre(), flow.volume()).unwrap();
    let close = |a: f64, b: f64, what: &str| {
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
            "{what}: IR {a} vs oracle {b}"
        );
    };
    close(ir.shipped_fraction(), oracle.shipped_fraction(), "shipped");
    close(ir.escape_rate(), oracle.escape_rate(), "escapes");
    close(
        ir.total_spend().units(),
        oracle.total_spend().units(),
        "total spend",
    );
    close(
        ir.final_cost_per_shipped().units(),
        oracle.final_cost_per_shipped().units(),
        "final cost",
    );
    for cat in CostCategory::ALL {
        close(
            ir.by_category()[cat].units(),
            oracle.by_category()[cat].units(),
            cat.label(),
        );
    }
    let (ip, op) = (ir.defect_pareto(), oracle.defect_pareto());
    assert_eq!(ip.len(), op.len());
    for ((na, va), (nb, vb)) in ip.iter().zip(op.iter()) {
        assert_eq!(na, nb);
        close(*va, *vb, na);
    }
}

#[test]
fn patched_sweep_matches_rebuilt_sweep_on_solution2() {
    // The patched-program sweep (compile once, overwrite the carrier
    // cost slot per point) must trace the same curve as rebuilding the
    // production flow per point — the contract behind the
    // `sweep_analytic` benchmark.
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&buildup);
    let flow = solution2_flow();
    let carrier = flow.line().carrier().name().to_owned();
    let base_cost = flow.line().carrier().cost().total();
    let xs: Vec<f64> = (0..16).map(|i| 0.5 + i as f64 / 16.0).collect();

    let serial = Executor::serial();
    let rebuilt = sweep_with(&serial, xs.iter().copied(), |x| {
        let mut card = base_card.clone();
        card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * x;
        plan.production_flow(area, &card)
    })
    .unwrap();
    let patched = sweep_patched(&flow, xs.iter().copied(), |x, patch| {
        patch.set_cost(&carrier, base_cost * x)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(rebuilt.len(), patched.len());
    for (a, b) in rebuilt.iter().zip(patched.iter()) {
        assert_eq!(a.x, b.x);
        let (ca, cb) = (a.final_cost(), b.final_cost());
        assert!(
            (ca - cb).abs() <= 1e-12 * ca.abs().max(1.0),
            "x = {}: rebuilt {ca} vs patched {cb}",
            a.x
        );
    }
}

#[test]
fn kernel_matches_interpreter_on_solution2() {
    // The runtime oracle check on the real paper flow (the property
    // tests cover random lines): kernel and interpreter agree on every
    // field, not just the golden subset.
    let flow = solution2_flow();
    for seed in [3u64, 42, 1234] {
        let opts = SimOptions::new(30_000).with_seed(seed);
        let kernel = flow.simulate_summary(&opts).unwrap();
        let oracle =
            simulate_line_reference(flow.line(), flow.nre(), flow.volume(), &opts, None).unwrap();
        assert_eq!(kernel, oracle, "seed {seed}");
    }
}
