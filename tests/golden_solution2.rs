//! Golden seeded Monte Carlo values for the paper's solution-2 flow.
//!
//! These are the exact `CostReport` figures the PR-1 interpreter
//! produced (captured before the kernel compilation landed). The
//! compiled routing kernel must keep reproducing them bit for bit, for
//! every thread count — seeded results are part of the public contract,
//! not an implementation detail.

use ipass_core::{BuildUp, SelectionObjective};
use ipass_gps::{bom::gps_bom, table2::cost_inputs};
use ipass_moe::{simulate_line_reference, CostCategory, Flow, SimOptions};

fn solution2_flow() -> Flow {
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    plan.production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap()
}

#[test]
fn golden_seed3_100k_all_thread_counts() {
    let flow = solution2_flow();
    for threads in [1usize, 2, 4, 8] {
        let s = flow
            .simulate_summary(&SimOptions::new(100_000).with_seed(3).with_threads(threads))
            .unwrap();
        let r = &s.report;
        assert_eq!(r.started(), 100_000.0, "threads {threads}");
        assert_eq!(r.shipped(), 88_271.0);
        assert_eq!(r.good_shipped(), 88_144.0);
        assert_eq!(r.total_spend().units(), 23_972_919.433_580_898);
        assert_eq!(r.shipped_embodied().units(), 21_161_135.713_216_24);
        assert_eq!(r.by_category()[CostCategory::Chip].units(), 19_500_000.0);
        assert_eq!(
            r.by_category()[CostCategory::Substrate].units(),
            1_538_919.433_580_448_9
        );
        assert_eq!(
            r.by_category()[CostCategory::PassiveParts].units(),
            860_000.000_000_019_2
        );
        assert_eq!(
            r.by_category()[CostCategory::Assembly].units(),
            343_999.999_999_998_95
        );
        assert_eq!(
            r.by_category()[CostCategory::Packaging].units(),
            729_999.999_999_997_1
        );
        assert_eq!(r.by_category()[CostCategory::Test].units(), 1_000_000.0);
        assert_eq!(r.by_category()[CostCategory::Other].units(), 0.0);
        assert_eq!(s.scrapped, 11_729.0);
        assert_eq!(s.rework_attempts, 0);
        assert_eq!(s.sub_units_built, 0);
        let pareto = r.defect_pareto();
        assert_eq!(pareto[0].0, "chip assembly/RF chip (incoming)");
        assert_eq!(pareto[0].1, 0.048_64);
        assert_eq!(pareto[1].0, "packaging / mount on laminate");
        assert_eq!(pareto[1].1, 0.029_29);
        assert_eq!(pareto[2].0, "chip assembly");
        assert_eq!(pareto[2].1, 0.020_83);
        assert_eq!(pareto[3].0, "MCM-D(Si) substrate (incoming)");
        assert_eq!(pareto[3].1, 0.009_89);
    }
}

#[test]
fn golden_seed42_50k() {
    let s = solution2_flow()
        .simulate_summary(&SimOptions::new(50_000).with_seed(42))
        .unwrap();
    let r = &s.report;
    assert_eq!(r.started(), 50_000.0);
    assert_eq!(r.shipped(), 44_290.0);
    assert_eq!(r.good_shipped(), 44_233.0);
    assert_eq!(r.total_spend().units(), 11_986_459.716_790_242);
    assert_eq!(r.shipped_embodied().units(), 10_617_606.017_132_798);
    assert_eq!(
        r.by_category()[CostCategory::Substrate].units(),
        769_459.716_790_242_1
    );
    assert_eq!(s.scrapped, 5_710.0);
}

#[test]
fn kernel_matches_interpreter_on_solution2() {
    // The runtime oracle check on the real paper flow (the property
    // tests cover random lines): kernel and interpreter agree on every
    // field, not just the golden subset.
    let flow = solution2_flow();
    for seed in [3u64, 42, 1234] {
        let opts = SimOptions::new(30_000).with_seed(seed);
        let kernel = flow.simulate_summary(&opts).unwrap();
        let oracle =
            simulate_line_reference(flow.line(), flow.nre(), flow.volume(), &opts, None).unwrap();
        assert_eq!(kernel, oracle, "seed {seed}");
    }
}
