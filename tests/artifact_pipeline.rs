//! The artifact pipeline's output contract:
//!
//! * golden tests pinning byte-exact txt/CSV/JSON output for the
//!   Table 2 cards, the Fig. 6 decision, the solution-2 tornado and
//!   the observability artifacts (`runstats`, `profile`) — the files
//!   under `tests/golden/` are committed copies of `docs/artifacts/`;
//!   regenerate both with
//!   `cargo run --release --bin ipass -- regen docs/artifacts/` — and
//! * the `ipass regen` idempotence/determinism contract: rendering the
//!   whole registry twice produces identical bytes, so a second `regen`
//!   run is always a zero-diff no-op.

use integrated_passives::artifacts;
use integrated_passives::report::Format;

fn pinned(name: &str, format: Format, expected: &str) {
    let artifact = artifacts::find(name)
        .unwrap_or_else(|| panic!("artifact {name} not registered"))
        .build()
        .unwrap_or_else(|e| panic!("artifact {name} failed to build: {e}"));
    let rendered = artifact.render(format).unwrap();
    assert!(
        rendered == expected,
        "{name}.{format} drifted from tests/golden/{name}.{format}\n\
         --- rendered ---\n{rendered}\n--- pinned ---\n{expected}"
    );
}

#[test]
fn table2_golden_txt_csv_json() {
    pinned("table2", Format::Txt, include_str!("golden/table2.txt"));
    pinned("table2", Format::Csv, include_str!("golden/table2.csv"));
    pinned("table2", Format::Json, include_str!("golden/table2.json"));
}

#[test]
fn fig6_golden_txt_csv_json() {
    pinned("fig6", Format::Txt, include_str!("golden/fig6.txt"));
    pinned("fig6", Format::Csv, include_str!("golden/fig6.csv"));
    pinned("fig6", Format::Json, include_str!("golden/fig6.json"));
}

#[test]
fn solution2_tornado_golden_txt_csv_json() {
    pinned(
        "sensitivity_sol2",
        Format::Txt,
        include_str!("golden/sensitivity_sol2.txt"),
    );
    pinned(
        "sensitivity_sol2",
        Format::Csv,
        include_str!("golden/sensitivity_sol2.csv"),
    );
    pinned(
        "sensitivity_sol2",
        Format::Json,
        include_str!("golden/sensitivity_sol2.json"),
    );
}

#[test]
fn runstats_golden_txt_json() {
    // The observability deterministic plane is part of the byte
    // contract: every counter in this table is exact and thread-count
    // invariant, so the rendering is pinned like any paper artifact.
    pinned("runstats", Format::Txt, include_str!("golden/runstats.txt"));
    pinned(
        "runstats",
        Format::Json,
        include_str!("golden/runstats.json"),
    );
}

#[test]
fn profile_golden_txt_json() {
    // The wall-clock plane is pinned only in its deterministic shadow:
    // span names and counts are reproducible, timings are redacted to
    // "-" by the committed artifact (live timings come from
    // `ipass profile`). Byte-pinning the redacted form proves the
    // wall-clock plane never leaks into the committed tree.
    pinned("profile", Format::Txt, include_str!("golden/profile.txt"));
    pinned("profile", Format::Json, include_str!("golden/profile.json"));
}

#[test]
fn every_paper_artifact_renders_txt_csv_json() {
    // The acceptance floor: the paper deliverables render in at least
    // txt, CSV and JSON (fig5's figure form and the frontier add SVG
    // on top).
    for name in ["table2", "fig5", "fig6", "sensitivity", "design_space"] {
        let artifact = artifacts::find(name).unwrap().build().unwrap();
        for format in [Format::Txt, Format::Csv, Format::Json] {
            let rendered = artifact.render(format).unwrap();
            assert!(!rendered.is_empty(), "{name}.{format} rendered empty");
        }
    }
}

#[test]
fn regen_is_idempotent() {
    // The whole registry, every format, rendered twice: bit-identical.
    // (This is the in-process form of "running `ipass regen` twice
    // produces zero diff"; CI additionally regenerates into the
    // checkout and fails on any diff against the committed docs.)
    let first = artifacts::render_all().unwrap();
    let second = artifacts::render_all().unwrap();
    assert_eq!(
        first.entries().len(),
        second.entries().len(),
        "render_all produced different file sets"
    );
    for ((name, format), content) in first.entries() {
        let again = second.get(name, *format).expect("same file set");
        assert!(
            content == again,
            "{name}.{} is not deterministic across runs",
            format.ext()
        );
    }
    // Every registered artifact landed, plus the index page.
    for spec in artifacts::specs() {
        assert!(
            first.get(spec.name, Format::Txt).is_some(),
            "{} missing from regen output",
            spec.name
        );
        assert!(
            first.get(spec.name, Format::Md).is_some(),
            "{} has no docs page",
            spec.name
        );
    }
    assert!(first.get("README", Format::Md).is_some(), "no index page");
}
