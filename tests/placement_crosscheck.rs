//! Cross-check the paper's "trivial placement" area factors against an
//! actual rectangle packing of the GPS component set.

use integrated_passives::core::{BuildUp, PassivePolicy, SelectionObjective};
use integrated_passives::gps::bom::gps_bom;
use integrated_passives::layout::{Rect, ShelfPacker, SubstrateRule};
use integrated_passives::units::Area;

/// Approximate each selected component as a square of its area (good
/// enough for a utilization cross-check).
fn rectangles(buildup: &BuildUp) -> Vec<Rect> {
    let plan = buildup
        .plan(&gps_bom(buildup), SelectionObjective::MinArea)
        .unwrap();
    let mut rects = Vec::new();
    for sel in plan.selections() {
        let side = sel.realization.area().square_side_mm();
        for _ in 0..sel.quantity {
            rects.push(Rect::new(side, side));
        }
    }
    rects
}

#[test]
fn mcm_11x_overhead_is_realizable_by_packing() {
    // Pack solution 2's parts into the strip width the 1.1× rule
    // allocates; the shelf packer must fit within a modest excess.
    let buildup = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd);
    let rects = rectangles(&buildup);
    let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
    let rule = SubstrateRule::mcm_d_si();
    let strip = (rule.overhead() * total).sqrt();
    let packing = ShelfPacker::new(strip).pack(&rects).unwrap();
    assert!(packing.validate());
    // Shelf packing is suboptimal; staying within ~1.35× confirms that
    // 1.1× with a real placer is credible.
    assert!(
        packing.overhead() < 1.35,
        "shelf overhead {:.3} for Σ {total:.0} mm²",
        packing.overhead()
    );
}

#[test]
fn optimized_solution_packs_too() {
    let buildup = BuildUp::mcm_flip_chip(PassivePolicy::Optimized);
    let rects = rectangles(&buildup);
    let rule = SubstrateRule::mcm_d_si();
    let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
    let strip = rule.required_side_mm(Area::from_mm2(total)) - 2.0 * rule.edge_clearance_mm();
    let packing = ShelfPacker::new(strip).pack(&rects).unwrap();
    assert!(packing.validate());
    // Everything fits close to the substrate the sizing rule predicts.
    // Solution 4 is a small, heterogeneous set (a 7.7 mm die next to
    // 2 mm chips), the worst case for a shelf heuristic — allow its
    // usual slack over the hand-layout 1.1× assumption.
    assert!(
        packing.height() <= strip * 1.45,
        "height {:.1} vs strip {strip:.1}",
        packing.height()
    );
}

#[test]
fn packer_matches_trivial_placement_for_uniform_parts() {
    // For a board of uniform passives the trivial Σarea model and the
    // packer agree almost exactly — the factor is pure geometry.
    let rects = vec![Rect::new(2.0, 1.25); 120];
    let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
    let packing = ShelfPacker::new(20.0).pack(&rects).unwrap();
    assert!(packing.validate());
    assert!(
        (packing.bounding_area().mm2() / total) < 1.1,
        "uniform overhead {:.3}",
        packing.bounding_area().mm2() / total
    );
}
