//! Acceptance tests for `ipass-explore` on the golden solution-2 flow:
//! the adaptive refiner confirms at most 30 % of the grid by Monte
//! Carlo while reproducing the full-grid Pareto frontier exactly, and
//! every result is bit-identical across executor thread counts.

use integrated_passives::core::{BuildUp, SelectionObjective};
use integrated_passives::explore::{
    FlowAxis, FlowExplorer, Levels, Metric, Objective, RefineOptions, SamplerSpec,
};
use integrated_passives::gps::{bom::gps_bom, table2::cost_inputs};
use integrated_passives::moe::{Executor, Flow};
use integrated_passives::units::Probability;

const SIDE: usize = 32;

fn solution2() -> (integrated_passives::core::BuildUpPlan, Flow) {
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let flow = plan
        .production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap();
    (plan, flow)
}

fn explorer(flow: &Flow, executor: Executor) -> FlowExplorer {
    let carrier = flow.line().carrier().name().to_owned();
    FlowExplorer::new(flow.compiled().unwrap())
        .axis(FlowAxis::cost_scale(
            carrier,
            Levels::linspace(0.5, 1.5, SIDE),
        ))
        .axis(FlowAxis::coverage(
            "functional test",
            Levels::linspace(0.9, 0.999, SIDE),
        ))
        .objective(Objective::minimize(Metric::FinalCostPerShipped))
        .objective(Objective::minimize(Metric::EscapeRate))
        .with_executor(executor)
}

#[test]
fn refiner_reproduces_the_full_grid_frontier_with_sparse_mc() {
    let (plan, flow) = solution2();
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&BuildUp::paper_solutions()[1]);

    let explorer = explorer(&flow, Executor::new(4));
    // The reference: every grid point evaluated, frontier extracted.
    let full = explorer.explore(&SamplerSpec::Grid).unwrap();
    assert_eq!(full.points.len(), SIDE * SIDE);

    let refined = explorer
        .refine(
            &SamplerSpec::Grid,
            &RefineOptions {
                margin: 0.05,
                mc_units: 20_000,
                seed: 99,
                stop: None,
                ..RefineOptions::default()
            },
            |coords| {
                let mut card = base_card.clone();
                card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * coords[0];
                card.fault_coverage = Probability::clamped(coords[1]);
                plan.production_flow(area, &card)
            },
        )
        .unwrap();

    // The analytic screen reproduces the full-grid Pareto frontier
    // exactly — same member points, same objective values.
    assert_eq!(refined.frontier(), &full.frontier);
    assert_eq!(refined.frontier().indices(), full.frontier.indices());

    // …while at most 30 % of the grid pays for Monte Carlo.
    assert!(
        refined.promoted_fraction() <= 0.30,
        "promoted {:.1} % of the grid",
        100.0 * refined.promoted_fraction()
    );
    // Every frontier member got its MC confirmation, and the confirmed
    // costs sit within Monte Carlo noise of the analytic screen.
    for index in full.frontier.indices() {
        let c = refined
            .confirmations
            .iter()
            .find(|c| c.index == index)
            .expect("frontier member must be promoted");
        let analytic = &refined.screen.points[index].objectives;
        let rel = (c.objectives[0] - analytic[0]).abs() / analytic[0];
        assert!(
            rel < 0.03,
            "point {index}: MC cost {} vs analytic {}",
            c.objectives[0],
            analytic[0]
        );
    }
}

#[test]
fn golden_flow_exploration_is_bit_identical_across_thread_counts() {
    let (plan, flow) = solution2();
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&BuildUp::paper_solutions()[1]);
    let refine = |threads: usize| {
        explorer(&flow, Executor::new(threads))
            .refine(
                &SamplerSpec::Grid,
                &RefineOptions {
                    margin: 0.04,
                    mc_units: 5_000,
                    seed: 3,
                    stop: None,
                    ..RefineOptions::default()
                },
                |coords| {
                    let mut card = base_card.clone();
                    card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * coords[0];
                    card.fault_coverage = Probability::clamped(coords[1]);
                    plan.production_flow(area, &card)
                },
            )
            .unwrap()
    };
    let baseline = refine(1);
    let baseline_frontier = explorer(&flow, Executor::new(1))
        .screen_frontier(&SamplerSpec::Grid)
        .unwrap();
    assert_eq!(&baseline_frontier, baseline.frontier());
    for threads in [2, 4, 8] {
        let run = refine(threads);
        assert_eq!(
            run.screen.points, baseline.screen.points,
            "threads = {threads}"
        );
        assert_eq!(run.promoted, baseline.promoted, "threads = {threads}");
        for (a, b) in run.confirmations.iter().zip(&baseline.confirmations) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.objectives, b.objectives, "threads = {threads}");
            assert_eq!(a.units_run, b.units_run);
        }
        assert_eq!(
            explorer(&flow, Executor::new(threads))
                .screen_frontier(&SamplerSpec::Grid)
                .unwrap(),
            baseline_frontier,
            "threads = {threads}"
        );
    }
}
