//! Acceptance tests: every table and figure of the paper, reproduced
//! within its tolerance band (documented in EXPERIMENTS.md).

use integrated_passives::gps::{experiments, paper};

#[test]
fn fig1_footprint_saturation() {
    let fig = experiments::fig1();
    // The paper's argument: bodies shrink ~10× faster than footprints.
    let body_ratio = fig.rows[2].body_mm2 / fig.rows[5].body_mm2; // 0805 vs 0201
    let foot_ratio = fig.rows[2].footprint_mm2 / fig.rows[5].footprint_mm2;
    assert!(body_ratio > 10.0, "body shrink {body_ratio}");
    assert!(foot_ratio < 2.5, "footprint shrink {foot_ratio}");
    // Table 1 anchors inside the series.
    let r0603 = fig.rows.iter().find(|r| r.code == "0603").unwrap();
    assert!((r0603.footprint_mm2 - 3.75).abs() < 1e-12);
}

#[test]
fn table1_areas_synthesized_from_physics() {
    let t = experiments::table1().unwrap();
    let find = |label: &str| {
        t.rows
            .iter()
            .find(|r| r.label.contains(label))
            .unwrap_or_else(|| panic!("row {label} missing"))
    };
    // 100 kΩ meander: 0.25 mm² within 20 %.
    let r = find("IP-R");
    assert!((r.measured_mm2 - r.paper_mm2).abs() / r.paper_mm2 < 0.2);
    // 50 pF MIM: 0.3 mm² within 10 %.
    let c = find("IP-C");
    assert!((c.measured_mm2 - c.paper_mm2).abs() / c.paper_mm2 < 0.1);
    // 40 nH spiral: 1 mm² within 35 % (minimum-area synthesis packs a
    // little tighter than the paper's layout).
    let l = find("IP-L");
    assert!((l.measured_mm2 - l.paper_mm2).abs() / l.paper_mm2 < 0.35);
}

#[test]
fn fig3_area_ladder() {
    let fig = experiments::fig3().unwrap();
    let measured: Vec<f64> = fig.rows.iter().map(|r| r.measured_percent).collect();
    for (m, p) in measured.iter().zip(paper::FIG3_AREA_PERCENT.iter()) {
        assert!((m - p).abs() < 3.0, "measured {m:.1}% vs paper {p}%");
    }
    // Strictly decreasing: every step toward integration shrinks the module.
    assert!(measured.windows(2).all(|w| w[1] < w[0]));
}

#[test]
fn fig4_moe_model_structure_and_conservation() {
    let fig = experiments::fig4(1).unwrap();
    assert_eq!(fig.started, paper::FIG4_STARTED);
    assert!((fig.shipped() + fig.scrapped() - fig.started as f64).abs() < 0.5);
    // The pictured stages all exist.
    let joined = fig.stages.join("|");
    for stage in [
        "substrate",
        "chip assembly",
        "wire bonding",
        "SMD mounting",
        "functional test",
        "scrap",
    ] {
        assert!(joined.contains(stage), "missing stage {stage}");
    }
}

#[test]
fn fig5_cost_shape() {
    let fig = experiments::fig5().unwrap();
    let m: Vec<f64> = fig.rows.iter().map(|r| r.measured_percent).collect();
    // Who wins: the PCB stays cheapest; the full-IP substrate is the most
    // expensive; the WB and passives-optimized variants sit within a
    // point of each other around +5 %.
    assert!(m[0] < m[1] && m[1] < m[2] && m[3] < m[2]);
    for (i, (mi, pi)) in m.iter().zip(paper::FIG5_COST_PERCENT.iter()).enumerate() {
        assert!(
            (mi - pi).abs() < 2.5,
            "solution {}: measured {mi:.1}% vs paper {pi}%",
            i + 1
        );
    }
    // The stacked composition: yield loss grows monotonically from
    // solution 1 to solution 3 (the paper's bar stacking).
    assert!(fig.rows[0].yield_loss < fig.rows[1].yield_loss);
    assert!(fig.rows[1].yield_loss < fig.rows[2].yield_loss);
}

#[test]
fn fig6_figure_of_merit_and_decision() {
    let fig = experiments::fig6().unwrap();
    let foms: Vec<f64> = fig.table.rows().iter().map(|r| r.fom).collect();
    for (i, (m, p)) in foms.iter().zip(paper::FIG6_FOM.iter()).enumerate() {
        let tol = if i == 3 { 0.3 } else { 0.15 };
        assert!(
            (m - p).abs() < tol,
            "solution {}: FoM {m:.2} vs paper {p}",
            i + 1
        );
    }
    // The paper's decision: "an adaptation of solution 4 has been chosen".
    assert!(fig.table.best().name.contains("IP&SMD"));
    // And solution 3 is the only one below the reference.
    assert!(foms[2] < 1.0 && foms[1] > 1.0 && foms[3] > 1.0);
}

#[test]
fn section41_performance_scores() {
    use integrated_passives::core::BuildUp;
    use integrated_passives::gps::filters::assess_performance;
    let scores: Vec<f64> = BuildUp::paper_solutions()
        .iter()
        .map(|b| assess_performance(b).overall)
        .collect();
    assert_eq!(scores[0], 1.0);
    assert_eq!(scores[1], 1.0);
    assert!((scores[2] - 0.45).abs() < 0.08, "sol3 {}", scores[2]);
    assert!((scores[3] - 0.70).abs() < 0.08, "sol4 {}", scores[3]);
}

#[test]
fn table2_counts_flow_into_the_plans() {
    use integrated_passives::core::{BuildUp, SelectionObjective};
    use integrated_passives::gps::bom::gps_bom;
    let counts: Vec<u32> = BuildUp::paper_solutions()
        .iter()
        .map(|b| {
            b.plan(&gps_bom(b), SelectionObjective::MinArea)
                .unwrap()
                .smd_placements()
        })
        .collect();
    assert_eq!(counts, paper::SMD_COUNTS.to_vec());
    let bonds = BuildUp::paper_solutions()[1]
        .plan(
            &gps_bom(&BuildUp::paper_solutions()[1]),
            SelectionObjective::MinArea,
        )
        .unwrap()
        .bond_count();
    assert_eq!(bonds, paper::BOND_COUNT);
}
