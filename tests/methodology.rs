//! End-to-end methodology behaviour beyond the paper's four candidates:
//! objectives, weights and the enumerated design space.

use integrated_passives::core::{
    BuildUp, CandidateScore, DecisionTable, FomWeights, PassivePolicy, SelectionObjective,
};
use integrated_passives::gps::{bom::gps_bom, filters::assess_performance, table2::cost_inputs};
use integrated_passives::units::Money;

fn assess(buildup: &BuildUp, objective: SelectionObjective) -> CandidateScore {
    let plan = buildup.plan(&gps_bom(buildup), objective).unwrap();
    let area = plan.area();
    let report = plan
        .production_flow(area.substrate_area, &cost_inputs(buildup))
        .unwrap()
        .analyze()
        .unwrap();
    CandidateScore::new(
        buildup.to_string(),
        assess_performance(buildup).overall,
        area.module_area,
        report.final_cost_per_shipped(),
    )
}

#[test]
fn every_enumerated_buildup_is_plannable() {
    for buildup in BuildUp::enumerate() {
        let plan = buildup
            .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
            .unwrap();
        assert!(plan.component_area().mm2() > 0.0, "{buildup}");
        // The module always exceeds the per-side component load (a
        // double-sided PCB may be smaller than Σ component area).
        assert!(
            plan.area().module_area.mm2() > plan.component_area().mm2() / 2.0,
            "{buildup}"
        );
    }
}

#[test]
fn paper_winner_is_robust_in_the_larger_space() {
    // Rank all seven build-ups: solution 4 still wins under the paper's
    // weights.
    let candidates: Vec<CandidateScore> = BuildUp::enumerate()
        .iter()
        .map(|b| assess(b, SelectionObjective::MinArea))
        .collect();
    let table = DecisionTable::rank(&candidates, "PCB/SMD", FomWeights::unweighted()).unwrap();
    assert!(
        table.best().name.contains("FC/IP&SMD"),
        "best: {}",
        table.best().name
    );
}

#[test]
fn objectives_disagree_on_the_precision_inductors() {
    // The paper's area rule keeps the 4 precision IF inductors as SMDs
    // (3.75 mm² beats the 5 mm² wide-line spiral). A purely cost-driven
    // selection would integrate them — spiral substrate area is cheaper
    // than a 0.45-unit wire-wound part — and silently sacrifice the IF
    // filter's Q. Both objectives agree on the decaps.
    let buildup = BuildUp::mcm_flip_chip(PassivePolicy::Optimized);
    let by_area = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let by_cost = buildup
        .plan(
            &gps_bom(&buildup),
            SelectionObjective::MinCost {
                substrate_cost_per_cm2: Money::new(2.25),
                smd_assembly_cost: Money::new(0.01),
            },
        )
        .unwrap();
    assert_eq!(by_area.smd_placements(), 12);
    assert_eq!(
        by_cost.smd_placements(),
        8,
        "cost objective keeps only the decaps SMD"
    );
}

#[test]
fn performance_weighting_flips_the_decision() {
    let candidates: Vec<CandidateScore> = BuildUp::paper_solutions()
        .iter()
        .map(|b| assess(b, SelectionObjective::MinArea))
        .collect();
    let heavy = FomWeights {
        performance: 8.0,
        size: 1.0,
        cost: 1.0,
    };
    let table = DecisionTable::rank(&candidates, "PCB/SMD", heavy).unwrap();
    // A spec-paranoid product manager keeps full-performance solutions.
    assert!(
        !table.best().name.contains("IP&SMD"),
        "heavy perf weighting still picked {}",
        table.best().name
    );
}

#[test]
fn wire_bond_optimized_hybrid_exists_but_loses_to_flip_chip() {
    // The enumeration contains MCM/WB/IP&SMD (not in the paper); it is
    // strictly worse than the flip-chip version on area.
    let wb = assess(
        &BuildUp::mcm_wire_bond(PassivePolicy::Optimized),
        SelectionObjective::MinArea,
    );
    let fc = assess(
        &BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
        SelectionObjective::MinArea,
    );
    assert!(wb.module_area.mm2() > fc.module_area.mm2());
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate exposes every sub-crate under a stable name.
    let _ = integrated_passives::units::Money::new(1.0);
    let _ = integrated_passives::moe::SimOptions::new(1);
    let _ = integrated_passives::passives::SmdSize::I0603;
    let _ = integrated_passives::rf::Complex::I;
    let _ = integrated_passives::layout::BgaLaminate::standard();
    let _ = integrated_passives::core::FomWeights::unweighted();
    let _ = integrated_passives::gps::paper::FIG6_FOM;
}
