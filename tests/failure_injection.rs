//! Failure-injection tests: every error path of the public API fires
//! with an informative error instead of a wrong answer.

use integrated_passives::core::{BomItem, BuildUp, PlanError, Realization, SelectionObjective};
use integrated_passives::moe::{
    CostCategory, FailAction, Flow, FlowError, Line, Part, Process, SimOptions, StepCost, Test,
    YieldModel,
};
use integrated_passives::passives::{
    MimCapacitor, SpiralInductor, SynthesisError, ThinFilmProcess, ThinFilmResistor,
};
use integrated_passives::rf::FilterSpec;
use integrated_passives::units::{
    Area, Capacitance, Frequency, Inductance, Money, Probability, Resistance,
};

#[test]
fn dead_process_line_reports_nothing_shipped() {
    let line = Line::builder("dead", Part::new("c", CostCategory::Substrate))
        .process(Process::new("kill").with_yield(YieldModel::flat(Probability::ZERO)))
        .test(Test::new("t"))
        .build()
        .unwrap();
    let flow = Flow::new(line);
    assert!(matches!(
        flow.analyze(),
        Err(FlowError::NothingShipped { .. })
    ));
    assert!(matches!(
        flow.simulate(&SimOptions::new(100)),
        Err(FlowError::NothingShipped { .. })
    ));
}

#[test]
fn zero_coverage_ships_defects_instead_of_catching_them() {
    // Coverage 0: the test is a pure cost adder; every defect escapes.
    let line = Line::builder(
        "blind",
        Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(1.0))),
    )
    .process(Process::new("p").with_yield(YieldModel::percent(80.0)))
    .test(
        Test::new("blind test")
            .with_coverage(Probability::ZERO)
            .on_fail(FailAction::Scrap),
    )
    .build()
    .unwrap();
    let report = Flow::new(line).analyze().unwrap();
    assert!((report.shipped_fraction() - 1.0).abs() < 1e-12);
    assert!((report.escape_rate() - 0.2).abs() < 1e-12);
    assert_eq!(report.scrap_spend(), Money::ZERO);
}

#[test]
fn rework_that_never_succeeds_degenerates_to_scrap() {
    use integrated_passives::moe::Rework;
    let build = |action: FailAction| {
        let line = Line::builder(
            "r",
            Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(5.0))),
        )
        .process(Process::new("p").with_yield(YieldModel::percent(70.0)))
        .test(Test::new("t").on_fail(action))
        .build()
        .unwrap();
        Flow::new(line).analyze().unwrap()
    };
    let scrap = build(FailAction::Scrap);
    let futile = build(FailAction::Rework(Rework::new(
        StepCost::ZERO,
        Probability::ZERO,
        3,
    )));
    // Same shipped fraction; the futile rework only burns attempts.
    assert!((scrap.shipped_fraction() - futile.shipped_fraction()).abs() < 1e-12);
}

#[test]
fn plan_errors_name_the_culprit() {
    let orphan = BomItem::passive("mystery blob", 3);
    let err = BuildUp::pcb_reference()
        .plan(&[orphan], SelectionObjective::MinArea)
        .unwrap_err();
    match err {
        PlanError::NoFeasibleRealization { item, buildup } => {
            assert_eq!(item, "mystery blob");
            assert!(buildup.contains("PCB"));
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn die_without_flip_chip_variant_blocks_fc_buildups() {
    let wb_only = BomItem::die("old ASIC")
        .with_packaged(Realization::new(Area::from_mm2(100.0), Money::new(5.0)))
        .with_wire_bond(Realization::new(Area::from_mm2(25.0), Money::new(4.0)).with_bonds(40));
    assert!(
        BuildUp::mcm_wire_bond(integrated_passives::core::PassivePolicy::AllSmd)
            .plan(std::slice::from_ref(&wb_only), SelectionObjective::MinArea)
            .is_ok()
    );
    assert!(matches!(
        BuildUp::mcm_flip_chip(integrated_passives::core::PassivePolicy::AllSmd)
            .plan(&[wb_only], SelectionObjective::MinArea),
        Err(PlanError::NoFeasibleRealization { .. })
    ));
}

#[test]
fn synthesis_rejects_unbuildable_components() {
    let process = ThinFilmProcess::summit_mcm_d();
    for err in [
        ThinFilmResistor::synthesize(Resistance::new(-5.0), &process).unwrap_err(),
        ThinFilmResistor::synthesize(Resistance::from_mega(500.0), &process).unwrap_err(),
        MimCapacitor::synthesize(Capacitance::from_micro(10.0), &process).unwrap_err(),
        SpiralInductor::synthesize(Inductance::from_micro(100.0), &process).unwrap_err(),
    ] {
        assert!(matches!(
            err,
            SynthesisError::OutOfRange { .. } | SynthesisError::NonPositiveValue { .. }
        ));
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn spec_scoring_handles_total_rejection() {
    // A spec evaluated against a network that blocks the passband
    // entirely: score collapses toward zero but stays finite.
    use integrated_passives::rf::{Branch, Immittance, Ladder, Loss};
    let blocker = Ladder::new(
        vec![Branch::Series(Immittance::capacitor(
            Capacitance::from_pico(0.001),
            Loss::Ideal,
        ))],
        50.0,
        50.0,
    );
    let spec = FilterSpec::new("through", Frequency::from_mega(1.0), 3.0);
    let report = spec.evaluate(&blocker);
    assert!(!report.meets_spec());
    let score = report.performance_score();
    assert!(score > 0.0 && score < 0.1, "score {score}");
}

#[test]
fn monte_carlo_rejects_zero_units() {
    let line = Line::builder("x", Part::new("c", CostCategory::Substrate))
        .process(Process::new("p"))
        .build()
        .unwrap();
    assert!(matches!(
        Flow::new(line).simulate(&SimOptions::new(0)),
        Err(FlowError::NoUnits)
    ));
}
