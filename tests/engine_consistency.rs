//! Cross-engine and reproducibility guarantees of the MOE cost model on
//! the real GPS flows.

use integrated_passives::core::{BuildUp, SelectionObjective};
use integrated_passives::gps::{bom::gps_bom, table2::cost_inputs};
use integrated_passives::moe::{Flow, SimOptions};

fn gps_flow(index: usize) -> Flow {
    let buildup = BuildUp::paper_solutions()[index];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    plan.production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap()
}

#[test]
fn monte_carlo_converges_to_analytic_on_every_solution() {
    for i in 0..4 {
        let flow = gps_flow(i);
        let analytic = flow.analyze().unwrap();
        let mc = flow
            .simulate(&SimOptions::new(150_000).with_seed(99))
            .unwrap();
        let rel = mc.final_cost_per_shipped() / analytic.final_cost_per_shipped();
        assert!(
            (rel - 1.0).abs() < 0.01,
            "solution {}: MC/analytic = {rel}",
            i + 1
        );
        assert!(
            (mc.shipped_fraction() - analytic.shipped_fraction()).abs() < 0.005,
            "solution {}: shipped {} vs {}",
            i + 1,
            mc.shipped_fraction(),
            analytic.shipped_fraction()
        );
    }
}

#[test]
fn seeded_simulation_is_deterministic() {
    let flow = gps_flow(1);
    let opts = SimOptions::new(30_000).with_seed(123);
    let a = flow.simulate(&opts).unwrap();
    let b = flow.simulate(&opts).unwrap();
    assert_eq!(a, b);
}

#[test]
fn threaded_simulation_partitions_exactly() {
    let flow = gps_flow(3);
    let single = flow
        .simulate_summary(&SimOptions::new(40_000).with_seed(5))
        .unwrap();
    let multi = flow
        .simulate_summary(&SimOptions::new(40_000).with_seed(5).with_threads(4))
        .unwrap();
    // Unit conservation holds in both.
    assert!((single.report.shipped() + single.scrapped - 40_000.0).abs() < 0.5);
    assert!((multi.report.shipped() + multi.scrapped - 40_000.0).abs() < 0.5);
    // Statistically equivalent results (different RNG streams).
    let rel = multi.report.final_cost_per_shipped() / single.report.final_cost_per_shipped();
    assert!((rel - 1.0).abs() < 0.02, "threaded rel {rel}");
}

#[test]
fn escapes_are_bounded_by_coverage() {
    // Fault coverage 99 % caps escapes at ~1 % of the defective stream.
    for i in 0..4 {
        let report = gps_flow(i).analyze().unwrap();
        assert!(
            report.escape_rate() < 0.01,
            "solution {}: escape rate {}",
            i + 1,
            report.escape_rate()
        );
    }
}

#[test]
fn defect_pareto_blames_the_right_stages() {
    // Solution 2: the untested RF die (5 % fallout) dominates the pareto.
    let report = gps_flow(1).analyze().unwrap();
    let pareto = report.defect_pareto();
    assert!(!pareto.is_empty());
    assert!(
        pareto[0].0.contains("RF chip"),
        "top defect source is {}",
        pareto[0].0
    );
    // Solution 3: the 90 % substrate takes over.
    let report = gps_flow(2).analyze().unwrap();
    assert!(
        report.defect_pareto()[0].0.contains("substrate"),
        "top defect source is {}",
        report.defect_pareto()[0].0
    );
}

#[test]
fn eq1_accounting_identity() {
    // direct + yield loss = total spend per shipped, on both engines.
    for i in 0..4 {
        let flow = gps_flow(i);
        for report in [
            flow.analyze().unwrap(),
            flow.simulate(&SimOptions::new(50_000).with_seed(8))
                .unwrap(),
        ] {
            let lhs = report.direct_cost_per_shipped() + report.yield_loss_per_shipped();
            let rhs = report.total_spend() / report.shipped();
            assert!(
                (lhs.units() - rhs.units()).abs() < 1e-6,
                "solution {}: {lhs} vs {rhs}",
                i + 1
            );
        }
    }
}
