//! Newtype quantities for the electrical and economic dimensions used by
//! the methodology.

use crate::si::{format_engineering, parse_engineering};
use crate::ParseQuantityError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:expr, $base:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Create from the base unit.
            ///
            /// # Panics
            ///
            /// Panics on NaN; quantities must always be comparable.
            pub fn new(value: f64) -> $name {
                assert!(!value.is_nan(), concat!(stringify!($name), " must not be NaN"));
                $name(value)
            }

            /// The value in the base unit.
            pub fn $base(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// The larger of two quantities.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Linear interpolation: `self + t * (other - self)`.
            pub fn lerp(self, other: $name, t: f64) -> $name {
                $name::new(self.0 + t * (other.0 - self.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name::new(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name::new(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                *self = *self - rhs;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name::new(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name::new(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name::new(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&format_engineering(self.0, $unit))
            }
        }

        impl FromStr for $name {
            type Err = ParseQuantityError;

            fn from_str(s: &str) -> Result<$name, ParseQuantityError> {
                parse_engineering(s, $unit).map($name::new)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity! {
    /// Electrical resistance in ohms.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_units::Resistance;
    ///
    /// let r: Resistance = "100 kΩ".parse()?;
    /// assert_eq!(r, Resistance::from_kilo(100.0));
    /// assert_eq!(r.to_string(), "100 kΩ");
    /// # Ok::<(), ipass_units::ParseQuantityError>(())
    /// ```
    Resistance, "Ω", ohms
}

quantity! {
    /// Electrical capacitance in farads.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_units::Capacitance;
    ///
    /// let c = Capacitance::from_pico(50.0);
    /// assert_eq!(c.to_string(), "50 pF");
    /// ```
    Capacitance, "F", farads
}

quantity! {
    /// Electrical inductance in henries.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_units::Inductance;
    ///
    /// let l = Inductance::from_nano(40.0);
    /// assert_eq!(l.to_string(), "40 nH");
    /// ```
    Inductance, "H", henries
}

quantity! {
    /// Frequency in hertz.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_units::Frequency;
    ///
    /// let f = Frequency::from_mega(175.0);
    /// assert!((f.angular() - 2.0 * std::f64::consts::PI * 175e6).abs() < 1.0);
    /// ```
    Frequency, "Hz", hertz
}

impl Resistance {
    /// Create from kilohms.
    pub fn from_kilo(kohms: f64) -> Resistance {
        Resistance::new(kohms * 1e3)
    }

    /// Create from megohms.
    pub fn from_mega(mohms: f64) -> Resistance {
        Resistance::new(mohms * 1e6)
    }

    /// Create from milliohms.
    pub fn from_milli(milliohms: f64) -> Resistance {
        Resistance::new(milliohms * 1e-3)
    }
}

impl Capacitance {
    /// Create from picofarads.
    pub fn from_pico(pf: f64) -> Capacitance {
        Capacitance::new(pf * 1e-12)
    }

    /// Create from nanofarads.
    pub fn from_nano(nf: f64) -> Capacitance {
        Capacitance::new(nf * 1e-9)
    }

    /// Create from microfarads.
    pub fn from_micro(uf: f64) -> Capacitance {
        Capacitance::new(uf * 1e-6)
    }

    /// The value in picofarads.
    pub fn picofarads(self) -> f64 {
        self.farads() * 1e12
    }

    /// The value in nanofarads.
    pub fn nanofarads(self) -> f64 {
        self.farads() * 1e9
    }
}

impl Inductance {
    /// Create from nanohenries.
    pub fn from_nano(nh: f64) -> Inductance {
        Inductance::new(nh * 1e-9)
    }

    /// Create from microhenries.
    pub fn from_micro(uh: f64) -> Inductance {
        Inductance::new(uh * 1e-6)
    }

    /// The value in nanohenries.
    pub fn nanohenries(self) -> f64 {
        self.henries() * 1e9
    }
}

impl Frequency {
    /// Create from kilohertz.
    pub fn from_kilo(khz: f64) -> Frequency {
        Frequency::new(khz * 1e3)
    }

    /// Create from megahertz.
    pub fn from_mega(mhz: f64) -> Frequency {
        Frequency::new(mhz * 1e6)
    }

    /// Create from gigahertz.
    pub fn from_giga(ghz: f64) -> Frequency {
        Frequency::new(ghz * 1e9)
    }

    /// The angular frequency `ω = 2πf` in rad/s.
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.hertz()
    }

    /// The value in megahertz.
    pub fn megahertz(self) -> f64 {
        self.hertz() * 1e-6
    }

    /// The value in gigahertz.
    pub fn gigahertz(self) -> f64 {
        self.hertz() * 1e-9
    }
}

/// A surface area, stored in mm² (the natural unit of Table 1).
///
/// # Examples
///
/// ```
/// use ipass_units::Area;
///
/// let rf_chip = Area::from_mm2(225.0);
/// let dsp = Area::from_mm2(1165.0);
/// let total = rf_chip + dsp;
/// assert!((total.cm2() - 13.9).abs() < 1e-9);
/// assert_eq!(format!("{total}"), "1390.0 mm²");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Area(f64);

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area(0.0);

    /// Create from square millimetres.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values — a negative area is always a
    /// logic error.
    pub fn from_mm2(mm2: f64) -> Area {
        assert!(
            !mm2.is_nan() && mm2 >= 0.0,
            "area must be non-negative, got {mm2}"
        );
        Area(mm2)
    }

    /// Create from square centimetres.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values.
    pub fn from_cm2(cm2: f64) -> Area {
        Area::from_mm2(cm2 * 100.0)
    }

    /// Create the area of a `w × h` mm rectangle.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative side lengths.
    pub fn rect_mm(w: f64, h: f64) -> Area {
        assert!(
            w >= 0.0 && h >= 0.0 && !w.is_nan() && !h.is_nan(),
            "rectangle sides must be non-negative, got {w} x {h}"
        );
        Area(w * h)
    }

    /// The value in mm².
    pub fn mm2(self) -> f64 {
        self.0
    }

    /// The value in cm².
    pub fn cm2(self) -> f64 {
        self.0 / 100.0
    }

    /// The side length (mm) of the square with this area.
    pub fn square_side_mm(self) -> f64 {
        self.0.sqrt()
    }

    /// The larger of two areas.
    pub fn max(self, other: Area) -> Area {
        Area(self.0.max(other.0))
    }

    /// The smaller of two areas.
    pub fn min(self, other: Area) -> Area {
        Area(self.0.min(other.0))
    }
}

impl Add for Area {
    type Output = Area;
    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Area;
    /// Saturating subtraction: areas cannot go negative.
    fn sub(self, rhs: Area) -> Area {
        Area((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Area {
    type Output = Area;
    fn mul(self, rhs: f64) -> Area {
        Area::from_mm2(self.0 * rhs)
    }
}

impl Mul<Area> for f64 {
    type Output = Area;
    fn mul(self, rhs: Area) -> Area {
        rhs * self
    }
}

impl Div<f64> for Area {
    type Output = Area;
    fn div(self, rhs: f64) -> Area {
        Area::from_mm2(self.0 / rhs)
    }
}

impl Div<Area> for Area {
    type Output = f64;
    fn div(self, rhs: Area) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, Add::add)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mm²", self.0)
    }
}

/// A monetary amount in abstract "cost units" (the paper never names a
/// currency; Table 2's numbers are relative).
///
/// # Examples
///
/// ```
/// use ipass_units::Money;
///
/// let substrate = Money::new(14.18);
/// let packaging = Money::new(7.30);
/// assert_eq!((substrate + packaging).to_string(), "21.48");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Money(f64);

impl Money {
    /// Zero cost.
    pub const ZERO: Money = Money(0.0);

    /// Create a monetary amount.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn new(units: f64) -> Money {
        assert!(!units.is_nan(), "money must not be NaN");
        Money(units)
    }

    /// The amount in cost units.
    pub fn units(self) -> f64 {
        self.0
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        Money(self.0.min(other.0))
    }

    /// Whether the amount is negative (useful for sanity checks on
    /// accounting identities).
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    fn mul(self, rhs: f64) -> Money {
        Money::new(self.0 * rhs)
    }
}

impl Mul<Money> for f64 {
    type Output = Money;
    fn mul(self, rhs: Money) -> Money {
        rhs * self
    }
}

impl Div<f64> for Money {
    type Output = Money;
    fn div(self, rhs: f64) -> Money {
        Money::new(self.0 / rhs)
    }
}

impl Div<Money> for Money {
    type Output = f64;
    fn div(self, rhs: Money) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantity_arithmetic() {
        let a = Resistance::new(100.0);
        let b = Resistance::new(50.0);
        assert_eq!((a + b).ohms(), 150.0);
        assert_eq!((a - b).ohms(), 50.0);
        assert_eq!((a * 2.0).ohms(), 200.0);
        assert_eq!((2.0 * a).ohms(), 200.0);
        assert_eq!((a / 2.0).ohms(), 50.0);
        assert_eq!(a / b, 2.0);
        assert_eq!((-a).ohms(), -100.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.lerp(b, 0.5).ohms(), 75.0);
    }

    #[test]
    fn quantity_sum() {
        let total: Resistance = (1..=4).map(|i| Resistance::new(i as f64)).sum();
        assert_eq!(total.ohms(), 10.0);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Resistance::from_kilo(100.0).ohms(), 100e3);
        assert_eq!(Resistance::from_mega(1.0).ohms(), 1e6);
        assert_eq!(Resistance::from_milli(5.0).ohms(), 5e-3);
        assert_eq!(Capacitance::from_pico(50.0).picofarads(), 50.0);
        assert!((Capacitance::from_nano(4.7).nanofarads() - 4.7).abs() < 1e-12);
        assert_eq!(Capacitance::from_micro(1.0).farads(), 1e-6);
        assert_eq!(Inductance::from_nano(40.0).nanohenries(), 40.0);
        assert_eq!(Inductance::from_micro(1.0).henries(), 1e-6);
        assert_eq!(Frequency::from_kilo(1.0).hertz(), 1e3);
        assert_eq!(Frequency::from_mega(175.0).megahertz(), 175.0);
        assert!((Frequency::from_giga(1.575).gigahertz() - 1.575).abs() < 1e-12);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Resistance::from_kilo(100.0).to_string(), "100 kΩ");
        assert_eq!(Capacitance::from_pico(50.0).to_string(), "50 pF");
        assert_eq!(Inductance::from_nano(40.0).to_string(), "40 nH");
        assert_eq!(Frequency::from_giga(1.575).to_string(), "1.575 GHz");
    }

    #[test]
    fn parse_roundtrip() {
        let r: Resistance = "360 Ω".parse().unwrap();
        assert_eq!(r.ohms(), 360.0);
        let c: Capacitance = "3.3nF".parse().unwrap();
        assert!((c.nanofarads() - 3.3).abs() < 1e-12);
        let f: Frequency = "1.575 GHz".parse().unwrap();
        assert!((f.gigahertz() - 1.575).abs() < 1e-12);
        assert!("".parse::<Resistance>().is_err());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Resistance::new(f64::NAN);
    }

    #[test]
    fn area_construction_and_units() {
        let a = Area::from_cm2(1.0);
        assert_eq!(a.mm2(), 100.0);
        assert_eq!(a.cm2(), 1.0);
        assert_eq!(Area::rect_mm(4.0, 2.5).mm2(), 10.0);
        assert_eq!(Area::from_mm2(25.0).square_side_mm(), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_area_rejected() {
        let _ = Area::from_mm2(-1.0);
    }

    #[test]
    fn area_subtraction_saturates() {
        let small = Area::from_mm2(1.0);
        let big = Area::from_mm2(2.0);
        assert_eq!((small - big).mm2(), 0.0);
        assert_eq!((big - small).mm2(), 1.0);
    }

    #[test]
    fn money_accounting() {
        let mut total = Money::ZERO;
        total += Money::new(10.0);
        total += Money::new(4.7);
        total -= Money::new(0.7);
        assert_eq!(total.units(), 14.0);
        assert!(!total.is_negative());
        assert!((Money::new(1.0) - Money::new(2.0)).is_negative());
        assert_eq!(Money::new(10.0) / Money::new(4.0), 2.5);
        assert_eq!(format!("{}", Money::new(104.7)), "104.70");
    }

    #[test]
    fn frequency_angular() {
        let w = Frequency::from_mega(1.0).angular();
        assert!((w - 2.0 * std::f64::consts::PI * 1e6).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn area_sum_is_monotonic(xs in proptest::collection::vec(0.0f64..1e5, 0..20)) {
            let mut acc = Area::ZERO;
            for &x in &xs {
                let next = acc + Area::from_mm2(x);
                prop_assert!(next.mm2() >= acc.mm2());
                acc = next;
            }
        }

        #[test]
        fn quantity_div_mul_roundtrip(v in -1e9f64..1e9, k in 0.001f64..1e3) {
            let q = Resistance::new(v);
            let back = (q * k) / k;
            prop_assert!((back.ohms() - v).abs() <= v.abs() * 1e-12 + 1e-12);
        }
    }
}
