//! SI-prefix engineering notation: formatting and parsing.

use crate::error::ParseQuantityError;
use std::fmt::Write as _;

/// An SI prefix covering the range used in electronics (`f` … `T`).
///
/// # Examples
///
/// ```
/// use ipass_units::SiPrefix;
///
/// assert_eq!(SiPrefix::for_value(4.7e-9), SiPrefix::Nano);
/// assert_eq!(SiPrefix::Nano.symbol(), "n");
/// assert_eq!(SiPrefix::Nano.factor(), 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SiPrefix {
    /// `f`, 10⁻¹⁵
    Femto,
    /// `p`, 10⁻¹²
    Pico,
    /// `n`, 10⁻⁹
    Nano,
    /// `µ` (accepted as `u` on input), 10⁻⁶
    Micro,
    /// `m`, 10⁻³
    Milli,
    /// no prefix, 10⁰
    None,
    /// `k`, 10³
    Kilo,
    /// `M`, 10⁶
    Mega,
    /// `G`, 10⁹
    Giga,
    /// `T`, 10¹²
    Tera,
}

impl SiPrefix {
    /// All prefixes in ascending order of magnitude.
    pub const ALL: [SiPrefix; 10] = [
        SiPrefix::Femto,
        SiPrefix::Pico,
        SiPrefix::Nano,
        SiPrefix::Micro,
        SiPrefix::Milli,
        SiPrefix::None,
        SiPrefix::Kilo,
        SiPrefix::Mega,
        SiPrefix::Giga,
        SiPrefix::Tera,
    ];

    /// The multiplier this prefix denotes (e.g. `1e-9` for [`SiPrefix::Nano`]).
    pub fn factor(self) -> f64 {
        match self {
            SiPrefix::Femto => 1e-15,
            SiPrefix::Pico => 1e-12,
            SiPrefix::Nano => 1e-9,
            SiPrefix::Micro => 1e-6,
            SiPrefix::Milli => 1e-3,
            SiPrefix::None => 1.0,
            SiPrefix::Kilo => 1e3,
            SiPrefix::Mega => 1e6,
            SiPrefix::Giga => 1e9,
            SiPrefix::Tera => 1e12,
        }
    }

    /// The printed symbol (empty string for [`SiPrefix::None`]).
    pub fn symbol(self) -> &'static str {
        match self {
            SiPrefix::Femto => "f",
            SiPrefix::Pico => "p",
            SiPrefix::Nano => "n",
            SiPrefix::Micro => "µ",
            SiPrefix::Milli => "m",
            SiPrefix::None => "",
            SiPrefix::Kilo => "k",
            SiPrefix::Mega => "M",
            SiPrefix::Giga => "G",
            SiPrefix::Tera => "T",
        }
    }

    /// Parse a prefix symbol. Accepts `u` as an ASCII alias for `µ`.
    pub fn from_symbol(s: &str) -> Option<SiPrefix> {
        Some(match s {
            "f" => SiPrefix::Femto,
            "p" => SiPrefix::Pico,
            "n" => SiPrefix::Nano,
            "µ" | "u" => SiPrefix::Micro,
            "m" => SiPrefix::Milli,
            "" => SiPrefix::None,
            "k" | "K" => SiPrefix::Kilo,
            "M" => SiPrefix::Mega,
            "G" => SiPrefix::Giga,
            "T" => SiPrefix::Tera,
            _ => return None,
        })
    }

    /// The prefix that renders `value` with a mantissa in `[1, 1000)`.
    ///
    /// Zero, NaN and infinities map to [`SiPrefix::None`]; values outside
    /// the covered range saturate at [`SiPrefix::Femto`] / [`SiPrefix::Tera`].
    pub fn for_value(value: f64) -> SiPrefix {
        let mag = value.abs();
        if !mag.is_finite() || mag == 0.0 {
            return SiPrefix::None;
        }
        let mut best = SiPrefix::Femto;
        for p in SiPrefix::ALL {
            if mag >= p.factor() {
                best = p;
            }
        }
        best
    }
}

/// Format `value` in engineering notation with the given `unit` suffix.
///
/// The mantissa is rounded to at most three decimal places and trailing
/// zeros are trimmed, which matches data-sheet conventions (`4.7 nF`,
/// `1.575 GHz`, `225 mm²` are printed without spurious digits).
///
/// # Examples
///
/// ```
/// use ipass_units::format_engineering;
///
/// assert_eq!(format_engineering(4.7e-9, "F"), "4.7 nF");
/// assert_eq!(format_engineering(0.0, "Ω"), "0 Ω");
/// assert_eq!(format_engineering(-50e-12, "F"), "-50 pF");
/// ```
pub fn format_engineering(value: f64, unit: &str) -> String {
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    let prefix = SiPrefix::for_value(value);
    let mantissa = value / prefix.factor();
    // Round to 3 decimals, then trim trailing zeros.
    let mut s = format!("{mantissa:.3}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    let mut out = s;
    out.push(' ');
    let _ = write!(out, "{}{}", prefix.symbol(), unit);
    out
}

/// Parse engineering notation such as `"4.7nF"`, `"1.575 GHz"` or `"200"`.
///
/// The expected `unit` suffix (e.g. `"F"`, `"Hz"`, `"Ω"`) is optional in
/// the input; when present it must match. An SI prefix may precede it.
///
/// # Errors
///
/// Returns [`ParseQuantityError`] when the mantissa is not a number, the
/// prefix is unknown, or the unit suffix does not match.
///
/// # Examples
///
/// ```
/// use ipass_units::parse_engineering;
///
/// assert!((parse_engineering("4.7nF", "F").unwrap() - 4.7e-9).abs() < 1e-18);
/// assert_eq!(parse_engineering("1.575 GHz", "Hz").unwrap(), 1.575e9);
/// assert_eq!(parse_engineering("200", "Ω").unwrap(), 200.0);
/// assert!(parse_engineering("4.7xF", "F").is_err());
/// ```
pub fn parse_engineering(input: &str, unit: &str) -> Result<f64, ParseQuantityError> {
    let s = input.trim();
    if s.is_empty() {
        return Err(ParseQuantityError::empty(input));
    }
    // Split the numeric head from the symbolic tail.
    let split = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || matches!(c, '.' | '+' | '-' | 'e' | 'E')))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    // `1e3` style exponents swallow a trailing sign; be permissive and let
    // f64::parse decide what is numeric.
    let (mut head, mut tail) = s.split_at(split);
    // `1E6` would split before `E`? No: E is allowed in the head, but a bare
    // prefix like `1.5k` splits correctly. However `1e` followed by unit is
    // ambiguous; handle by retry below.
    let mut mantissa: Result<f64, _> = head.parse();
    if mantissa.is_err() && head.ends_with(['e', 'E']) {
        head = &head[..head.len() - 1];
        tail = &s[head.len()..];
        mantissa = head.parse();
    }
    let mantissa = mantissa.map_err(|_| ParseQuantityError::bad_number(input))?;
    let tail = tail.trim();
    let tail = match tail.strip_suffix(unit) {
        Some(rest) => rest.trim(),
        None if tail.is_empty() => "",
        None => tail, // maybe the remainder is just a prefix with no unit
    };
    let prefix =
        SiPrefix::from_symbol(tail).ok_or_else(|| ParseQuantityError::bad_prefix(input))?;
    Ok(mantissa * prefix.factor())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_roundtrip() {
        for p in SiPrefix::ALL {
            if p == SiPrefix::None {
                continue;
            }
            assert_eq!(SiPrefix::from_symbol(p.symbol()), Some(p));
        }
    }

    #[test]
    fn prefix_selection_covers_boundaries() {
        assert_eq!(SiPrefix::for_value(999.0), SiPrefix::None);
        assert_eq!(SiPrefix::for_value(1000.0), SiPrefix::Kilo);
        assert_eq!(SiPrefix::for_value(1e-3), SiPrefix::Milli);
        assert_eq!(SiPrefix::for_value(9.9e-4), SiPrefix::Micro);
        assert_eq!(SiPrefix::for_value(0.0), SiPrefix::None);
        assert_eq!(SiPrefix::for_value(1e30), SiPrefix::Tera);
        assert_eq!(SiPrefix::for_value(1e-30), SiPrefix::Femto);
    }

    #[test]
    fn formats_common_component_values() {
        assert_eq!(format_engineering(100e3, "Ω"), "100 kΩ");
        assert_eq!(format_engineering(50e-12, "F"), "50 pF");
        assert_eq!(format_engineering(40e-9, "H"), "40 nH");
        assert_eq!(format_engineering(175e6, "Hz"), "175 MHz");
        assert_eq!(format_engineering(1.575e9, "Hz"), "1.575 GHz");
    }

    #[test]
    fn formats_trim_trailing_zeros() {
        assert_eq!(format_engineering(1.5e3, "Ω"), "1.5 kΩ");
        assert_eq!(format_engineering(2.0, "Ω"), "2 Ω");
        assert_eq!(format_engineering(1.234_56e3, "Ω"), "1.235 kΩ");
    }

    #[test]
    fn formats_nonfinite() {
        assert_eq!(format_engineering(f64::INFINITY, "Ω"), "inf Ω");
    }

    #[test]
    fn parses_with_and_without_unit() {
        assert_eq!(parse_engineering("100k", "Ω").unwrap(), 100e3);
        assert_eq!(parse_engineering("100 kΩ", "Ω").unwrap(), 100e3);
        assert_eq!(parse_engineering("0.5", "F").unwrap(), 0.5);
        assert_eq!(parse_engineering("3u", "F").unwrap(), 3e-6);
        assert_eq!(parse_engineering("3µF", "F").unwrap(), 3e-6);
    }

    #[test]
    fn parses_scientific_mantissa() {
        assert_eq!(parse_engineering("1e3", "Hz").unwrap(), 1e3);
        assert_eq!(parse_engineering("1.5e-9 F", "F").unwrap(), 1.5e-9);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_engineering("", "F").is_err());
        assert!(parse_engineering("abc", "F").is_err());
        assert!(parse_engineering("1.5 qF", "F").is_err());
        assert!(parse_engineering("1.5 kV", "F").is_err());
    }

    #[test]
    fn format_parse_roundtrip() {
        for &v in &[4.7e-9, 1.575e9, 100e3, 0.25, 360.0, 2.2e-12] {
            let s = format_engineering(v, "X");
            let back = parse_engineering(&s, "X").unwrap();
            assert!(
                (back - v).abs() <= v.abs() * 5e-4 + 1e-18,
                "{v} -> {s} -> {back}"
            );
        }
    }
}
