//! Error types for quantity parsing and probability construction.

use std::error::Error;
use std::fmt;

/// Error returned when parsing an engineering-notation quantity fails.
///
/// # Examples
///
/// ```
/// use ipass_units::parse_engineering;
///
/// let err = parse_engineering("1.5 qF", "F").unwrap_err();
/// assert!(err.to_string().contains("1.5 qF"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQuantityError {
    input: String,
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    BadNumber,
    BadPrefix,
}

impl ParseQuantityError {
    pub(crate) fn empty(input: &str) -> Self {
        ParseQuantityError {
            input: input.to_owned(),
            kind: ParseErrorKind::Empty,
        }
    }

    pub(crate) fn bad_number(input: &str) -> Self {
        ParseQuantityError {
            input: input.to_owned(),
            kind: ParseErrorKind::BadNumber,
        }
    }

    pub(crate) fn bad_prefix(input: &str) -> Self {
        ParseQuantityError {
            input: input.to_owned(),
            kind: ParseErrorKind::BadPrefix,
        }
    }

    /// The input string that failed to parse.
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseQuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty quantity string {:?}", self.input),
            ParseErrorKind::BadNumber => {
                write!(f, "invalid number in quantity {:?}", self.input)
            }
            ParseErrorKind::BadPrefix => {
                write!(f, "unknown SI prefix or unit in quantity {:?}", self.input)
            }
        }
    }
}

impl Error for ParseQuantityError {}

/// Error returned when constructing a [`Probability`] from a value outside
/// `[0, 1]` or from a non-finite number.
///
/// [`Probability`]: crate::Probability
///
/// # Examples
///
/// ```
/// use ipass_units::Probability;
///
/// let err = Probability::new(1.5).unwrap_err();
/// assert!(err.to_string().contains("1.5"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError {
    value: f64,
}

impl ProbabilityError {
    pub(crate) fn new(value: f64) -> Self {
        ProbabilityError { value }
    }

    /// The offending value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probability must be a finite value in [0, 1], got {}",
            self.value
        )
    }
}

impl Error for ProbabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ParseQuantityError::bad_prefix("1 q");
        let msg = e.to_string();
        assert!(msg.starts_with("unknown"));
        assert!(msg.contains("1 q"));
        assert_eq!(e.input(), "1 q");

        let p = ProbabilityError::new(-0.5);
        assert!(p.to_string().contains("-0.5"));
        assert_eq!(p.value(), -0.5);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseQuantityError>();
        assert_send_sync::<ProbabilityError>();
    }
}
