//! Physical quantities and probability types shared by the
//! integrated-passives workspace.
//!
//! The crate provides thin `f64` newtypes for the handful of physical
//! dimensions the cost/size/performance methodology manipulates —
//! resistance, capacitance, inductance, frequency, area, money — plus a
//! validated [`Probability`] type with the yield algebra used by the
//! production-flow cost model, and engineering-notation formatting/parsing
//! (`4.7 nF`, `360 Ω/sq`, `1.575 GHz`).
//!
//! Newtypes are deliberately lightweight (C-NEWTYPE): they exist so a
//! capacitance cannot be passed where an inductance is expected, not to
//! build a full dimensional-analysis tower. Arithmetic that stays within a
//! dimension (`+`, `-`, scaling by `f64`) is provided; cross-dimension
//! products go through explicit named methods (e.g.
//! [`Frequency::angular`]).
//!
//! # Examples
//!
//! ```
//! use ipass_units::{Capacitance, Frequency, Probability};
//!
//! let c = Capacitance::from_nano(4.7);
//! assert_eq!(format!("{c}"), "4.7 nF");
//!
//! let f = Frequency::from_giga(1.575);
//! assert!((f.hertz() - 1.575e9).abs() < 1.0);
//!
//! // Yield algebra: ten placements at 99.99 % each.
//! let step = Probability::new(0.9999).unwrap();
//! let overall = step.powi(10);
//! assert!((overall.value() - 0.9999f64.powi(10)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod db;
mod error;
mod prob;
mod quantity;
mod si;

pub use db::{db_to_power_ratio, db_to_voltage_ratio, power_ratio_to_db, voltage_ratio_to_db};
pub use error::{ParseQuantityError, ProbabilityError};
pub use prob::Probability;
pub use quantity::{Area, Capacitance, Frequency, Inductance, Money, Resistance};
pub use si::{format_engineering, parse_engineering, SiPrefix};
