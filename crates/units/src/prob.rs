//! A validated probability type with the yield algebra used throughout the
//! cost model.

use crate::error::ProbabilityError;
use std::fmt;
use std::iter::Product;
use std::ops::Mul;

/// A probability (or manufacturing yield) guaranteed to lie in `[0, 1]`.
///
/// Yields compose multiplicatively: a module survives a process chain when
/// every step succeeds, so the chain yield is the product of the step
/// yields. `Probability` implements [`Mul`] and [`Product`] for exactly
/// this composition, plus helpers for per-item repetition ([`powi`]) and
/// complements ([`complement`]).
///
/// [`powi`]: Probability::powi
/// [`complement`]: Probability::complement
///
/// # Examples
///
/// ```
/// use ipass_units::Probability;
///
/// let die = Probability::new(0.95)?;
/// let attach = Probability::new(0.99)?;
/// let chain = die * attach;
/// assert!((chain.value() - 0.9405).abs() < 1e-12);
///
/// // 212 wire bonds at 99.99 % each:
/// let bonds = Probability::new(0.9999)?.powi(212);
/// assert!((bonds.value() - 0.9999f64.powi(212)).abs() < 1e-12);
/// # Ok::<(), ipass_units::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

impl Probability {
    /// Certain success (yield 1).
    pub const ONE: Probability = Probability(1.0);
    /// Certain failure (yield 0).
    pub const ZERO: Probability = Probability(0.0);

    /// Create a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] when `value` is not finite or lies
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Probability, ProbabilityError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(ProbabilityError::new(value))
        }
    }

    /// Create a probability from a percentage (e.g. `99.9` → `0.999`).
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] when the percentage is not finite or
    /// lies outside `[0, 100]`.
    pub fn from_percent(percent: f64) -> Result<Probability, ProbabilityError> {
        Probability::new(percent / 100.0)
    }

    /// Create a probability, clamping out-of-range finite values into
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN probability is always a logic
    /// error, not a rounding artifact.
    pub fn clamped(value: f64) -> Probability {
        assert!(!value.is_nan(), "probability must not be NaN");
        Probability(value.clamp(0.0, 1.0))
    }

    /// The underlying value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The value expressed as a percentage in `[0, 100]`.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `1 − p`: the probability of the complementary event (e.g. the
    /// defect rate of a yield).
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// `pⁿ`: the yield of `n` independent repetitions (per-bond, per-SMD
    /// placements). `powi(0)` is [`Probability::ONE`].
    ///
    /// Exponents beyond `i32::MAX` (which `f64::powi` cannot represent)
    /// fall back to `powf` — without this, `n as i32` would wrap to a
    /// *negative* exponent and silently clamp `pⁿ` to 1 instead of
    /// letting it tend to 0.
    pub fn powi(self, n: u32) -> Probability {
        match i32::try_from(n) {
            Ok(n) => Probability::clamped(self.0.powi(n)),
            Err(_) => Probability::clamped(self.0.powf(f64::from(n))),
        }
    }

    /// `p^x` for a real exponent `x ≥ 0` — used by per-area yield models
    /// (`yield_per_cm² ^ area_cm²`).
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is negative or NaN.
    pub fn powf(self, exponent: f64) -> Probability {
        assert!(
            exponent >= 0.0,
            "yield exponent must be non-negative, got {exponent}"
        );
        Probability::clamped(self.0.powf(exponent))
    }

    /// Whether this probability is exactly 1.
    pub fn is_certain(self) -> bool {
        self.0 == 1.0
    }

    /// Whether this probability is exactly 0.
    pub fn is_never(self) -> bool {
        self.0 == 0.0
    }
}

impl Mul for Probability {
    type Output = Probability;

    fn mul(self, rhs: Probability) -> Probability {
        Probability::clamped(self.0 * rhs.0)
    }
}

impl Product for Probability {
    fn product<I: Iterator<Item = Probability>>(iter: I) -> Probability {
        iter.fold(Probability::ONE, |acc, p| acc * p)
    }
}

impl fmt::Display for Probability {
    /// Displays as a percentage, matching how the paper quotes yields.
    ///
    /// ```
    /// use ipass_units::Probability;
    /// assert_eq!(Probability::new(0.933).unwrap().to_string(), "93.30%");
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates_range() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.001).is_err());
        assert!(Probability::new(1.001).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn from_percent_matches_table_values() {
        let y = Probability::from_percent(99.99).unwrap();
        assert!((y.value() - 0.9999).abs() < 1e-12);
        assert!(Probability::from_percent(100.1).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Probability::clamped(1.5), Probability::ONE);
        assert_eq!(Probability::clamped(-0.5), Probability::ZERO);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn complement_roundtrips() {
        let p = Probability::new(0.933).unwrap();
        assert!((p.complement().complement().value() - 0.933).abs() < 1e-15);
    }

    #[test]
    fn product_of_chain() {
        let chain: Probability = [0.95, 0.99, 0.968]
            .iter()
            .map(|&v| Probability::new(v).unwrap())
            .product();
        assert!((chain.value() - 0.95 * 0.99 * 0.968).abs() < 1e-12);
    }

    #[test]
    fn powi_zero_is_one() {
        assert!(Probability::new(0.5).unwrap().powi(0).is_certain());
    }

    #[test]
    fn powi_beyond_i32_max_tends_to_zero_not_one() {
        // Regression: `n as i32` used to wrap huge exponents negative,
        // so p^n clamped to 1.0 instead of underflowing toward 0.
        let p = Probability::new(0.5).unwrap();
        assert_eq!(p.powi(u32::MAX).value(), 0.0);
        assert_eq!(p.powi(i32::MAX as u32 + 1).value(), 0.0);
        // A certain yield stays certain for any repetition count.
        assert!(Probability::ONE.powi(u32::MAX).is_certain());
        // Just inside the i32 range still goes through exact powi.
        let tiny = Probability::new(0.999_999_999)
            .unwrap()
            .powi(i32::MAX as u32);
        assert!((0.0..1.0).contains(&tiny.value()));
    }

    #[test]
    fn powf_per_area_yield() {
        // 99 % per cm² over 8.1 cm².
        let y = Probability::new(0.99).unwrap().powf(8.1);
        assert!((y.value() - 0.99f64.powf(8.1)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn powf_rejects_negative_exponent() {
        let _ = Probability::new(0.99).unwrap().powf(-1.0);
    }

    #[test]
    fn display_is_percent() {
        assert_eq!(Probability::new(0.999).unwrap().to_string(), "99.90%");
    }

    proptest! {
        #[test]
        fn mul_stays_in_range(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let p = Probability::new(a).unwrap() * Probability::new(b).unwrap();
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }

        #[test]
        fn mul_is_commutative(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let pa = Probability::new(a).unwrap();
            let pb = Probability::new(b).unwrap();
            prop_assert_eq!((pa * pb).value(), (pb * pa).value());
        }

        #[test]
        fn powi_matches_repeated_mul(a in 0.0f64..=1.0, n in 0u32..12) {
            let p = Probability::new(a).unwrap();
            let by_pow = p.powi(n);
            let by_mul: Probability = std::iter::repeat_n(p, n as usize).product();
            prop_assert!((by_pow.value() - by_mul.value()).abs() < 1e-12);
        }

        #[test]
        fn complement_is_involutive(a in 0.0f64..=1.0) {
            let p = Probability::new(a).unwrap();
            prop_assert!((p.complement().complement().value() - a).abs() < 1e-15);
        }
    }
}
