//! Decibel conversions for insertion-loss and rejection bookkeeping.

/// Convert a power ratio to decibels: `10·log₁₀(ratio)`.
///
/// # Panics
///
/// Panics if `ratio` is negative or NaN. A zero ratio yields `-inf`,
/// which is the correct limit for total rejection.
///
/// # Examples
///
/// ```
/// use ipass_units::power_ratio_to_db;
///
/// assert!((power_ratio_to_db(0.5) - (-3.0103)).abs() < 1e-4);
/// assert_eq!(power_ratio_to_db(1.0), 0.0);
/// ```
pub fn power_ratio_to_db(ratio: f64) -> f64 {
    assert!(
        ratio >= 0.0 && !ratio.is_nan(),
        "power ratio must be non-negative, got {ratio}"
    );
    10.0 * ratio.log10()
}

/// Convert decibels to a power ratio: `10^(db/10)`.
///
/// # Examples
///
/// ```
/// use ipass_units::db_to_power_ratio;
///
/// assert!((db_to_power_ratio(-3.0103) - 0.5).abs() < 1e-4);
/// ```
pub fn db_to_power_ratio(db: f64) -> f64 {
    10.0_f64.powf(db / 10.0)
}

/// Convert a voltage (amplitude) ratio to decibels: `20·log₁₀(ratio)`.
///
/// # Panics
///
/// Panics if `ratio` is negative or NaN.
///
/// # Examples
///
/// ```
/// use ipass_units::voltage_ratio_to_db;
///
/// assert!((voltage_ratio_to_db(0.5) - (-6.0206)).abs() < 1e-4);
/// ```
pub fn voltage_ratio_to_db(ratio: f64) -> f64 {
    assert!(
        ratio >= 0.0 && !ratio.is_nan(),
        "voltage ratio must be non-negative, got {ratio}"
    );
    20.0 * ratio.log10()
}

/// Convert decibels to a voltage (amplitude) ratio: `10^(db/20)`.
///
/// # Examples
///
/// ```
/// use ipass_units::db_to_voltage_ratio;
///
/// assert!((db_to_voltage_ratio(-6.0206) - 0.5).abs() < 1e-4);
/// ```
pub fn db_to_voltage_ratio(db: f64) -> f64 {
    10.0_f64.powf(db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_points() {
        assert!((power_ratio_to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((voltage_ratio_to_db(100.0) - 40.0).abs() < 1e-12);
        assert_eq!(power_ratio_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ratio_panics() {
        let _ = power_ratio_to_db(-1.0);
    }

    proptest! {
        #[test]
        fn power_roundtrip(db in -120.0f64..120.0) {
            let r = db_to_power_ratio(db);
            prop_assert!((power_ratio_to_db(r) - db).abs() < 1e-9);
        }

        #[test]
        fn voltage_roundtrip(db in -120.0f64..120.0) {
            let r = db_to_voltage_ratio(db);
            prop_assert!((voltage_ratio_to_db(r) - db).abs() < 1e-9);
        }

        #[test]
        fn voltage_is_twice_power_db(ratio in 1e-6f64..1e6) {
            prop_assert!((voltage_ratio_to_db(ratio) - 2.0 * power_ratio_to_db(ratio)).abs() < 1e-9);
        }
    }
}
