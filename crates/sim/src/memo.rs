//! A small sharded memo cache for per-candidate sub-results.
//!
//! Trade studies and sweeps evaluate the same candidate under many
//! scenarios; expensive sub-results (a packed layout, a flow report, a
//! filter score) depend only on a subset of the scenario knobs and can
//! be shared. [`Memo`] is a concurrent key → `Arc<V>` table; entries are
//! computed outside the lock, and when two workers race on the same key
//! the first insert wins (both computed the same deterministic value).

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// Concurrent memoization table.
///
/// # Examples
///
/// ```
/// use ipass_sim::Memo;
///
/// let memo: Memo<u32, String> = Memo::new();
/// let a = memo.get_or_insert_with(7, || "seven".to_string());
/// let b = memo.get_or_insert_with(7, || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(memo.len(), 1);
/// ```
#[derive(Debug)]
pub struct Memo<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<V>>>>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V> Default for Memo<K, V> {
    fn default() -> Memo<K, V> {
        Memo::new()
    }
}

impl<K: Hash + Eq, V> Memo<K, V> {
    /// An empty cache.
    pub fn new() -> Memo<K, V> {
        Memo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<V>>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Look up `key`, computing and caching `compute()` on a miss.
    ///
    /// `compute` runs outside the shard lock; concurrent misses on the
    /// same key may compute twice, and the first insert wins.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        let value = Arc::new(compute());
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        Arc::clone(shard.entry(key).or_insert(value))
    }

    /// Fallible version of [`Memo::get_or_insert_with`]; errors are not
    /// cached.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(hit) = self.get(&key) {
            return Ok(hit);
        }
        let value = Arc::new(compute()?);
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        Ok(Arc::clone(shard.entry(key).or_insert(value)))
    }

    /// Current cached value for `key`, if any.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.shard(key)
            .lock()
            .expect("memo shard poisoned")
            .get(key)
            .cloned()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("memo shard poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caches_and_shares() {
        let memo: Memo<(usize, u8), Vec<u64>> = Memo::new();
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo.get_or_insert_with((1, 2), || {
                computed.fetch_add(1, Ordering::Relaxed);
                vec![1, 2, 3]
            });
            assert_eq!(*v, vec![1, 2, 3]);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: Memo<u32, u32> = Memo::new();
        let err: Result<_, String> = memo.get_or_try_insert_with(1, || Err("boom".into()));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = memo
            .get_or_try_insert_with(1, || Ok::<_, String>(5))
            .unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn concurrent_access_converges() {
        let memo: Memo<u64, u64> = Memo::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for k in 0..100 {
                        let v = memo.get_or_insert_with(k, || k * k);
                        assert_eq!(*v, k * k);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 100);
    }
}
