//! A small sharded memo cache for per-candidate sub-results.
//!
//! Trade studies and sweeps evaluate the same candidate under many
//! scenarios; expensive sub-results (a packed layout, a flow report, a
//! filter score) depend only on a subset of the scenario knobs and can
//! be shared. [`Memo`] is a concurrent key → `Arc<V>` table; entries are
//! computed outside the lock, and when two workers race on the same key
//! the first insert wins (both computed the same deterministic value).
//!
//! Effectiveness is observable: every lookup bumps a hit or miss
//! counter, entries rejected by a [`Memo::with_max_entries`] capacity
//! bound bump `dropped`, and a recovered shard-lock poisoning bumps
//! `poisoned` — all surfaced as an [`ipass_obs::MemoStats`] snapshot via
//! [`Memo::stats`]. Counters use relaxed atomics: totals are exact once
//! the cache is quiescent, but the hit/miss split may wobble by racing
//! lookups, so memo counters sit outside the strict bit-identity
//! contract of the deterministic plane.

use ipass_obs::MemoStats;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

const SHARDS: usize = 16;

/// Concurrent memoization table.
///
/// # Examples
///
/// ```
/// use ipass_sim::Memo;
///
/// let memo: Memo<u32, String> = Memo::new();
/// let a = memo.get_or_insert_with(7, || "seven".to_string());
/// let b = memo.get_or_insert_with(7, || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(memo.len(), 1);
/// let stats = memo.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct Memo<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<V>>>>,
    hasher: RandomState,
    max_per_shard: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    dropped: AtomicU64,
    poisoned: AtomicU64,
}

impl<K: Hash + Eq, V> Default for Memo<K, V> {
    fn default() -> Memo<K, V> {
        Memo::new()
    }
}

impl<K: Hash + Eq, V> Memo<K, V> {
    /// An empty, unbounded cache.
    pub fn new() -> Memo<K, V> {
        Memo {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            max_per_shard: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `max_entries` values.
    ///
    /// The bound is enforced per shard (`max_entries / 16`, rounded up),
    /// so the true ceiling can exceed `max_entries` by at most one entry
    /// per shard. An insert into a full shard is **not** cached: the
    /// computed value is returned to the caller as usual and the
    /// [`MemoStats::dropped`] counter records the rejection — no silent
    /// loss.
    pub fn with_max_entries(max_entries: usize) -> Memo<K, V> {
        Memo {
            max_per_shard: Some(max_entries.div_ceil(SHARDS).max(1)),
            ..Memo::new()
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<V>>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Lock a shard, recovering (and counting) a poisoned lock instead
    /// of propagating the panic. Entries are inserted fully formed, so a
    /// poisoned shard still holds a consistent map.
    fn lock<'a>(&self, shard: &'a Mutex<HashMap<K, Arc<V>>>) -> MutexGuard<'a, HashMap<K, Arc<V>>> {
        shard.lock().unwrap_or_else(|poisoned| {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    /// Insert `value` under `key` unless the shard is at capacity;
    /// either way, return the `Arc` the caller should use.
    fn insert_or_drop(&self, key: K, value: Arc<V>) -> Arc<V> {
        let mut shard = self.lock(self.shard(&key));
        if let Some(cap) = self.max_per_shard {
            if shard.len() >= cap && !shard.contains_key(&key) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return value;
            }
        }
        Arc::clone(shard.entry(key).or_insert(value))
    }

    /// Look up `key`, computing and caching `compute()` on a miss.
    ///
    /// `compute` runs outside the shard lock; concurrent misses on the
    /// same key may compute twice, and the first insert wins.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        self.insert_or_drop(key, Arc::new(compute()))
    }

    /// Fallible version of [`Memo::get_or_insert_with`]; errors are not
    /// cached.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(hit) = self.get(&key) {
            return Ok(hit);
        }
        Ok(self.insert_or_drop(key, Arc::new(compute()?)))
    }

    /// Current cached value for `key`, if any. Counts as a hit or miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let found = self.lock(self.shard(key)).get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            self.lock(shard).clear();
        }
    }

    /// Snapshot of the lifetime hit / miss / dropped / poisoned
    /// counters.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caches_and_shares() {
        let memo: Memo<(usize, u8), Vec<u64>> = Memo::new();
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = memo.get_or_insert_with((1, 2), || {
                computed.fetch_add(1, Ordering::Relaxed);
                vec![1, 2, 3]
            });
            assert_eq!(*v, vec![1, 2, 3]);
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: Memo<u32, u32> = Memo::new();
        let err: Result<_, String> = memo.get_or_try_insert_with(1, || Err("boom".into()));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = memo
            .get_or_try_insert_with(1, || Ok::<_, String>(5))
            .unwrap();
        assert_eq!(*ok, 5);
    }

    #[test]
    fn concurrent_access_converges() {
        let memo: Memo<u64, u64> = Memo::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for k in 0..100 {
                        let v = memo.get_or_insert_with(k, || k * k);
                        assert_eq!(*v, k * k);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 100);
        let stats = memo.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.misses >= 100, "each key misses at least once");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.poisoned, 0);
    }

    #[test]
    fn counts_hits_and_misses() {
        let memo: Memo<u32, u32> = Memo::new();
        assert!(memo.get(&1).is_none());
        let _ = memo.get_or_insert_with(1, || 10);
        let _ = memo.get_or_insert_with(1, || unreachable!());
        let stats = memo.stats();
        assert_eq!(stats.misses, 2); // explicit get + first insert
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn capacity_overflow_is_counted_not_silent() {
        // One entry per shard: later distinct keys start landing in
        // full shards and must be rejected loudly, not lost silently.
        let memo: Memo<u64, u64> = Memo::with_max_entries(1);
        let mut dropped_values_still_correct = true;
        for k in 0..64 {
            let v = memo.get_or_insert_with(k, || k + 1);
            dropped_values_still_correct &= *v == k + 1;
        }
        assert!(dropped_values_still_correct);
        let stats = memo.stats();
        assert!(stats.dropped > 0, "overflow must be signalled");
        assert_eq!(memo.len() as u64 + stats.dropped, 64);
        // Cached keys still hit; dropped keys keep recomputing.
        let before = memo.stats();
        for k in 0..64 {
            let _ = memo.get_or_insert_with(k, || k + 1);
        }
        let after = memo.stats();
        assert_eq!(after.hits - before.hits, memo.len() as u64);
    }

    #[test]
    fn unbounded_cache_never_drops() {
        let memo: Memo<u64, u64> = Memo::new();
        for k in 0..1000 {
            let _ = memo.get_or_insert_with(k, || k);
        }
        assert_eq!(memo.len(), 1000);
        assert_eq!(memo.stats().dropped, 0);
    }
}
