//! The chunked, deterministic, parallel experiment executor.
//!
//! Units are partitioned into fixed-size chunks (a pure function of the
//! unit count, never of the thread count). A fixed pool of scoped
//! workers steals chunks from a shared cursor and accumulates each
//! chunk into its own local accumulator — workers never share mutable
//! fold state and never block on one another. Completed chunks are
//! published as `(index, accumulator)` completion records over a
//! channel, and the *calling* thread folds them into a running prefix
//! strictly in chunk order. Because every unit draws from its own
//! counter-based [`SimRng`] stream and the floating-point merge order
//! is fixed, the result is bit-identical for any thread count — threads
//! are purely a performance knob.
//!
//! Internally every run is a [`BatchSampler`] run: a chunk is one
//! contiguous `[lo, hi)` unit range handed to
//! [`BatchSampler::sample_range`]. Scalar [`Sampler`]s get the
//! canonical unit-by-unit walk through the blanket impl in
//! [`crate::batch`]; batched kernels substitute their own lane walk
//! without touching the chunk geometry or the fold order.
//!
//! Optional sequential early stopping evaluates a confidence-interval
//! rule at every prefix extension (again in chunk order), so the
//! stopping point is a pure function of the data, not of scheduling.

use crate::batch::BatchSampler;
use crate::rng::SimRng;
use ipass_obs::Profiler;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// A Monte Carlo experiment that accumulates directly into a mergeable
/// accumulator (the zero-allocation form used by hot engines).
///
/// Implementations must be deterministic: `sample` may use only `unit`,
/// the provided RNG stream and `&self`.
pub trait Sampler: Sync {
    /// Partial result accumulated per chunk and merged across chunks.
    type Acc: Send;
    /// Error that aborts the run (the first error in unit order wins).
    type Error: Send;

    /// Create an empty accumulator.
    fn make_acc(&self) -> Self::Acc;

    /// Route one unit, recording its outcome into `acc`.
    ///
    /// # Errors
    ///
    /// Returns the sampler's error to abort the run.
    fn sample(&self, unit: u64, rng: &mut SimRng, acc: &mut Self::Acc) -> Result<(), Self::Error>;

    /// Fold a later chunk's accumulator into an earlier one.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);

    /// Current confidence-interval half width of the quantity an early
    /// stopping rule targets, or `None` when the sampler does not
    /// support early stopping.
    fn ci_half_width(&self, acc: &Self::Acc, z: f64) -> Option<f64> {
        let _ = (acc, z);
        None
    }
}

/// A Monte Carlo experiment producing one output per unit (the
/// convenient form; collected outputs preserve unit order).
pub trait Experiment: Sync {
    /// Per-unit output.
    type Output: Send;
    /// Error that aborts the run.
    type Error: Send;

    /// Evaluate one unit on its private RNG stream.
    ///
    /// # Errors
    ///
    /// Returns the experiment's error to abort the run.
    fn run(&self, unit: u64, rng: &mut SimRng) -> Result<Self::Output, Self::Error>;
}

/// Adapter: collect an [`Experiment`]'s outputs in unit order through
/// the [`Sampler`] machinery.
#[derive(Debug)]
pub struct Collect<E>(pub E);

impl<E: Experiment> Sampler for Collect<E> {
    type Acc = Vec<E::Output>;
    type Error = E::Error;

    fn make_acc(&self) -> Self::Acc {
        Vec::new()
    }

    fn sample(&self, unit: u64, rng: &mut SimRng, acc: &mut Self::Acc) -> Result<(), Self::Error> {
        acc.push(self.0.run(unit, rng)?);
        Ok(())
    }

    fn merge(&self, into: &mut Self::Acc, mut from: Self::Acc) {
        into.append(&mut from);
    }
}

/// Sequential early-stopping rule: stop once the sampler's confidence
/// interval is tight enough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Target half width of the confidence interval.
    pub target_half_width: f64,
    /// z value of the interval (e.g. [`crate::Z95`]).
    pub z: f64,
    /// Never stop before this many units (guards against a lucky first
    /// chunk).
    pub min_units: u64,
}

impl StopRule {
    /// A 95 % rule with the given half-width target and a 1 000-unit
    /// floor.
    pub fn half_width_95(target: f64) -> StopRule {
        StopRule {
            target_half_width: target,
            z: crate::stats::Z95,
            min_units: 1_000,
        }
    }
}

/// Options for [`Executor::run_with`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunOptions {
    /// Optional early-stopping rule.
    pub stop: Option<StopRule>,
}

/// The outcome of an executor run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome<A> {
    /// The merged accumulator over all units that were run.
    pub acc: A,
    /// Units actually routed (less than requested when stopped early).
    pub units_run: u64,
    /// Whether the early-stopping rule fired.
    pub stopped_early: bool,
}

/// Fixed chunk geometry: a pure function of the unit count so that the
/// floating-point merge order — and therefore every result — is
/// independent of the thread count.
fn chunk_size(units: u64) -> u64 {
    (units / 64).clamp(256, 16_384).min(units.max(1))
}

/// The deterministic parallel executor.
///
/// # Examples
///
/// ```
/// use ipass_sim::{Executor, Experiment, SimRng};
///
/// struct Pi;
/// impl Experiment for Pi {
///     type Output = bool;
///     type Error = std::convert::Infallible;
///     fn run(&self, _unit: u64, rng: &mut SimRng) -> Result<bool, Self::Error> {
///         let (x, y) = (rng.next_f64(), rng.next_f64());
///         Ok(x * x + y * y <= 1.0)
///     }
/// }
///
/// let hits = |threads| {
///     let outs = Executor::new(threads).collect(&Pi, 100_000, 7).unwrap();
///     outs.iter().filter(|&&h| h).count()
/// };
/// let serial = hits(1);
/// assert_eq!(serial, hits(4)); // bit-identical regardless of threads
/// let pi = 4.0 * serial as f64 / 100_000.0;
/// assert!((pi - std::f64::consts::PI).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::serial()
    }
}

impl Executor {
    /// An executor with a fixed worker pool of `threads` (minimum 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// A single-threaded executor (same results, no worker pool).
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// An executor sized to the machine's available parallelism.
    pub fn available() -> Executor {
        Executor::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `units` units of `sampler` under `seed` and return the merged
    /// accumulator.
    ///
    /// # Errors
    ///
    /// Returns the first sampler error in unit order.
    pub fn run<S: Sampler>(&self, sampler: &S, units: u64, seed: u64) -> Result<S::Acc, S::Error> {
        self.run_with(sampler, units, seed, &RunOptions::default())
            .map(|outcome| outcome.acc)
    }

    /// Like [`Executor::run`], with early stopping and run metadata.
    ///
    /// # Errors
    ///
    /// Returns the first sampler error in unit order.
    pub fn run_with<S: Sampler>(
        &self,
        sampler: &S,
        units: u64,
        seed: u64,
        options: &RunOptions,
    ) -> Result<RunOutcome<S::Acc>, S::Error> {
        // Scalar samplers are batch samplers through the blanket impl;
        // one generic engine serves both forms.
        self.run_batch_with(sampler, units, seed, options)
    }

    /// Run `units` units of a [`BatchSampler`] under `seed` and return
    /// the merged accumulator.
    ///
    /// # Errors
    ///
    /// Returns the first sampler error in unit order.
    pub fn run_batch<B: BatchSampler>(
        &self,
        sampler: &B,
        units: u64,
        seed: u64,
    ) -> Result<B::Acc, B::Error> {
        self.run_batch_with(sampler, units, seed, &RunOptions::default())
            .map(|outcome| outcome.acc)
    }

    /// Like [`Executor::run_batch`], with early stopping and run
    /// metadata. Every chunk is one contiguous
    /// [`BatchSampler::sample_range`] call; chunk geometry stays the
    /// pure function of `units` documented on [`Executor::run`], so a
    /// batched kernel inherits the full determinism contract.
    ///
    /// # Errors
    ///
    /// Returns the first sampler error in unit order.
    pub fn run_batch_with<B: BatchSampler>(
        &self,
        sampler: &B,
        units: u64,
        seed: u64,
        options: &RunOptions,
    ) -> Result<RunOutcome<B::Acc>, B::Error> {
        self.run_batch_inner(sampler, units, seed, options, None)
    }

    /// Like [`Executor::run_batch_with`], recording wall-clock spans
    /// into `profiler`: one `"chunk"` span per completed chunk. Timing
    /// lives entirely in the wall-clock plane — the accumulator (and
    /// any deterministic counters folded inside it) is bit-identical to
    /// the untraced run.
    ///
    /// # Errors
    ///
    /// Returns the first sampler error in unit order.
    pub fn run_batch_traced<B: BatchSampler>(
        &self,
        sampler: &B,
        units: u64,
        seed: u64,
        options: &RunOptions,
        profiler: &Profiler,
    ) -> Result<RunOutcome<B::Acc>, B::Error> {
        self.run_batch_inner(sampler, units, seed, options, Some(profiler))
    }

    fn run_batch_inner<B: BatchSampler>(
        &self,
        sampler: &B,
        units: u64,
        seed: u64,
        options: &RunOptions,
        profiler: Option<&Profiler>,
    ) -> Result<RunOutcome<B::Acc>, B::Error> {
        if units == 0 {
            return Ok(RunOutcome {
                acc: sampler.make_acc(),
                units_run: 0,
                stopped_early: false,
            });
        }
        let chunk = chunk_size(units);
        let n_chunks = units.div_ceil(chunk);
        let workers = self.threads.min(n_chunks as usize);
        if workers <= 1 {
            return run_serial(sampler, units, seed, chunk, options, profiler);
        }
        run_parallel(
            sampler, units, seed, chunk, n_chunks, workers, options, profiler,
        )
    }

    /// Run an [`Experiment`] and collect its outputs in unit order.
    ///
    /// # Errors
    ///
    /// Returns the first experiment error in unit order.
    pub fn collect<E: Experiment>(
        &self,
        experiment: &E,
        units: u64,
        seed: u64,
    ) -> Result<Vec<E::Output>, E::Error> {
        self.run(&Collect(experiment), units, seed)
    }

    /// Chunked map-reduce over unit indices `0..units` — the fan-out
    /// shape samplers and design-space screens use when they only need
    /// a *reduced* result (a frontier, a tally, an extreme) and the
    /// per-unit outputs would not fit or are not wanted.
    ///
    /// Units are split into the same fixed-size chunks as
    /// [`Executor::run`] (a pure function of `units`, never of the
    /// thread count); each chunk folds into its own accumulator via
    /// `step`, and chunk accumulators merge **in chunk order** on the
    /// calling thread via `merge` — so the result is bit-identical for
    /// any thread count whenever `merge` is associative over ordered
    /// concatenation (which in-order merging guarantees for every
    /// accumulator in this crate).
    ///
    /// # Errors
    ///
    /// Returns the first `step` error in unit order.
    ///
    /// # Examples
    ///
    /// ```
    /// use ipass_sim::Executor;
    ///
    /// // Sum of squares, reduced without materializing 1M outputs.
    /// let sum = |threads: usize| {
    ///     Executor::new(threads)
    ///         .try_map_reduce(
    ///             1_000_000,
    ///             || 0u64,
    ///             |unit, acc| {
    ///                 *acc += unit * unit;
    ///                 Ok::<(), std::convert::Infallible>(())
    ///             },
    ///             |into, from| *into += from,
    ///         )
    ///         .unwrap()
    /// };
    /// assert_eq!(sum(1), sum(8)); // bit-identical regardless of threads
    /// ```
    pub fn try_map_reduce<A, E, FInit, FStep, FMerge>(
        &self,
        units: u64,
        init: FInit,
        step: FStep,
        merge: FMerge,
    ) -> Result<A, E>
    where
        A: Send,
        E: Send,
        FInit: Fn() -> A + Sync,
        FStep: Fn(u64, &mut A) -> Result<(), E> + Sync,
        FMerge: Fn(&mut A, A) + Sync,
    {
        /// Adapter presenting the three closures as a [`Sampler`] so the
        /// map-reduce inherits the executor's chunk geometry, in-order
        /// fold and first-error-in-unit-order semantics (the per-unit
        /// RNG stream the machinery creates is simply unused).
        struct Fold<FInit, FStep, FMerge> {
            init: FInit,
            step: FStep,
            merge: FMerge,
        }

        impl<A, E, FInit, FStep, FMerge> Sampler for Fold<FInit, FStep, FMerge>
        where
            A: Send,
            E: Send,
            FInit: Fn() -> A + Sync,
            FStep: Fn(u64, &mut A) -> Result<(), E> + Sync,
            FMerge: Fn(&mut A, A) + Sync,
        {
            type Acc = A;
            type Error = E;

            fn make_acc(&self) -> A {
                (self.init)()
            }

            fn sample(&self, unit: u64, _rng: &mut SimRng, acc: &mut A) -> Result<(), E> {
                (self.step)(unit, acc)
            }

            fn merge(&self, into: &mut A, from: A) {
                (self.merge)(into, from)
            }
        }

        self.run(&Fold { init, step, merge }, units, 0)
    }

    /// Evaluate `f` over every item of a batch in parallel, preserving
    /// order. On failure the error of the smallest index is returned —
    /// deterministically, matching a serial evaluation: items after the
    /// lowest failing index may be skipped, but everything before it is
    /// always evaluated (items are claimed in index order).
    ///
    /// Workers publish `(index, result)` records over a channel and the
    /// calling thread writes each into its own slot, so a large batch
    /// (a scenario grid, a sweep) never serializes on a shared slot
    /// lock.
    ///
    /// # Errors
    ///
    /// Returns the first error in item order.
    pub fn try_map<T, O, E, F>(&self, items: &[T], f: F) -> Result<Vec<O>, E>
    where
        T: Sync,
        O: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<O, E> + Sync,
    {
        let workers = self.threads.min(items.len().max(1));
        if workers <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                out.push(f(i, item)?);
            }
            return Ok(out);
        }
        let cursor = AtomicU64::new(0);
        // Lowest failing index seen so far; items above it are skipped.
        let min_error = AtomicU64::new(u64::MAX);
        let (tx, rx) = mpsc::channel::<(usize, Result<O, E>)>();
        let slots = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let min_error = &min_error;
                let f = &f;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() as u64 {
                        break;
                    }
                    if i > min_error.load(Ordering::Acquire) {
                        continue;
                    }
                    let i = i as usize;
                    let result = f(i, &items[i]);
                    if result.is_err() {
                        min_error.fetch_min(i as u64, Ordering::Release);
                    }
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<Result<O, E>>> = Vec::with_capacity(items.len());
            slots.resize_with(items.len(), || None);
            while let Ok((i, result)) = rx.recv() {
                slots[i] = Some(result);
            }
            slots
        });
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            // A `None` slot was skipped, which only happens behind a
            // lower failing index — the error below surfaces first.
            match slot {
                Some(Ok(value)) => out.push(value),
                Some(Err(e)) => return Err(e),
                None => unreachable!("skipped item with no preceding error"),
            }
        }
        Ok(out)
    }

    /// Infallible version of [`Executor::try_map`].
    pub fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(usize, &T) -> O + Sync,
    {
        match self.try_map(items, |i, item| {
            Ok::<O, std::convert::Infallible>(f(i, item))
        }) {
            Ok(out) => out,
            Err(e) => match e {},
        }
    }
}

impl<E: Experiment> Experiment for &E {
    type Output = E::Output;
    type Error = E::Error;

    fn run(&self, unit: u64, rng: &mut SimRng) -> Result<Self::Output, Self::Error> {
        (*self).run(unit, rng)
    }
}

/// Route one chunk of units: a single contiguous range call on the
/// batch sampler (the blanket impl walks it unit by unit). When a
/// profiler is attached, the chunk's wall-clock time is recorded under
/// the `"chunk"` span — outside the accumulator, so tracing never
/// perturbs results.
fn run_chunk<B: BatchSampler>(
    sampler: &B,
    seed: u64,
    lo: u64,
    hi: u64,
    profiler: Option<&Profiler>,
) -> Result<B::Acc, B::Error> {
    let start = profiler.map(|_| Instant::now());
    let mut acc = sampler.make_acc();
    sampler.sample_range(seed, lo, hi, &mut acc)?;
    if let (Some(p), Some(t0)) = (profiler, start) {
        p.record(
            "chunk",
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
    }
    Ok(acc)
}

fn stop_rule_met<B: BatchSampler>(
    sampler: &B,
    acc: &B::Acc,
    units_so_far: u64,
    rule: &StopRule,
) -> bool {
    units_so_far >= rule.min_units
        && sampler
            .ci_half_width(acc, rule.z)
            .is_some_and(|hw| hw <= rule.target_half_width)
}

fn run_serial<B: BatchSampler>(
    sampler: &B,
    units: u64,
    seed: u64,
    chunk: u64,
    options: &RunOptions,
    profiler: Option<&Profiler>,
) -> Result<RunOutcome<B::Acc>, B::Error> {
    let mut prefix = sampler.make_acc();
    let mut lo = 0;
    while lo < units {
        let hi = (lo + chunk).min(units);
        let part = run_chunk(sampler, seed, lo, hi, profiler)?;
        sampler.merge(&mut prefix, part);
        lo = hi;
        if let Some(rule) = &options.stop {
            if stop_rule_met(sampler, &prefix, lo, rule) {
                return Ok(RunOutcome {
                    acc: prefix,
                    units_run: lo,
                    stopped_early: true,
                });
            }
        }
    }
    Ok(RunOutcome {
        acc: prefix,
        units_run: units,
        stopped_early: false,
    })
}

/// The parallel run: workers accumulate chunks locally and publish
/// `(chunk index, accumulator)` completion records over a channel; the
/// calling thread folds records into the prefix strictly in chunk
/// order. No shared fold state, no lock a worker could serialize on —
/// the only synchronization is the lock-free channel send per
/// completed chunk.
#[allow(clippy::too_many_arguments)]
fn run_parallel<B: BatchSampler>(
    sampler: &B,
    units: u64,
    seed: u64,
    chunk: u64,
    n_chunks: u64,
    workers: usize,
    options: &RunOptions,
    profiler: Option<&Profiler>,
) -> Result<RunOutcome<B::Acc>, B::Error> {
    let cursor = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(u64, Result<B::Acc, B::Error>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let done = &done;
            scope.spawn(move || loop {
                if done.load(Ordering::Acquire) {
                    break;
                }
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(units);
                // All fold work stays worker-local; only the completion
                // record crosses threads.
                let record = run_chunk(sampler, seed, lo, hi, profiler);
                if tx.send((c, record)).is_err() {
                    break;
                }
            });
        }
        // Senders live only in the workers: the fold loop below ends
        // exactly when every worker has exited.
        drop(tx);

        // The in-order fold, on the calling thread. All determinism
        // lives here: records may arrive in any order, but they join
        // the prefix strictly by chunk index.
        let mut pending: Vec<Option<Result<B::Acc, B::Error>>> = Vec::new();
        pending.resize_with(n_chunks as usize, || None);
        let mut prefix = sampler.make_acc();
        let mut next: u64 = 0;
        let mut units_merged: u64 = 0;
        let mut stopped = false;
        let mut error: Option<B::Error> = None;
        while let Ok((c, record)) = rx.recv() {
            if stopped || error.is_some() {
                // The run is already decided; drain so workers finishing
                // in-flight chunks never block (record is discarded).
                continue;
            }
            pending[c as usize] = Some(record);
            while let Some(slot) = pending.get_mut(next as usize).and_then(Option::take) {
                match slot {
                    Ok(part) => {
                        sampler.merge(&mut prefix, part);
                        next += 1;
                        units_merged = (next * chunk).min(units);
                        if let Some(rule) = &options.stop {
                            if stop_rule_met(sampler, &prefix, units_merged, rule) {
                                stopped = true;
                                done.store(true, Ordering::Release);
                                break;
                            }
                        }
                    }
                    Err(e) => {
                        // First error in chunk order — identical to the
                        // serial run, because the prefix only advances
                        // through contiguous successes.
                        error = Some(e);
                        done.store(true, Ordering::Release);
                        break;
                    }
                }
            }
            if next >= n_chunks {
                done.store(true, Ordering::Release);
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        Ok(RunOutcome {
            acc: prefix,
            units_run: units_merged,
            stopped_early: stopped,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{BinomialTally, Z95};

    /// Counts heads of a biased coin; supports early stopping.
    struct Coin {
        p: f64,
    }

    impl Sampler for Coin {
        type Acc = BinomialTally;
        type Error = std::convert::Infallible;

        fn make_acc(&self) -> BinomialTally {
            BinomialTally::new()
        }

        fn sample(
            &self,
            _unit: u64,
            rng: &mut SimRng,
            acc: &mut BinomialTally,
        ) -> Result<(), Self::Error> {
            acc.push(rng.bernoulli(self.p));
            Ok(())
        }

        fn merge(&self, into: &mut BinomialTally, from: BinomialTally) {
            into.merge(&from);
        }

        fn ci_half_width(&self, acc: &BinomialTally, z: f64) -> Option<f64> {
            Some(acc.ci_half_width(z))
        }
    }

    struct FailAt(u64);

    impl Sampler for FailAt {
        type Acc = u64;
        type Error = u64;

        fn make_acc(&self) -> u64 {
            0
        }

        fn sample(&self, unit: u64, _rng: &mut SimRng, acc: &mut u64) -> Result<(), u64> {
            if unit >= self.0 {
                return Err(unit);
            }
            *acc += 1;
            Ok(())
        }

        fn merge(&self, into: &mut u64, from: u64) {
            *into += from;
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let coin = Coin { p: 0.37 };
        let baseline = Executor::new(1).run(&coin, 50_000, 11).unwrap();
        for threads in [2, 4, 8] {
            let tally = Executor::new(threads).run(&coin, 50_000, 11).unwrap();
            assert_eq!(tally, baseline, "threads = {threads}");
        }
        assert!((baseline.fraction() - 0.37).abs() < 0.01);
    }

    #[test]
    fn zero_units_is_empty() {
        let outcome = Executor::new(4)
            .run_with(&Coin { p: 0.5 }, 0, 1, &RunOptions::default())
            .unwrap();
        assert_eq!(outcome.units_run, 0);
        assert_eq!(outcome.acc.trials(), 0);
        assert!(!outcome.stopped_early);
    }

    #[test]
    fn early_stopping_fires_and_is_deterministic() {
        let rule = StopRule {
            target_half_width: 0.01,
            z: Z95,
            min_units: 1_000,
        };
        let options = RunOptions { stop: Some(rule) };
        let a = Executor::new(1)
            .run_with(&Coin { p: 0.2 }, 1_000_000, 3, &options)
            .unwrap();
        assert!(a.stopped_early);
        assert!(a.units_run < 1_000_000, "ran {}", a.units_run);
        assert!(a.acc.ci_half_width(Z95) <= 0.01);
        for threads in [2, 8] {
            let b = Executor::new(threads)
                .run_with(&Coin { p: 0.2 }, 1_000_000, 3, &options)
                .unwrap();
            assert_eq!(b.units_run, a.units_run);
            assert_eq!(b.acc, a.acc);
            assert!(b.stopped_early);
        }
    }

    #[test]
    fn early_stopping_respects_min_units() {
        let rule = StopRule {
            target_half_width: 1.0, // trivially satisfied
            z: Z95,
            min_units: 5_000,
        };
        let outcome = Executor::new(4)
            .run_with(
                &Coin { p: 0.5 },
                100_000,
                1,
                &RunOptions { stop: Some(rule) },
            )
            .unwrap();
        assert!(outcome.stopped_early);
        assert!(outcome.units_run >= 5_000);
    }

    #[test]
    fn first_error_in_unit_order_wins() {
        for threads in [1, 4] {
            let err = Executor::new(threads)
                .run(&FailAt(10_000), 100_000, 0)
                .unwrap_err();
            assert_eq!(err, 10_000, "threads = {threads}");
        }
    }

    #[test]
    fn collect_preserves_unit_order() {
        struct Ident;
        impl Experiment for Ident {
            type Output = u64;
            type Error = std::convert::Infallible;
            fn run(&self, unit: u64, _rng: &mut SimRng) -> Result<u64, Self::Error> {
                Ok(unit)
            }
        }
        let outs = Executor::new(4).collect(&Ident, 10_000, 0).unwrap();
        assert_eq!(outs.len(), 10_000);
        assert!(outs.iter().enumerate().all(|(i, &u)| i as u64 == u));
    }

    #[test]
    fn map_reduce_is_thread_invariant_and_in_order() {
        // Non-commutative fold: the accumulator records unit order, so
        // any deviation from in-chunk-order merging would change it.
        let trace = |threads: usize| {
            Executor::new(threads)
                .try_map_reduce(
                    10_000,
                    Vec::new,
                    |unit, acc: &mut Vec<u64>| {
                        acc.push(unit);
                        Ok::<(), std::convert::Infallible>(())
                    },
                    |into, mut from| into.append(&mut from),
                )
                .unwrap()
        };
        let serial = trace(1);
        assert_eq!(serial.len(), 10_000);
        assert!(serial.iter().enumerate().all(|(i, &u)| i as u64 == u));
        for threads in [2, 4, 8] {
            assert_eq!(trace(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_reports_first_error_in_unit_order() {
        for threads in [1, 4] {
            let err = Executor::new(threads)
                .try_map_reduce(
                    100_000,
                    || (),
                    |unit, _| if unit >= 4_321 { Err(unit) } else { Ok(()) },
                    |_, _| {},
                )
                .unwrap_err();
            assert_eq!(err, 4_321, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_zero_units_is_init() {
        let acc = Executor::new(4)
            .try_map_reduce(
                0,
                || 7u64,
                |_, _| Ok::<(), std::convert::Infallible>(()),
                |into, from| *into += from,
            )
            .unwrap();
        assert_eq!(acc, 7);
    }

    #[test]
    fn try_map_orders_and_reports_first_error() {
        let items: Vec<u64> = (0..500).collect();
        let ok = Executor::new(4)
            .try_map(&items, |i, &x| Ok::<_, String>(x + i as u64))
            .unwrap();
        assert_eq!(ok[7], 14);
        let err = Executor::new(4)
            .try_map(&items, |_, &x| {
                if x % 100 == 99 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err, "bad 99");
    }

    #[test]
    fn traced_run_matches_untraced_and_counts_chunks() {
        let coin = Coin { p: 0.37 };
        let baseline = Executor::new(1).run(&coin, 50_000, 11).unwrap();
        for threads in [1, 4] {
            let profiler = Profiler::new();
            let outcome = Executor::new(threads)
                .run_batch_traced(&coin, 50_000, 11, &RunOptions::default(), &profiler)
                .unwrap();
            assert_eq!(outcome.acc, baseline, "threads = {threads}");
            let trace = profiler.trace();
            let chunk_span = trace
                .spans
                .iter()
                .find(|s| s.name == "chunk")
                .expect("chunk span recorded");
            // chunk_size(50_000) = 781 → 65 chunks, regardless of threads.
            assert_eq!(chunk_span.count, 65, "threads = {threads}");
        }
    }

    #[test]
    fn map_is_parallel_identity() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = Executor::new(8).map(&items, |_, &x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }
}
