//! Streaming statistics accumulators with deterministic merge.
//!
//! All accumulators support `merge`, and the executor merges partial
//! results in fixed chunk order, so parallel runs reproduce the serial
//! result bit for bit.

/// Two-sided z value for a 95 % confidence interval.
pub const Z95: f64 = 1.959_963_984_540_054;

/// Two-sided z value for a 99 % confidence interval.
pub const Z99: f64 = 2.575_829_303_548_901;

/// Welford online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use ipass_sim::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// assert!((w.sample_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (Chan et al. pairwise
    /// update). Merging in a fixed order is deterministic.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            f64::INFINITY
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Confidence-interval half width at the given z value.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        z * self.std_error()
    }
}

/// Success/trial counter with binomial confidence intervals.
///
/// # Examples
///
/// ```
/// use ipass_sim::{BinomialTally, Z95};
///
/// let mut t = BinomialTally::new();
/// for i in 0..1000 {
///     t.push(i % 4 != 0);
/// }
/// assert!((t.fraction() - 0.75).abs() < 1e-12);
/// assert!(t.ci_half_width(Z95) < 0.03);
/// let (lo, hi) = t.wilson_interval(Z95);
/// assert!(lo < 0.75 && 0.75 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinomialTally {
    trials: u64,
    successes: u64,
}

impl BinomialTally {
    /// An empty tally.
    pub fn new() -> BinomialTally {
        BinomialTally::default()
    }

    /// A tally from pre-counted trials.
    ///
    /// # Panics
    ///
    /// Panics when `successes > trials`.
    pub fn from_counts(trials: u64, successes: u64) -> BinomialTally {
        assert!(
            successes <= trials,
            "successes {successes} exceed trials {trials}"
        );
        BinomialTally { trials, successes }
    }

    /// A tally from floating-point counts (as accumulated by engines
    /// that count in `f64`).
    ///
    /// Counts are rounded to the nearest integer **explicitly** — an
    /// `as u64` cast would silently truncate (and map negative values
    /// to 0), hiding accumulator corruption.
    ///
    /// # Panics
    ///
    /// Panics when either count is negative, not finite, or when
    /// (rounded) `successes > trials`.
    pub fn from_f64_counts(trials: f64, successes: f64) -> BinomialTally {
        assert!(
            trials.is_finite() && trials >= 0.0,
            "trial count must be a non-negative finite number, got {trials}"
        );
        assert!(
            successes.is_finite() && successes >= 0.0,
            "success count must be a non-negative finite number, got {successes}"
        );
        BinomialTally::from_counts(trials.round() as u64, successes.round() as u64)
    }

    /// Record one trial.
    #[inline]
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        self.successes += u64::from(success);
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &BinomialTally) {
        self.trials += other.trials;
        self.successes += other.successes;
    }

    /// Trials recorded.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Successes recorded.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Success fraction (0 for an empty tally).
    pub fn fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Normal-approximation (Wald) half width of the success fraction's
    /// confidence interval at the given z value.
    pub fn ci_half_width(&self, z: f64) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let p = self.fraction();
        z * (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Half width of the [Wilson interval](BinomialTally::wilson_interval)
    /// — the right width for stopping rules, since unlike the Wald width
    /// it does not collapse to zero while every trial is still landing
    /// on the same side.
    pub fn wilson_half_width(&self, z: f64) -> f64 {
        if self.trials == 0 {
            return f64::INFINITY;
        }
        let (lo, hi) = self.wilson_interval(z);
        (hi - lo) / 2.0
    }

    /// Wilson score interval — well behaved near 0 and 1, where the Wald
    /// interval collapses.
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.fraction();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        // Pin the degenerate tallies exactly; rounding in `center − half`
        // can otherwise push the bound past the observed fraction.
        let lo = if self.successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if self.successes == self.trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        (lo, hi)
    }
}

/// Running minimum/maximum tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    min: f64,
    max: f64,
}

impl Default for MinMax {
    fn default() -> MinMax {
        MinMax {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MinMax {
    /// An empty tracker.
    pub fn new() -> MinMax {
        MinMax::default()
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another tracker into this one.
    pub fn merge(&mut self, other: &MinMax) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..400] {
            left.push(x);
        }
        for &x in &xs[400..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.push(3.0);
        w.push(5.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn binomial_half_width_shrinks_with_n() {
        let mut small = BinomialTally::new();
        let mut large = BinomialTally::new();
        for i in 0..100 {
            small.push(i % 2 == 0);
        }
        for i in 0..10_000 {
            large.push(i % 2 == 0);
        }
        assert!(large.ci_half_width(Z95) < small.ci_half_width(Z95));
        assert!(small.ci_half_width(Z95) < 0.11);
    }

    #[test]
    fn wilson_handles_extremes() {
        let mut t = BinomialTally::new();
        for _ in 0..50 {
            t.push(true);
        }
        let (lo, hi) = t.wilson_interval(Z95);
        assert!(hi <= 1.0 && lo > 0.8, "({lo}, {hi})");
        assert!(BinomialTally::new().ci_half_width(Z95).is_infinite());
        assert_eq!(BinomialTally::new().wilson_interval(Z95), (0.0, 1.0));
    }

    #[test]
    fn minmax_tracks() {
        let mut m = MinMax::new();
        for x in [3.0, -1.0, 7.0] {
            m.push(x);
        }
        let mut other = MinMax::new();
        other.push(9.0);
        m.merge(&other);
        assert_eq!(m.min(), -1.0);
        assert_eq!(m.max(), 9.0);
    }
}
