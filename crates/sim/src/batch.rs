//! Batched sampling: evaluate a contiguous range of units per call
//! instead of one unit at a time.
//!
//! [`BatchSampler`] is the executor's native interface: the chunked
//! [`Executor`](crate::Executor) hands each worker a contiguous
//! `[lo, hi)` unit range and the sampler decides how to walk it. A
//! plain [`Sampler`] gets the scalar walk for free through the blanket
//! impl (one [`SimRng::stream`] per unit, in unit order), while batched
//! kernels — such as the MOE lane kernel — override the walk with a
//! structure-of-arrays lane evaluation. As long as an implementation
//! preserves the per-unit draw and accumulation order, its results are
//! bit-identical to the scalar walk for every chunk split the executor
//! chooses.

use crate::exec::Sampler;
use crate::rng::SimRng;

/// A Monte Carlo experiment that evaluates a contiguous range of units
/// per call — the batched form of [`Sampler`].
///
/// # The batching contract
///
/// The executor's determinism guarantees extend unchanged to batched
/// samplers because chunk geometry stays a pure function of the unit
/// count and each chunk is exactly one `sample_range` call, merged in
/// chunk order. An implementation must therefore be *range-splitting
/// invariant*: for any partition of `[lo, hi)` into consecutive
/// sub-ranges, accumulating the sub-ranges in order must produce the
/// same accumulator contents — bit for bit — as one call over the whole
/// range, and the same contents a scalar unit-by-unit walk would
/// produce (unit `i` draws from `SimRng::stream(seed, i)` and
/// contributes in unit order).
///
/// On error, everything accumulated into `acc` by the failing call is
/// discarded by the executor, and the first error in unit order wins.
pub trait BatchSampler: Sync {
    /// Partial result accumulated per chunk and merged across chunks.
    type Acc: Send;
    /// Error that aborts the run (the first error in unit order wins).
    type Error: Send;

    /// Create an empty accumulator.
    fn make_acc(&self) -> Self::Acc;

    /// Route every unit of `[lo, hi)`, recording outcomes into `acc`.
    /// Unit `i` must draw from `SimRng::stream(seed, i)`.
    ///
    /// # Errors
    ///
    /// Returns the sampler's error to abort the run.
    fn sample_range(
        &self,
        seed: u64,
        lo: u64,
        hi: u64,
        acc: &mut Self::Acc,
    ) -> Result<(), Self::Error>;

    /// Fold a later chunk's accumulator into an earlier one.
    fn merge(&self, into: &mut Self::Acc, from: Self::Acc);

    /// Current confidence-interval half width of the quantity an early
    /// stopping rule targets, or `None` when the sampler does not
    /// support early stopping.
    fn ci_half_width(&self, acc: &Self::Acc, z: f64) -> Option<f64> {
        let _ = (acc, z);
        None
    }
}

/// Every scalar [`Sampler`] is a [`BatchSampler`] via the canonical
/// unit-by-unit walk: one counter-based stream per unit, in unit order.
impl<S: Sampler> BatchSampler for S {
    type Acc = S::Acc;
    type Error = S::Error;

    fn make_acc(&self) -> Self::Acc {
        Sampler::make_acc(self)
    }

    fn sample_range(
        &self,
        seed: u64,
        lo: u64,
        hi: u64,
        acc: &mut Self::Acc,
    ) -> Result<(), Self::Error> {
        for unit in lo..hi {
            let mut rng = SimRng::stream(seed, unit);
            self.sample(unit, &mut rng, acc)?;
        }
        Ok(())
    }

    fn merge(&self, into: &mut Self::Acc, from: Self::Acc) {
        Sampler::merge(self, into, from)
    }

    fn ci_half_width(&self, acc: &Self::Acc, z: f64) -> Option<f64> {
        Sampler::ci_half_width(self, acc, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::stats::BinomialTally;

    struct Coin {
        p: f64,
    }

    impl Sampler for Coin {
        type Acc = BinomialTally;
        type Error = std::convert::Infallible;

        fn make_acc(&self) -> BinomialTally {
            BinomialTally::new()
        }

        fn sample(
            &self,
            _unit: u64,
            rng: &mut SimRng,
            acc: &mut BinomialTally,
        ) -> Result<(), Self::Error> {
            acc.push(rng.bernoulli(self.p));
            Ok(())
        }

        fn merge(&self, into: &mut BinomialTally, from: BinomialTally) {
            into.merge(&from);
        }
    }

    /// A genuinely batched sampler: sums the first draw of every unit
    /// stream over the whole range in one loop.
    struct RangeSum;

    impl BatchSampler for RangeSum {
        type Acc = u64;
        type Error = std::convert::Infallible;

        fn make_acc(&self) -> u64 {
            0
        }

        fn sample_range(
            &self,
            seed: u64,
            lo: u64,
            hi: u64,
            acc: &mut u64,
        ) -> Result<(), Self::Error> {
            for unit in lo..hi {
                let (key, ctr) = SimRng::stream(seed, unit).state();
                *acc = acc.wrapping_add(SimRng::raw_u64(key, ctr) & 0xFF);
            }
            Ok(())
        }

        fn merge(&self, into: &mut u64, from: u64) {
            *into = into.wrapping_add(from);
        }
    }

    #[test]
    fn blanket_impl_walks_units_in_order() {
        let coin = Coin { p: 0.4 };
        // The batched walk over one range must equal the scalar walk the
        // executor performed before batching existed.
        let mut batched = BatchSampler::make_acc(&coin);
        coin.sample_range(7, 0, 10_000, &mut batched).unwrap();
        let mut scalar = Sampler::make_acc(&coin);
        for unit in 0..10_000 {
            let mut rng = SimRng::stream(7, unit);
            coin.sample(unit, &mut rng, &mut scalar).unwrap();
        }
        assert_eq!(batched, scalar);
    }

    #[test]
    fn run_batch_matches_run_for_scalar_samplers() {
        let coin = Coin { p: 0.37 };
        let via_run = Executor::new(1).run(&coin, 50_000, 11).unwrap();
        for threads in [1, 4] {
            let via_batch = Executor::new(threads).run_batch(&coin, 50_000, 11).unwrap();
            assert_eq!(via_batch, via_run, "threads = {threads}");
        }
    }

    #[test]
    fn custom_batch_sampler_is_split_invariant() {
        let whole = Executor::new(1).run_batch(&RangeSum, 100_000, 3).unwrap();
        for threads in [2, 8] {
            let split = Executor::new(threads)
                .run_batch(&RangeSum, 100_000, 3)
                .unwrap();
            assert_eq!(split, whole, "threads = {threads}");
        }
        // And against the hand-rolled single range.
        let mut manual = 0u64;
        RangeSum.sample_range(3, 0, 100_000, &mut manual).unwrap();
        assert_eq!(whole, manual);
    }
}
