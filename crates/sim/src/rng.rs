//! Counter-based random number streams.
//!
//! A [`SimRng`] is a *counter-based* generator: output `j` of stream `i`
//! under seed `s` is a pure hash of `(s, i, j)`. Nothing about thread
//! count, chunking or evaluation order enters the computation, which is
//! what makes every experiment built on this crate bit-identical
//! regardless of how it is parallelized. Each Monte Carlo unit gets its
//! own stream, so units can be routed by any worker in any order.
//!
//! The mixing function is the SplitMix64 finalizer (Steele, Lea &
//! Flood), applied to a stream-keyed counter. It passes the statistical
//! requirements of sampling work (uniformity, independence between
//! streams) while being a handful of arithmetic instructions per draw.

/// Golden-ratio increment used by SplitMix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Multiplicative inverse of [`GOLDEN`] modulo 2⁶⁴ (it is odd, so one
/// exists): `GOLDEN.wrapping_mul(GOLDEN_INV) == 1`. Lets batched
/// kernels recover a draw counter from a running mix input without a
/// division (see [`SimRng::ctr_of_mix_input`]).
const GOLDEN_INV: u64 = golden_inv();

/// Newton–Raphson 2-adic inverse: every step doubles the number of
/// correct low bits, and `x = a` starts with three (odd `a` satisfies
/// `a·a ≡ 1 (mod 8)`), so five steps reach all 64.
const fn golden_inv() -> u64 {
    let a = GOLDEN;
    let mut x = a;
    let mut i = 0;
    while i < 5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
        i += 1;
    }
    x
}

/// The 64-bit finalizer from SplitMix64: a bijective avalanche mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic counter-based random stream.
///
/// # Examples
///
/// ```
/// use ipass_sim::SimRng;
///
/// let mut a = SimRng::stream(42, 7);
/// let mut b = SimRng::stream(42, 7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same (seed, stream) ⇒ same draws
///
/// let mut other = SimRng::stream(42, 8);
/// assert_ne!(a.next_u64(), other.next_u64()); // streams are independent
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    key: u64,
    ctr: u64,
}

impl SimRng {
    /// Stream 0 of `seed` — a drop-in for a plain seeded generator.
    pub fn from_seed(seed: u64) -> SimRng {
        SimRng::stream(seed, 0)
    }

    /// Stream `stream` of `seed`. Streams with different indices are
    /// statistically independent; equal `(seed, stream)` pairs reproduce
    /// the exact same draw sequence.
    #[inline]
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        SimRng {
            key: mix64(seed ^ mix64(stream.wrapping_mul(GOLDEN).wrapping_add(GOLDEN))),
            ctr: 0,
        }
    }

    /// Derive an independent child stream from this stream's identity.
    ///
    /// Useful when one logical unit spawns nested sampling work that
    /// should not disturb the parent's draw sequence.
    pub fn substream(&self, tag: u64) -> SimRng {
        SimRng::stream(self.key, tag.wrapping_add(1))
    }

    /// The stream's `(key, counter)` state.
    ///
    /// Batched kernels keep structure-of-arrays copies of many unit
    /// streams and evaluate [`SimRng::raw_u64`] over them in tight
    /// loops; `state` / [`SimRng::from_state`] convert between the two
    /// representations without perturbing the draw sequence.
    #[inline]
    pub fn state(&self) -> (u64, u64) {
        (self.key, self.ctr)
    }

    /// Rebuild a stream from a `(key, counter)` pair captured by
    /// [`SimRng::state`]. The rebuilt stream continues the exact draw
    /// sequence of the captured one.
    #[inline]
    pub fn from_state(key: u64, ctr: u64) -> SimRng {
        SimRng { key, ctr }
    }

    /// Draw number `ctr` of the stream keyed `key`, as a pure function —
    /// exactly what [`SimRng::next_u64`] returns before advancing. The
    /// stateless form batched kernels evaluate over a whole lane of
    /// `(key, counter)` pairs per op.
    #[inline]
    pub fn raw_u64(key: u64, ctr: u64) -> u64 {
        mix64(key.wrapping_add(ctr.wrapping_mul(GOLDEN)))
    }

    /// The 53-bit variant of [`SimRng::raw_u64`], matching
    /// [`SimRng::next_u53`] — for comparing against a precomputed
    /// [`SimRng::threshold`].
    #[inline]
    pub fn raw_u53(key: u64, ctr: u64) -> u64 {
        SimRng::raw_u64(key, ctr) >> 11
    }

    /// The *mix input* of draw `ctr` on the stream keyed `key` — the
    /// value the SplitMix64 finalizer is applied to. Batched kernels
    /// carry this running value instead of `(key, ctr)`: consecutive
    /// draws differ by a constant stride, so advancing costs one add
    /// ([`SimRng::advance_mix_input`]) instead of a multiply, and
    /// [`SimRng::mix_to_u53`] turns it into the exact draw.
    ///
    /// `mix_input(key, 0) == key`, so a fresh stream's mix input is its
    /// key.
    #[inline]
    pub fn mix_input(key: u64, ctr: u64) -> u64 {
        key.wrapping_add(ctr.wrapping_mul(GOLDEN))
    }

    /// The mix input of the *next* draw: `advance_mix_input(mix_input
    /// (key, ctr)) == mix_input(key, ctr + 1)`.
    #[inline]
    pub fn advance_mix_input(h: u64) -> u64 {
        h.wrapping_add(GOLDEN)
    }

    /// Finalize a mix input into its 53-bit draw:
    /// `mix_to_u53(mix_input(key, ctr)) == SimRng::raw_u53(key, ctr)`,
    /// bit for bit.
    #[inline]
    pub fn mix_to_u53(h: u64) -> u64 {
        mix64(h) >> 11
    }

    /// Recover the draw counter a running mix input stands at:
    /// `ctr_of_mix_input(key, mix_input(key, ctr)) == ctr`. Exact for
    /// every counter (multiplication by the stride's modular inverse),
    /// so a batched kernel can rebuild the [`SimRng`] of one lane
    /// element — `SimRng::from_state(key, ctr)` — when it must fall
    /// back to scalar draws.
    #[inline]
    pub fn ctr_of_mix_input(key: u64, h: u64) -> u64 {
        h.wrapping_sub(key).wrapping_mul(GOLDEN_INV)
    }

    /// The next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = mix64(self.key.wrapping_add(self.ctr.wrapping_mul(GOLDEN)));
        self.ctr = self.ctr.wrapping_add(1);
        out
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw 53-bit draw underlying [`SimRng::next_f64`], for callers
    /// that compare against a precomputed [`SimRng::threshold`].
    ///
    /// Consumes exactly one draw, like `next_f64`.
    #[inline]
    pub fn next_u53(&mut self) -> u64 {
        self.next_u64() >> 11
    }

    /// Precompute the integer threshold equivalent to a Bernoulli
    /// probability: for `p` strictly inside `(0, 1)`,
    /// `rng.next_u53() < SimRng::threshold(p)` decides **exactly** like
    /// `rng.next_f64() < p` (hence like [`SimRng::bernoulli`]), while
    /// replacing the int→float conversion and float compare of every
    /// draw with one integer compare.
    ///
    /// Exactness: `next_f64` is `x · 2⁻⁵³` for the integer draw
    /// `x < 2⁵³`, and both `x · 2⁻⁵³` and `p · 2⁵³` are exact in `f64`
    /// (scaling by a power of two only shifts the exponent), so
    /// `x · 2⁻⁵³ < p  ⇔  x < p · 2⁵³  ⇔  x < ⌈p · 2⁵³⌉`.
    ///
    /// Degenerate probabilities (`p ≤ 0`, `p ≥ 1`) must be handled
    /// structurally by the caller — [`SimRng::bernoulli`] consumes no
    /// draw for them, which a threshold compare cannot reproduce.
    #[inline]
    pub fn threshold(p: f64) -> u64 {
        debug_assert!(p > 0.0 && p < 1.0, "degenerate probability {p}");
        (p * (1u64 << 53) as f64).ceil() as u64
    }

    /// A Bernoulli trial with success probability `p`.
    ///
    /// Degenerate probabilities (`p ≤ 0`, `p ≥ 1`) short-circuit without
    /// consuming a draw, so adding certain events to a flow does not
    /// shift the stream of the uncertain ones.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            self.next_f64() < p
        }
    }

    /// A uniform draw in `[lo, hi)` (or exactly `lo` when the interval is
    /// empty).
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty integer range {lo}..{hi}");
        // Multiply-shift rejection-free mapping; the bias is < 2⁻⁶⁴ per
        // draw, far below Monte Carlo noise.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform `usize` draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A normal draw with the given mean and standard deviation
    /// (Box–Muller; consumes two uniforms).
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + sigma * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_reproduce_and_differ() {
        let seq = |seed, stream| {
            let mut r = SimRng::stream(seed, stream);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(1, 0), seq(1, 0));
        assert_ne!(seq(1, 0), seq(1, 1));
        assert_ne!(seq(1, 0), seq(2, 0));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::from_seed(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SimRng::from_seed(9);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut r = SimRng::from_seed(11);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn threshold_compare_is_exactly_bernoulli() {
        // The integer-threshold decision must agree with the float
        // compare on every draw, including probabilities right at the
        // representation edges.
        let ps = [
            0.5,
            0.3,
            0.999,
            1e-12,
            1.0 - 1e-12,
            0.9999f64.powi(112),
            f64::MIN_POSITIVE,
        ];
        for &p in &ps {
            let t = SimRng::threshold(p);
            let mut a = SimRng::from_seed(77);
            let mut b = SimRng::from_seed(77);
            for _ in 0..10_000 {
                assert_eq!(a.next_u53() < t, b.next_f64() < p, "p = {p}");
            }
        }
    }

    #[test]
    fn bernoulli_degenerate_consumes_no_draw() {
        let mut a = SimRng::from_seed(5);
        let mut b = SimRng::from_seed(5);
        assert!(a.bernoulli(1.0));
        assert!(!a.bernoulli(0.0));
        assert!(a.bernoulli(1.5));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn integer_range_covers_and_respects_bounds() {
        let mut r = SimRng::from_seed(7);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = r.range_usize(2, 8);
            assert!((2..8).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::from_seed(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn raw_draws_match_the_stateful_sequence() {
        let mut r = SimRng::stream(17, 42);
        let (key, start) = r.state();
        assert_eq!(start, 0);
        for j in 0..64 {
            assert_eq!(SimRng::raw_u64(key, j), r.next_u64(), "draw {j}");
        }
        let mut r53 = SimRng::stream(17, 42);
        for j in 0..64 {
            assert_eq!(SimRng::raw_u53(key, j), r53.next_u53(), "draw {j}");
        }
    }

    #[test]
    fn mix_input_walk_reproduces_raw_draws() {
        let (key, _) = SimRng::stream(23, 5).state();
        assert_eq!(SimRng::mix_input(key, 0), key);
        let mut h = key;
        for j in 0..64 {
            assert_eq!(SimRng::mix_to_u53(h), SimRng::raw_u53(key, j), "draw {j}");
            assert_eq!(SimRng::ctr_of_mix_input(key, h), j, "ctr at {j}");
            h = SimRng::advance_mix_input(h);
        }
        assert_eq!(h, SimRng::mix_input(key, 64));
    }

    #[test]
    fn golden_inverse_is_exact() {
        assert_eq!(GOLDEN.wrapping_mul(GOLDEN_INV), 1);
        // Counter recovery is exact even at wrap-around extremes.
        for ctr in [0u64, 1, u64::MAX, u64::MAX / 2, 1 << 53] {
            let h = SimRng::mix_input(99, ctr);
            assert_eq!(SimRng::ctr_of_mix_input(99, h), ctr);
        }
    }

    #[test]
    fn state_roundtrips_mid_sequence() {
        let mut a = SimRng::stream(5, 9);
        let _ = a.next_u64();
        let _ = a.next_u64();
        let (key, ctr) = a.state();
        let mut b = SimRng::from_state(key, ctr);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn substreams_are_independent_of_parent_position() {
        let parent = SimRng::from_seed(21);
        let mut advanced = parent.clone();
        let _ = advanced.next_u64();
        // A substream is derived from identity, not from position.
        let mut c1 = parent.substream(0);
        let mut c2 = SimRng::from_seed(21).substream(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }
}
