//! `ipass-sim` — the deterministic Monte Carlo substrate shared by every
//! sampling engine in the workspace.
//!
//! The paper's methodology uses Monte Carlo twice: the MOE cost engine
//! translates yield figures into simulated faults, and the RF layer
//! quantifies the parametric yield of ±10…15 % integrated-passive
//! tolerances. Both engines (and every sweep, sensitivity and trade
//! study above them) run on this crate, which provides:
//!
//! * [`SimRng`] — counter-based per-unit random streams. Output `j` of
//!   stream `i` under seed `s` is a pure hash of `(s, i, j)`; nothing
//!   about scheduling enters the draw.
//! * [`Sampler`] / [`Experiment`] — the two shapes of a Monte Carlo
//!   experiment (accumulate-in-place for hot engines, output-per-unit
//!   for everything else).
//! * [`BatchSampler`] — the batched form: one call evaluates a whole
//!   contiguous unit range, so vectorized lane kernels can walk many
//!   units per op. Every [`Sampler`] is one via a blanket impl.
//! * [`Executor`] — a chunked multi-thread executor. Workers steal
//!   fixed-size chunks from a shared cursor; completed chunks fold into
//!   a prefix strictly in chunk order, so results are **bit-identical
//!   for any thread count**. Threads are a pure performance knob.
//! * [`Welford`], [`BinomialTally`], [`MinMax`] — streaming statistics
//!   with deterministic merge.
//! * [`StopRule`] — optional sequential early stopping once a target
//!   confidence-interval half width is reached, evaluated at
//!   deterministic chunk boundaries.
//! * [`Memo`] — a concurrent cache for per-candidate sub-results in
//!   candidate × scenario batches, with hit/miss/dropped counters
//!   surfaced as an `ipass_obs::MemoStats` snapshot.
//!
//! Wall-clock observability rides on the same machinery:
//! [`Executor::run_batch_traced`] records one `"chunk"` span per
//! completed chunk into an `ipass_obs::Profiler` without perturbing the
//! deterministic accumulator.
//!
//! # The determinism contract
//!
//! For a fixed `(sampler, units, seed)`, [`Executor::run`] returns the
//! same accumulator — bit for bit, including every floating-point sum —
//! for **any** thread count, because
//!
//! 1. unit `i` always draws from `SimRng::stream(seed, i)`,
//! 2. chunk geometry is a pure function of `units`, and
//! 3. chunk accumulators merge in chunk order.
//!
//! # Examples
//!
//! ```
//! use ipass_sim::{BinomialTally, Executor, Sampler, SimRng, Z95};
//!
//! /// Fraction of manufactured parts falling inside a ±15 % band.
//! struct InBand;
//!
//! impl Sampler for InBand {
//!     type Acc = BinomialTally;
//!     type Error = std::convert::Infallible;
//!     fn make_acc(&self) -> BinomialTally {
//!         BinomialTally::new()
//!     }
//!     fn sample(&self, _u: u64, rng: &mut SimRng, acc: &mut BinomialTally)
//!         -> Result<(), Self::Error>
//!     {
//!         let value = rng.normal(100.0, 7.0);
//!         acc.push((85.0..=115.0).contains(&value));
//!         Ok(())
//!     }
//!     fn merge(&self, into: &mut BinomialTally, from: BinomialTally) {
//!         into.merge(&from);
//!     }
//! }
//!
//! let serial = Executor::new(1).run(&InBand, 40_000, 9).unwrap();
//! let parallel = Executor::new(8).run(&InBand, 40_000, 9).unwrap();
//! assert_eq!(serial, parallel); // the determinism contract
//! assert!(serial.fraction() > 0.95);
//! assert!(serial.ci_half_width(Z95) < 0.005);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod exec;
mod memo;
mod rng;
mod stats;

pub use batch::BatchSampler;
pub use exec::{Collect, Executor, Experiment, RunOptions, RunOutcome, Sampler, StopRule};
pub use memo::Memo;
pub use rng::SimRng;
pub use stats::{BinomialTally, MinMax, Welford, Z95, Z99};
