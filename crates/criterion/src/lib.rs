//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace ships
//! this local shim implementing the subset of the criterion API the
//! benches use: `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId` and `Throughput`.
//!
//! Each benchmark reports min/mean ns per iteration on stdout. When the
//! `BENCH_JSON` environment variable names a file, all results of the
//! run are additionally written there as a JSON array — that is how the
//! committed `BENCH_*.json` baselines are produced.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/param` or the function name).
    pub id: String,
    /// Mean nanoseconds per iteration over the measured samples.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Declared throughput elements per iteration, if any.
    pub elements: Option<u64>,
    /// Worker threads the benchmark case used, when declared via
    /// [`BenchmarkGroup::threads`] (baselines self-describe their
    /// scaling trajectory).
    pub threads: Option<usize>,
    /// Kernel lane width the benchmark case used, when declared via
    /// [`BenchmarkGroup::lane_width`] (batched-kernel baselines
    /// self-describe the width they measured).
    pub lane_width: Option<usize>,
    /// RNG draws per throughput element, when the case declared a probe
    /// snapshot via [`BenchmarkGroup::draws_per_elem`] — the workload's
    /// exact per-element randomness cost, independent of timing noise.
    pub draws_per_elem: Option<f64>,
    /// Memo-cache hit rate (hits over lookups), when the case declared
    /// one via [`BenchmarkGroup::memo_hit_rate`].
    pub memo_hit_rate: Option<f64>,
    /// Median per-element latency in nanoseconds, when the case
    /// measured one itself via [`BenchmarkGroup::latency_ns`] (load
    /// harnesses time individual requests; the harness's own samples
    /// only see whole iterations).
    pub p50_ns: Option<f64>,
    /// 99th-percentile per-element latency in nanoseconds, when the
    /// case declared one via [`BenchmarkGroup::latency_ns`].
    pub p99_ns: Option<f64>,
}

impl BenchResult {
    /// Elements per second, when a throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 / (self.mean_ns * 1e-9))
    }

    /// Mean nanoseconds per element, when a throughput was declared.
    pub fn ns_per_element(&self) -> Option<f64> {
        self.elements
            .filter(|&e| e > 0)
            .map(|e| self.mean_ns / e as f64)
    }
}

/// The benchmark driver (a small timing harness).
///
/// When the `BENCH_FILTER` environment variable is set, only
/// benchmarks whose id contains the filter substring are run — that is
/// how CI smoke steps run a single case without paying for the whole
/// suite.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            filter: std::env::var("BENCH_FILTER").ok().filter(|f| !f.is_empty()),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Set the target measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), CaseMeta::default(), |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            meta: CaseMeta::default(),
        }
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run_one<F>(&mut self, id: String, meta: CaseMeta, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up + per-iteration estimate.
        let mut bench = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up {
            f(&mut bench);
            per_iter = bench.elapsed.max(Duration::from_nanos(1));
        }
        // Choose an iteration count so all samples fit the measurement
        // window.
        let budget = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, u128::from(u64::MAX)) as u64;
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bench = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bench);
            samples_ns.push(bench.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(0.0_f64, f64::max);
        let result = BenchResult {
            id,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: samples_ns.len(),
            iters_per_sample: iters,
            elements: meta.elements,
            threads: meta.threads,
            lane_width: meta.lane_width,
            draws_per_elem: meta.draws_per_elem,
            memo_hit_rate: meta.memo_hit_rate,
            p50_ns: meta.p50_ns,
            p99_ns: meta.p99_ns,
        };
        let throughput = result
            .elements_per_sec()
            .map(|eps| format!("  ({eps:.0} elem/s)"))
            .unwrap_or_default();
        println!(
            "bench {:<44} {:>12.0} ns/iter (min {:.0}, max {:.0}){}",
            result.id, result.mean_ns, result.min_ns, result.max_ns, throughput
        );
        self.results.push(result);
    }
}

/// Per-case metadata recorded alongside the timings (declared on the
/// group, copied into each result).
#[derive(Debug, Clone, Copy, Default)]
struct CaseMeta {
    elements: Option<u64>,
    threads: Option<usize>,
    lane_width: Option<usize>,
    draws_per_elem: Option<f64>,
    memo_hit_rate: Option<f64>,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
}

/// A group of related benchmarks sharing a name and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    meta: CaseMeta,
}

impl BenchmarkGroup<'_> {
    /// Declare the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.meta.elements = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Declare the worker-thread count the next cases run on
    /// (recorded in the result and used for the scaling report —
    /// an extension over the real criterion API).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.meta.threads = Some(threads);
        self
    }

    /// Declare the kernel lane width the next cases run on (recorded in
    /// the result so batch-kernel baselines self-describe — an
    /// extension over the real criterion API).
    pub fn lane_width(&mut self, width: usize) -> &mut Self {
        self.meta.lane_width = Some(width);
        self
    }

    /// Attach a probe-measured RNG draw count per throughput element to
    /// the group's subsequent cases (deterministic workload metadata —
    /// baselines self-describe their randomness cost).
    pub fn draws_per_elem(&mut self, draws: f64) -> &mut Self {
        self.meta.draws_per_elem = Some(draws);
        self
    }

    /// Attach a probe-measured memo hit rate (hits over lookups) to the
    /// group's subsequent cases.
    pub fn memo_hit_rate(&mut self, rate: f64) -> &mut Self {
        self.meta.memo_hit_rate = Some(rate);
        self
    }

    /// Attach self-measured per-element latency percentiles (p50/p99,
    /// nanoseconds) to the group's subsequent cases. Load harnesses
    /// time each request individually and summarize here; the timing
    /// harness itself only sees whole iterations, so it cannot compute
    /// these (an extension over the real criterion API).
    pub fn latency_ns(&mut self, p50: f64, p99: f64) -> &mut Self {
        self.meta.p50_ns = Some(p50);
        self.meta.p99_ns = Some(p99);
        self
    }

    /// Benchmark one parameterized case.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let meta = self.meta;
        self.criterion.run_one(full, meta, |b| f(b, input));
        self
    }

    /// Benchmark an unparameterized case inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let meta = self.meta;
        self.criterion.run_one(full, meta, |b| f(b));
        self
    }

    /// Close the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The measurement callback handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Declared per-iteration workload, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The current git revision (short hash, `-dirty` suffixed when the
/// tree has uncommitted changes), or `"unknown"` outside a checkout —
/// committed baselines self-describe which code produced them.
pub fn git_revision() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    let Some(rev) = run(&["rev-parse", "--short", "HEAD"]).filter(|r| !r.is_empty()) else {
        return "unknown".to_string();
    };
    match run(&["status", "--porcelain"]) {
        Some(status) if !status.is_empty() => format!("{rev}-dirty"),
        _ => rev,
    }
}

/// Worker threads the host actually offers (1 when undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Print speedup-vs-1-thread for every group with thread-annotated
/// cases, so scaling regressions are visible straight from the bench
/// log. Called by [`finalize`].
///
/// A sweep that requests more threads than the host has cores is an
/// oversubscription measurement, not a scaling story — on a 1-core CI
/// runner an 8-thread case measuring 2.9 ms against a 2.6 ms 1-thread
/// base would read as a regression. Such groups are annotated and
/// their ratios skipped.
pub fn report_thread_scaling(results: &[BenchResult]) {
    report_thread_scaling_on(results, available_cores());
}

/// [`report_thread_scaling`] with an explicit core count (testable).
pub fn report_thread_scaling_on(results: &[BenchResult], cores: usize) {
    let mut groups: Vec<&str> = Vec::new();
    for r in results.iter().filter(|r| r.threads.is_some()) {
        if let Some((group, _)) = r.id.rsplit_once('/') {
            if !groups.contains(&group) {
                groups.push(group);
            }
        }
    }
    for group in groups {
        let cases: Vec<&BenchResult> = results
            .iter()
            .filter(|r| {
                r.threads.is_some()
                    && r.id.starts_with(group)
                    && r.id[group.len()..].starts_with('/')
            })
            .collect();
        // Only a *sweep* over thread counts is a scaling story; a group
        // whose cases all ran on the same thread count varies something
        // else (unit count, rework depth, …).
        if !cases.iter().any(|r| r.threads != cases[0].threads) {
            continue;
        }
        let Some(base) = cases.iter().find(|r| r.threads == Some(1)) else {
            continue;
        };
        // Only cases that fit the host's cores are a scaling signal;
        // oversubscribed cases are annotated per case, not printed as
        // ratios — and a host with fewer cores than every swept count
        // (1-core CI) gets the annotation alone.
        let (valid, over): (Vec<&&BenchResult>, Vec<&&BenchResult>) =
            cases.iter().partition(|r| r.threads.unwrap_or(1) <= cores);
        let note = if over.is_empty() {
            String::new()
        } else {
            let omitted = over
                .iter()
                .map(|r| format!("{}t", r.threads.unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("/");
            format!(
                " ({omitted} omitted — only {cores} core(s) available; \
                 oversubscribed timings are not a scaling signal)"
            )
        };
        if valid.len() < 2 {
            println!("speedup vs 1 thread [{group}]: skipped{note}");
            continue;
        }
        let line = valid
            .iter()
            .map(|r| {
                format!(
                    "{}t {:.2}x",
                    r.threads.unwrap_or(0),
                    base.mean_ns / r.mean_ns
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        println!("speedup vs 1 thread [{group}]: {line}{note}");
    }
}

/// The banner printed when a baseline is recorded from a dirty working
/// tree, or `None` for a clean (or unknown) revision. A `-dirty`
/// baseline cannot be reproduced from any commit, so a recording run
/// should never silently accept one.
pub fn dirty_rev_warning(git_rev: &str) -> Option<String> {
    if !git_rev.ends_with("-dirty") {
        return None;
    }
    Some(format!(
        "\n\
         !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!\n\
         !!  WARNING: recording benchmark baseline from a DIRTY tree        !!\n\
         !!  git_rev = {git_rev:<55} !!\n\
         !!  No commit reproduces these numbers. Commit (or stash) your     !!\n\
         !!  changes and rerun before updating a committed BENCH_*.json.    !!\n\
         !!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
    ))
}

/// Write recorded results as JSON to the `BENCH_JSON` path, if set,
/// and print the thread-scaling report.
/// Called by [`criterion_main!`]; harmless to call directly.
pub fn finalize(results: &[BenchResult]) {
    report_thread_scaling(results);
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let git_rev = git_revision();
    if let Some(warning) = dirty_rev_warning(&git_rev) {
        eprintln!("{warning}");
    }
    let nproc = available_cores();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}, \"elements\": {}, \"ns_per_elem\": {}, \
             \"threads\": {}, \"lane_width\": {}, \"draws_per_elem\": {}, \
             \"memo_hit_rate\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"nproc\": {nproc}, \
             \"git_rev\": \"{git_rev}\"}}{}\n",
            r.id.replace('"', "'"),
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            r.iters_per_sample,
            r.elements.map_or("null".to_string(), |e| e.to_string()),
            r.ns_per_element()
                .map_or("null".to_string(), |n| format!("{n:.2}")),
            r.threads.map_or("null".to_string(), |t| t.to_string()),
            r.lane_width.map_or("null".to_string(), |w| w.to_string()),
            r.draws_per_elem
                .map_or("null".to_string(), |d| format!("{d:.4}")),
            r.memo_hit_rate
                .map_or("null".to_string(), |h| format!("{h:.4}")),
            r.p50_ns.map_or("null".to_string(), |p| format!("{p:.1}")),
            r.p99_ns.map_or("null".to_string(), |p| format!("{p:.1}")),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write BENCH_JSON={path}: {e}");
    } else {
        println!("wrote benchmark baseline to {path}");
    }
}

/// Define a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all: Vec<$crate::BenchResult> = Vec::new();
            $(all.extend($group().results().iter().cloned());)+
            $crate::finalize(&all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_records_results() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(30));
        spin(&mut c);
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "spin");
        assert_eq!(c.results()[1].id, "grouped/4");
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[1].elements_per_sec().unwrap() > 0.0);
        assert!(c.results()[0].min_ns <= c.results()[0].mean_ns);
        assert!(c.results()[1].ns_per_element().unwrap() > 0.0);
        assert_eq!(c.results()[0].ns_per_element(), None);
    }

    #[test]
    fn threads_are_recorded_per_case() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("scaling");
        for t in [1usize, 2] {
            group.threads(t);
            group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &n| {
                b.iter(|| (0..n as u64).sum::<u64>())
            });
        }
        group.finish();
        assert_eq!(c.results()[0].threads, Some(1));
        assert_eq!(c.results()[1].threads, Some(2));
        // The scaling report covers exactly this shape; it must not
        // panic and needs a 1-thread base to report against. On a
        // 1-core host the 2-thread case oversubscribes and the ratio
        // line is replaced by the skip annotation; with enough cores
        // the ratios print — neither branch may panic.
        report_thread_scaling_on(c.results(), 1);
        report_thread_scaling_on(c.results(), 8);
        report_thread_scaling(c.results());
    }

    #[test]
    fn available_cores_is_at_least_one() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn filter_skips_non_matching_cases() {
        let mut c = Criterion {
            filter: Some("grouped".to_string()),
            ..Criterion::default()
        }
        .sample_size(2)
        .warm_up_time(Duration::from_millis(2))
        .measurement_time(Duration::from_millis(10));
        spin(&mut c);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "grouped/4");
    }

    #[test]
    fn git_revision_is_nonempty() {
        assert!(!git_revision().is_empty());
    }

    #[test]
    fn lane_width_is_recorded_per_case() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("widths");
        for w in [1usize, 8] {
            group.lane_width(w);
            group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &n| {
                b.iter(|| (0..n as u64).sum::<u64>())
            });
        }
        group.finish();
        assert_eq!(c.results()[0].lane_width, Some(1));
        assert_eq!(c.results()[1].lane_width, Some(8));
    }

    #[test]
    fn dirty_revision_triggers_a_loud_warning() {
        assert_eq!(dirty_rev_warning("1fe6338"), None);
        assert_eq!(dirty_rev_warning("unknown"), None);
        let banner = dirty_rev_warning("1fe6338-dirty").expect("dirty rev warns");
        assert!(banner.contains("WARNING"));
        assert!(banner.contains("1fe6338-dirty"));
        assert!(banner.contains("DIRTY"));
    }
}
