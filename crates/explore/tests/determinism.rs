//! The explorer's determinism contract: results — screens, frontiers,
//! refinements, Monte Carlo confirmations — are bit-identical for any
//! executor thread count, for every sampler.

use ipass_explore::{
    FlowAxis, FlowExplorer, Levels, Metric, Objective, RefineOptions, SamplerSpec,
};
use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, StopRule, Test, YieldModel};
use ipass_sim::Executor;
use ipass_units::{Money, Probability};

fn flow(board_cost: f64, process_yield: f64, coverage: f64) -> Flow {
    let line = Line::builder(
        "det",
        Part::new("board", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(board_cost))),
    )
    .process(
        Process::new("assemble")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_yield(YieldModel::flat(Probability::clamped(process_yield))),
    )
    .test(
        Test::new("test")
            .with_cost(StepCost::fixed(Money::new(0.5)))
            .with_coverage(Probability::clamped(coverage)),
    )
    .build()
    .unwrap();
    Flow::new(line)
}

fn explorer(executor: Executor) -> FlowExplorer {
    FlowExplorer::new(flow(3.0, 0.93, 0.97).compiled().unwrap())
        .axis(FlowAxis::cost_scale(
            "board",
            Levels::linspace(0.5, 1.5, 12),
        ))
        .axis(FlowAxis::step_yield(
            "assemble",
            Levels::linspace(0.85, 0.99, 12),
        ))
        .objective(Objective::minimize(Metric::FinalCostPerShipped))
        .objective(Objective::maximize(Metric::ShippedFraction))
        .with_executor(executor)
}

#[test]
fn screens_are_bit_identical_across_thread_counts() {
    for sampler in [
        SamplerSpec::Grid,
        SamplerSpec::Random {
            points: 144,
            seed: 7,
        },
        SamplerSpec::LatinHypercube {
            points: 144,
            seed: 7,
        },
    ] {
        let baseline = explorer(Executor::new(1)).explore(&sampler).unwrap();
        let baseline_frontier = explorer(Executor::new(1))
            .screen_frontier(&sampler)
            .unwrap();
        assert_eq!(baseline.frontier, baseline_frontier);
        for threads in [2, 4, 8] {
            let run = explorer(Executor::new(threads)).explore(&sampler).unwrap();
            assert_eq!(run.points, baseline.points, "threads = {threads}");
            assert_eq!(run.frontier, baseline.frontier, "threads = {threads}");
            assert_eq!(
                explorer(Executor::new(threads))
                    .screen_frontier(&sampler)
                    .unwrap(),
                baseline_frontier,
                "threads = {threads}"
            );
        }
    }
}

#[test]
fn directed_screen_is_bit_identical_across_thread_counts() {
    let baseline = explorer(Executor::new(1))
        .screen_frontier_directed()
        .unwrap();
    // Also exact against the full-grid screen.
    assert_eq!(
        baseline.frontier,
        explorer(Executor::new(1))
            .screen_frontier(&SamplerSpec::Grid)
            .unwrap()
    );
    for threads in [2, 4, 8] {
        let run = explorer(Executor::new(threads))
            .screen_frontier_directed()
            .unwrap();
        assert_eq!(run.frontier, baseline.frontier, "threads = {threads}");
        assert_eq!(run.evaluated, baseline.evaluated, "threads = {threads}");
        assert_eq!(run.grid_points, baseline.grid_points);
    }
}

#[test]
fn refinement_is_bit_identical_across_thread_counts() {
    let options = RefineOptions {
        margin: 0.08,
        mc_units: 30_000,
        seed: 23,
        stop: Some(StopRule::half_width_95(0.01)),
        ..RefineOptions::default()
    };
    let rebuild = |coords: &[f64]| Ok(flow(3.0 * coords[0], coords[1], 0.97));
    let baseline = explorer(Executor::new(1))
        .refine(&SamplerSpec::Grid, &options, rebuild)
        .unwrap();
    assert!(!baseline.promoted.is_empty());
    // The early-stopping rule actually fires somewhere, so the sweep
    // also proves the stopping point is scheduling-independent.
    assert!(baseline.confirmations.iter().any(|c| c.stopped_early));
    for threads in [2, 4, 8] {
        let run = explorer(Executor::new(threads))
            .refine(&SamplerSpec::Grid, &options, rebuild)
            .unwrap();
        assert_eq!(run.screen.points, baseline.screen.points);
        assert_eq!(run.promoted, baseline.promoted, "threads = {threads}");
        assert_eq!(run.confirmations.len(), baseline.confirmations.len());
        for (a, b) in run.confirmations.iter().zip(&baseline.confirmations) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.objectives, b.objectives, "threads = {threads}");
            assert_eq!(a.units_run, b.units_run);
            assert_eq!(a.stopped_early, b.stopped_early);
        }
    }
}

#[test]
fn promoted_points_simulate_independently_of_the_band() {
    // A promoted point's confirmation depends only on (seed, index),
    // not on which other points happened to be promoted: narrowing the
    // margin must not move the surviving confirmations.
    let wide = explorer(Executor::new(4))
        .refine(
            &SamplerSpec::Grid,
            &RefineOptions {
                margin: 0.2,
                mc_units: 5_000,
                seed: 5,
                stop: None,
                ..RefineOptions::default()
            },
            |coords| Ok(flow(3.0 * coords[0], coords[1], 0.97)),
        )
        .unwrap();
    let narrow = explorer(Executor::new(4))
        .refine(
            &SamplerSpec::Grid,
            &RefineOptions {
                margin: 0.0,
                mc_units: 5_000,
                seed: 5,
                stop: None,
                ..RefineOptions::default()
            },
            |coords| Ok(flow(3.0 * coords[0], coords[1], 0.97)),
        )
        .unwrap();
    assert!(narrow.promoted.len() < wide.promoted.len());
    // margin = 0 promotes exactly the frontier.
    assert_eq!(narrow.promoted, narrow.frontier().indices());
    for c in &narrow.confirmations {
        let same = wide
            .confirmations
            .iter()
            .find(|w| w.index == c.index)
            .expect("frontier point must be in the wider band");
        assert_eq!(c.objectives, same.objectives);
        assert_eq!(c.units_run, same.units_run);
    }
}
