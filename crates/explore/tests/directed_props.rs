//! Property tests for the gradient-directed frontier screen: on
//! randomized flows and grids it only ever surfaces points of the true
//! (full-grid) frontier — never a pseudo-frontier member a skipped
//! point would dominate — it finds all of them, and the result is
//! deterministic.

use ipass_explore::{FlowAxis, FlowExplorer, Levels, Metric, Objective, SamplerSpec};
use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, Test, YieldModel};
use ipass_sim::Executor;
use ipass_units::{Money, Probability};
use proptest::prelude::*;

fn flow(board_cost: f64, process_yield: f64, coverage: f64) -> Flow {
    let line = Line::builder(
        "prop",
        Part::new("board", CostCategory::Substrate)
            .with_cost(StepCost::fixed(Money::new(board_cost))),
    )
    .process(
        Process::new("assemble")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_yield(YieldModel::flat(Probability::clamped(process_yield))),
    )
    .test(
        Test::new("test")
            .with_cost(StepCost::fixed(Money::new(0.5)))
            .with_coverage(Probability::clamped(coverage)),
    )
    .build()
    .unwrap();
    Flow::new(line)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn directed_screen_equals_the_full_grid_frontier(
        board_cost in 0.5f64..20.0,
        process_yield in 0.55f64..0.995,
        base_coverage in 0.9f64..0.99,
        scale_lo in 0.3f64..0.9,
        scale_span in 0.2f64..1.5,
        cov_lo in 0.85f64..0.95,
        n_scale in 3usize..14,
        n_cov in 3usize..14,
    ) {
        let explorer = FlowExplorer::new(
            flow(board_cost, process_yield, base_coverage).compiled().unwrap(),
        )
        .axis(FlowAxis::cost_scale(
            "board",
            Levels::linspace(scale_lo, scale_lo + scale_span, n_scale),
        ))
        .axis(FlowAxis::coverage(
            "test",
            Levels::linspace(cov_lo, 0.999, n_cov),
        ))
        .objective(Objective::minimize(Metric::FinalCostPerShipped))
        .objective(Objective::minimize(Metric::EscapeRate))
        .with_executor(Executor::serial());

        let full = explorer.screen_frontier(&SamplerSpec::Grid).unwrap();
        let directed = explorer.screen_frontier_directed().unwrap();

        // Every directed member is a true frontier member (it only
        // ever adds frontier-dominating points), and none are missing.
        prop_assert_eq!(&directed.frontier, &full);
        prop_assert!(directed.evaluated <= directed.grid_points);

        // Deterministic: a second run (and a parallel one) reproduces
        // the exact same frontier and evaluation count.
        let again = explorer.screen_frontier_directed().unwrap();
        prop_assert_eq!(&again.frontier, &directed.frontier);
        prop_assert_eq!(again.evaluated, directed.evaluated);
        let parallel = explorer
            .clone()
            .with_executor(Executor::new(4))
            .screen_frontier_directed()
            .unwrap();
        prop_assert_eq!(&parallel.frontier, &directed.frontier);
        prop_assert_eq!(parallel.evaluated, directed.evaluated);
    }
}
