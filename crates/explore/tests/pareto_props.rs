//! Property tests for the Pareto machinery: dominance order axioms,
//! frontier minimality, and insertion-order invariance.

use ipass_explore::{dominates, DesignPoint, ParetoFrontier, Sense};
use proptest::prelude::*;

/// A small objective vector with values coarse enough that exact ties
/// actually occur (ties are where naive frontier code goes wrong).
fn objective_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..8).prop_map(|v| v as f64), 3..4)
}

fn senses() -> [Sense; 3] {
    [Sense::Minimize, Sense::Maximize, Sense::Minimize]
}

fn points(objectives: Vec<Vec<f64>>) -> Vec<DesignPoint> {
    objectives
        .into_iter()
        .enumerate()
        .map(|(index, objectives)| DesignPoint {
            index,
            coords: vec![index as f64],
            objectives,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominance_is_antisymmetric_and_irreflexive(
        a in objective_vec(),
        b in objective_vec(),
    ) {
        let s = senses();
        prop_assert!(!dominates(&a, &a, &s), "a point must never dominate itself");
        if dominates(&a, &b, &s) {
            prop_assert!(!dominates(&b, &a, &s), "dominance must be antisymmetric");
        }
    }

    #[test]
    fn dominance_is_transitive(
        a in objective_vec(),
        b in objective_vec(),
        c in objective_vec(),
    ) {
        let s = senses();
        if dominates(&a, &b, &s) && dominates(&b, &c, &s) {
            prop_assert!(dominates(&a, &c, &s), "dominance must be transitive");
        }
    }

    #[test]
    fn frontier_is_minimal_and_complete(
        objectives in proptest::collection::vec(objective_vec(), 1..40),
    ) {
        let all = points(objectives);
        let frontier = ParetoFrontier::extract(senses().to_vec(), all.clone());
        let s = senses();
        // Minimality: no input point dominates any member.
        for m in frontier.members() {
            for p in &all {
                prop_assert!(
                    !dominates(&p.objectives, &m.objectives, &s),
                    "member {} is dominated by input {}", m.index, p.index
                );
            }
        }
        // No member dominates another member (pairwise incomparable).
        for m in frontier.members() {
            for o in frontier.members() {
                prop_assert!(!dominates(&m.objectives, &o.objectives, &s));
            }
        }
        // Completeness: every non-member is dominated by some member.
        let member_ids: Vec<usize> = frontier.indices();
        for p in &all {
            if !member_ids.contains(&p.index) {
                prop_assert!(
                    frontier
                        .members()
                        .iter()
                        .any(|m| dominates(&m.objectives, &p.objectives, &s)),
                    "non-member {} is dominated by nobody", p.index
                );
            }
        }
    }

    #[test]
    fn frontier_is_insertion_order_invariant(
        objectives in proptest::collection::vec(objective_vec(), 1..40),
        rotation in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let all = points(objectives);
        let baseline = ParetoFrontier::extract(senses().to_vec(), all.clone());

        // A rotation and a deterministic shuffle must both land on the
        // identical frontier (members are index-sorted, so whole-struct
        // equality is the set equality).
        let mut rotated = all.clone();
        rotated.rotate_left(rotation % all.len());
        prop_assert_eq!(
            &ParetoFrontier::extract(senses().to_vec(), rotated),
            &baseline
        );

        let mut shuffled = all.clone();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for k in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(k, (state % (k as u64 + 1)) as usize);
        }
        prop_assert_eq!(
            &ParetoFrontier::extract(senses().to_vec(), shuffled),
            &baseline
        );

        // Chunked merge (the executor's fold shape) agrees too.
        let cut = all.len() / 2;
        let mut left = ParetoFrontier::extract(senses().to_vec(), all[..cut].to_vec());
        left.merge(ParetoFrontier::extract(senses().to_vec(), all[cut..].to_vec()));
        prop_assert_eq!(&left, &baseline);
    }
}
