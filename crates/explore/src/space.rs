//! Axes: the named dimensions of a design space.

use crate::error::ExploreError;

/// The values an [`Axis`] can take.
#[derive(Debug, Clone, PartialEq)]
pub enum Levels {
    /// `count` evenly spaced values covering `[lo, hi]` inclusive.
    Linear {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Number of grid levels (≥ 1; a single level sits at `lo`).
        count: usize,
    },
    /// An explicit list of values, sampled as given.
    Explicit(Vec<f64>),
}

impl Levels {
    /// `count` evenly spaced levels covering `[lo, hi]` inclusive.
    pub fn linspace(lo: f64, hi: f64, count: usize) -> Levels {
        Levels::Linear { lo, hi, count }
    }

    /// An explicit list of levels.
    pub fn explicit(values: impl Into<Vec<f64>>) -> Levels {
        Levels::Explicit(values.into())
    }

    /// Number of grid levels.
    pub fn count(&self) -> usize {
        match self {
            Levels::Linear { count, .. } => *count,
            Levels::Explicit(values) => values.len(),
        }
    }

    /// The `i`-th grid level (grid samplers).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.count()` (indices come from the sampler,
    /// which derives them from this very count).
    pub fn level(&self, i: usize) -> f64 {
        match self {
            Levels::Linear { lo, hi, count } => {
                assert!(i < *count, "level {i} out of {count}");
                if *count == 1 {
                    *lo
                } else {
                    lo + (hi - lo) * i as f64 / (*count as f64 - 1.0)
                }
            }
            Levels::Explicit(values) => values[i],
        }
    }

    /// Map a unit draw `u ∈ [0, 1)` onto the axis (random and
    /// Latin-hypercube samplers): continuous over a linear range,
    /// snapped to a level for explicit lists.
    pub fn at_unit(&self, u: f64) -> f64 {
        match self {
            Levels::Linear { lo, hi, .. } => lo + (hi - lo) * u,
            Levels::Explicit(values) => {
                let i = ((u * values.len() as f64) as usize).min(values.len() - 1);
                values[i]
            }
        }
    }

    /// `(lo, hi)` bounds of the axis.
    pub fn bounds(&self) -> (f64, f64) {
        match self {
            Levels::Linear { lo, hi, .. } => (*lo, *hi),
            Levels::Explicit(values) => values
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                }),
        }
    }

    pub(crate) fn validate(&self, axis: &str) -> Result<(), ExploreError> {
        if self.count() == 0 {
            return Err(ExploreError::EmptyAxis { axis: axis.into() });
        }
        let (lo, hi) = self.bounds();
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(ExploreError::InvalidAxisRange {
                axis: axis.into(),
                lo,
                hi,
            });
        }
        Ok(())
    }
}

/// One named dimension of a design space.
///
/// The generic engine ([`explore_fn`](crate::explore_fn)) only needs the
/// name and the levels; the production-flow binding wraps this in a
/// [`FlowAxis`](crate::FlowAxis) that also knows which patch slot the
/// value lands in.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Display name of the dimension.
    pub name: String,
    /// The values the dimension takes.
    pub levels: Levels,
}

impl Axis {
    /// A named axis over the given levels.
    pub fn new(name: impl Into<String>, levels: Levels) -> Axis {
        Axis {
            name: name.into(),
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_covers_inclusive_range() {
        let l = Levels::linspace(1.0, 3.0, 5);
        assert_eq!(l.count(), 5);
        assert_eq!(l.level(0), 1.0);
        assert_eq!(l.level(2), 2.0);
        assert_eq!(l.level(4), 3.0);
        assert_eq!(Levels::linspace(2.5, 9.0, 1).level(0), 2.5);
    }

    #[test]
    fn at_unit_maps_and_snaps() {
        let lin = Levels::linspace(10.0, 20.0, 3);
        assert_eq!(lin.at_unit(0.0), 10.0);
        assert_eq!(lin.at_unit(0.5), 15.0);
        let exp = Levels::explicit([1.0, 2.0, 4.0]);
        assert_eq!(exp.at_unit(0.0), 1.0);
        assert_eq!(exp.at_unit(0.4), 2.0);
        assert_eq!(exp.at_unit(0.99), 4.0);
    }

    #[test]
    fn validation_catches_degenerate_axes() {
        assert!(matches!(
            Levels::explicit([]).validate("x"),
            Err(ExploreError::EmptyAxis { .. })
        ));
        assert!(matches!(
            Levels::linspace(3.0, 1.0, 4).validate("x"),
            Err(ExploreError::InvalidAxisRange { .. })
        ));
        assert!(matches!(
            Levels::linspace(0.0, f64::INFINITY, 4).validate("x"),
            Err(ExploreError::InvalidAxisRange { .. })
        ));
        assert!(Levels::linspace(0.0, 1.0, 4).validate("x").is_ok());
    }
}
