//! The production-flow binding: explore a [`CompiledFlow`] by patching.
//!
//! A [`FlowAxis`] binds a generic [`Axis`] to a patch slot of the
//! compiled program (or to the amortization volume, or to a custom
//! patch procedure); a [`Metric`] reads one objective value off a
//! [`CostReport`]. The explorer then drives the pipeline the paper's
//! scenario questions ask for:
//!
//! 1. **sample** the axes (grid / random / Latin hypercube),
//! 2. **screen** every point analytically — a [`FlowPatch`] per point,
//!    ~hundreds of nanoseconds each, via the same shared
//!    [`analyze_patched_batch`] fan-out the sweeps and tornado charts
//!    use,
//! 3. **extract** the Pareto frontier over the objectives,
//! 4. optionally **refine**: promote only frontier-adjacent points to
//!    seeded Monte Carlo confirmation (with CI-based early stopping),
//!    rebuilding the line per promoted point — patched programs are
//!    analytic-only by contract.

use crate::engine::{checked_objectives, Exploration};
use crate::error::ExploreError;
use crate::pareto::{dominates, DesignPoint, ParetoFrontier, Sense};
use crate::sample::SamplerSpec;
use crate::space::{Axis, Levels};
use ipass_moe::{
    analyze_patched_batch, CompiledFlow, CostReport, DualDirection, Flow, FlowError, FlowPatch,
    Gradient, PatchDirective, SimOptions, SlotKind, StopRule,
};
use ipass_obs::{ExploreStats, Probe, Profiler, RunStats};
use ipass_sim::{Executor, SimRng};
use ipass_units::{Money, Probability};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A caller-supplied patch procedure (the [`FlowTarget::Custom`]
/// payload): writes one axis value into a [`FlowPatch`], possibly
/// across several coupled slots.
pub type CustomPatch = Arc<dyn Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Send + Sync>;

/// What a [`FlowAxis`] value is written into.
#[derive(Clone)]
pub enum FlowTarget {
    /// A cost slot, set to the axis value per input unit
    /// ([`FlowPatch::set_cost`]).
    UnitCost {
        /// Patch-slot name.
        slot: String,
    },
    /// A cost slot, scaled by the axis value
    /// ([`FlowPatch::scale_cost`]).
    CostScale {
        /// Patch-slot name.
        slot: String,
    },
    /// A yield slot, set to the axis value
    /// ([`FlowPatch::set_yield`]).
    Yield {
        /// Patch-slot name.
        slot: String,
    },
    /// A test-coverage slot, set to the axis value
    /// ([`FlowPatch::set_coverage`]).
    Coverage {
        /// Patch-slot name.
        slot: String,
    },
    /// The amortization volume ([`FlowPatch::set_volume`]), rounded to
    /// the nearest unit (minimum 1).
    Volume,
    /// A caller-supplied patch procedure, for axis values that move
    /// several coupled slots at once (e.g. a substrate yield whose
    /// known-good markup moves the carrier cost too).
    Custom(CustomPatch),
}

impl fmt::Debug for FlowTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowTarget::UnitCost { slot } => write!(f, "UnitCost({slot:?})"),
            FlowTarget::CostScale { slot } => write!(f, "CostScale({slot:?})"),
            FlowTarget::Yield { slot } => write!(f, "Yield({slot:?})"),
            FlowTarget::Coverage { slot } => write!(f, "Coverage({slot:?})"),
            FlowTarget::Volume => write!(f, "Volume"),
            FlowTarget::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// One axis of a production-flow design space: a generic [`Axis`] plus
/// where its value lands in the compiled program.
#[derive(Debug, Clone)]
pub struct FlowAxis {
    /// The generic axis (name + levels).
    pub axis: Axis,
    /// Where the value is written.
    pub target: FlowTarget,
}

impl FlowAxis {
    fn new(name: impl Into<String>, levels: Levels, target: FlowTarget) -> FlowAxis {
        FlowAxis {
            axis: Axis::new(name, levels),
            target,
        }
    }

    /// A per-input-unit cost axis on `slot`.
    pub fn unit_cost(slot: impl Into<String>, levels: Levels) -> FlowAxis {
        let slot = slot.into();
        FlowAxis::new(
            format!("{slot} cost"),
            levels,
            FlowTarget::UnitCost { slot },
        )
    }

    /// A cost-scale axis on `slot` (axis value multiplies the compiled
    /// cost).
    pub fn cost_scale(slot: impl Into<String>, levels: Levels) -> FlowAxis {
        let slot = slot.into();
        FlowAxis::new(
            format!("{slot} cost ×"),
            levels,
            FlowTarget::CostScale { slot },
        )
    }

    /// A yield axis on `slot` (axis value is the per-input-unit success
    /// probability; levels must stay inside `[0, 1]`).
    pub fn step_yield(slot: impl Into<String>, levels: Levels) -> FlowAxis {
        let slot = slot.into();
        FlowAxis::new(format!("{slot} yield"), levels, FlowTarget::Yield { slot })
    }

    /// A fault-coverage axis on test stage `slot` (levels must stay
    /// inside `[0, 1]`).
    pub fn coverage(slot: impl Into<String>, levels: Levels) -> FlowAxis {
        let slot = slot.into();
        FlowAxis::new(
            format!("{slot} coverage"),
            levels,
            FlowTarget::Coverage { slot },
        )
    }

    /// An amortization-volume axis.
    pub fn volume(levels: Levels) -> FlowAxis {
        FlowAxis::new("volume", levels, FlowTarget::Volume)
    }

    /// A custom axis applying `apply(value, patch)` per point.
    pub fn custom(
        name: impl Into<String>,
        levels: Levels,
        apply: impl Fn(f64, &mut FlowPatch) -> Result<(), FlowError> + Send + Sync + 'static,
    ) -> FlowAxis {
        FlowAxis::new(name, levels, FlowTarget::Custom(Arc::new(apply)))
    }

    /// Rename the axis (the constructors derive a name from the slot).
    pub fn named(mut self, name: impl Into<String>) -> FlowAxis {
        self.axis.name = name.into();
        self
    }

    /// The declarative [`PatchDirective`] for value `x`, when the target
    /// has one (volume and custom axes patch beyond the directive
    /// vocabulary and return `None`).
    pub fn directive(&self, x: f64) -> Option<PatchDirective> {
        match &self.target {
            FlowTarget::UnitCost { slot } => Some(PatchDirective::SetCost {
                slot: slot.clone(),
                unit_cost: Money::new(x),
            }),
            FlowTarget::CostScale { slot } => Some(PatchDirective::ScaleCost {
                slot: slot.clone(),
                factor: x,
            }),
            FlowTarget::Yield { slot } => Some(PatchDirective::SetYield {
                slot: slot.clone(),
                p: Probability::clamped(x),
            }),
            FlowTarget::Coverage { slot } => Some(PatchDirective::SetCoverage {
                slot: slot.clone(),
                p: Probability::clamped(x),
            }),
            FlowTarget::Volume | FlowTarget::Custom(_) => None,
        }
    }

    /// Write value `x` into `patch`.
    fn apply(&self, x: f64, patch: &mut FlowPatch) -> Result<(), FlowError> {
        match &self.target {
            FlowTarget::UnitCost { slot } => {
                patch.set_cost(slot, Money::new(x))?;
            }
            FlowTarget::CostScale { slot } => {
                patch.scale_cost(slot, x)?;
            }
            FlowTarget::Yield { slot } => {
                patch.set_yield(slot, Probability::clamped(x))?;
            }
            FlowTarget::Coverage { slot } => {
                patch.set_coverage(slot, Probability::clamped(x))?;
            }
            FlowTarget::Volume => {
                patch.set_volume(x.round().max(1.0) as u64);
            }
            FlowTarget::Custom(apply) => apply(x, patch)?,
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), ExploreError> {
        self.axis.levels.validate(&self.axis.name)?;
        if matches!(
            self.target,
            FlowTarget::Yield { .. } | FlowTarget::Coverage { .. }
        ) {
            let (lo, hi) = self.axis.levels.bounds();
            if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) {
                return Err(ExploreError::ProbabilityAxisOutOfRange {
                    axis: self.axis.name.clone(),
                    lo,
                    hi,
                });
            }
        }
        Ok(())
    }
}

/// A scalar read off a [`CostReport`] — the objective vocabulary of the
/// flow explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// The paper's Eq. 1: final cost per shipped unit.
    FinalCostPerShipped,
    /// Direct (embodied) cost per shipped unit.
    DirectCostPerShipped,
    /// Yield-loss share per shipped unit.
    YieldLossPerShipped,
    /// Total spend over the whole run.
    TotalSpend,
    /// Fraction of started units that ship.
    ShippedFraction,
    /// Fraction of shipped units that are latent escapes.
    EscapeRate,
}

impl Metric {
    /// Read the metric off a report.
    pub fn of(self, report: &CostReport) -> f64 {
        match self {
            Metric::FinalCostPerShipped => report.final_cost_per_shipped().units(),
            Metric::DirectCostPerShipped => report.direct_cost_per_shipped().units(),
            Metric::YieldLossPerShipped => report.yield_loss_per_shipped().units(),
            Metric::TotalSpend => report.total_spend().units(),
            Metric::ShippedFraction => report.shipped_fraction(),
            Metric::EscapeRate => report.escape_rate(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::FinalCostPerShipped => "final cost/shipped",
            Metric::DirectCostPerShipped => "direct cost/shipped",
            Metric::YieldLossPerShipped => "yield loss/shipped",
            Metric::TotalSpend => "total spend",
            Metric::ShippedFraction => "shipped fraction",
            Metric::EscapeRate => "escape rate",
        }
    }
}

/// One objective of a flow exploration: a metric and the direction in
/// which it improves.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Display label.
    pub label: String,
    /// The metric read off each point's report.
    pub metric: Metric,
    /// Which direction improves.
    pub sense: Sense,
}

impl Objective {
    /// Minimize `metric`.
    pub fn minimize(metric: Metric) -> Objective {
        Objective {
            label: metric.name().into(),
            metric,
            sense: Sense::Minimize,
        }
    }

    /// Maximize `metric`.
    pub fn maximize(metric: Metric) -> Objective {
        Objective {
            label: metric.name().into(),
            metric,
            sense: Sense::Maximize,
        }
    }
}

/// Options for [`FlowExplorer::refine`].
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// Promotion margin on min-max-normalized objectives: a point is
    /// *pruned* when some dominating point beats it by at least this
    /// fraction of the observed range in **every** (non-constant)
    /// objective — ε-dominance, so the Monte Carlo budget goes only to
    /// the ε-non-dominated band around the frontier and no pruned
    /// point can re-enter it under estimator noise below the margin.
    /// 0 promotes exactly the frontier; larger values widen the band.
    pub margin: f64,
    /// Monte Carlo unit budget per promoted point.
    pub mc_units: u64,
    /// Base seed; promoted point `i` simulates under a seed derived
    /// from `(seed, i)`, so confirmations are reproducible and
    /// independent of which other points were promoted.
    pub seed: u64,
    /// Optional CI-based early stopping (see
    /// [`Flow::simulate_adaptive`]).
    pub stop: Option<StopRule>,
    /// Deterministic-plane instrumentation for the confirmation runs:
    /// [`Probe::ON`] makes every [`Confirmation`] carry a [`RunStats`]
    /// snapshot (and [`Refined::run_stats`] their merge). Off by
    /// default — disabled probes cost nothing on the kernel hot path.
    pub probe: Probe,
}

impl Default for RefineOptions {
    fn default() -> RefineOptions {
        RefineOptions {
            margin: 0.05,
            mc_units: 20_000,
            seed: 0x1DEA_5EED,
            stop: None,
            probe: Probe::OFF,
        }
    }
}

/// One promoted point's Monte Carlo confirmation.
#[derive(Debug, Clone)]
pub struct Confirmation {
    /// The confirmed point's sampler index.
    pub index: usize,
    /// Objective values measured by the Monte Carlo engine (aligned
    /// with the exploration's objectives).
    pub objectives: Vec<f64>,
    /// Units actually routed (less than the budget under early
    /// stopping).
    pub units_run: f64,
    /// Whether the early-stopping rule fired.
    pub stopped_early: bool,
    /// Deterministic counters for this confirmation run — `Some`
    /// exactly when [`RefineOptions::probe`] was on.
    pub stats: Option<RunStats>,
}

/// The outcome of [`FlowExplorer::refine`].
#[derive(Debug, Clone)]
pub struct Refined {
    /// The full analytic screen (every sampled point).
    pub screen: Exploration,
    /// Indices of the points promoted to Monte Carlo, ascending.
    pub promoted: Vec<usize>,
    /// Per-promoted-point Monte Carlo confirmations, aligned with
    /// `promoted`.
    pub confirmations: Vec<Confirmation>,
    /// Patch-slot writes the screening pass applied (every setter call,
    /// duplicates included).
    pub patch_writes: u64,
}

impl Refined {
    /// The analytic Pareto frontier (exact — the analytic engine is
    /// closed-form, so this *is* the full-grid frontier).
    pub fn frontier(&self) -> &ParetoFrontier {
        &self.screen.frontier
    }

    /// The frontier re-extracted from the Monte Carlo measurements of
    /// the promoted points — what a pure-sampling study would have
    /// reported, useful to judge how far MC noise moves the picture.
    pub fn confirmed_frontier(&self) -> ParetoFrontier {
        ParetoFrontier::extract(
            self.screen.senses.clone(),
            self.confirmations.iter().map(|c| DesignPoint {
                index: c.index,
                coords: self.screen.points[c.index].coords.clone(),
                objectives: c.objectives.clone(),
            }),
        )
    }

    /// Fraction of screened points that paid for a Monte Carlo run.
    pub fn promoted_fraction(&self) -> f64 {
        self.promoted.len() as f64 / self.screen.points.len().max(1) as f64
    }

    /// The refinement's deterministic-plane snapshot: every promoted
    /// point's probed engine counters merged (all zero when the probe
    /// was off), plus the pipeline counters — points screened /
    /// promoted / confirmed, early stops, and patch-slot writes — which
    /// are counted whether or not the probe was on. Bit-identical for
    /// any executor thread count.
    pub fn run_stats(&self) -> RunStats {
        let mut stats = RunStats::default();
        for c in &self.confirmations {
            if let Some(s) = &c.stats {
                stats.merge(s);
            }
        }
        stats.explore = ExploreStats {
            screened: self.screen.points.len() as u64,
            promoted: self.promoted.len() as u64,
            confirmed: self.confirmations.len() as u64,
            early_stops: self
                .confirmations
                .iter()
                .filter(|c| c.stopped_early)
                .count() as u64,
        };
        stats.patch_writes = self.patch_writes;
        stats
    }

    /// The refinement as a typed [`FrontierPlot`] artifact: the full
    /// analytic screen with frontier flags, plus the Monte Carlo
    /// measurements attached to every promoted point.
    ///
    /// [`FrontierPlot`]: ipass_report::FrontierPlot
    pub fn frontier_plot(&self, title: impl Into<String>) -> ipass_report::FrontierPlot {
        let mut plot = self.screen.frontier_plot(title);
        for c in &self.confirmations {
            plot.points[c.index].confirmed = Some(c.objectives.clone());
        }
        plot.note(format!(
            "{} of {} points promoted to MC confirmation ({} stopped early)",
            self.promoted.len(),
            self.screen.points.len(),
            self.confirmations
                .iter()
                .filter(|c| c.stopped_early)
                .count(),
        ))
    }

    /// Render the refinement summary.
    pub fn render(&self) -> String {
        let mut out = self.screen.render();
        out.push_str(&format!(
            "refined: {} of {} points promoted to MC ({:.1} %), {} stopped early\n",
            self.promoted.len(),
            self.screen.points.len(),
            100.0 * self.promoted_fraction(),
            self.confirmations
                .iter()
                .filter(|c| c.stopped_early)
                .count(),
        ));
        out
    }
}

/// The production-flow design-space explorer (see the [crate
/// docs](crate) for the pipeline).
///
/// # Examples
///
/// ```
/// use ipass_explore::{FlowAxis, FlowExplorer, Levels, Metric, Objective, SamplerSpec};
/// use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, Test, YieldModel};
/// use ipass_units::{Money, Probability};
///
/// let line = Line::builder("demo", Part::new("board", CostCategory::Substrate)
///         .with_cost(StepCost::fixed(Money::new(2.0))))
///     .process(Process::new("assemble")
///         .with_cost(StepCost::fixed(Money::new(1.0)))
///         .with_yield(YieldModel::percent(95.0)))
///     .test(Test::new("test")
///         .with_cost(StepCost::fixed(Money::new(0.5)))
///         .with_coverage(Probability::new(0.95)?))
///     .build()?;
/// let exploration = FlowExplorer::new(Flow::new(line).compiled()?)
///     .axis(FlowAxis::cost_scale("board", Levels::linspace(0.5, 1.5, 8)))
///     .axis(FlowAxis::coverage("test", Levels::linspace(0.9, 0.999, 8)))
///     .objective(Objective::minimize(Metric::FinalCostPerShipped))
///     .objective(Objective::minimize(Metric::EscapeRate))
///     .explore(&SamplerSpec::Grid)?;
/// assert_eq!(exploration.points.len(), 64);
/// assert!(!exploration.frontier.members().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowExplorer {
    compiled: CompiledFlow,
    axes: Vec<FlowAxis>,
    objectives: Vec<Objective>,
    executor: Executor,
    /// Patch-slot writes applied by every screening pass on this
    /// explorer (shared across clones). A relaxed `u64` sum is
    /// order-independent, so the count stays deterministic under any
    /// thread count.
    patch_writes: Arc<AtomicU64>,
    profiler: Option<Profiler>,
}

impl FlowExplorer {
    /// An explorer over a compiled flow, with no axes or objectives yet
    /// and an executor sized to the machine.
    pub fn new(compiled: CompiledFlow) -> FlowExplorer {
        FlowExplorer {
            compiled,
            axes: Vec::new(),
            objectives: Vec::new(),
            executor: Executor::available(),
            patch_writes: Arc::new(AtomicU64::new(0)),
            profiler: None,
        }
    }

    /// Add an axis.
    pub fn axis(mut self, axis: FlowAxis) -> FlowExplorer {
        self.axes.push(axis);
        self
    }

    /// Add an objective.
    pub fn objective(mut self, objective: Objective) -> FlowExplorer {
        self.objectives.push(objective);
        self
    }

    /// Change the executor (results never depend on the choice).
    pub fn with_executor(mut self, executor: Executor) -> FlowExplorer {
        self.executor = executor;
        self
    }

    /// Attach a wall-clock profiler: [`FlowExplorer::explore`] and
    /// [`FlowExplorer::screen_frontier`] record a `"screen"` span,
    /// [`FlowExplorer::refine`] a `"confirm"` span around the Monte
    /// Carlo pass. Timings live strictly outside the deterministic
    /// plane — no result or [`RunStats`] ever depends on them.
    pub fn with_profiler(mut self, profiler: Profiler) -> FlowExplorer {
        self.profiler = Some(profiler);
        self
    }

    /// The compiled flow under exploration.
    pub fn compiled(&self) -> &CompiledFlow {
        &self.compiled
    }

    fn validate(&self) -> Result<(), ExploreError> {
        if self.axes.is_empty() {
            return Err(ExploreError::NoAxes);
        }
        if self.objectives.is_empty() {
            return Err(ExploreError::NoObjectives);
        }
        for axis in &self.axes {
            axis.validate()?;
        }
        Ok(())
    }

    fn generic_axes(&self) -> Vec<Axis> {
        self.axes.iter().map(|a| a.axis.clone()).collect()
    }

    fn senses(&self) -> Vec<Sense> {
        self.objectives.iter().map(|o| o.sense).collect()
    }

    fn objective_names(&self) -> Vec<String> {
        self.objectives.iter().map(|o| o.label.clone()).collect()
    }

    /// Patch one point's coordinates into a fresh copy of the compiled
    /// program, counting the slot writes it took.
    fn patch_point(&self, coords: &[f64]) -> Result<FlowPatch, FlowError> {
        let mut patch = self.compiled.patch();
        for (axis, &x) in self.axes.iter().zip(coords) {
            axis.apply(x, &mut patch)?;
        }
        self.patch_writes
            .fetch_add(patch.writes(), Ordering::Relaxed);
        Ok(patch)
    }

    /// Total patch-slot writes screening passes have applied on this
    /// explorer (and its clones) so far.
    pub fn patch_writes(&self) -> u64 {
        self.patch_writes.load(Ordering::Relaxed)
    }

    fn measure(&self, report: &CostReport) -> Vec<f64> {
        self.objectives
            .iter()
            .map(|o| o.metric.of(report))
            .collect()
    }

    /// Sample and analytically evaluate every point, returning the full
    /// screen with its Pareto frontier.
    ///
    /// The evaluation fans out through the same
    /// [`analyze_patched_batch`] helper the sweeps and tornado charts
    /// use: one op-vector copy plus a cohort walk per point, never a
    /// rebuilt flow.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] when the space or objectives are
    /// degenerate or any point fails to evaluate (first failure in
    /// point order).
    pub fn explore(&self, sampler: &SamplerSpec) -> Result<Exploration, ExploreError> {
        let _span = self.profiler.as_ref().map(|p| p.span("screen"));
        self.validate()?;
        let names = self.objective_names();
        let senses = self.senses();
        let pts = sampler.points(&self.generic_axes())?;
        let coords: Vec<Vec<f64>> = (0..pts.len()).map(|i| pts.coords(i)).collect();
        let reports = analyze_patched_batch(&self.executor, &coords, |_, point| {
            Ok(Cow::Owned(self.patch_point(point)?))
        })?;
        let points = coords
            .into_iter()
            .zip(&reports)
            .enumerate()
            .map(|(i, (coords, report))| {
                Ok(DesignPoint {
                    index: i,
                    coords,
                    objectives: checked_objectives(i, self.measure(report), &names)?,
                })
            })
            .collect::<Result<Vec<_>, ExploreError>>()?;
        let frontier = ParetoFrontier::extract(senses.clone(), points.iter().cloned());
        Ok(Exploration {
            axes: self.axes.iter().map(|a| a.axis.name.clone()).collect(),
            objectives: names,
            senses,
            points,
            frontier,
        })
    }

    /// Reduce straight to the Pareto frontier without retaining the
    /// screened points — `O(frontier)` memory via the executor's
    /// chunked map-reduce, for grids too large to keep.
    ///
    /// # Errors
    ///
    /// See [`FlowExplorer::explore`].
    pub fn screen_frontier(&self, sampler: &SamplerSpec) -> Result<ParetoFrontier, ExploreError> {
        let _span = self.profiler.as_ref().map(|p| p.span("screen"));
        self.validate()?;
        let names = self.objective_names();
        let senses = self.senses();
        let pts = sampler.points(&self.generic_axes())?;
        self.executor.try_map_reduce(
            pts.len() as u64,
            || ParetoFrontier::new(senses.clone()),
            |unit, acc| {
                let i = unit as usize;
                let coords = pts.coords(i);
                let report = self.patch_point(&coords)?.analyze()?;
                acc.insert(DesignPoint {
                    index: i,
                    coords,
                    objectives: checked_objectives(i, self.measure(&report), &names)?,
                });
                Ok(())
            },
            |into, from| into.merge(from),
        )
    }

    /// Adaptive refinement: screen every point analytically, prune
    /// everything a clear margin inside the dominated region, and
    /// promote only the frontier-adjacent remainder to seeded Monte
    /// Carlo confirmation.
    ///
    /// `build` rebuilds the production flow for a promoted point's
    /// coordinates — the Monte Carlo engine's draw-stream contract is
    /// defined by compiling a line, so modified models are re-compiled,
    /// never patched (see `ipass_moe::patch`). Each promoted point
    /// simulates under its own derived seed; results are bit-identical
    /// for any executor thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] when the screen fails, `build` fails,
    /// or a promoted point's simulation fails (first failure in point
    /// order).
    pub fn refine<B>(
        &self,
        sampler: &SamplerSpec,
        options: &RefineOptions,
        build: B,
    ) -> Result<Refined, ExploreError>
    where
        B: Fn(&[f64]) -> Result<Flow, FlowError> + Sync,
    {
        let writes_before = self.patch_writes.load(Ordering::Relaxed);
        let screen = self.explore(sampler)?;
        let promoted = promote(&screen, options.margin);
        let patch_writes = self.patch_writes.load(Ordering::Relaxed) - writes_before;
        let names = self.objective_names();
        let _span = self.profiler.as_ref().map(|p| p.span("confirm"));
        let confirmations = self.executor.try_map(&promoted, |_, &i| {
            let point = &screen.points[i];
            let flow = build(&point.coords)?;
            let seed = SimRng::stream(options.seed, i as u64).next_u64();
            let sim = SimOptions::new(options.mc_units)
                .with_seed(seed)
                .with_probe(options.probe);
            let summary = match options.stop {
                Some(rule) => flow.simulate_adaptive(&sim, rule),
                None => flow.simulate_summary(&sim),
            }?;
            Ok::<Confirmation, ExploreError>(Confirmation {
                index: i,
                objectives: checked_objectives(i, self.measure(&summary.report), &names)?,
                units_run: summary.report.started(),
                stopped_early: summary.stopped_early,
                stats: summary.stats,
            })
        })?;
        Ok(Refined {
            screen,
            promoted,
            confirmations,
            patch_writes,
        })
    }
}

/// The outcome of [`FlowExplorer::screen_frontier_directed`]: the
/// frontier plus the evaluation count the directed search actually
/// paid, for comparison against the full grid.
#[derive(Debug, Clone)]
pub struct DirectedScreen {
    /// The Pareto frontier over the evaluated points.
    pub frontier: ParetoFrontier,
    /// Distinct grid points analytically evaluated.
    pub evaluated: usize,
    /// Full cartesian grid size (what an undirected
    /// [`FlowExplorer::screen_frontier`] would evaluate).
    pub grid_points: usize,
}

impl DirectedScreen {
    /// Fraction of the full grid the directed search evaluated.
    pub fn evaluated_fraction(&self) -> f64 {
        self.evaluated as f64 / self.grid_points.max(1) as f64
    }
}

/// Read the derivative of `metric` off a dual-walk [`Gradient`].
fn metric_grad(g: &Gradient, metric: Metric) -> f64 {
    match metric {
        Metric::FinalCostPerShipped => g.final_cost_per_shipped,
        Metric::DirectCostPerShipped => g.direct_cost_per_shipped,
        Metric::YieldLossPerShipped => g.yield_loss_per_shipped,
        Metric::TotalSpend => g.total_spend,
        Metric::ShippedFraction => g.shipped_fraction,
        Metric::EscapeRate => g.escape_rate,
    }
}

/// Row-major linear index (first axis slowest) — the same convention
/// [`SamplerSpec::Grid`] decodes, so directed points share identity
/// with full-grid points.
fn linear_index(idx: &[usize], dims: &[usize]) -> usize {
    idx.iter().zip(dims).fold(0, |acc, (&i, &n)| acc * n + i)
}

/// One evaluated lattice point of the directed screen.
struct DirectedEval {
    objectives: Vec<f64>,
    /// `grads[j][g]` = ∂objective_j/∂(axis value) for the g-th
    /// gradient-carrying axis (aligned with `dir_axes`).
    grads: Vec<Vec<f64>>,
}

impl FlowExplorer {
    /// The per-axis-value derivative direction, when the axis target
    /// maps onto patch slots (volume and custom axes don't — the
    /// neighbor expansion still covers them, only the descent walks
    /// skip those moves).
    fn axis_direction(&self, axis: &FlowAxis) -> Result<Option<DualDirection>, FlowError> {
        Ok(match &axis.target {
            FlowTarget::UnitCost { slot } => Some(DualDirection::cost(slot)),
            FlowTarget::CostScale { slot } => {
                // ∂(folded cost)/∂(scale factor) is the *compiled*
                // folded cost, so weight the unit-cost lane by it.
                let unit = self.compiled.slot_unit_cost(slot)?;
                Some(DualDirection::new().with(slot, SlotKind::Cost, unit.units()))
            }
            FlowTarget::Yield { slot } => Some(DualDirection::step_yield(slot)),
            FlowTarget::Coverage { slot } => Some(DualDirection::coverage(slot)),
            FlowTarget::Volume | FlowTarget::Custom(_) => None,
        })
    }

    /// Screen the frontier **without visiting the whole grid**: seed a
    /// coarse sub-lattice, descend along the dual-walk gradients
    /// ∂objective/∂axis toward each objective's optimum, then expand
    /// ±1-neighborhoods of the running frontier to a fixed point. Every
    /// evaluation is one gradient-carrying analytic walk
    /// ([`FlowPatch::analyze_duals`]); the result is a pure function of
    /// the axes and objectives — batches run through the executor in
    /// index order and the walks are sequential, so the frontier is
    /// identical for any thread count.
    ///
    /// The fixed point guarantees every returned member has all its
    /// grid neighbors evaluated and non-dominating; on the connected
    /// frontiers flow economics produce (costs monotone in cost slots,
    /// escapes monotone in coverage) this reproduces the full-grid
    /// frontier exactly at a fraction of the evaluations.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] like [`FlowExplorer::screen_frontier`];
    /// unresolvable axis slots surface on the first evaluation.
    pub fn screen_frontier_directed(&self) -> Result<DirectedScreen, ExploreError> {
        self.validate()?;
        let names = self.objective_names();
        let senses = self.senses();
        let dims: Vec<usize> = self.axes.iter().map(|a| a.axis.levels.count()).collect();
        let grid_points: usize = dims.iter().product();
        let axis_dirs = self
            .axes
            .iter()
            .map(|a| self.axis_direction(a))
            .collect::<Result<Vec<_>, FlowError>>()?;
        let dir_axes: Vec<usize> = axis_dirs
            .iter()
            .enumerate()
            .filter_map(|(k, d)| d.as_ref().map(|_| k))
            .collect();
        let dirs: Vec<DualDirection> = axis_dirs.into_iter().flatten().collect();

        let level = |k: usize, i: usize| self.axes[k].axis.levels.level(i);
        let eval_point = |idx: &Vec<usize>| -> Result<DirectedEval, ExploreError> {
            let coords: Vec<f64> = idx.iter().enumerate().map(|(k, &i)| level(k, i)).collect();
            let dual = self.patch_point(&coords)?.analyze_duals(&dirs)?;
            let objectives =
                checked_objectives(linear_index(idx, &dims), self.measure(&dual.report), &names)?;
            let grads = self
                .objectives
                .iter()
                .map(|o| {
                    dual.gradients
                        .iter()
                        .map(|g| metric_grad(g, o.metric))
                        .collect()
                })
                .collect();
            Ok(DirectedEval { objectives, grads })
        };

        let mut cache: BTreeMap<Vec<usize>, DirectedEval> = BTreeMap::new();
        // Batch-evaluate `todo` through the executor in index order and
        // insert in that same order — thread count never reorders.
        let evaluate_batch = |cache: &mut BTreeMap<Vec<usize>, DirectedEval>,
                              todo: BTreeSet<Vec<usize>>|
         -> Result<(), ExploreError> {
            let todo: Vec<Vec<usize>> = todo.into_iter().collect();
            let evals = self.executor.try_map(&todo, |_, idx| eval_point(idx))?;
            for (idx, eval) in todo.into_iter().zip(evals) {
                cache.insert(idx, eval);
            }
            Ok(())
        };

        // 1. Coarse seed lattice: ~5 levels per axis, endpoints always
        // included.
        let mut seeds_per_axis: Vec<Vec<usize>> = Vec::with_capacity(dims.len());
        for &n in &dims {
            let stride = (n - 1).div_ceil(4).max(1);
            let mut levels: Vec<usize> = (0..n).step_by(stride).collect();
            if *levels.last().unwrap() != n - 1 {
                levels.push(n - 1);
            }
            seeds_per_axis.push(levels);
        }
        let mut seeds: Vec<Vec<usize>> = vec![Vec::new()];
        for axis_levels in &seeds_per_axis {
            seeds = seeds
                .iter()
                .flat_map(|s| {
                    axis_levels.iter().map(move |&i| {
                        let mut s = s.clone();
                        s.push(i);
                        s
                    })
                })
                .collect();
        }
        evaluate_batch(&mut cache, seeds.iter().cloned().collect())?;

        // 2. Steepest-descent walks: from every seed toward each
        // objective's optimum, stepping to the ±1 neighbor with the
        // best gradient-predicted improvement. Serial and first-match
        // tie-broken — deterministic by construction.
        let max_steps: usize = dims.iter().sum();
        for seed in &seeds {
            for (j, sense) in senses.iter().enumerate() {
                let mut cur = seed.clone();
                for _ in 0..max_steps {
                    let grads = &cache[&cur].grads[j];
                    let mut best: Option<(f64, Vec<usize>)> = None;
                    for (gi, &k) in dir_axes.iter().enumerate() {
                        for step in [-1isize, 1] {
                            let ni = cur[k] as isize + step;
                            if ni < 0 || ni as usize >= dims[k] {
                                continue;
                            }
                            let mut next = cur.clone();
                            next[k] = ni as usize;
                            let dx = level(k, next[k]) - level(k, cur[k]);
                            let predicted = grads[gi] * dx;
                            let gain = match sense {
                                Sense::Minimize => -predicted,
                                Sense::Maximize => predicted,
                            };
                            if gain > 0.0 && best.as_ref().is_none_or(|(b, _)| gain > *b) {
                                best = Some((gain, next));
                            }
                        }
                    }
                    let Some((_, next)) = best else { break };
                    if !cache.contains_key(&next) {
                        let eval = eval_point(&next)?;
                        cache.insert(next.clone(), eval);
                    }
                    cur = next;
                }
            }
        }

        // 3. Fixed-point ±1 expansion of the running frontier: stop
        // only when every frontier member's whole neighborhood is
        // evaluated and none of it improves the frontier.
        let frontier_of = |cache: &BTreeMap<Vec<usize>, DirectedEval>| {
            ParetoFrontier::extract(
                senses.clone(),
                cache.iter().map(|(idx, e)| DesignPoint {
                    index: linear_index(idx, &dims),
                    coords: idx.iter().enumerate().map(|(k, &i)| level(k, i)).collect(),
                    objectives: e.objectives.clone(),
                }),
            )
        };
        let mut frontier = frontier_of(&cache);
        loop {
            let mut todo: BTreeSet<Vec<usize>> = BTreeSet::new();
            for m in frontier.members() {
                // Decode the member's lattice index from its linear id.
                let mut rest = m.index;
                let mut idx = vec![0usize; dims.len()];
                for (k, &n) in dims.iter().enumerate().rev() {
                    idx[k] = rest % n;
                    rest /= n;
                }
                for k in 0..dims.len() {
                    for step in [-1isize, 1] {
                        let ni = idx[k] as isize + step;
                        if ni < 0 || ni as usize >= dims[k] {
                            continue;
                        }
                        let mut neighbor = idx.clone();
                        neighbor[k] = ni as usize;
                        if !cache.contains_key(&neighbor) {
                            todo.insert(neighbor);
                        }
                    }
                }
            }
            if todo.is_empty() {
                break;
            }
            evaluate_batch(&mut cache, todo)?;
            frontier = frontier_of(&cache);
        }

        Ok(DirectedScreen {
            frontier,
            evaluated: cache.len(),
            grid_points,
        })
    }
}

/// The ε-non-dominated promotion set: a point is pruned when some
/// *dominating* point beats it by at least `margin` of the observed
/// (min-max) range in **every** non-constant objective — standard
/// ε-dominance, so a pruned point cannot re-enter the frontier under
/// estimator noise smaller than the margin in any single objective.
/// Frontier members are never dominated, so the promotion set is
/// always a frontier superset, and `margin = 0` promotes exactly the
/// frontier.
fn promote(screen: &Exploration, margin: f64) -> Vec<usize> {
    let k = screen.senses.len();
    let n = screen.points.len();
    // Min-max normalization, flipped so every objective minimizes;
    // (near-)constant objectives carry no distance information and are
    // excluded from the margin test.
    let mut lo = vec![f64::INFINITY; k];
    let mut hi = vec![f64::NEG_INFINITY; k];
    for p in &screen.points {
        for (j, &v) in p.objectives.iter().enumerate() {
            lo[j] = lo[j].min(v);
            hi[j] = hi[j].max(v);
        }
    }
    let range: Vec<f64> = lo.iter().zip(&hi).map(|(l, h)| h - l).collect();
    let live: Vec<bool> = range
        .iter()
        .zip(&lo)
        .map(|(r, l)| *r > 1e-12 * l.abs().max(1.0))
        .collect();
    let norm = |p: &DesignPoint, j: usize| {
        let u = (p.objectives[j] - lo[j]) / range[j];
        match screen.senses[j] {
            Sense::Minimize => u,
            Sense::Maximize => 1.0 - u,
        }
    };
    (0..n)
        .filter(|&i| {
            let p = &screen.points[i];
            !screen.points.iter().any(|q| {
                q.index != p.index
                    && dominates(&q.objectives, &p.objectives, &screen.senses)
                    && (0..k).all(|j| !live[j] || norm(p, j) - norm(q, j) >= margin)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_moe::{CostCategory, Line, Part, Process, StepCost, Test, YieldModel};

    fn flow(board_cost: f64, coverage: f64) -> Flow {
        let line = Line::builder(
            "t",
            Part::new("board", CostCategory::Substrate)
                .with_cost(StepCost::fixed(Money::new(board_cost))),
        )
        .process(
            Process::new("assemble")
                .with_cost(StepCost::fixed(Money::new(1.0)))
                .with_yield(YieldModel::percent(92.0)),
        )
        .test(
            Test::new("test")
                .with_cost(StepCost::fixed(Money::new(0.5)))
                .with_coverage(Probability::clamped(coverage)),
        )
        .build()
        .unwrap();
        Flow::new(line)
    }

    fn explorer() -> FlowExplorer {
        FlowExplorer::new(flow(2.0, 0.95).compiled().unwrap())
            .axis(FlowAxis::cost_scale("board", Levels::linspace(0.5, 1.5, 8)))
            .axis(FlowAxis::coverage("test", Levels::linspace(0.9, 0.999, 8)))
            .objective(Objective::minimize(Metric::FinalCostPerShipped))
            .objective(Objective::minimize(Metric::EscapeRate))
            .with_executor(Executor::new(2))
    }

    #[test]
    fn screen_matches_patched_evaluation() {
        let exploration = explorer().explore(&SamplerSpec::Grid).unwrap();
        assert_eq!(exploration.points.len(), 64);
        // Spot-check one point against a hand-patched evaluation.
        let p = &exploration.points[13];
        let compiled = flow(2.0, 0.95).compiled().unwrap();
        let mut patch = compiled.patch();
        patch.scale_cost("board", p.coords[0]).unwrap();
        patch
            .set_coverage("test", Probability::clamped(p.coords[1]))
            .unwrap();
        let report = patch.analyze().unwrap();
        assert_eq!(p.objectives[0], report.final_cost_per_shipped().units());
        assert_eq!(p.objectives[1], report.escape_rate());
    }

    #[test]
    fn frontier_trades_cost_against_escapes() {
        let exploration = explorer().explore(&SamplerSpec::Grid).unwrap();
        let frontier = &exploration.frontier;
        // All frontier members sit at the cheapest board (scale 0.5):
        // board cost hurts cost and never helps escapes.
        for m in frontier.members() {
            assert_eq!(m.coords[0], 0.5);
        }
        // Coverage trades: the frontier spans multiple coverage levels.
        let coverages: std::collections::BTreeSet<u64> = frontier
            .members()
            .iter()
            .map(|m| (m.coords[1] * 1e6) as u64)
            .collect();
        assert!(coverages.len() >= 4, "{coverages:?}");
        // And equals the O(frontier)-memory reduction.
        assert_eq!(
            frontier,
            &explorer().screen_frontier(&SamplerSpec::Grid).unwrap()
        );
    }

    #[test]
    fn directives_mirror_the_setters() {
        let axis = FlowAxis::cost_scale("board", Levels::linspace(0.5, 1.5, 3));
        assert_eq!(
            axis.directive(1.25),
            Some(PatchDirective::ScaleCost {
                slot: "board".into(),
                factor: 1.25
            })
        );
        assert_eq!(
            FlowAxis::volume(Levels::linspace(1.0, 9.0, 3)).directive(4.0),
            None
        );
    }

    #[test]
    fn volume_and_custom_axes_patch_run_economics() {
        let flow = flow(2.0, 0.95)
            .with_nre(Money::new(1_000.0))
            .with_volume(10);
        let explorer = FlowExplorer::new(flow.compiled().unwrap())
            .axis(FlowAxis::volume(Levels::explicit([10.0, 10_000.0])))
            .axis(FlowAxis::custom(
                "board premium",
                Levels::explicit([1.0, 3.0]),
                |x, patch| {
                    patch.scale_cost("board", x)?;
                    Ok(())
                },
            ))
            .objective(Objective::minimize(Metric::FinalCostPerShipped))
            .with_executor(Executor::serial());
        let exploration = explorer.explore(&SamplerSpec::Grid).unwrap();
        // Higher volume amortizes NRE away; premium raises cost.
        let cost = |i: usize| exploration.points[i].objectives[0];
        assert!(cost(2) < cost(0), "volume should amortize NRE");
        assert!(cost(1) > cost(0), "premium should raise cost");
    }

    #[test]
    fn misconfigured_explorers_are_rejected() {
        let compiled = flow(2.0, 0.95).compiled().unwrap();
        let bare = FlowExplorer::new(compiled.clone());
        assert!(matches!(
            bare.explore(&SamplerSpec::Grid),
            Err(ExploreError::NoAxes)
        ));
        let no_objectives = FlowExplorer::new(compiled.clone())
            .axis(FlowAxis::volume(Levels::linspace(1.0, 2.0, 2)));
        assert!(matches!(
            no_objectives.explore(&SamplerSpec::Grid),
            Err(ExploreError::NoObjectives)
        ));
        let bad_probability = FlowExplorer::new(compiled.clone())
            .axis(FlowAxis::coverage("test", Levels::linspace(0.5, 1.5, 4)))
            .objective(Objective::minimize(Metric::FinalCostPerShipped));
        assert!(matches!(
            bad_probability.explore(&SamplerSpec::Grid),
            Err(ExploreError::ProbabilityAxisOutOfRange { .. })
        ));
        let ghost_slot = FlowExplorer::new(compiled)
            .axis(FlowAxis::cost_scale("ghost", Levels::linspace(0.5, 1.5, 4)))
            .objective(Objective::minimize(Metric::FinalCostPerShipped));
        assert!(matches!(
            ghost_slot.explore(&SamplerSpec::Grid),
            Err(ExploreError::Flow(FlowError::UnknownPatchSlot { .. }))
        ));
    }

    #[test]
    fn directed_screen_matches_the_grid_frontier_with_fewer_evals() {
        // 32×32 — the same shape as the solution-2 golden case: the
        // directed screen must find the exact full-grid frontier while
        // paying for a fraction of the 1 024 points.
        let explorer = FlowExplorer::new(flow(2.0, 0.95).compiled().unwrap())
            .axis(FlowAxis::cost_scale(
                "board",
                Levels::linspace(0.5, 1.5, 32),
            ))
            .axis(FlowAxis::coverage("test", Levels::linspace(0.9, 0.999, 32)))
            .objective(Objective::minimize(Metric::FinalCostPerShipped))
            .objective(Objective::minimize(Metric::EscapeRate))
            .with_executor(Executor::new(2));
        let full = explorer.screen_frontier(&SamplerSpec::Grid).unwrap();
        let directed = explorer.screen_frontier_directed().unwrap();
        assert_eq!(directed.frontier, full);
        assert_eq!(directed.grid_points, 1024);
        assert!(
            directed.evaluated < directed.grid_points / 2,
            "directed search paid {} of {} evaluations",
            directed.evaluated,
            directed.grid_points
        );
        assert!(directed.evaluated_fraction() < 0.5);
    }

    #[test]
    fn directed_screen_covers_gradient_free_axes_by_expansion() {
        // A volume axis has no dual direction; the neighbor expansion
        // alone must still find the exact frontier across it.
        let base = flow(2.0, 0.95)
            .with_nre(Money::new(500.0))
            .with_volume(10)
            .compiled()
            .unwrap();
        let explorer = FlowExplorer::new(base)
            .axis(FlowAxis::volume(Levels::linspace(10.0, 10_000.0, 7)))
            .axis(FlowAxis::coverage("test", Levels::linspace(0.9, 0.999, 9)))
            .objective(Objective::minimize(Metric::FinalCostPerShipped))
            .objective(Objective::minimize(Metric::EscapeRate))
            .with_executor(Executor::serial());
        let full = explorer.screen_frontier(&SamplerSpec::Grid).unwrap();
        let directed = explorer.screen_frontier_directed().unwrap();
        assert_eq!(directed.frontier, full);
        assert!(directed.evaluated <= directed.grid_points);
    }

    #[test]
    fn refine_promotes_a_thin_band_and_confirms_it() {
        let options = RefineOptions {
            margin: 0.05,
            mc_units: 4_000,
            seed: 11,
            stop: None,
            probe: Probe::ON,
        };
        let refined = explorer()
            .refine(&SamplerSpec::Grid, &options, |coords| {
                // Rebuild the line with the point's parameters — scale
                // the board cost, set the coverage.
                Ok(flow(2.0 * coords[0], coords[1]))
            })
            .unwrap();
        // The band is thin but covers the frontier.
        assert!(
            refined.promoted_fraction() <= 0.30,
            "{}",
            refined.promoted_fraction()
        );
        let frontier_indices = refined.frontier().indices();
        assert!(frontier_indices
            .iter()
            .all(|i| refined.promoted.contains(i)));
        assert_eq!(refined.confirmations.len(), refined.promoted.len());
        // MC confirms the analytic screen within Monte Carlo noise.
        for c in &refined.confirmations {
            let analytic = &refined.screen.points[c.index].objectives;
            let rel = (c.objectives[0] - analytic[0]).abs() / analytic[0];
            assert!(
                rel < 0.05,
                "point {}: MC {} vs analytic {}",
                c.index,
                c.objectives[0],
                analytic[0]
            );
        }
        assert!(refined.render().contains("promoted to MC"));
        // The MC-measured frontier exists and stays near the band.
        assert!(!refined.confirmed_frontier().members().is_empty());
        // The probe was on, so every confirmation carries its exact
        // counters, and the merged snapshot adds the pipeline totals.
        assert!(refined.confirmations.iter().all(|c| c.stats.is_some()));
        let stats = refined.run_stats();
        assert_eq!(stats.explore.screened, 64);
        assert_eq!(stats.explore.promoted as usize, refined.promoted.len());
        assert_eq!(
            stats.explore.confirmed as usize,
            refined.confirmations.len()
        );
        assert_eq!(stats.explore.early_stops, 0);
        // No early stopping: every promoted point paid the full budget.
        assert_eq!(stats.units, 4_000 * refined.promoted.len() as u64);
        assert!(stats.draws > 0);
        // Two single-slot axes, one write each, per screened point.
        assert_eq!(refined.patch_writes, 2 * 64);
        assert_eq!(stats.patch_writes, refined.patch_writes);
    }

    #[test]
    fn unprobed_refinement_carries_pipeline_counters_only() {
        let refined = explorer()
            .refine(&SamplerSpec::Grid, &RefineOptions::default(), |coords| {
                Ok(flow(2.0 * coords[0], coords[1]))
            })
            .unwrap();
        assert!(refined.confirmations.iter().all(|c| c.stats.is_none()));
        let stats = refined.run_stats();
        assert_eq!(stats.units, 0);
        assert_eq!(stats.explore.screened, 64);
        assert_eq!(stats.patch_writes, 2 * 64);
    }

    #[test]
    fn profiler_records_screen_and_confirm_spans() {
        let profiler = ipass_obs::Profiler::default();
        explorer()
            .with_profiler(profiler.clone())
            .refine(&SamplerSpec::Grid, &RefineOptions::default(), |coords| {
                Ok(flow(2.0 * coords[0], coords[1]))
            })
            .unwrap();
        let trace = profiler.trace();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["screen", "confirm"]);
        assert_eq!(trace.spans[0].count, 1);
    }
}
