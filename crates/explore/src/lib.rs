//! `ipass-explore` — deterministic design-space exploration.
//!
//! The paper's methodology compares integration technologies across
//! whole *families* of scenarios — volumes, yields, cost assumptions.
//! Before this crate, every scenario surface in the workspace
//! (parameter sweeps, tornado charts, trade-study scenario batches)
//! hand-rolled its own loop over patch points. This crate treats the
//! scenario family itself as the object of study:
//!
//! * **Axes** ([`Axis`], [`Levels`]) name the dimensions; the
//!   production-flow binding ([`FlowAxis`]) lowers each value onto a
//!   patch slot of a [`CompiledFlow`](ipass_moe::CompiledFlow) (or the
//!   amortization volume, or a custom coupled patch).
//! * **Samplers** ([`SamplerSpec`]) address points by index — full
//!   grid, counter-RNG random, Latin hypercube — so coordinates are a
//!   pure function of `(spec, axes, index)` and every fan-out is
//!   bit-identical for any executor thread count.
//! * **Pareto frontiers** ([`ParetoFrontier`], [`Sense`]) rank points
//!   under multiple objectives; [`ParetoFrontier::diff`] compares
//!   candidates ("which of A's trade-off points does B beat?").
//! * **Adaptive refinement** ([`FlowExplorer::refine`]) screens every
//!   point with the closed-form analytic engine (~hundreds of
//!   nanoseconds per point), prunes everything a clear margin inside
//!   the dominated region, and promotes only the frontier-adjacent
//!   band to seeded Monte Carlo confirmation with CI-based early
//!   stopping.
//!
//! The generic engine ([`explore_fn`], [`frontier_fn`]) is
//! domain-agnostic — the RF and passives crates drive it with filter
//! and component-synthesis evaluators; `ipass-core` plugs it into the
//! trade study ([`TradeStudy::run_exploration`]).
//!
//! [`TradeStudy::run_exploration`]:
//!     https://docs.rs/ipass-core (see `ipass_core::TradeStudy`)
//!
//! # Examples
//!
//! ```
//! use ipass_explore::{FlowAxis, FlowExplorer, Levels, Metric, Objective, SamplerSpec};
//! use ipass_moe::{CostCategory, Flow, Line, Part, Process, StepCost, Test, YieldModel};
//! use ipass_units::{Money, Probability};
//!
//! let line = Line::builder("module", Part::new("substrate", CostCategory::Substrate)
//!         .with_cost(StepCost::fixed(Money::new(4.0))))
//!     .process(Process::new("assembly")
//!         .with_cost(StepCost::fixed(Money::new(1.5)))
//!         .with_yield(YieldModel::percent(93.0)))
//!     .test(Test::new("final test")
//!         .with_cost(StepCost::fixed(Money::new(1.0)))
//!         .with_coverage(Probability::new(0.97)?))
//!     .build()?;
//!
//! // How do substrate price and test coverage trade cost against
//! // escapes? One compiled program, 1 024 patched cohort walks, one
//! // frontier.
//! let exploration = FlowExplorer::new(Flow::new(line).compiled()?)
//!     .axis(FlowAxis::cost_scale("substrate", Levels::linspace(0.6, 1.4, 32)))
//!     .axis(FlowAxis::coverage("final test", Levels::linspace(0.9, 0.999, 32)))
//!     .objective(Objective::minimize(Metric::FinalCostPerShipped))
//!     .objective(Objective::minimize(Metric::EscapeRate))
//!     .explore(&SamplerSpec::Grid)?;
//! assert_eq!(exploration.points.len(), 1024);
//! assert!(!exploration.frontier.members().is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod flow;
mod pareto;
mod sample;
mod space;

pub use engine::{explore_fn, frontier_fn, Exploration};
pub use error::ExploreError;
pub use flow::{
    Confirmation, DirectedScreen, FlowAxis, FlowExplorer, FlowTarget, Metric, Objective,
    RefineOptions, Refined,
};
pub use pareto::{dominates, DesignPoint, FrontierDiff, ParetoFrontier, Sense};
pub use sample::{PointSet, SamplerSpec};
pub use space::{Axis, Levels};
