//! Multi-objective dominance and Pareto-frontier extraction.

use crate::error::ExploreError;

/// The direction in which an objective improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Smaller is better (costs, losses, areas).
    Minimize,
    /// Larger is better (yields, scores, margins).
    Maximize,
}

impl Sense {
    /// Whether `a` is strictly better than `b` under this sense.
    #[inline]
    pub fn better(self, a: f64, b: f64) -> bool {
        match self {
            Sense::Minimize => a < b,
            Sense::Maximize => a > b,
        }
    }
}

/// Whether objective vector `a` Pareto-dominates `b`: at least as good
/// in every objective and strictly better in at least one.
///
/// Equal vectors dominate in neither direction, so exact ties coexist
/// on a frontier instead of silently evicting each other.
///
/// # Panics
///
/// Panics when the three slices disagree in length (callers pass
/// vectors produced by the same exploration).
pub fn dominates(a: &[f64], b: &[f64], senses: &[Sense]) -> bool {
    assert_eq!(a.len(), senses.len(), "objective/sense arity mismatch");
    assert_eq!(b.len(), senses.len(), "objective/sense arity mismatch");
    let mut strictly = false;
    for ((&va, &vb), &sense) in a.iter().zip(b).zip(senses) {
        if sense.better(vb, va) {
            return false;
        }
        if sense.better(va, vb) {
            strictly = true;
        }
    }
    strictly
}

/// One evaluated point of a design space: where it sits (`coords`, one
/// value per axis) and how it scored (`objectives`, one value per
/// objective). `index` is the point's identity within its sampler — the
/// same index always denotes the same coordinates (and, for random
/// samplers, the same RNG stream).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Sampler point index.
    pub index: usize,
    /// Coordinates, one per axis.
    pub coords: Vec<f64>,
    /// Objective values, one per objective.
    pub objectives: Vec<f64>,
}

/// The non-dominated subset of a set of [`DesignPoint`]s, kept sorted by
/// point index.
///
/// The frontier is a pure *set* function of its inputs: insertion order
/// never changes the final membership (pinned by property tests), which
/// is what lets the executor build per-chunk frontiers in parallel and
/// merge them without a determinism caveat.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFrontier {
    senses: Vec<Sense>,
    members: Vec<DesignPoint>,
}

impl ParetoFrontier {
    /// An empty frontier over the given objective senses.
    pub fn new(senses: Vec<Sense>) -> ParetoFrontier {
        ParetoFrontier {
            senses,
            members: Vec::new(),
        }
    }

    /// The frontier of a point set.
    pub fn extract(
        senses: Vec<Sense>,
        points: impl IntoIterator<Item = DesignPoint>,
    ) -> ParetoFrontier {
        let mut frontier = ParetoFrontier::new(senses);
        for p in points {
            frontier.insert(p);
        }
        frontier
    }

    /// Offer one point: evicts members it dominates, joins unless a
    /// member dominates it. Returns whether the point joined.
    pub fn insert(&mut self, p: DesignPoint) -> bool {
        if self
            .members
            .iter()
            .any(|m| dominates(&m.objectives, &p.objectives, &self.senses))
        {
            return false;
        }
        self.members
            .retain(|m| !dominates(&p.objectives, &m.objectives, &self.senses));
        let at = self.members.partition_point(|m| m.index < p.index);
        self.members.insert(at, p);
        true
    }

    /// Merge another frontier of the same senses (the executor's chunk
    /// fold).
    pub fn merge(&mut self, other: ParetoFrontier) {
        debug_assert_eq!(self.senses, other.senses);
        for p in other.members {
            self.insert(p);
        }
    }

    /// The objective senses.
    pub fn senses(&self) -> &[Sense] {
        &self.senses
    }

    /// The frontier members, sorted by point index.
    pub fn members(&self) -> &[DesignPoint] {
        &self.members
    }

    /// The member point indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.index).collect()
    }

    /// The member minimizing/maximizing objective `k` per its sense
    /// (`None` for an empty frontier).
    pub fn best_by(&self, k: usize) -> Option<&DesignPoint> {
        self.members.iter().reduce(|best, m| {
            if self.senses[k].better(m.objectives[k], best.objectives[k]) {
                m
            } else {
                best
            }
        })
    }

    /// Compare against another frontier over the same objectives — the
    /// candidate-vs-candidate question ("which of A's trade-off points
    /// does B beat outright?").
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::SenseMismatch`] when the frontiers rank
    /// different objective spaces.
    pub fn diff(&self, other: &ParetoFrontier) -> Result<FrontierDiff, ExploreError> {
        if self.senses != other.senses {
            return Err(ExploreError::SenseMismatch);
        }
        let surviving = |ours: &[DesignPoint], theirs: &[DesignPoint]| {
            ours.iter()
                .filter(|m| {
                    !theirs
                        .iter()
                        .any(|t| dominates(&t.objectives, &m.objectives, &self.senses))
                })
                .map(|m| m.index)
                .collect()
        };
        Ok(FrontierDiff {
            left_total: self.members.len(),
            right_total: other.members.len(),
            left_surviving: surviving(&self.members, &other.members),
            right_surviving: surviving(&other.members, &self.members),
        })
    }
}

/// The outcome of [`ParetoFrontier::diff`]: which members of each
/// frontier remain non-dominated when the other frontier joins the
/// comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierDiff {
    /// Size of the left frontier.
    pub left_total: usize,
    /// Size of the right frontier.
    pub right_total: usize,
    /// Left members (by point index) no right member dominates.
    pub left_surviving: Vec<usize>,
    /// Right members (by point index) no left member dominates.
    pub right_surviving: Vec<usize>,
}

impl FrontierDiff {
    /// The diff as a typed artifact table: per side, the frontier size
    /// and how many members survive the joint comparison.
    pub fn artifact(
        &self,
        title: impl Into<String>,
        left_name: &str,
        right_name: &str,
    ) -> ipass_report::Table {
        use ipass_report::Cell;
        let side = |name: &str, total: usize, surviving: &[usize]| {
            vec![
                Cell::text(name),
                Cell::int(total as i64),
                Cell::int(surviving.len() as i64),
                Cell::text(
                    surviving
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
            ]
        };
        ipass_report::Table::new(title)
            .text_column("frontier")
            .integer_column("members")
            .integer_column("surviving")
            .text_column("surviving point indices")
            .row(side(left_name, self.left_total, &self.left_surviving))
            .row(side(right_name, self.right_total, &self.right_surviving))
    }

    /// Whether the left frontier survives intact while dominating at
    /// least one right member — "strictly better somewhere, worse
    /// nowhere".
    pub fn left_strictly_better(&self) -> bool {
        self.left_surviving.len() == self.left_total
            && self.right_surviving.len() < self.right_total
    }

    /// Mirror of [`FrontierDiff::left_strictly_better`].
    pub fn right_strictly_better(&self) -> bool {
        self.right_surviving.len() == self.right_total
            && self.left_surviving.len() < self.left_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(index: usize, objectives: &[f64]) -> DesignPoint {
        DesignPoint {
            index,
            coords: vec![index as f64],
            objectives: objectives.to_vec(),
        }
    }

    const MIN2: [Sense; 2] = [Sense::Minimize, Sense::Minimize];

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0], &MIN2));
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0], &MIN2));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0], &MIN2));
        assert!(!dominates(&[2.0, 2.0], &[2.0, 2.0], &MIN2));
        let mixed = [Sense::Minimize, Sense::Maximize];
        assert!(dominates(&[1.0, 9.0], &[2.0, 8.0], &mixed));
        assert!(!dominates(&[1.0, 7.0], &[2.0, 8.0], &mixed));
    }

    #[test]
    fn frontier_keeps_nondominated_and_ties() {
        let f = ParetoFrontier::extract(
            MIN2.to_vec(),
            vec![
                p(0, &[1.0, 4.0]),
                p(1, &[2.0, 2.0]),
                p(2, &[4.0, 1.0]),
                p(3, &[3.0, 3.0]), // dominated by 1
                p(4, &[2.0, 2.0]), // exact tie with 1 — both stay
            ],
        );
        assert_eq!(f.indices(), vec![0, 1, 2, 4]);
        assert_eq!(f.best_by(0).unwrap().index, 0);
        assert_eq!(f.best_by(1).unwrap().index, 2);
    }

    #[test]
    fn merge_equals_joint_extraction() {
        let all: Vec<DesignPoint> = (0..40)
            .map(|i| {
                let x = i as f64;
                p(i, &[x, (40.0 - x) * (1.0 + 0.1 * ((i % 3) as f64))])
            })
            .collect();
        let joint = ParetoFrontier::extract(MIN2.to_vec(), all.clone());
        let mut left = ParetoFrontier::extract(MIN2.to_vec(), all[..17].to_vec());
        let right = ParetoFrontier::extract(MIN2.to_vec(), all[17..].to_vec());
        left.merge(right);
        assert_eq!(left, joint);
    }

    #[test]
    fn diff_classifies_survivors() {
        let a = ParetoFrontier::extract(MIN2.to_vec(), vec![p(0, &[1.0, 4.0]), p(1, &[4.0, 1.0])]);
        let b = ParetoFrontier::extract(MIN2.to_vec(), vec![p(0, &[0.5, 4.0]), p(1, &[5.0, 2.0])]);
        let d = a.diff(&b).unwrap();
        // b's first point dominates a's first; a's second dominates b's
        // second.
        assert_eq!(d.left_surviving, vec![1]);
        assert_eq!(d.right_surviving, vec![0]);
        assert!(!d.left_strictly_better() && !d.right_strictly_better());

        let worse = ParetoFrontier::extract(MIN2.to_vec(), vec![p(0, &[2.0, 5.0])]);
        let d = a.diff(&worse).unwrap();
        assert!(d.left_strictly_better());
        assert!(worse.diff(&a).unwrap().right_strictly_better());

        let other_space =
            ParetoFrontier::new(vec![Sense::Minimize, Sense::Minimize, Sense::Minimize]);
        assert!(matches!(
            a.diff(&other_space),
            Err(ExploreError::SenseMismatch)
        ));
    }
}
