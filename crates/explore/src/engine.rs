//! The generic exploration engine: sample → evaluate → frontier.
//!
//! This layer knows nothing about production flows — an evaluation is
//! any `Fn(point index, coords) -> objective values`. The
//! production-flow binding in [`crate::flow`] builds on it; the RF and
//! passives crates drive it directly with their own domain evaluators.

use crate::error::ExploreError;
use crate::pareto::{DesignPoint, ParetoFrontier, Sense};
use crate::sample::SamplerSpec;
use crate::space::Axis;
use ipass_sim::Executor;

/// An evaluated design space: every sampled point with its objective
/// values, plus the extracted Pareto frontier.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Axis names, aligned with every point's `coords`.
    pub axes: Vec<String>,
    /// Objective names, aligned with every point's `objectives`.
    pub objectives: Vec<String>,
    /// Objective senses, aligned with `objectives`.
    pub senses: Vec<Sense>,
    /// All evaluated points; position equals `DesignPoint::index`.
    pub points: Vec<DesignPoint>,
    /// The non-dominated subset.
    pub frontier: ParetoFrontier,
}

impl Exploration {
    /// The exploration as a typed [`FrontierPlot`] artifact: every
    /// screened point with its frontier-membership flag, the senses
    /// mapped onto report directions.
    ///
    /// [`FrontierPlot`]: ipass_report::FrontierPlot
    pub fn frontier_plot(&self, title: impl Into<String>) -> ipass_report::FrontierPlot {
        let mut on_frontier = vec![false; self.points.len()];
        for index in self.frontier.indices() {
            on_frontier[index] = true;
        }
        ipass_report::FrontierPlot::new(
            title,
            self.axes.clone(),
            self.objectives.clone(),
            self.senses.iter().map(|s| direction(*s)).collect(),
            self.points
                .iter()
                .map(|p| ipass_report::FrontierPoint {
                    index: p.index,
                    coords: p.coords.clone(),
                    objectives: p.objectives.clone(),
                    on_frontier: on_frontier[p.index],
                    confirmed: None,
                })
                .collect(),
        )
    }

    /// Render the frontier as a table (axes, then objectives).
    pub fn render(&self) -> String {
        let mut out = format!(
            "frontier: {} of {} points\n",
            self.frontier.members().len(),
            self.points.len()
        );
        out.push_str(&format!("{:>6}", "point"));
        for name in self.axes.iter().chain(&self.objectives) {
            out.push_str(&format!(" {name:>18}"));
        }
        out.push('\n');
        for m in self.frontier.members() {
            out.push_str(&format!("{:>6}", m.index));
            for v in m.coords.iter().chain(&m.objectives) {
                out.push_str(&format!(" {v:>18.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Map a dominance sense onto a report direction.
pub(crate) fn direction(sense: Sense) -> ipass_report::Direction {
    match sense {
        Sense::Minimize => ipass_report::Direction::LowerIsBetter,
        Sense::Maximize => ipass_report::Direction::HigherIsBetter,
    }
}

/// Check one evaluation result against the exploration's objective
/// arity and NaN rules.
pub(crate) fn checked_objectives(
    point: usize,
    values: Vec<f64>,
    names: &[String],
) -> Result<Vec<f64>, ExploreError> {
    if values.len() != names.len() {
        return Err(ExploreError::ObjectiveCountMismatch {
            point,
            expected: names.len(),
            got: values.len(),
        });
    }
    if let Some(k) = values.iter().position(|v| v.is_nan()) {
        return Err(ExploreError::NanObjective {
            point,
            objective: names[k].clone(),
        });
    }
    Ok(values)
}

/// Explore a design space with an arbitrary evaluator: sample `axes`
/// per `sampler`, evaluate every point in parallel on `executor`
/// (results independent of the thread count), and extract the Pareto
/// frontier over `objectives`.
///
/// # Errors
///
/// Returns [`ExploreError`] when the space or objectives are degenerate
/// or any point fails to evaluate (first failure in point order).
pub fn explore_fn<F>(
    executor: &Executor,
    axes: &[Axis],
    sampler: &SamplerSpec,
    objectives: &[(String, Sense)],
    eval: F,
) -> Result<Exploration, ExploreError>
where
    F: Fn(usize, &[f64]) -> Result<Vec<f64>, ExploreError> + Sync,
{
    if objectives.is_empty() {
        return Err(ExploreError::NoObjectives);
    }
    let names: Vec<String> = objectives.iter().map(|(n, _)| n.clone()).collect();
    let senses: Vec<Sense> = objectives.iter().map(|&(_, s)| s).collect();
    let pts = sampler.points(axes)?;
    let indices: Vec<usize> = (0..pts.len()).collect();
    let points = executor.try_map(&indices, |_, &i| {
        let coords = pts.coords(i);
        let values = checked_objectives(i, eval(i, &coords)?, &names)?;
        Ok::<DesignPoint, ExploreError>(DesignPoint {
            index: i,
            coords,
            objectives: values,
        })
    })?;
    let frontier = ParetoFrontier::extract(senses.clone(), points.iter().cloned());
    Ok(Exploration {
        axes: axes.iter().map(|a| a.name.clone()).collect(),
        objectives: names,
        senses,
        points,
        frontier,
    })
}

/// Like [`explore_fn`], but reduce straight to the frontier without
/// retaining the evaluated points — memory stays `O(frontier)` however
/// many points are sampled, which is what makes full grids in the
/// millions practical.
///
/// Runs on the executor's chunked map-reduce
/// ([`Executor::try_map_reduce`]): each chunk folds into a local
/// frontier, chunk frontiers merge in chunk order, and because frontier
/// membership is insertion-order invariant the result is identical for
/// any thread count and chunk geometry.
///
/// # Errors
///
/// See [`explore_fn`].
pub fn frontier_fn<F>(
    executor: &Executor,
    axes: &[Axis],
    sampler: &SamplerSpec,
    objectives: &[(String, Sense)],
    eval: F,
) -> Result<ParetoFrontier, ExploreError>
where
    F: Fn(usize, &[f64]) -> Result<Vec<f64>, ExploreError> + Sync,
{
    if objectives.is_empty() {
        return Err(ExploreError::NoObjectives);
    }
    let names: Vec<String> = objectives.iter().map(|(n, _)| n.clone()).collect();
    let senses: Vec<Sense> = objectives.iter().map(|&(_, s)| s).collect();
    let pts = sampler.points(axes)?;
    executor.try_map_reduce(
        pts.len() as u64,
        || ParetoFrontier::new(senses.clone()),
        |unit, acc| {
            let i = unit as usize;
            let coords = pts.coords(i);
            let values = checked_objectives(i, eval(i, &coords)?, &names)?;
            acc.insert(DesignPoint {
                index: i,
                coords,
                objectives: values,
            });
            Ok(())
        },
        |into, from| into.merge(from),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Levels;

    fn axes() -> Vec<Axis> {
        vec![
            Axis::new("x", Levels::linspace(0.0, 1.0, 16)),
            Axis::new("y", Levels::linspace(0.0, 1.0, 16)),
        ]
    }

    fn objectives() -> Vec<(String, Sense)> {
        vec![("f".into(), Sense::Minimize), ("g".into(), Sense::Minimize)]
    }

    /// Two competing smooth objectives: f grows with x+y, g shrinks.
    fn eval(_: usize, c: &[f64]) -> Result<Vec<f64>, ExploreError> {
        let s = c[0] + c[1];
        Ok(vec![s, 2.0 - s + 0.2 * (c[0] - c[1]).abs()])
    }

    #[test]
    fn explore_and_frontier_only_agree() {
        let exec = Executor::new(4);
        let full = explore_fn(&exec, &axes(), &SamplerSpec::Grid, &objectives(), eval).unwrap();
        assert_eq!(full.points.len(), 256);
        let reduced = frontier_fn(&exec, &axes(), &SamplerSpec::Grid, &objectives(), eval).unwrap();
        assert_eq!(full.frontier, reduced);
        assert!(!full.frontier.members().is_empty());
        assert!(full.render().contains("frontier"));
    }

    #[test]
    fn results_are_thread_invariant() {
        let one = explore_fn(
            &Executor::new(1),
            &axes(),
            &SamplerSpec::LatinHypercube {
                points: 100,
                seed: 5,
            },
            &objectives(),
            eval,
        )
        .unwrap();
        for threads in [2, 8] {
            let many = explore_fn(
                &Executor::new(threads),
                &axes(),
                &SamplerSpec::LatinHypercube {
                    points: 100,
                    seed: 5,
                },
                &objectives(),
                eval,
            )
            .unwrap();
            assert_eq!(one.points, many.points);
            assert_eq!(one.frontier, many.frontier);
        }
    }

    #[test]
    fn evaluator_misbehavior_is_typed() {
        let exec = Executor::serial();
        let err = explore_fn(&exec, &axes(), &SamplerSpec::Grid, &objectives(), |_, _| {
            Ok(vec![1.0])
        })
        .unwrap_err();
        assert!(matches!(
            err,
            ExploreError::ObjectiveCountMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
        let err = explore_fn(&exec, &axes(), &SamplerSpec::Grid, &objectives(), |_, _| {
            Ok(vec![1.0, f64::NAN])
        })
        .unwrap_err();
        assert!(matches!(err, ExploreError::NanObjective { .. }));
        let err = explore_fn(&exec, &axes(), &SamplerSpec::Grid, &[], eval).unwrap_err();
        assert!(matches!(err, ExploreError::NoObjectives));
    }
}
