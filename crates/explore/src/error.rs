//! Errors reported when defining or running an exploration.

use ipass_moe::FlowError;
use std::error::Error;
use std::fmt;

/// Error defining or running a design-space exploration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// The exploration defines no axes — there is no space to sample.
    NoAxes,
    /// The exploration defines no objectives — no dominance order
    /// exists, so "frontier" is meaningless.
    NoObjectives,
    /// An axis has no levels.
    EmptyAxis {
        /// Name of the offending axis.
        axis: String,
    },
    /// An axis range is unusable: non-finite bounds or `lo > hi`.
    InvalidAxisRange {
        /// Name of the offending axis.
        axis: String,
        /// Lower bound as given.
        lo: f64,
        /// Upper bound as given.
        hi: f64,
    },
    /// A probability-valued axis (yield, coverage) reaches outside
    /// `[0, 1]`.
    ProbabilityAxisOutOfRange {
        /// Name of the offending axis.
        axis: String,
        /// Lower bound as given.
        lo: f64,
        /// Upper bound as given.
        hi: f64,
    },
    /// A sampler was asked for zero points.
    NoPoints,
    /// The full grid over the axes exceeds the supported point count.
    GridTooLarge {
        /// The number of grid points the axes imply.
        points: u128,
        /// The supported maximum.
        limit: u64,
    },
    /// An evaluation returned a different number of objective values
    /// than the exploration defines.
    ObjectiveCountMismatch {
        /// Point index whose evaluation misbehaved.
        point: usize,
        /// Objectives the exploration defines.
        expected: usize,
        /// Values the evaluation returned.
        got: usize,
    },
    /// An evaluation produced a NaN objective — NaN has no place in a
    /// dominance order, so the point is rejected instead of silently
    /// winning or losing every comparison.
    NanObjective {
        /// Point index whose evaluation misbehaved.
        point: usize,
        /// Name of the offending objective.
        objective: String,
    },
    /// Two frontiers with different objective senses were diffed.
    SenseMismatch,
    /// Evaluating a point failed inside the production-flow layer.
    Flow(FlowError),
    /// Evaluating a point failed inside a domain layer (filter design,
    /// component synthesis, …).
    Eval {
        /// Point index whose evaluation failed.
        point: usize,
        /// The domain error, rendered.
        message: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::NoAxes => write!(f, "exploration has no axes"),
            ExploreError::NoObjectives => write!(f, "exploration has no objectives"),
            ExploreError::EmptyAxis { axis } => write!(f, "axis {axis:?} has no levels"),
            ExploreError::InvalidAxisRange { axis, lo, hi } => {
                write!(f, "axis {axis:?} has an invalid range [{lo}, {hi}]")
            }
            ExploreError::ProbabilityAxisOutOfRange { axis, lo, hi } => write!(
                f,
                "probability axis {axis:?} range [{lo}, {hi}] leaves [0, 1]"
            ),
            ExploreError::NoPoints => write!(f, "sampler was asked for zero points"),
            ExploreError::GridTooLarge { points, limit } => {
                write!(f, "full grid has {points} points (limit {limit})")
            }
            ExploreError::ObjectiveCountMismatch {
                point,
                expected,
                got,
            } => write!(
                f,
                "point {point} evaluated to {got} objective values, expected {expected}"
            ),
            ExploreError::NanObjective { point, objective } => {
                write!(f, "point {point} produced NaN for objective {objective:?}")
            }
            ExploreError::SenseMismatch => {
                write!(
                    f,
                    "frontiers with different objective senses cannot be diffed"
                )
            }
            ExploreError::Flow(e) => write!(f, "flow evaluation failed: {e}"),
            ExploreError::Eval { point, message } => {
                write!(f, "evaluating point {point} failed: {message}")
            }
        }
    }
}

impl Error for ExploreError {}

impl From<FlowError> for ExploreError {
    fn from(e: FlowError) -> ExploreError {
        ExploreError::Flow(e)
    }
}
