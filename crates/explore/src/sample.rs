//! Deterministic design-space samplers.
//!
//! A sampler turns a set of [`Axis`] definitions into a [`PointSet`]: a
//! *virtual* list of coordinate vectors addressed by index. Coordinates
//! are a pure function of `(spec, axes, index)` — the full grid decodes
//! the index in mixed radix, the random sampler draws each point from
//! its own counter-based [`SimRng`] stream, and the Latin hypercube
//! shuffles its strata with seeded Fisher–Yates up front — so nothing
//! about scheduling or thread count enters any coordinate, and point
//! sets never have to be materialized to be fanned out.

use crate::error::ExploreError;
use crate::space::{Axis, Levels};
use ipass_sim::SimRng;

/// The supported point-count ceiling for a single exploration.
const MAX_POINTS: u64 = 1 << 32;

/// Stream tag separating the Latin-hypercube permutation draws from the
/// per-point jitter draws of the same seed.
const LHS_PERM_STREAM: u64 = 0x4C48_5F70_6572_6D73; // "LH_perms"

/// How to sample the design space.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerSpec {
    /// The full cartesian grid over every axis's levels.
    Grid,
    /// `points` uniform random points; point `i` draws its coordinates
    /// from `SimRng::stream(seed, i)`.
    Random {
        /// Number of points.
        points: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A Latin hypercube: `points` strata per axis, each hit exactly
    /// once, with in-stratum jitter. Stratum permutations and jitter are
    /// both derived from `seed` alone.
    LatinHypercube {
        /// Number of points (and strata per axis).
        points: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl SamplerSpec {
    /// Resolve the spec against concrete axes.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] when an axis is degenerate, a point
    /// count is zero, or the full grid exceeds the supported size.
    pub fn points(&self, axes: &[Axis]) -> Result<PointSet, ExploreError> {
        if axes.is_empty() {
            return Err(ExploreError::NoAxes);
        }
        for axis in axes {
            axis.levels.validate(&axis.name)?;
        }
        let levels: Vec<Levels> = axes.iter().map(|a| a.levels.clone()).collect();
        match *self {
            SamplerSpec::Grid => {
                let mut total: u128 = 1;
                for l in &levels {
                    total *= l.count() as u128;
                }
                if total > u128::from(MAX_POINTS) {
                    return Err(ExploreError::GridTooLarge {
                        points: total,
                        limit: MAX_POINTS,
                    });
                }
                Ok(PointSet {
                    levels,
                    len: total as usize,
                    shape: Shape::Grid,
                })
            }
            SamplerSpec::Random { points, seed } => {
                if points == 0 {
                    return Err(ExploreError::NoPoints);
                }
                Ok(PointSet {
                    levels,
                    len: points,
                    shape: Shape::Random { seed },
                })
            }
            SamplerSpec::LatinHypercube { points, seed } => {
                if points == 0 {
                    return Err(ExploreError::NoPoints);
                }
                // One stratum permutation per axis, shuffled up front on
                // the calling thread (the permutations are shared state;
                // everything per-point stays a pure function of the
                // index).
                let perms = (0..levels.len())
                    .map(|j| {
                        let mut rng = SimRng::stream(seed ^ LHS_PERM_STREAM, j as u64);
                        let mut perm: Vec<u32> = (0..points as u32).collect();
                        for k in (1..perm.len()).rev() {
                            perm.swap(k, rng.range_usize(0, k + 1));
                        }
                        perm
                    })
                    .collect();
                Ok(PointSet {
                    levels,
                    len: points,
                    shape: Shape::Lhs { seed, perms },
                })
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Shape {
    Grid,
    Random { seed: u64 },
    Lhs { seed: u64, perms: Vec<Vec<u32>> },
}

/// A resolved, index-addressable set of sample points (see the
/// [crate docs](crate) for the determinism contract).
#[derive(Debug, Clone)]
pub struct PointSet {
    levels: Vec<Levels>,
    len: usize,
    shape: Shape,
}

impl PointSet {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty (it never is — specs reject zero
    /// points — but clippy insists the pair exists).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of axes per point.
    pub fn dims(&self) -> usize {
        self.levels.len()
    }

    /// The coordinates of point `i`, one value per axis.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn coords(&self, i: usize) -> Vec<f64> {
        assert!(i < self.len, "point {i} out of {}", self.len);
        match &self.shape {
            Shape::Grid => {
                // Mixed-radix decode, first axis slowest.
                let mut rest = i;
                let mut coords = vec![0.0; self.levels.len()];
                for (j, levels) in self.levels.iter().enumerate().rev() {
                    let n = levels.count();
                    coords[j] = levels.level(rest % n);
                    rest /= n;
                }
                coords
            }
            Shape::Random { seed } => {
                let mut rng = SimRng::stream(*seed, i as u64);
                self.levels
                    .iter()
                    .map(|levels| levels.at_unit(rng.next_f64()))
                    .collect()
            }
            Shape::Lhs { seed, perms } => {
                let mut rng = SimRng::stream(*seed, i as u64);
                self.levels
                    .iter()
                    .zip(perms)
                    .map(|(levels, perm)| {
                        let stratum = perm[i] as f64;
                        let u = (stratum + rng.next_f64()) / self.len as f64;
                        levels.at_unit(u)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Axis;

    fn axes() -> Vec<Axis> {
        vec![
            Axis::new("a", Levels::linspace(0.0, 1.0, 4)),
            Axis::new("b", Levels::explicit([10.0, 20.0, 30.0])),
        ]
    }

    #[test]
    fn grid_enumerates_the_cartesian_product() {
        let pts = SamplerSpec::Grid.points(&axes()).unwrap();
        assert_eq!(pts.len(), 12);
        assert_eq!(pts.dims(), 2);
        assert_eq!(pts.coords(0), vec![0.0, 10.0]);
        assert_eq!(pts.coords(1), vec![0.0, 20.0]);
        assert_eq!(pts.coords(3), vec![1.0 / 3.0, 10.0]);
        assert_eq!(pts.coords(11), vec![1.0, 30.0]);
    }

    #[test]
    fn random_points_are_reproducible_and_in_bounds() {
        let spec = SamplerSpec::Random {
            points: 64,
            seed: 9,
        };
        let a = spec.points(&axes()).unwrap();
        let b = spec.points(&axes()).unwrap();
        for i in 0..64 {
            let c = a.coords(i);
            assert_eq!(c, b.coords(i));
            assert!((0.0..=1.0).contains(&c[0]));
            assert!([10.0, 20.0, 30.0].contains(&c[1]));
        }
        let other = SamplerSpec::Random {
            points: 64,
            seed: 10,
        }
        .points(&axes())
        .unwrap();
        assert_ne!(a.coords(0), other.coords(0));
    }

    #[test]
    fn latin_hypercube_hits_every_stratum_once() {
        let n = 16;
        let spec = SamplerSpec::LatinHypercube { points: n, seed: 3 };
        let pts = spec
            .points(&[Axis::new("x", Levels::linspace(0.0, 1.0, 2))])
            .unwrap();
        let mut strata = vec![false; n];
        for i in 0..n {
            let x = pts.coords(i)[0];
            let s = ((x * n as f64) as usize).min(n - 1);
            assert!(!strata[s], "stratum {s} hit twice");
            strata[s] = true;
        }
        assert!(strata.iter().all(|&s| s));
        // Reproducible.
        let again = spec
            .points(&[Axis::new("x", Levels::linspace(0.0, 1.0, 2))])
            .unwrap();
        assert_eq!(pts.coords(7), again.coords(7));
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        assert!(matches!(
            SamplerSpec::Grid.points(&[]),
            Err(ExploreError::NoAxes)
        ));
        assert!(matches!(
            SamplerSpec::Random { points: 0, seed: 0 }.points(&axes()),
            Err(ExploreError::NoPoints)
        ));
        let huge = vec![Axis::new("x", Levels::linspace(0.0, 1.0, 1 << 17)); 3];
        assert!(matches!(
            SamplerSpec::Grid.points(&huge),
            Err(ExploreError::GridTooLarge { .. })
        ));
    }
}
