//! SMD chip component catalog: body vs footprint areas (Fig. 1).
//!
//! The paper's Fig. 1 (after Pohjonen & Kuisma [6]) shows that while SMD
//! bodies keep shrinking, the mounting/soldering overhead ("footprint")
//! barely does — the motivation for integrating passives at all. Table 1
//! anchors two of the footprints: 0603 → 3.75 mm², 0805 → 4.5 mm².

use ipass_units::Area;
use std::fmt;

/// Imperial SMD case sizes, largest to smallest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SmdSize {
    /// 2512: 6.30 × 3.20 mm body.
    I2512,
    /// 1206: 3.20 × 1.60 mm body.
    I1206,
    /// 0805: 2.00 × 1.25 mm body.
    I0805,
    /// 0603: 1.60 × 0.80 mm body.
    I0603,
    /// 0402: 1.00 × 0.50 mm body.
    I0402,
    /// 0201: 0.60 × 0.30 mm body.
    I0201,
}

impl SmdSize {
    /// All sizes, largest first (the x-axis of Fig. 1 extended).
    pub const ALL: [SmdSize; 6] = [
        SmdSize::I2512,
        SmdSize::I1206,
        SmdSize::I0805,
        SmdSize::I0603,
        SmdSize::I0402,
        SmdSize::I0201,
    ];

    /// Body length × width in mm.
    pub fn body_mm(self) -> (f64, f64) {
        match self {
            SmdSize::I2512 => (6.30, 3.20),
            SmdSize::I1206 => (3.20, 1.60),
            SmdSize::I0805 => (2.00, 1.25),
            SmdSize::I0603 => (1.60, 0.80),
            SmdSize::I0402 => (1.00, 0.50),
            SmdSize::I0201 => (0.60, 0.30),
        }
    }

    /// Pure component (body) area.
    pub fn body_area(self) -> Area {
        let (l, w) = self.body_mm();
        Area::rect_mm(l, w)
    }

    /// Mounted footprint area: body + solder lands + placement courtyard.
    ///
    /// The 0603/0805 values are the paper's Table 1 figures; the others
    /// follow the same pad-and-courtyard model (Fig. 1's point is that
    /// this overhead saturates around ~2.2 mm²).
    pub fn footprint_area(self) -> Area {
        Area::from_mm2(match self {
            SmdSize::I2512 => 25.0,
            SmdSize::I1206 => 7.60,
            SmdSize::I0805 => 4.50,
            SmdSize::I0603 => 3.75,
            SmdSize::I0402 => 2.70,
            SmdSize::I0201 => 2.20,
        })
    }

    /// Mounting overhead: footprint minus body.
    pub fn mounting_overhead(self) -> Area {
        self.footprint_area() - self.body_area()
    }

    /// The industry case code (e.g. `"0603"`).
    pub fn code(self) -> &'static str {
        match self {
            SmdSize::I2512 => "2512",
            SmdSize::I1206 => "1206",
            SmdSize::I0805 => "0805",
            SmdSize::I0603 => "0603",
            SmdSize::I0402 => "0402",
            SmdSize::I0201 => "0201",
        }
    }

    /// Parse a case code.
    pub fn from_code(code: &str) -> Option<SmdSize> {
        SmdSize::ALL.iter().copied().find(|s| s.code() == code)
    }
}

impl fmt::Display for SmdSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// The component families available as SMD chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmdKind {
    /// Thick-film chip resistor.
    Resistor,
    /// Multilayer ceramic capacitor.
    Capacitor,
    /// Wire-wound or multilayer chip inductor.
    Inductor,
}

impl SmdKind {
    /// Typical purchase price in the paper's cost units (late-1990s
    /// volume pricing; used by the example workloads, not by the Table 2
    /// reproduction which takes the paper's aggregate figures).
    pub fn typical_unit_price(self, size: SmdSize) -> f64 {
        let base = match self {
            SmdKind::Resistor => 0.02,
            SmdKind::Capacitor => 0.03,
            SmdKind::Inductor => 0.15,
        };
        // Very large and very small cases both carry a premium.
        let factor = match size {
            SmdSize::I2512 => 2.0,
            SmdSize::I1206 => 1.2,
            SmdSize::I0805 => 1.0,
            SmdSize::I0603 => 1.0,
            SmdSize::I0402 => 1.5,
            SmdSize::I0201 => 2.5,
        };
        base * factor
    }

    /// Typical unloaded Q of the component family at RF, for the given
    /// case size (wire-wound 0603 inductors reach Q ≈ 45–60; chip
    /// capacitors are much better than inductors).
    pub fn typical_q(self) -> f64 {
        match self {
            SmdKind::Resistor => f64::INFINITY, // not resonant; unused
            SmdKind::Capacitor => 200.0,
            SmdKind::Inductor => 45.0,
        }
    }
}

/// The Fig. 1 data series: `(size, body_area, footprint_area)` for every
/// catalog size, largest first.
///
/// # Examples
///
/// ```
/// use ipass_passives::smd_area_series;
///
/// let series = smd_area_series();
/// // Body area shrinks monotonically…
/// assert!(series.windows(2).all(|w| w[1].1 < w[0].1));
/// // …and so does the footprint, but much more slowly at the small end.
/// let (_, body_big, foot_big) = series[2];   // 0805
/// let (_, body_small, foot_small) = series[5]; // 0201
/// assert!(body_big.mm2() / body_small.mm2() > 10.0);
/// assert!(foot_big.mm2() / foot_small.mm2() < 2.5);
/// ```
pub fn smd_area_series() -> Vec<(SmdSize, Area, Area)> {
    SmdSize::ALL
        .iter()
        .map(|&s| (s, s.body_area(), s.footprint_area()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_anchors() {
        assert!((SmdSize::I0603.footprint_area().mm2() - 3.75).abs() < 1e-12);
        assert!((SmdSize::I0805.footprint_area().mm2() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn body_areas_match_dimensions() {
        assert!((SmdSize::I0603.body_area().mm2() - 1.28).abs() < 1e-12);
        assert!((SmdSize::I0201.body_area().mm2() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn footprint_always_exceeds_body() {
        for s in SmdSize::ALL {
            assert!(
                s.footprint_area().mm2() > s.body_area().mm2(),
                "{s}: footprint must exceed body"
            );
        }
    }

    #[test]
    fn overhead_saturates_at_small_sizes() {
        // Fig. 1's argument: overhead is roughly constant ≈ 2 mm² for
        // small parts, so footprint stops shrinking.
        let o_0402 = SmdSize::I0402.mounting_overhead().mm2();
        let o_0201 = SmdSize::I0201.mounting_overhead().mm2();
        assert!((o_0402 - o_0201).abs() < 0.3);
        assert!(o_0201 > 1.5);
    }

    #[test]
    fn codes_roundtrip() {
        for s in SmdSize::ALL {
            assert_eq!(SmdSize::from_code(s.code()), Some(s));
            assert_eq!(s.to_string(), s.code());
        }
        assert_eq!(SmdSize::from_code("9999"), None);
    }

    #[test]
    fn series_is_sorted_largest_first() {
        let series = smd_area_series();
        assert_eq!(series.len(), 6);
        for w in series.windows(2) {
            assert!(w[0].1.mm2() > w[1].1.mm2());
            assert!(w[0].2.mm2() > w[1].2.mm2());
        }
    }

    #[test]
    fn prices_are_positive_and_premiums_apply() {
        for kind in [SmdKind::Resistor, SmdKind::Capacitor, SmdKind::Inductor] {
            for size in SmdSize::ALL {
                assert!(kind.typical_unit_price(size) > 0.0);
            }
        }
        assert!(
            SmdKind::Resistor.typical_unit_price(SmdSize::I0201)
                > SmdKind::Resistor.typical_unit_price(SmdSize::I0603)
        );
    }

    #[test]
    fn inductors_have_modest_q() {
        assert!(SmdKind::Inductor.typical_q() < SmdKind::Capacitor.typical_q());
    }
}
