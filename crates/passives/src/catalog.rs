//! Component catalog: propose SMD and integrated realizations for an
//! electrical requirement.
//!
//! This is the data source for BOM construction: given "47 nH, ±5 %,
//! Q ≥ 20 at 1.575 GHz", list what the technologies can offer — the
//! smallest feasible SMD case with its footprint and price, and the
//! synthesized thin-film component with its area, tolerance class and
//! computed Q.

use crate::capacitor::MimCapacitor;
use crate::error::SynthesisError;
use crate::inductor::SpiralInductor;
use crate::materials::ThinFilmProcess;
use crate::resistor::ThinFilmResistor;
use crate::smd::{SmdKind, SmdSize};
use crate::tolerance::Tolerance;
use ipass_units::{Area, Capacitance, Frequency, Inductance, Resistance};
use std::fmt;

/// The electrical value of a passive requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PassiveValue {
    /// A resistance.
    Resistor(Resistance),
    /// A capacitance.
    Capacitor(Capacitance),
    /// An inductance.
    Inductor(Inductance),
}

impl fmt::Display for PassiveValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassiveValue::Resistor(r) => write!(f, "{r}"),
            PassiveValue::Capacitor(c) => write!(f, "{c}"),
            PassiveValue::Inductor(l) => write!(f, "{l}"),
        }
    }
}

/// A passive requirement: value plus the constraints that matter for
/// technology selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassiveSpec {
    /// Required value.
    pub value: PassiveValue,
    /// Required tolerance class.
    pub tolerance: Tolerance,
    /// Operating frequency, when Q matters (RF parts).
    pub frequency: Option<Frequency>,
    /// Minimum unloaded Q at `frequency`.
    pub min_q: Option<f64>,
}

impl PassiveSpec {
    /// A requirement with relaxed tolerance (±20 %) and no Q constraint.
    pub fn new(value: PassiveValue) -> PassiveSpec {
        PassiveSpec {
            value,
            tolerance: Tolerance::percent(20.0),
            frequency: None,
            min_q: None,
        }
    }

    /// Set the tolerance requirement.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> PassiveSpec {
        self.tolerance = tolerance;
        self
    }

    /// Require a minimum Q at an operating frequency.
    pub fn with_min_q(mut self, frequency: Frequency, min_q: f64) -> PassiveSpec {
        self.frequency = Some(frequency);
        self.min_q = Some(min_q);
        self
    }
}

/// How a proposal is realized.
#[derive(Debug, Clone, PartialEq)]
pub enum Technology {
    /// A surface-mounted chip component.
    Smd {
        /// Case size.
        size: SmdSize,
        /// Component family.
        kind: SmdKind,
    },
    /// A thin-film component embedded in the substrate.
    Integrated {
        /// Short description of the structure (meander / MIM / spiral).
        structure: &'static str,
        /// Whether laser trimming is required to meet the tolerance.
        needs_trim: bool,
    },
}

/// One candidate realization of a [`PassiveSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// The realization technology.
    pub technology: Technology,
    /// Carrier area consumed (footprint for SMD, substrate for IP).
    pub area: Area,
    /// Purchase cost per piece (zero for integrated parts).
    pub unit_cost: f64,
    /// Achievable tolerance class.
    pub tolerance: Tolerance,
    /// Unloaded Q at the spec's frequency, when requested and computable.
    pub q: Option<f64>,
}

impl fmt::Display for Proposal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.technology {
            Technology::Smd { size, .. } => write!(f, "SMD {size}: {} ", self.area)?,
            Technology::Integrated {
                structure,
                needs_trim,
            } => write!(
                f,
                "IP {structure}{}: {} ",
                if *needs_trim { " (trimmed)" } else { "" },
                self.area
            )?,
        }
        write!(f, "{}", self.tolerance)?;
        if let Some(q) = self.q {
            write!(f, " Q≈{q:.0}")?;
        }
        Ok(())
    }
}

/// Smallest SMD case that can host the value (late-1990s component
/// availability; larger values need larger bodies).
fn smallest_case(value: PassiveValue) -> Option<(SmdSize, SmdKind)> {
    match value {
        PassiveValue::Resistor(r) => {
            let ohms = r.ohms();
            if !(0.1..=10e6).contains(&ohms) {
                return None;
            }
            Some((SmdSize::I0402, SmdKind::Resistor))
        }
        PassiveValue::Capacitor(c) => {
            let nf = c.nanofarads();
            let size = if nf <= 1.0 {
                SmdSize::I0402
            } else if nf <= 10.0 {
                SmdSize::I0603
            } else if nf <= 100.0 {
                SmdSize::I0805
            } else if nf <= 1000.0 {
                SmdSize::I1206
            } else {
                return None;
            };
            Some((size, SmdKind::Capacitor))
        }
        PassiveValue::Inductor(l) => {
            let nh = l.nanohenries();
            let size = if nh <= 100.0 {
                SmdSize::I0603
            } else if nh <= 1000.0 {
                SmdSize::I0805
            } else if nh <= 10_000.0 {
                SmdSize::I1206
            } else {
                return None;
            };
            Some((size, SmdKind::Inductor))
        }
    }
}

fn smd_tolerance(kind: SmdKind) -> Tolerance {
    match kind {
        SmdKind::Resistor => Tolerance::percent(1.0),
        SmdKind::Capacitor => Tolerance::percent(5.0),
        SmdKind::Inductor => Tolerance::percent(5.0),
    }
}

/// Propose every feasible realization of `spec`, SMD first.
///
/// Infeasible technologies are silently omitted: an empty result means
/// the requirement cannot be met by either technology (value out of
/// range, tolerance too tight, or Q unreachable).
///
/// # Examples
///
/// ```
/// use ipass_passives::{propose, PassiveSpec, PassiveValue, Technology, ThinFilmProcess, Tolerance};
/// use ipass_units::{Capacitance, Frequency, Inductance};
///
/// let process = ThinFilmProcess::summit_mcm_d();
///
/// // A decoupling cap: both technologies work, the SMD is far smaller.
/// let spec = PassiveSpec::new(PassiveValue::Capacitor(Capacitance::from_nano(3.3)));
/// let options = propose(&spec, &process);
/// assert_eq!(options.len(), 2);
/// assert!(options[0].area.mm2() < options[1].area.mm2() / 5.0);
///
/// // An RF inductor with a Q floor at 1.575 GHz: both still qualify.
/// let spec = PassiveSpec::new(PassiveValue::Inductor(Inductance::from_nano(40.0)))
///     .with_min_q(Frequency::from_giga(1.575), 15.0);
/// assert!(!propose(&spec, &process).is_empty());
/// ```
pub fn propose(spec: &PassiveSpec, process: &ThinFilmProcess) -> Vec<Proposal> {
    let mut proposals = Vec::with_capacity(2);
    if let Some(p) = propose_smd(spec) {
        proposals.push(p);
    }
    if let Some(p) = propose_integrated(spec, process) {
        proposals.push(p);
    }
    proposals
}

fn propose_smd(spec: &PassiveSpec) -> Option<Proposal> {
    let (size, kind) = smallest_case(spec.value)?;
    let tolerance = smd_tolerance(kind);
    if !tolerance.satisfies(spec.tolerance) {
        return None;
    }
    let q = spec.frequency.map(|_| kind.typical_q());
    if let (Some(min_q), Some(q)) = (spec.min_q, q) {
        if q < min_q {
            return None;
        }
    }
    Some(Proposal {
        technology: Technology::Smd { size, kind },
        area: size.footprint_area(),
        unit_cost: kind.typical_unit_price(size),
        tolerance,
        q,
    })
}

fn propose_integrated(spec: &PassiveSpec, process: &ThinFilmProcess) -> Option<Proposal> {
    match spec.value {
        PassiveValue::Resistor(r) => {
            let part = ThinFilmResistor::synthesize(r, process).ok()?;
            let as_fab = part.tolerance();
            let (tolerance, needs_trim) = if as_fab.satisfies(spec.tolerance) {
                (as_fab, false)
            } else {
                let trimmed = part.clone().with_trim();
                if !trimmed.tolerance().satisfies(spec.tolerance) {
                    return None;
                }
                (trimmed.tolerance(), true)
            };
            Some(Proposal {
                technology: Technology::Integrated {
                    structure: "meander",
                    needs_trim,
                },
                area: part.area(),
                unit_cost: 0.0,
                tolerance,
                q: None,
            })
        }
        PassiveValue::Capacitor(c) => {
            // Large caps go on the robust bulk dielectric, small on high-κ.
            let part = if c.nanofarads() >= 1.0 {
                MimCapacitor::synthesize_decoupling(c, process).ok()?
            } else {
                MimCapacitor::synthesize(c, process).ok()?
            };
            if !part.tolerance().satisfies(spec.tolerance) {
                return None;
            }
            let q = spec.frequency.map(|f| part.q_factor(f));
            if let (Some(min_q), Some(q)) = (spec.min_q, q) {
                if q < min_q {
                    return None;
                }
            }
            Some(Proposal {
                technology: Technology::Integrated {
                    structure: "MIM",
                    needs_trim: false,
                },
                area: part.area(),
                unit_cost: 0.0,
                tolerance: part.tolerance(),
                q,
            })
        }
        PassiveValue::Inductor(l) => {
            let part: Result<SpiralInductor, SynthesisError> = match (spec.frequency, spec.min_q) {
                (Some(f), Some(min_q)) => SpiralInductor::synthesize_for_q(l, process, f, min_q),
                _ => SpiralInductor::synthesize(l, process),
            };
            let part = part.ok()?;
            if !part.tolerance().satisfies(spec.tolerance) {
                return None;
            }
            let q = spec.frequency.map(|f| part.q_factor(f));
            Some(Proposal {
                technology: Technology::Integrated {
                    structure: "spiral",
                    needs_trim: false,
                },
                area: part.area(),
                unit_cost: 0.0,
                tolerance: part.tolerance(),
                q,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }

    #[test]
    fn pullup_resistor_gets_both_and_ip_is_tiny() {
        let spec = PassiveSpec::new(PassiveValue::Resistor(Resistance::from_kilo(100.0)));
        let options = propose(&spec, &process());
        assert_eq!(options.len(), 2);
        let ip = options
            .iter()
            .find(|p| matches!(p.technology, Technology::Integrated { .. }))
            .unwrap();
        assert!(ip.area.mm2() < 0.3);
        assert_eq!(ip.unit_cost, 0.0);
    }

    #[test]
    fn tight_resistor_tolerance_requires_trim() {
        let spec = PassiveSpec::new(PassiveValue::Resistor(Resistance::from_kilo(10.0)))
            .with_tolerance(Tolerance::percent(1.0));
        let options = propose(&spec, &process());
        let ip = options
            .iter()
            .find(|p| matches!(p.technology, Technology::Integrated { .. }))
            .unwrap();
        assert!(matches!(
            ip.technology,
            Technology::Integrated {
                needs_trim: true,
                ..
            }
        ));
        assert!(ip.tolerance.satisfies(Tolerance::percent(1.0)));
    }

    #[test]
    fn decap_prefers_bulk_dielectric_and_is_huge() {
        let spec = PassiveSpec::new(PassiveValue::Capacitor(Capacitance::from_nano(3.3)));
        let options = propose(&spec, &process());
        let ip = options
            .iter()
            .find(|p| matches!(p.technology, Technology::Integrated { .. }))
            .unwrap();
        assert!((ip.area.mm2() - 33.0).abs() < 1.5);
        let smd = options
            .iter()
            .find(|p| matches!(p.technology, Technology::Smd { .. }))
            .unwrap();
        assert_eq!(
            smd.area,
            SmdSize::I0603.footprint_area(),
            "3.3 nF fits an 0603 X7R"
        );
    }

    #[test]
    fn capacitor_tolerance_can_rule_out_ip() {
        // ±2 % NP0-class requirement: thin-film ±10…15 % fails; SMD fails
        // too at ±5 % class → only an empty proposal set remains honest.
        let spec = PassiveSpec::new(PassiveValue::Capacitor(Capacitance::from_pico(50.0)))
            .with_tolerance(Tolerance::percent(2.0));
        assert!(propose(&spec, &process()).is_empty());
    }

    #[test]
    fn if_inductor_q_requirement_inflates_the_spiral() {
        let f = Frequency::from_mega(175.0);
        let relaxed = PassiveSpec::new(PassiveValue::Inductor(Inductance::from_nano(107.0)));
        let strict = relaxed.with_min_q(f, 12.0);
        let ip_relaxed = propose(&relaxed, &process())
            .into_iter()
            .find(|p| matches!(p.technology, Technology::Integrated { .. }))
            .unwrap();
        let ip_strict = propose(&strict, &process())
            .into_iter()
            .find(|p| matches!(p.technology, Technology::Integrated { .. }))
            .unwrap();
        assert!(ip_strict.area.mm2() > 2.0 * ip_relaxed.area.mm2());
        assert!(ip_strict.q.unwrap() >= 12.0);
    }

    #[test]
    fn impossible_q_leaves_only_smd_or_nothing() {
        let spec = PassiveSpec::new(PassiveValue::Inductor(Inductance::from_nano(200.0)))
            .with_min_q(Frequency::from_mega(175.0), 40.0);
        let options = propose(&spec, &process());
        // The wire-wound SMD (Q≈45) survives; the spiral cannot.
        assert_eq!(options.len(), 1);
        assert!(matches!(options[0].technology, Technology::Smd { .. }));
    }

    #[test]
    fn out_of_range_values_propose_nothing() {
        let spec = PassiveSpec::new(PassiveValue::Capacitor(Capacitance::from_micro(100.0)));
        assert!(propose(&spec, &process()).is_empty());
        let spec = PassiveSpec::new(PassiveValue::Resistor(Resistance::new(0.01)));
        assert!(propose(&spec, &process()).is_empty());
    }

    #[test]
    fn display_is_informative() {
        let spec = PassiveSpec::new(PassiveValue::Inductor(Inductance::from_nano(40.0)))
            .with_min_q(Frequency::from_giga(1.575), 10.0);
        for p in propose(&spec, &process()) {
            let s = p.to_string();
            assert!(s.contains("mm²") && s.contains("Q≈"), "{s}");
        }
        assert_eq!(
            PassiveValue::Inductor(Inductance::from_nano(40.0)).to_string(),
            "40 nH"
        );
    }
}
