//! Thin-film process description: materials and design rules.
//!
//! Models the MCM-D(Si) thin-film technology of the SUMMIT project: the
//! passives use the same process steps as the metal interconnections —
//! sputtered resistive layers (CrSi, NiCr), dielectric sandwiches
//! (Si₃N₄, BaTiO-class high-κ) and spiral inductors in the interconnect
//! metal.

use crate::tolerance::Tolerance;
use std::fmt;

/// A sputtered resistive film.
///
/// # Examples
///
/// ```
/// use ipass_passives::ResistiveFilm;
///
/// let crsi = ResistiveFilm::cr_si();
/// assert_eq!(crsi.sheet_resistance_ohm_sq(), 360.0);
/// assert_eq!(crsi.as_fabricated_tolerance().percent_value(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResistiveFilm {
    name: &'static str,
    sheet_ohm_sq: f64,
    as_fabricated: Tolerance,
    trimmed: Tolerance,
}

impl ResistiveFilm {
    /// CrSi, 360 Ω/sq — the paper's example material.
    pub fn cr_si() -> ResistiveFilm {
        ResistiveFilm {
            name: "CrSi",
            sheet_ohm_sq: 360.0,
            as_fabricated: Tolerance::percent(15.0),
            trimmed: Tolerance::percent(1.0),
        }
    }

    /// NiCr, 100 Ω/sq — lower sheet resistance, better stability.
    pub fn ni_cr() -> ResistiveFilm {
        ResistiveFilm {
            name: "NiCr",
            sheet_ohm_sq: 100.0,
            as_fabricated: Tolerance::percent(10.0),
            trimmed: Tolerance::percent(0.5),
        }
    }

    /// TaN, 25 Ω/sq — for low-value precision resistors.
    pub fn ta_n() -> ResistiveFilm {
        ResistiveFilm {
            name: "TaN",
            sheet_ohm_sq: 25.0,
            as_fabricated: Tolerance::percent(10.0),
            trimmed: Tolerance::percent(0.5),
        }
    }

    /// Material name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Sheet resistance in Ω per square.
    pub fn sheet_resistance_ohm_sq(&self) -> f64 {
        self.sheet_ohm_sq
    }

    /// Tolerance class as deposited (paper: "about ±15 %").
    pub fn as_fabricated_tolerance(&self) -> Tolerance {
        self.as_fabricated
    }

    /// Tolerance class after laser trimming (paper: "below 1 %").
    pub fn trimmed_tolerance(&self) -> Tolerance {
        self.trimmed
    }
}

impl fmt::Display for ResistiveFilm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} Ω/sq)", self.name, self.sheet_ohm_sq)
    }
}

/// A capacitor dielectric film.
///
/// # Examples
///
/// ```
/// use ipass_passives::DielectricFilm;
///
/// // The paper: "capacitors up to 100 pF/mm² (10 nF/cm²)".
/// assert_eq!(DielectricFilm::si3n4().density_pf_mm2(), 100.0);
/// assert!(DielectricFilm::ba_ti_o().density_pf_mm2() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DielectricFilm {
    name: &'static str,
    density_pf_mm2: f64,
    tolerance: Tolerance,
    loss_tangent: f64,
}

impl DielectricFilm {
    /// Si₃N₄ sandwich: 100 pF/mm² (10 nF/cm²), the paper's headline
    /// density; used for larger capacitors (decoupling).
    pub fn si3n4() -> DielectricFilm {
        DielectricFilm {
            name: "Si3N4",
            density_pf_mm2: 100.0,
            tolerance: Tolerance::percent(10.0),
            loss_tangent: 0.002,
        }
    }

    /// BaTiO-class high-κ film: ≈180 pF/mm², used for small RF
    /// capacitors (Table 1's 50 pF in 0.3 mm² implies this density).
    pub fn ba_ti_o() -> DielectricFilm {
        DielectricFilm {
            name: "BaTiO",
            density_pf_mm2: 180.0,
            tolerance: Tolerance::percent(15.0),
            loss_tangent: 0.01,
        }
    }

    /// Material name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacitance density in pF/mm².
    pub fn density_pf_mm2(&self) -> f64 {
        self.density_pf_mm2
    }

    /// Capacitance tolerance class (thickness/κ variation).
    pub fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    /// Dielectric loss tangent (tan δ) at RF.
    pub fn loss_tangent(&self) -> f64 {
        self.loss_tangent
    }

    /// Capacitor quality factor from dielectric loss alone: `1 / tan δ`.
    pub fn q_factor(&self) -> f64 {
        1.0 / self.loss_tangent
    }
}

impl fmt::Display for DielectricFilm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} pF/mm²)", self.name, self.density_pf_mm2)
    }
}

/// The complete thin-film process card used for synthesis.
///
/// # Examples
///
/// ```
/// use ipass_passives::ThinFilmProcess;
///
/// let p = ThinFilmProcess::summit_mcm_d();
/// assert_eq!(p.min_line_um(), 20.0);
/// assert!(p.metal_sheet_mohm_sq() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThinFilmProcess {
    name: &'static str,
    min_line_um: f64,
    min_space_um: f64,
    contact_pad_um: f64,
    metal_sheet_mohm_sq: f64,
    metal_thickness_um: f64,
    resistor_film: ResistiveFilm,
    capacitor_film: DielectricFilm,
    decoupling_film: DielectricFilm,
    substrate_loss_factor: f64,
}

impl ThinFilmProcess {
    /// The SUMMIT-style MCM-D(Si) process used throughout the paper's
    /// case study: 20 µm lines/spaces for passives, 5 µm electroplated
    /// Cu interconnect, CrSi resistors, Si₃N₄/BaTiO capacitors.
    pub fn summit_mcm_d() -> ThinFilmProcess {
        ThinFilmProcess {
            name: "SUMMIT MCM-D(Si)",
            min_line_um: 20.0,
            min_space_um: 20.0,
            contact_pad_um: 70.0,
            metal_sheet_mohm_sq: 7.0,
            metal_thickness_um: 5.0,
            resistor_film: ResistiveFilm::cr_si(),
            capacitor_film: DielectricFilm::ba_ti_o(),
            decoupling_film: DielectricFilm::si3n4(),
            substrate_loss_factor: 1.35,
        }
    }

    /// A coarser, cheaper polyimide-on-laminate thin-film process
    /// (Lenihan et al. style flexible-film passives) for comparison
    /// studies.
    pub fn polyimide_flex() -> ThinFilmProcess {
        ThinFilmProcess {
            name: "polyimide flex",
            min_line_um: 50.0,
            min_space_um: 50.0,
            contact_pad_um: 120.0,
            metal_sheet_mohm_sq: 3.5,
            metal_thickness_um: 9.0,
            resistor_film: ResistiveFilm::ni_cr(),
            capacitor_film: DielectricFilm::si3n4(),
            decoupling_film: DielectricFilm::si3n4(),
            substrate_loss_factor: 1.15,
        }
    }

    /// Process name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Minimum line width for passives, in µm.
    pub fn min_line_um(&self) -> f64 {
        self.min_line_um
    }

    /// Minimum line spacing, in µm.
    pub fn min_space_um(&self) -> f64 {
        self.min_space_um
    }

    /// Contact/terminal pad edge length, in µm.
    pub fn contact_pad_um(&self) -> f64 {
        self.contact_pad_um
    }

    /// Interconnect metal sheet resistance, in mΩ per square (DC).
    pub fn metal_sheet_mohm_sq(&self) -> f64 {
        self.metal_sheet_mohm_sq
    }

    /// Interconnect metal thickness, in µm (drives the skin-effect
    /// resistance rise).
    pub fn metal_thickness_um(&self) -> f64 {
        self.metal_thickness_um
    }

    /// The resistive film used for integrated resistors.
    pub fn resistor_film(&self) -> &ResistiveFilm {
        &self.resistor_film
    }

    /// The dielectric used for small RF capacitors.
    pub fn capacitor_film(&self) -> &DielectricFilm {
        &self.capacitor_film
    }

    /// The dielectric used for large decoupling capacitors.
    pub fn decoupling_film(&self) -> &DielectricFilm {
        &self.decoupling_film
    }

    /// Extra conductor-loss factor capturing substrate (eddy/dielectric)
    /// losses of spirals on conductive silicon (≥ 1).
    pub fn substrate_loss_factor(&self) -> f64 {
        self.substrate_loss_factor
    }

    /// Replace the resistor film (builder-style customization).
    pub fn with_resistor_film(mut self, film: ResistiveFilm) -> ThinFilmProcess {
        self.resistor_film = film;
        self
    }

    /// Replace the RF capacitor film.
    pub fn with_capacitor_film(mut self, film: DielectricFilm) -> ThinFilmProcess {
        self.capacitor_film = film;
        self
    }
}

impl Default for ThinFilmProcess {
    fn default() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }
}

impl fmt::Display for ThinFilmProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}µm lines, {} resistors, {} capacitors)",
            self.name, self.min_line_um, self.resistor_film, self.capacitor_film
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values() {
        // "with a specific resistance of 360 Ω/sq (CrSi)".
        assert_eq!(ResistiveFilm::cr_si().sheet_resistance_ohm_sq(), 360.0);
        // "Tolerances are about 15 %, with laser tuning values below 1 %".
        assert_eq!(
            ResistiveFilm::cr_si().as_fabricated_tolerance(),
            Tolerance::percent(15.0)
        );
        assert!(ResistiveFilm::cr_si()
            .trimmed_tolerance()
            .satisfies(Tolerance::percent(1.0)));
        // "capacitors up to 100 pF/mm² (10 nF/cm²)".
        assert_eq!(DielectricFilm::si3n4().density_pf_mm2(), 100.0);
    }

    #[test]
    fn q_from_loss_tangent() {
        assert!((DielectricFilm::si3n4().q_factor() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn process_accessors_and_builders() {
        let p = ThinFilmProcess::summit_mcm_d().with_resistor_film(ResistiveFilm::ni_cr());
        assert_eq!(p.resistor_film().name(), "NiCr");
        let p = p.with_capacitor_film(DielectricFilm::si3n4());
        assert_eq!(p.capacitor_film().name(), "Si3N4");
        assert!(p.substrate_loss_factor() >= 1.0);
        assert_eq!(ThinFilmProcess::default(), ThinFilmProcess::summit_mcm_d());
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(ResistiveFilm::cr_si().to_string().contains("CrSi"));
        assert!(DielectricFilm::ba_ti_o().to_string().contains("pF/mm²"));
        assert!(ThinFilmProcess::summit_mcm_d()
            .to_string()
            .contains("SUMMIT"));
    }

    #[test]
    fn alternative_processes_differ() {
        let a = ThinFilmProcess::summit_mcm_d();
        let b = ThinFilmProcess::polyimide_flex();
        assert!(b.min_line_um() > a.min_line_um());
        assert_ne!(a, b);
    }
}
