//! IEC 60063 preferred number series (E3…E96) for component values.
//!
//! Real BOMs use preferred values; the workload generators snap nominal
//! filter element values to a series to model realizable designs.
//!
//! # Examples
//!
//! ```
//! use ipass_passives::eseries::ESeries;
//!
//! // 4.9 kΩ snaps to 4.7 kΩ in E12:
//! let snapped = ESeries::E12.snap(4900.0);
//! assert!((snapped - 4700.0).abs() < 1e-9);
//!
//! // E96 is much finer:
//! let fine = ESeries::E96.snap(4900.0);
//! assert!((fine - 4870.0).abs() / 4870.0 < 1e-6);
//! ```

/// A preferred-number series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ESeries {
    /// 3 values per decade (±40 %).
    E3,
    /// 6 values per decade (±20 %).
    E6,
    /// 12 values per decade (±10 %).
    E12,
    /// 24 values per decade (±5 %).
    E24,
    /// 48 values per decade (±2 %).
    E48,
    /// 96 values per decade (±1 %).
    E96,
}

/// Historic rounded mantissas for E3–E24 (IEC 60063 deviates from the
/// geometric progression for these series).
const E24_MANTISSAS: [f64; 24] = [
    1.0, 1.1, 1.2, 1.3, 1.5, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7, 3.0, 3.3, 3.6, 3.9, 4.3, 4.7, 5.1, 5.6,
    6.2, 6.8, 7.5, 8.2, 9.1,
];

impl ESeries {
    /// Number of values per decade.
    pub fn steps(self) -> usize {
        match self {
            ESeries::E3 => 3,
            ESeries::E6 => 6,
            ESeries::E12 => 12,
            ESeries::E24 => 24,
            ESeries::E48 => 48,
            ESeries::E96 => 96,
        }
    }

    /// The tolerance class conventionally paired with this series, as a
    /// fraction.
    pub fn tolerance_fraction(self) -> f64 {
        match self {
            ESeries::E3 => 0.40,
            ESeries::E6 => 0.20,
            ESeries::E12 => 0.10,
            ESeries::E24 => 0.05,
            ESeries::E48 => 0.02,
            ESeries::E96 => 0.01,
        }
    }

    /// The mantissas (values in `[1, 10)`) of one decade.
    pub fn mantissas(self) -> Vec<f64> {
        let n = self.steps();
        match self {
            ESeries::E3 | ESeries::E6 | ESeries::E12 | ESeries::E24 => {
                let stride = 24 / n;
                E24_MANTISSAS.iter().step_by(stride).copied().collect()
            }
            ESeries::E48 | ESeries::E96 => (0..n)
                .map(|i| {
                    let v = 10f64.powf(i as f64 / n as f64);
                    // IEC rounds E48/E96 to three significant digits.
                    (v * 100.0).round() / 100.0
                })
                .collect(),
        }
    }

    /// Snap `value` to the nearest preferred value (geometric distance).
    ///
    /// # Panics
    ///
    /// Panics when `value` is not a positive finite number.
    pub fn snap(self, value: f64) -> f64 {
        assert!(
            value.is_finite() && value > 0.0,
            "can only snap positive values, got {value}"
        );
        let exponent = value.log10().floor();
        let decade = 10f64.powf(exponent);
        let mantissa = value / decade;
        let mut best = f64::NAN;
        let mut best_err = f64::INFINITY;
        // Consider the neighboring decade edges too.
        for (m, scale) in self
            .mantissas()
            .iter()
            .map(|&m| (m, 1.0))
            .chain(std::iter::once((self.mantissas()[0], 10.0)))
            .chain(std::iter::once((
                *self.mantissas().last().expect("non-empty series"),
                0.1,
            )))
        {
            let candidate = m * scale;
            let err = (candidate.ln() - mantissa.ln()).abs();
            if err < best_err {
                best_err = err;
                best = candidate;
            }
        }
        best * decade
    }

    /// The worst-case relative snapping error of this series (half a
    /// geometric step).
    pub fn max_snap_error(self) -> f64 {
        10f64.powf(0.5 / self.steps() as f64) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decade_sizes() {
        for s in [
            ESeries::E3,
            ESeries::E6,
            ESeries::E12,
            ESeries::E24,
            ESeries::E48,
            ESeries::E96,
        ] {
            assert_eq!(s.mantissas().len(), s.steps());
        }
    }

    #[test]
    fn e12_contains_classics() {
        let m = ESeries::E12.mantissas();
        for v in [1.0, 2.2, 3.3, 4.7, 6.8] {
            assert!(m.iter().any(|&x| (x - v).abs() < 1e-9), "missing {v}");
        }
    }

    #[test]
    fn snapping_known_values() {
        assert!((ESeries::E12.snap(4900.0) - 4700.0).abs() < 1e-9);
        assert!((ESeries::E12.snap(1.04) - 1.0).abs() < 1e-9);
        assert!((ESeries::E24.snap(52.0) - 51.0).abs() < 1e-9);
        // Snap across decade boundary: 0.97 → 1.0.
        assert!((ESeries::E12.snap(0.97) - 1.0).abs() < 1e-9);
        // 9.6 in E12: nearest is 10 (next decade), not 8.2.
        assert!((ESeries::E12.snap(9.6) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn e96_is_three_digit() {
        for m in ESeries::E96.mantissas() {
            let scaled = m * 100.0;
            assert!((scaled - scaled.round()).abs() < 1e-9, "{m}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn snap_rejects_zero() {
        let _ = ESeries::E12.snap(0.0);
    }

    #[test]
    fn tolerance_classes_are_monotone() {
        let series = [
            ESeries::E3,
            ESeries::E6,
            ESeries::E12,
            ESeries::E24,
            ESeries::E48,
            ESeries::E96,
        ];
        for w in series.windows(2) {
            assert!(w[0].tolerance_fraction() > w[1].tolerance_fraction());
        }
    }

    proptest! {
        #[test]
        fn snap_error_is_bounded(value in 1e-12f64..1e12, series_idx in 0usize..6) {
            let series = [ESeries::E3, ESeries::E6, ESeries::E12, ESeries::E24, ESeries::E48, ESeries::E96][series_idx];
            let snapped = series.snap(value);
            let rel = (snapped / value).ln().abs();
            // Half a geometric step plus slack for the rounded mantissas
            // (E24's 1.3 → 1.5 gap is the widest irregularity: 1.49×).
            let bound = (10f64.powf(0.5 / series.steps() as f64)).ln() * 1.6;
            prop_assert!(rel <= bound, "{} -> {} (rel {})", value, snapped, rel);
        }

        #[test]
        fn snap_is_idempotent(value in 1e-9f64..1e9) {
            let s = ESeries::E24.snap(value);
            let s2 = ESeries::E24.snap(s);
            prop_assert!((s - s2).abs() <= s.abs() * 1e-12);
        }
    }
}
