//! Errors from integrated component synthesis.

use std::error::Error;
use std::fmt;

/// Error synthesizing an integrated passive from a target value.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// The requested value is not positive (or not finite).
    NonPositiveValue {
        /// What was being synthesized.
        what: &'static str,
        /// The offending value in base units.
        value: f64,
    },
    /// The requested value cannot be realized within the process limits.
    OutOfRange {
        /// What was being synthesized.
        what: &'static str,
        /// The offending value in base units.
        value: f64,
        /// Smallest realizable value in base units.
        min: f64,
        /// Largest realizable value in base units.
        max: f64,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NonPositiveValue { what, value } => {
                write!(f, "{what} value must be positive, got {value}")
            }
            SynthesisError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(
                f,
                "{what} value {value} outside realizable range [{min}, {max}]"
            ),
        }
    }
}

impl Error for SynthesisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SynthesisError::OutOfRange {
            what: "inductance",
            value: 1e-3,
            min: 1e-9,
            max: 1e-6,
        };
        let msg = e.to_string();
        assert!(msg.contains("inductance") && msg.contains("0.001"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }
}
