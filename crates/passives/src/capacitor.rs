//! Integrated MIM (metal-insulator-metal) capacitor synthesis.
//!
//! The paper: "Integrated capacitors are fabricated by depositing a
//! sandwich structure or interdigitated combs with a high-κ material in
//! the middle, e.g. Si₃N₄ or BaₓTiOᵧ. Thus, capacitors up to 100 pF/mm²
//! (10 nF/cm²) have been realized." The large area of integrated
//! decoupling capacitors is one of the paper's central trade-offs.

use crate::error::SynthesisError;
use crate::materials::{DielectricFilm, ThinFilmProcess};
use crate::tolerance::Tolerance;
use ipass_units::{Area, Capacitance, Frequency};
use std::fmt;

/// Realizable capacitance range.
const MIN_FARADS: f64 = 0.1e-12;
const MAX_FARADS: f64 = 50e-9;

/// A synthesized parallel-plate thin-film capacitor.
///
/// # Examples
///
/// ```
/// use ipass_passives::{MimCapacitor, ThinFilmProcess};
/// use ipass_units::Capacitance;
///
/// let process = ThinFilmProcess::summit_mcm_d();
///
/// // Table 1: a 50 pF capacitor occupies ≈ 0.3 mm² (high-κ film).
/// let c = MimCapacitor::synthesize(Capacitance::from_pico(50.0), &process)?;
/// assert!((c.area().mm2() - 0.3).abs() < 0.05);
///
/// // A 3.3 nF decoupling capacitor on Si₃N₄ eats ≈ 33 mm² — the
/// // "large area consumed" problem the paper highlights.
/// let decap = MimCapacitor::synthesize_decoupling(Capacitance::from_nano(3.3), &process)?;
/// assert!(decap.area().mm2() > 30.0);
/// # Ok::<(), ipass_passives::SynthesisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MimCapacitor {
    target: Capacitance,
    film: DielectricFilm,
    plate_side_mm: f64,
    area: Area,
    esr_ohm: f64,
}

impl MimCapacitor {
    /// Synthesize a small-signal RF capacitor in the process' high-κ
    /// film.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive or out-of-range
    /// targets.
    pub fn synthesize(
        target: Capacitance,
        process: &ThinFilmProcess,
    ) -> Result<MimCapacitor, SynthesisError> {
        MimCapacitor::synthesize_in_film(target, process, process.capacitor_film().clone())
    }

    /// Synthesize a decoupling capacitor in the process' bulk dielectric
    /// (Si₃N₄ at 100 pF/mm²; robust but area-hungry).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive or out-of-range
    /// targets.
    pub fn synthesize_decoupling(
        target: Capacitance,
        process: &ThinFilmProcess,
    ) -> Result<MimCapacitor, SynthesisError> {
        MimCapacitor::synthesize_in_film(target, process, process.decoupling_film().clone())
    }

    /// Synthesize in an explicit dielectric film.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive or out-of-range
    /// targets.
    pub fn synthesize_in_film(
        target: Capacitance,
        process: &ThinFilmProcess,
        film: DielectricFilm,
    ) -> Result<MimCapacitor, SynthesisError> {
        let c = target.farads();
        if !(c.is_finite() && c > 0.0) {
            return Err(SynthesisError::NonPositiveValue {
                what: "capacitance",
                value: c,
            });
        }
        if !(MIN_FARADS..=MAX_FARADS).contains(&c) {
            return Err(SynthesisError::OutOfRange {
                what: "capacitance",
                value: c,
                min: MIN_FARADS,
                max: MAX_FARADS,
            });
        }
        let plate_mm2 = target.picofarads() / film.density_pf_mm2();
        let plate_side_mm = plate_mm2.sqrt();
        // The bottom plate extends half a spacing beyond the top plate on
        // each side for overlay tolerance; connection is by via, no
        // separate pads.
        let margin_mm = process.min_space_um() * 1e-3 / 2.0;
        let side = plate_side_mm + 2.0 * margin_mm;
        // Electrode series resistance: current crosses roughly 2/3 of a
        // square of each plate metal.
        let esr_ohm = process.metal_sheet_mohm_sq() * 1e-3 * (2.0 / 3.0) * 2.0;
        Ok(MimCapacitor {
            target,
            film,
            plate_side_mm,
            area: Area::from_mm2(side * side),
            esr_ohm,
        })
    }

    /// The target capacitance.
    pub fn capacitance(&self) -> Capacitance {
        self.target
    }

    /// The dielectric film used.
    pub fn film(&self) -> &DielectricFilm {
        &self.film
    }

    /// Side length of the (square) top plate, in mm.
    pub fn plate_side_mm(&self) -> f64 {
        self.plate_side_mm
    }

    /// Substrate area consumed, including overlay margin.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Electrode series resistance (Ω).
    pub fn esr_ohm(&self) -> f64 {
        self.esr_ohm
    }

    /// The capacitance tolerance class (dielectric variation).
    pub fn tolerance(&self) -> Tolerance {
        self.film.tolerance()
    }

    /// Quality factor at `f`: dielectric loss in parallel with electrode
    /// ESR, `1/Q = tan δ + ω·C·ESR`.
    pub fn q_factor(&self, f: Frequency) -> f64 {
        let inv_q = self.film.loss_tangent() + f.angular() * self.target.farads() * self.esr_ohm;
        1.0 / inv_q
    }
}

impl fmt::Display for MimCapacitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MIM C ({}, {}, {})",
            self.target,
            self.film.name(),
            self.area,
            self.tolerance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn process() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }

    #[test]
    fn table1_anchor_50pf() {
        let c = MimCapacitor::synthesize(Capacitance::from_pico(50.0), &process()).unwrap();
        assert!(
            (c.area().mm2() - 0.3).abs() < 0.05,
            "area {} should be ≈0.3 mm²",
            c.area()
        );
    }

    #[test]
    fn decap_area_is_huge() {
        // 3.3 nF at 100 pF/mm² ≈ 33 mm² plate — the decap problem.
        let c =
            MimCapacitor::synthesize_decoupling(Capacitance::from_nano(3.3), &process()).unwrap();
        assert!((c.area().mm2() - 33.0).abs() < 1.0, "area {}", c.area());
        // Compare: an 0805 SMD footprint is 4.5 mm².
        assert!(c.area().mm2() > 7.0 * 4.5);
    }

    #[test]
    fn density_quote_10nf_per_cm2() {
        // 10 nF in Si₃N₄ should take ≈ 1 cm².
        let c =
            MimCapacitor::synthesize_decoupling(Capacitance::from_nano(10.0), &process()).unwrap();
        assert!((c.area().cm2() - 1.0).abs() < 0.05, "area {}", c.area());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            MimCapacitor::synthesize(Capacitance::new(0.0), &process()),
            Err(SynthesisError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            MimCapacitor::synthesize(Capacitance::from_pico(0.01), &process()),
            Err(SynthesisError::OutOfRange { .. })
        ));
        assert!(matches!(
            MimCapacitor::synthesize(Capacitance::from_micro(1.0), &process()),
            Err(SynthesisError::OutOfRange { .. })
        ));
    }

    #[test]
    fn q_decreases_with_frequency() {
        let c = MimCapacitor::synthesize(Capacitance::from_pico(50.0), &process()).unwrap();
        let q_if = c.q_factor(Frequency::from_mega(175.0));
        let q_rf = c.q_factor(Frequency::from_giga(1.575));
        assert!(q_if > q_rf);
        // Dielectric-loss bound: Q ≤ 1/tan δ = 100 for BaTiO.
        assert!(q_if <= 100.0 + 1e-9);
        assert!(q_rf > 20.0);
    }

    #[test]
    fn film_choice_changes_area() {
        let high_k = MimCapacitor::synthesize(Capacitance::from_pico(100.0), &process()).unwrap();
        let si3n4 = MimCapacitor::synthesize_in_film(
            Capacitance::from_pico(100.0),
            &process(),
            DielectricFilm::si3n4(),
        )
        .unwrap();
        assert!(si3n4.area().mm2() > high_k.area().mm2());
    }

    #[test]
    fn display_names_film() {
        let c = MimCapacitor::synthesize(Capacitance::from_pico(50.0), &process()).unwrap();
        assert!(c.to_string().contains("BaTiO"));
    }

    proptest! {
        #[test]
        fn area_scales_linearly_with_capacitance(pf in 1.0f64..1000.0) {
            let p = process();
            let c1 = MimCapacitor::synthesize(Capacitance::from_pico(pf), &p).unwrap();
            let c2 = MimCapacitor::synthesize(Capacitance::from_pico(2.0 * pf), &p).unwrap();
            // Plate areas scale exactly 2×; margins make totals slightly
            // sublinear.
            let ratio = c2.area().mm2() / c1.area().mm2();
            prop_assert!(ratio > 1.6 && ratio < 2.05, "ratio {}", ratio);
        }

        #[test]
        fn q_is_positive_and_bounded(pf in 1.0f64..5000.0, mhz in 1.0f64..3000.0) {
            let p = process();
            let c = MimCapacitor::synthesize(Capacitance::from_pico(pf), &p).unwrap();
            let q = c.q_factor(Frequency::from_mega(mhz));
            prop_assert!(q > 0.0 && q <= 1.0 / c.film().loss_tangent() + 1e-9);
        }
    }
}
