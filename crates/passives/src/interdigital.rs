//! Interdigital (comb) capacitor synthesis for sub-picofarad values.
//!
//! The paper (§2) mentions both "sandwich structure or interdigitated
//! combs". MIM sandwiches are superb for tens of pF and up, but below
//! ~1 pF the plate becomes so small that overlay misalignment dominates
//! the value. Interdigital capacitors are defined by a single lithography
//! layer — their tolerance is the line tolerance (≈ ±5 %) — which makes
//! them the structure of choice for the RF filters' coupling capacitors.

use crate::error::SynthesisError;
use crate::materials::ThinFilmProcess;
use crate::tolerance::Tolerance;
use ipass_units::{Area, Capacitance, Frequency};
use std::fmt;

/// Realizable interdigital range.
const MIN_FARADS: f64 = 0.02e-12;
const MAX_FARADS: f64 = 5e-12;

/// Longest practical finger, in µm (beyond this the finger inductance
/// spoils the RF behaviour).
const MAX_FINGER_UM: f64 = 1_500.0;

/// First-order capacitance per finger pair per mm of overlap for 20 µm
/// lines/gaps over a passivated silicon substrate (ε_eff ≈ 7), in pF/mm.
/// Scales inversely with the pitch for other line widths.
const PF_PER_PAIR_MM_AT_20UM: f64 = 0.04;

/// A synthesized interdigital capacitor.
///
/// # Examples
///
/// ```
/// use ipass_passives::{InterdigitalCapacitor, ThinFilmProcess};
/// use ipass_units::Capacitance;
///
/// let process = ThinFilmProcess::summit_mcm_d();
/// let c = InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.5), &process)?;
/// assert!(c.fingers() >= 4);
/// // Litho-defined tolerance beats the MIM film's:
/// assert!(c.tolerance().satisfies(ipass_passives::Tolerance::percent(5.0)));
/// # Ok::<(), ipass_passives::SynthesisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterdigitalCapacitor {
    target: Capacitance,
    fingers: u32,
    finger_um: f64,
    width_um: f64,
    gap_um: f64,
    area: Area,
}

impl InterdigitalCapacitor {
    /// Synthesize the smallest comb realizing `target` at the process'
    /// minimum line/gap.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive targets or values
    /// outside the interdigital sweet spot (0.02–5 pF).
    pub fn synthesize(
        target: Capacitance,
        process: &ThinFilmProcess,
    ) -> Result<InterdigitalCapacitor, SynthesisError> {
        let c = target.farads();
        if !(c.is_finite() && c > 0.0) {
            return Err(SynthesisError::NonPositiveValue {
                what: "capacitance",
                value: c,
            });
        }
        if !(MIN_FARADS..=MAX_FARADS).contains(&c) {
            return Err(SynthesisError::OutOfRange {
                what: "interdigital capacitance",
                value: c,
                min: MIN_FARADS,
                max: MAX_FARADS,
            });
        }
        let w = process.min_line_um();
        let g = process.min_space_um();
        // Per-pair capacitance scales inversely with pitch.
        let c_pair_pf_mm = PF_PER_PAIR_MM_AT_20UM * (40.0 / (w + g));
        let target_pf = target.picofarads();

        // Search the finger count for the most square outline.
        let mut best: Option<(u32, f64, f64)> = None; // (fingers, len_um, area)
        for fingers in 4..=100u32 {
            let pairs = f64::from(fingers - 1);
            let len_mm = target_pf / (pairs * c_pair_pf_mm);
            let len_um = len_mm * 1e3;
            if !(2.0 * w..=MAX_FINGER_UM).contains(&len_um) {
                continue;
            }
            // Outline: fingers across, finger length + bus bars along.
            let width = f64::from(fingers) * (w + g) - g;
            let height = len_um + 2.0 * (w + g);
            let area = (width * 1e-3) * (height * 1e-3);
            if best.is_none_or(|(.., a)| area < a) {
                best = Some((fingers, len_um, area));
            }
        }
        let (fingers, finger_um, area_mm2) = best.ok_or(SynthesisError::OutOfRange {
            what: "interdigital capacitance",
            value: c,
            min: MIN_FARADS,
            max: MAX_FARADS,
        })?;
        Ok(InterdigitalCapacitor {
            target,
            fingers,
            finger_um,
            width_um: w,
            gap_um: g,
            area: Area::from_mm2(area_mm2),
        })
    }

    /// The target capacitance.
    pub fn capacitance(&self) -> Capacitance {
        self.target
    }

    /// Number of fingers.
    pub fn fingers(&self) -> u32 {
        self.fingers
    }

    /// Finger overlap length in µm.
    pub fn finger_um(&self) -> f64 {
        self.finger_um
    }

    /// Substrate area consumed.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Litho-defined tolerance: the line-width class (±5 %), independent
    /// of dielectric thickness.
    pub fn tolerance(&self) -> Tolerance {
        Tolerance::percent(5.0)
    }

    /// Quality factor at `f`: essentially the (low-loss) substrate
    /// dielectric, with electrode resistance; combs are excellent.
    pub fn q_factor(&self, f: Frequency) -> f64 {
        // Electrode ESR: fingers in parallel, ~len/w squares each.
        let squares = self.finger_um / self.width_um;
        let esr = 7e-3 * squares / (2.0 / 3.0 * f64::from(self.fingers));
        let inv_q = 0.001 + f.angular() * self.target.farads() * esr;
        1.0 / inv_q
    }
}

impl fmt::Display for InterdigitalCapacitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} interdigital C ({} fingers × {:.0} µm, {}, {})",
            self.target,
            self.fingers,
            self.finger_um,
            self.area,
            self.tolerance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacitor::MimCapacitor;
    use proptest::prelude::*;

    fn process() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }

    #[test]
    fn synthesizes_sub_picofarad_values() {
        for pf in [0.1, 0.25, 0.5, 1.0, 2.0] {
            let c =
                InterdigitalCapacitor::synthesize(Capacitance::from_pico(pf), &process()).unwrap();
            assert!(c.fingers() >= 4, "{pf} pF: {} fingers", c.fingers());
            assert!(c.area().mm2() < 3.0, "{pf} pF: {}", c.area());
        }
    }

    #[test]
    fn realized_value_matches_target() {
        let c =
            InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.53), &process()).unwrap();
        // Reconstruct from the geometry.
        let c_pair = 0.04 * (40.0 / 40.0); // 20 µm lines and gaps
        let realized = f64::from(c.fingers() - 1) * c_pair * (c.finger_um() / 1000.0);
        assert!((realized - 0.53).abs() / 0.53 < 0.01, "realized {realized}");
    }

    #[test]
    fn tolerance_beats_mim_below_a_picofarad() {
        // The design reason this structure exists.
        let comb =
            InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.5), &process()).unwrap();
        let mim = MimCapacitor::synthesize(Capacitance::from_pico(0.5), &process()).unwrap();
        assert!(comb.tolerance().fraction() < mim.tolerance().fraction());
    }

    #[test]
    fn q_is_high_at_rf() {
        let c = InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.5), &process()).unwrap();
        assert!(c.q_factor(Frequency::from_giga(1.575)) > 100.0);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(
            InterdigitalCapacitor::synthesize(Capacitance::from_pico(50.0), &process()).is_err()
        );
        assert!(
            InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.001), &process()).is_err()
        );
        assert!(InterdigitalCapacitor::synthesize(Capacitance::new(0.0), &process()).is_err());
    }

    #[test]
    fn coarser_process_needs_more_area() {
        let fine =
            InterdigitalCapacitor::synthesize(Capacitance::from_pico(1.0), &process()).unwrap();
        let coarse = InterdigitalCapacitor::synthesize(
            Capacitance::from_pico(1.0),
            &ThinFilmProcess::polyimide_flex(),
        )
        .unwrap();
        assert!(coarse.area().mm2() > fine.area().mm2());
    }

    #[test]
    fn display_mentions_fingers() {
        let c = InterdigitalCapacitor::synthesize(Capacitance::from_pico(0.5), &process()).unwrap();
        assert!(c.to_string().contains("fingers"));
    }

    proptest! {
        #[test]
        fn area_grows_with_value(pf in 0.05f64..2.0) {
            let p = process();
            let small = InterdigitalCapacitor::synthesize(Capacitance::from_pico(pf), &p).unwrap();
            let large = InterdigitalCapacitor::synthesize(Capacitance::from_pico(pf * 2.0), &p).unwrap();
            prop_assert!(large.area().mm2() > small.area().mm2() * 0.9);
        }
    }
}
