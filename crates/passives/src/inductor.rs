//! Square spiral inductor synthesis with inductance, loss and
//! self-resonance models.
//!
//! The paper: "Inductors are realized as spiral-shaped interconnection
//! lines, and the value is determined by the number of turns and the line
//! width and line spacing." Inductance uses the Mohan et al. current-sheet
//! expression for square spirals; conductor loss combines DC sheet
//! resistance, a skin-effect rise and a substrate-loss factor. This is
//! what makes the paper's key performance observation emerge naturally:
//! *Q is decent in the 1–2 GHz range but collapses at the 175 MHz IF*,
//! because ωL shrinks an order of magnitude while the series resistance
//! barely drops.

use crate::error::SynthesisError;
use crate::materials::ThinFilmProcess;
use crate::tolerance::Tolerance;
use ipass_units::{Area, Frequency, Inductance};
use std::fmt;

/// Current-sheet coefficients for square spirals (Mohan et al. 1999).
const K1: f64 = 2.34;
const K2: f64 = 2.75;

const MU0: f64 = 4.0e-7 * std::f64::consts::PI;

/// Hollow fraction: inner diameter ≥ this × outer diameter (keeps the
/// lossy innermost turns away and the model accurate).
const MIN_HOLLOW_RATIO: f64 = 0.25;

/// Parasitic capacitance to the (oxide-isolated) silicon substrate per
/// mm² of coil footprint, in pF.
const PARASITIC_PF_PER_MM2: f64 = 0.08;

/// Realizable inductance range.
const MIN_HENRIES: f64 = 0.5e-9;
const MAX_HENRIES: f64 = 1e-6;

/// Largest spiral considered, in µm.
const MAX_OUTER_UM: f64 = 20_000.0;

/// A synthesized square spiral inductor.
///
/// # Examples
///
/// ```
/// use ipass_passives::{SpiralInductor, ThinFilmProcess};
/// use ipass_units::{Frequency, Inductance};
///
/// let process = ThinFilmProcess::summit_mcm_d();
/// // Table 1: a 40 nH inductor occupies ≈ 1 mm².
/// let l = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process)?;
/// assert!(l.area().mm2() > 0.6 && l.area().mm2() < 1.3);
/// assert!(l.turns() >= 5);
///
/// // Q collapses from RF to IF:
/// let q_rf = l.q_factor(Frequency::from_giga(1.575));
/// let q_if = l.q_factor(Frequency::from_mega(175.0));
/// assert!(q_rf > 3.0 * q_if);
/// # Ok::<(), ipass_passives::SynthesisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpiralInductor {
    target: Inductance,
    turns: u32,
    outer_um: f64,
    inner_um: f64,
    width_um: f64,
    space_um: f64,
    length_mm: f64,
    dc_resistance: f64,
    metal_thickness_um: f64,
    metal_rho_ohm_m: f64,
    substrate_loss_factor: f64,
    parasitic_pf: f64,
}

impl SpiralInductor {
    /// Synthesize the smallest spiral realizing `target` at the process'
    /// minimum line width.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive targets or values no
    /// spiral within the size limits can realize.
    pub fn synthesize(
        target: Inductance,
        process: &ThinFilmProcess,
    ) -> Result<SpiralInductor, SynthesisError> {
        SpiralInductor::synthesize_with_width(target, process, process.min_line_um())
    }

    /// Synthesize with an explicit line width (µm). Wider lines cut the
    /// series resistance — the lever for acceptable Q at low frequencies,
    /// paid for in area.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive targets, widths below
    /// the process minimum, or unrealizable values.
    pub fn synthesize_with_width(
        target: Inductance,
        process: &ThinFilmProcess,
        width_um: f64,
    ) -> Result<SpiralInductor, SynthesisError> {
        let l = target.henries();
        if !(l.is_finite() && l > 0.0) {
            return Err(SynthesisError::NonPositiveValue {
                what: "inductance",
                value: l,
            });
        }
        if !(MIN_HENRIES..=MAX_HENRIES).contains(&l) {
            return Err(SynthesisError::OutOfRange {
                what: "inductance",
                value: l,
                min: MIN_HENRIES,
                max: MAX_HENRIES,
            });
        }
        if width_um < process.min_line_um() {
            return Err(SynthesisError::OutOfRange {
                what: "spiral line width (µm)",
                value: width_um,
                min: process.min_line_um(),
                max: f64::INFINITY,
            });
        }
        let w = width_um;
        let s = process.min_space_um();

        let mut best: Option<(u32, f64)> = None; // (turns, outer_um)
        for n in 1..=30u32 {
            let radial = f64::from(n) * w + f64::from(n - 1) * s;
            let d_min = (2.0 * radial / (1.0 - MIN_HOLLOW_RATIO)).max(radial * 2.0 + w);
            if d_min > MAX_OUTER_UM {
                break;
            }
            let l_lo = inductance_um(n, d_min, radial);
            let l_hi = inductance_um(n, MAX_OUTER_UM, radial);
            if l < l_lo || l > l_hi {
                continue;
            }
            // Bisect outer diameter: L is monotone increasing in it.
            let (mut lo, mut hi) = (d_min, MAX_OUTER_UM);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if inductance_um(n, mid, radial) < l {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let outer = 0.5 * (lo + hi);
            if best.is_none_or(|(_, o)| outer < o) {
                best = Some((n, outer));
            }
        }
        let (turns, outer_um) = best.ok_or(SynthesisError::OutOfRange {
            what: "inductance",
            value: l,
            min: MIN_HENRIES,
            max: MAX_HENRIES,
        })?;

        let radial = f64::from(turns) * w + f64::from(turns - 1) * s;
        let inner_um = outer_um - 2.0 * radial;
        let d_avg_um = 0.5 * (outer_um + inner_um);
        let length_mm = 4.0 * f64::from(turns) * d_avg_um * 1e-3;
        let sheet_ohm = process.metal_sheet_mohm_sq() * 1e-3;
        let dc_resistance = sheet_ohm * (length_mm * 1e3) / w;
        let footprint_mm2 = (outer_um * 1e-3) * (outer_um * 1e-3);
        Ok(SpiralInductor {
            target,
            turns,
            outer_um,
            inner_um,
            width_um: w,
            space_um: s,
            length_mm,
            dc_resistance,
            metal_thickness_um: process.metal_thickness_um(),
            metal_rho_ohm_m: sheet_ohm * process.metal_thickness_um() * 1e-6,
            substrate_loss_factor: process.substrate_loss_factor(),
            parasitic_pf: PARASITIC_PF_PER_MM2 * footprint_mm2,
        })
    }

    /// Synthesize meeting a Q requirement at `f`, searching line widths
    /// upward from the process minimum; returns the smallest-area
    /// solution that meets `q_min`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] when the value is unrealizable or no
    /// width up to 120 µm reaches `q_min`.
    pub fn synthesize_for_q(
        target: Inductance,
        process: &ThinFilmProcess,
        f: Frequency,
        q_min: f64,
    ) -> Result<SpiralInductor, SynthesisError> {
        let mut width = process.min_line_um();
        let mut last_err = None;
        while width <= 120.0 {
            match SpiralInductor::synthesize_with_width(target, process, width) {
                Ok(spiral) => {
                    if spiral.q_factor(f) >= q_min {
                        return Ok(spiral);
                    }
                }
                Err(e) => last_err = Some(e),
            }
            width += 10.0;
        }
        Err(last_err.unwrap_or(SynthesisError::OutOfRange {
            what: "inductor Q",
            value: q_min,
            min: 0.0,
            max: 0.0,
        }))
    }

    /// The target inductance.
    pub fn inductance(&self) -> Inductance {
        self.target
    }

    /// Number of turns.
    pub fn turns(&self) -> u32 {
        self.turns
    }

    /// Outer diameter in µm.
    pub fn outer_um(&self) -> f64 {
        self.outer_um
    }

    /// Inner diameter in µm.
    pub fn inner_um(&self) -> f64 {
        self.inner_um
    }

    /// Line width in µm.
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Total wound length in mm.
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }

    /// DC series resistance in Ω.
    pub fn dc_resistance_ohm(&self) -> f64 {
        self.dc_resistance
    }

    /// Substrate area consumed (outer diameter square plus one spacing of
    /// clearance all around).
    pub fn area(&self) -> Area {
        let side = (self.outer_um + 2.0 * self.space_um) * 1e-3;
        Area::rect_mm(side, side)
    }

    /// Geometry-defined value tolerance (lithography is tight: ±5 %).
    pub fn tolerance(&self) -> Tolerance {
        Tolerance::percent(5.0)
    }

    /// AC series resistance at `f`: DC resistance × skin-effect rise ×
    /// substrate-loss factor.
    pub fn ac_resistance_ohm(&self, f: Frequency) -> f64 {
        let t = self.metal_thickness_um * 1e-6;
        let delta = (self.metal_rho_ohm_m / (std::f64::consts::PI * f.hertz() * MU0)).sqrt();
        let x = t / delta;
        let skin = if x < 1e-6 {
            1.0
        } else {
            x / (1.0 - (-x).exp())
        };
        self.dc_resistance * skin * self.substrate_loss_factor
    }

    /// Parasitic capacitance to substrate, in pF.
    pub fn parasitic_pf(&self) -> f64 {
        self.parasitic_pf
    }

    /// Self-resonant frequency.
    pub fn self_resonance(&self) -> Frequency {
        let c = self.parasitic_pf * 1e-12;
        Frequency::new(1.0 / (2.0 * std::f64::consts::PI * (self.target.henries() * c).sqrt()))
    }

    /// Effective inductance at `f`, rising toward self-resonance.
    ///
    /// # Panics
    ///
    /// Panics at or above the self-resonant frequency, where the spiral
    /// is no longer usable as an inductor.
    pub fn effective_inductance(&self, f: Frequency) -> Inductance {
        let ratio = f.hertz() / self.self_resonance().hertz();
        assert!(
            ratio < 1.0,
            "operating frequency {f} is beyond self-resonance {}",
            self.self_resonance()
        );
        Inductance::new(self.target.henries() / (1.0 - ratio * ratio))
    }

    /// Quality factor at `f`: `ωL/R_ac`, derated by the self-resonance
    /// roll-off `(1 − (f/f_SR)²)`. Returns 0 at or above self-resonance.
    pub fn q_factor(&self, f: Frequency) -> f64 {
        let ratio = f.hertz() / self.self_resonance().hertz();
        if ratio >= 1.0 {
            return 0.0;
        }
        let q_conductor = f.angular() * self.target.henries() / self.ac_resistance_ohm(f);
        q_conductor * (1.0 - ratio * ratio)
    }
}

/// Mohan et al. current-sheet inductance for a square spiral, µm inputs,
/// henries out.
fn inductance_um(turns: u32, outer_um: f64, radial_um: f64) -> f64 {
    let inner_um = outer_um - 2.0 * radial_um;
    let d_avg = 0.5 * (outer_um + inner_um) * 1e-6;
    let fill = (outer_um - inner_um) / (outer_um + inner_um);
    K1 * MU0 * f64::from(turns).powi(2) * d_avg / (1.0 + K2 * fill)
}

impl fmt::Display for SpiralInductor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} spiral ({} turns, ⌀{:.0} µm, w {:.0} µm, {}, R_dc {:.2} Ω)",
            self.target,
            self.turns,
            self.outer_um,
            self.width_um,
            self.area(),
            self.dc_resistance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn process() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }

    #[test]
    fn table1_anchor_40nh() {
        let l = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process()).unwrap();
        assert!(
            l.area().mm2() > 0.6 && l.area().mm2() < 1.3,
            "area {} should be ≈1 mm²",
            l.area()
        );
    }

    #[test]
    fn synthesized_inductance_matches_target() {
        for nh in [2.0, 10.0, 40.0, 100.0, 220.0] {
            let l = SpiralInductor::synthesize(Inductance::from_nano(nh), &process()).unwrap();
            let radial =
                f64::from(l.turns()) * l.width_um() + f64::from(l.turns() - 1) * l.space_um;
            let realized = inductance_um(l.turns(), l.outer_um(), radial);
            assert!(
                (realized - nh * 1e-9).abs() / (nh * 1e-9) < 1e-3,
                "{nh} nH realized as {realized}"
            );
        }
    }

    #[test]
    fn q_is_good_at_rf_poor_at_if() {
        // The paper's §4.1 observation, directly from the physics.
        let l = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process()).unwrap();
        let q_rf = l.q_factor(Frequency::from_giga(1.575));
        let q_if = l.q_factor(Frequency::from_mega(175.0));
        assert!(q_rf > 12.0, "q_rf {q_rf}");
        assert!(q_if < 6.0, "q_if {q_if}");
    }

    #[test]
    fn wide_lines_rescue_if_q() {
        // An IF-filter inductor (~107 nH) with wide lines reaches Q ≈ 12
        // at 175 MHz, matching the "borderline" IF filter discussion.
        let f = Frequency::from_mega(175.0);
        let l = SpiralInductor::synthesize_for_q(Inductance::from_nano(107.0), &process(), f, 10.0)
            .unwrap();
        assert!(l.q_factor(f) >= 10.0);
        assert!(l.width_um() > 20.0);
        assert!(
            l.area().mm2() > 2.0,
            "wide-line spiral is big: {}",
            l.area()
        );
    }

    #[test]
    fn q_requirement_can_be_unreachable() {
        let err = SpiralInductor::synthesize_for_q(
            Inductance::from_nano(300.0),
            &process(),
            Frequency::from_mega(175.0),
            500.0,
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::OutOfRange { .. }));
    }

    #[test]
    fn self_resonance_is_above_operating_band() {
        let l = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process()).unwrap();
        assert!(l.self_resonance().gigahertz() > 2.0);
        let leff = l.effective_inductance(Frequency::from_giga(1.575));
        assert!(leff.henries() > l.inductance().henries());
    }

    #[test]
    #[should_panic(expected = "beyond self-resonance")]
    fn effective_inductance_panics_past_srf() {
        let l = SpiralInductor::synthesize(Inductance::from_nano(500.0), &process()).unwrap();
        let _ = l.effective_inductance(Frequency::from_giga(20.0));
    }

    #[test]
    fn q_zero_past_srf() {
        let l = SpiralInductor::synthesize(Inductance::from_nano(500.0), &process()).unwrap();
        assert_eq!(l.q_factor(Frequency::from_giga(20.0)), 0.0);
    }

    #[test]
    fn hollow_ratio_respected() {
        for nh in [5.0, 40.0, 150.0] {
            let l = SpiralInductor::synthesize(Inductance::from_nano(nh), &process()).unwrap();
            assert!(
                l.inner_um() >= MIN_HOLLOW_RATIO * l.outer_um() - 1.0,
                "{nh} nH: inner {} outer {}",
                l.inner_um(),
                l.outer_um()
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SpiralInductor::synthesize(Inductance::new(0.0), &process()).is_err());
        assert!(SpiralInductor::synthesize(Inductance::from_nano(0.1), &process()).is_err());
        assert!(SpiralInductor::synthesize(Inductance::from_micro(5.0), &process()).is_err());
        assert!(SpiralInductor::synthesize_with_width(
            Inductance::from_nano(40.0),
            &process(),
            5.0
        )
        .is_err());
    }

    #[test]
    fn display_mentions_turns() {
        let l = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process()).unwrap();
        assert!(l.to_string().contains("turns"));
    }

    proptest! {
        #[test]
        fn area_grows_with_inductance(nh in 1.0f64..300.0) {
            let p = process();
            let a = SpiralInductor::synthesize(Inductance::from_nano(nh), &p).unwrap();
            let b = SpiralInductor::synthesize(Inductance::from_nano(nh * 2.0), &p).unwrap();
            prop_assert!(b.area().mm2() > a.area().mm2() * 0.9);
        }

        #[test]
        fn q_positive_below_srf(nh in 1.0f64..300.0, mhz in 50.0f64..1000.0) {
            let p = process();
            let l = SpiralInductor::synthesize(Inductance::from_nano(nh), &p).unwrap();
            let f = Frequency::from_mega(mhz);
            if f.hertz() < l.self_resonance().hertz() {
                prop_assert!(l.q_factor(f) > 0.0);
            }
        }

        #[test]
        fn mohan_formula_is_monotone_in_outer(n in 1u32..12, d1 in 500.0f64..5000.0, extra in 10.0f64..2000.0) {
            let radial = f64::from(n) * 20.0 + f64::from(n - 1) * 20.0;
            prop_assume!(d1 > 2.0 * radial / (1.0 - MIN_HOLLOW_RATIO));
            let l1 = inductance_um(n, d1, radial);
            let l2 = inductance_um(n, d1 + extra, radial);
            prop_assert!(l2 > l1);
        }
    }
}
