//! Passive component models: SMD catalog and thin-film integrated
//! passives.
//!
//! This crate provides the component-level substrate of the
//! integrated-passives methodology:
//!
//! * an SMD catalog with *pure component* vs *footprint* areas (the
//!   paper's Fig. 1 argument: bodies shrink, mounting overhead does not),
//! * [E-series](eseries) preferred value snapping,
//! * thin-film [materials](ThinFilmProcess) (CrSi/NiCr resistive layers,
//!   Si₃N₄ and BaTiO dielectrics, the SUMMIT-style MCM-D metal stack),
//! * synthesis of integrated components from target values:
//!   [meander resistors](ThinFilmResistor), [MIM capacitors](MimCapacitor)
//!   and [square spiral inductors](SpiralInductor) with inductance,
//!   conductor-loss Q(f) and self-resonance models,
//! * [tolerance](Tolerance) models including laser trimming.
//!
//! The synthesized areas reproduce the paper's Table 1 anchors: a 100 kΩ
//! CrSi resistor occupies ≈ 0.25 mm², a 50 pF capacitor ≈ 0.3 mm² and a
//! 40 nH inductor ≈ 1 mm².
//!
//! # Examples
//!
//! ```
//! use ipass_passives::{SmdSize, SpiralInductor, ThinFilmProcess};
//! use ipass_units::{Frequency, Inductance};
//!
//! // SMD bodies shrink faster than their footprints (Fig. 1):
//! let body_ratio = SmdSize::I0201.body_area() / SmdSize::I0805.body_area();
//! let foot_ratio = SmdSize::I0201.footprint_area() / SmdSize::I0805.footprint_area();
//! assert!(body_ratio < 0.1 && foot_ratio > 0.4);
//!
//! // A 40 nH spiral in the default MCM-D process needs about 1 mm²:
//! let process = ThinFilmProcess::summit_mcm_d();
//! let spiral = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process)?;
//! assert!((spiral.area().mm2() - 1.0).abs() < 0.3);
//! // and its Q is decent in the GHz range but poor at IF frequencies:
//! assert!(spiral.q_factor(Frequency::from_giga(1.575)) > 15.0);
//! assert!(spiral.q_factor(Frequency::from_mega(175.0)) < 15.0);
//! # Ok::<(), ipass_passives::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capacitor;
mod catalog;
mod error;
pub mod eseries;
mod explore;
mod inductor;
mod interdigital;
mod materials;
mod resistor;
mod smd;
mod tolerance;

pub use capacitor::MimCapacitor;
pub use catalog::{propose, PassiveSpec, PassiveValue, Proposal, Technology};
pub use error::SynthesisError;
pub use explore::spiral_frontier;
pub use inductor::SpiralInductor;
pub use interdigital::InterdigitalCapacitor;
pub use materials::{DielectricFilm, ResistiveFilm, ThinFilmProcess};
pub use resistor::ThinFilmResistor;
pub use smd::{smd_area_series, SmdKind, SmdSize};
pub use tolerance::{Tolerance, TrimState};
