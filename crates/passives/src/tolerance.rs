//! Tolerance models and value sampling for Monte Carlo analyses.

use ipass_sim::SimRng;
use std::fmt;

/// Whether an integrated resistor has been laser-trimmed.
///
/// The paper: "Tolerances are about ±15 %, with laser tuning values below
/// 1 % have been achieved."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrimState {
    /// As deposited (±15 % class).
    #[default]
    AsFabricated,
    /// Laser trimmed (±1 % class); adds trim cost/time.
    LaserTrimmed,
}

/// A symmetric relative tolerance, e.g. `Tolerance::percent(15.0)` for
/// ±15 %.
///
/// # Examples
///
/// ```
/// use ipass_passives::Tolerance;
///
/// let t = Tolerance::percent(15.0);
/// assert!((t.fraction() - 0.15).abs() < 1e-12);
/// assert_eq!(t.to_string(), "±15%");
/// let (lo, hi) = t.bounds(100.0);
/// assert!((lo - 85.0).abs() < 1e-9 && (hi - 115.0).abs() < 1e-9);
/// assert!(t.contains(100.0, 110.0));
/// assert!(!t.contains(100.0, 120.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Tolerance(f64);

impl Tolerance {
    /// Exact value (±0 %).
    pub const EXACT: Tolerance = Tolerance(0.0);

    /// Create from a percentage (`15.0` → ±15 %).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite percentages.
    pub fn percent(percent: f64) -> Tolerance {
        assert!(
            percent.is_finite() && percent >= 0.0,
            "tolerance must be a non-negative percentage, got {percent}"
        );
        Tolerance(percent / 100.0)
    }

    /// Create from a fraction (`0.15` → ±15 %).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite fractions.
    pub fn fraction_of(fraction: f64) -> Tolerance {
        assert!(
            fraction.is_finite() && fraction >= 0.0,
            "tolerance must be a non-negative fraction, got {fraction}"
        );
        Tolerance(fraction)
    }

    /// The tolerance as a fraction (±0.15 for ±15 %).
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The tolerance as a percentage.
    pub fn percent_value(self) -> f64 {
        self.0 * 100.0
    }

    /// The `(low, high)` bounds around a nominal value.
    pub fn bounds(self, nominal: f64) -> (f64, f64) {
        (nominal * (1.0 - self.0), nominal * (1.0 + self.0))
    }

    /// Whether `actual` lies within the tolerance band around `nominal`.
    pub fn contains(self, nominal: f64, actual: f64) -> bool {
        let (lo, hi) = self.bounds(nominal);
        (lo..=hi).contains(&actual)
    }

    /// Whether this tolerance class satisfies a requirement (is at least
    /// as tight).
    pub fn satisfies(self, required: Tolerance) -> bool {
        self.0 <= required.0 + 1e-12
    }

    /// Sample a value uniformly within the tolerance band.
    pub fn sample_uniform(self, nominal: f64, rng: &mut SimRng) -> f64 {
        if self.0 == 0.0 {
            return nominal;
        }
        let (lo, hi) = self.bounds(nominal);
        rng.range_f64(lo.min(hi), hi.max(lo))
    }

    /// Sample a value from a truncated normal distribution whose ±3σ
    /// points sit at the tolerance bounds (the usual manufacturing
    /// assumption).
    pub fn sample_normal(self, nominal: f64, rng: &mut SimRng) -> f64 {
        if self.0 == 0.0 {
            return nominal;
        }
        let sigma = nominal.abs() * self.0 / 3.0;
        loop {
            // Rejection keeps us inside the band (±3σ, so rejections are
            // rare).
            let v = rng.normal(nominal, sigma);
            if self.contains(nominal, v) {
                return v;
            }
        }
    }
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = self.percent_value();
        if (pct - pct.round()).abs() < 1e-9 {
            write!(f, "±{}%", pct.round())
        } else {
            write!(f, "±{pct:.2}%")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tolerance::percent(1.0);
        assert!((t.fraction() - 0.01).abs() < 1e-15);
        assert!((t.percent_value() - 1.0).abs() < 1e-12);
        assert_eq!(Tolerance::fraction_of(0.15), Tolerance::percent(15.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        let _ = Tolerance::percent(-5.0);
    }

    #[test]
    fn satisfies_is_tighter_or_equal() {
        assert!(Tolerance::percent(1.0).satisfies(Tolerance::percent(15.0)));
        assert!(Tolerance::percent(15.0).satisfies(Tolerance::percent(15.0)));
        assert!(!Tolerance::percent(15.0).satisfies(Tolerance::percent(1.0)));
    }

    #[test]
    fn display_rounds_nicely() {
        assert_eq!(Tolerance::percent(15.0).to_string(), "±15%");
        assert_eq!(Tolerance::percent(0.25).to_string(), "±0.25%");
    }

    #[test]
    fn exact_sampling_is_identity() {
        let mut rng = SimRng::from_seed(1);
        assert_eq!(Tolerance::EXACT.sample_uniform(42.0, &mut rng), 42.0);
        assert_eq!(Tolerance::EXACT.sample_normal(42.0, &mut rng), 42.0);
    }

    #[test]
    fn normal_samples_cluster_near_nominal() {
        let mut rng = SimRng::from_seed(7);
        let t = Tolerance::percent(15.0);
        let n = 4000;
        let mut mean = 0.0;
        let mut inside_one_sigma = 0;
        for _ in 0..n {
            let v = t.sample_normal(100.0, &mut rng);
            assert!(t.contains(100.0, v));
            mean += v;
            if (v - 100.0).abs() < 5.0 {
                inside_one_sigma += 1;
            }
        }
        mean /= n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
        // ±1σ should hold ≈ 68 % of samples.
        let frac = inside_one_sigma as f64 / n as f64;
        assert!((0.6..0.76).contains(&frac), "one-sigma fraction {frac}");
    }

    #[test]
    fn trim_state_default() {
        assert_eq!(TrimState::default(), TrimState::AsFabricated);
    }

    proptest! {
        #[test]
        fn uniform_samples_stay_in_band(pct in 0.0f64..50.0, nominal in 0.001f64..1e6, seed in 0u64..1000) {
            let t = Tolerance::percent(pct);
            let mut rng = SimRng::from_seed(seed);
            let v = t.sample_uniform(nominal, &mut rng);
            prop_assert!(t.contains(nominal, v * (1.0 - 1e-12) + 0.0));
        }

        #[test]
        fn bounds_are_symmetric(pct in 0.0f64..100.0, nominal in 0.001f64..1e6) {
            let t = Tolerance::percent(pct);
            let (lo, hi) = t.bounds(nominal);
            prop_assert!(((nominal - lo) - (hi - nominal)).abs() < 1e-6 * nominal);
        }
    }
}
