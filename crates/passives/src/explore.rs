//! Design-space exploration of integrated-component synthesis.
//!
//! Table 1 quotes one spiral inductor (40 nH ≈ 1 mm²); this module
//! sweeps the synthesizable inductance range through `ipass-explore`
//! and extracts the *(area ↓, Q ↑)* Pareto frontier — the physical
//! trade every integrated inductor buys into: more inductance means
//! more turns, more metal, more area, and (past the sweet spot) more
//! series resistance eating the quality factor.

use crate::inductor::SpiralInductor;
use crate::materials::ThinFilmProcess;
use ipass_explore::{explore_fn, Axis, Exploration, ExploreError, Levels, SamplerSpec, Sense};
use ipass_sim::Executor;
use ipass_units::{Frequency, Inductance};

/// Explore spiral-inductor synthesis over an inductance range: each
/// point synthesizes the target value in `process` and scores
/// *(silicon area ↓, Q at `f` ↑)*; the frontier is the area/quality
/// curve of the process at that frequency.
///
/// Evaluations fan out on `executor`; results are identical for any
/// thread count.
///
/// # Errors
///
/// Returns [`ExploreError`] when the axis is degenerate or a target
/// value cannot be synthesized in the process
/// ([`ExploreError::Eval`], first failing point in index order).
///
/// # Examples
///
/// ```
/// use ipass_explore::Levels;
/// use ipass_passives::{spiral_frontier, ThinFilmProcess};
/// use ipass_sim::Executor;
/// use ipass_units::Frequency;
///
/// let exploration = spiral_frontier(
///     &Executor::serial(),
///     &ThinFilmProcess::summit_mcm_d(),
///     Levels::linspace(5.0, 60.0, 24),
///     Frequency::from_giga(1.575),
/// )?;
/// // Area grows with inductance, so no single design dominates: the
/// // frontier keeps several (area, Q) trades.
/// assert!(exploration.frontier.members().len() > 1);
/// # Ok::<(), ipass_explore::ExploreError>(())
/// ```
pub fn spiral_frontier(
    executor: &Executor,
    process: &ThinFilmProcess,
    inductance_nh: Levels,
    f: Frequency,
) -> Result<Exploration, ExploreError> {
    let axes = [Axis::new("inductance [nH]", inductance_nh)];
    let objectives = [
        ("area [mm²]".to_string(), Sense::Minimize),
        (format!("Q @ {:.3} GHz", f.hertz() / 1e9), Sense::Maximize),
    ];
    explore_fn(executor, &axes, &SamplerSpec::Grid, &objectives, |i, c| {
        let spiral =
            SpiralInductor::synthesize(Inductance::from_nano(c[0]), process).map_err(|e| {
                ExploreError::Eval {
                    point: i,
                    message: e.to_string(),
                }
            })?;
        Ok(vec![spiral.area().mm2(), spiral.q_factor(f)])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore(executor: &Executor) -> Exploration {
        spiral_frontier(
            executor,
            &ThinFilmProcess::summit_mcm_d(),
            Levels::linspace(5.0, 60.0, 24),
            Frequency::from_giga(1.575),
        )
        .unwrap()
    }

    #[test]
    fn frontier_trades_area_against_quality() {
        let exploration = explore(&Executor::new(2));
        assert_eq!(exploration.points.len(), 24);
        // Area grows with inductance across the sweep (discrete turn
        // counts allow local plateaus, so only the trend is asserted).
        let first = exploration.points.first().unwrap().objectives[0];
        let last = exploration.points.last().unwrap().objectives[0];
        assert!(last > 2.0 * first, "area {first} → {last}");
        // The smallest design is always on the frontier; so is any
        // higher-Q larger design.
        let frontier = &exploration.frontier;
        assert!(frontier.indices().contains(&0));
        assert!(frontier.members().len() > 1);
        // Every non-member is beaten on both axes by some member —
        // spot-check via the completeness of the extraction.
        assert!(frontier.members().len() <= exploration.points.len());
    }

    #[test]
    fn results_do_not_depend_on_threads() {
        let a = explore(&Executor::serial());
        let b = explore(&Executor::new(8));
        assert_eq!(a.points, b.points);
        assert_eq!(a.frontier, b.frontier);
    }

    #[test]
    fn unsynthesizable_targets_fail_with_point_context() {
        let err = spiral_frontier(
            &Executor::serial(),
            &ThinFilmProcess::summit_mcm_d(),
            Levels::linspace(1e6, 2e6, 3),
            Frequency::from_giga(1.575),
        )
        .unwrap_err();
        assert!(matches!(err, ExploreError::Eval { point: 0, .. }), "{err}");
    }
}
