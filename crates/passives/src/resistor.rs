//! Integrated thin-film resistor synthesis.
//!
//! The paper: "Integrated resistor layers are sputtered […] Resistors are
//! realized as 'normal' interconnection lines, for larger values a
//! meander structure is used."

use crate::error::SynthesisError;
use crate::materials::ThinFilmProcess;
use crate::tolerance::{Tolerance, TrimState};
use ipass_units::{Area, Resistance};
use std::fmt;

/// Effective squares contributed by one meander corner (standard
/// conformal-mapping result).
const CORNER_SQUARES: f64 = 0.56;

/// Smallest/largest realizable square counts.
const MIN_SQUARES: f64 = 0.05;
const MAX_SQUARES: f64 = 50_000.0;

/// A synthesized meander (or straight-line) thin-film resistor.
///
/// # Examples
///
/// ```
/// use ipass_passives::{ThinFilmProcess, ThinFilmResistor};
/// use ipass_units::Resistance;
///
/// let process = ThinFilmProcess::summit_mcm_d();
///
/// // Table 1: a 100 kΩ resistor occupies ≈ 0.25 mm².
/// let r = ThinFilmResistor::synthesize(Resistance::from_kilo(100.0), &process)?;
/// assert!((r.area().mm2() - 0.25).abs() < 0.05);
///
/// // §2: "a 200 Ω resistor would require an area of 0.01 mm²".
/// let small = ThinFilmResistor::synthesize(Resistance::new(200.0), &process)?;
/// assert!((small.area().mm2() - 0.01).abs() < 0.005);
/// # Ok::<(), ipass_passives::SynthesisError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThinFilmResistor {
    target: Resistance,
    squares: f64,
    width_um: f64,
    legs: u32,
    leg_length_um: f64,
    area: Area,
    trim: TrimState,
    as_fabricated: Tolerance,
    trimmed: Tolerance,
}

impl ThinFilmResistor {
    /// Synthesize a resistor in the process' resistive film at minimum
    /// line width.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive targets or values whose
    /// square count falls outside the realizable range.
    pub fn synthesize(
        target: Resistance,
        process: &ThinFilmProcess,
    ) -> Result<ThinFilmResistor, SynthesisError> {
        ThinFilmResistor::synthesize_with_width(target, process, process.min_line_um())
    }

    /// Synthesize with an explicit line width (µm); wider lines improve
    /// power handling and matching at the cost of area.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError`] for non-positive targets, widths below
    /// the process minimum, or out-of-range square counts.
    pub fn synthesize_with_width(
        target: Resistance,
        process: &ThinFilmProcess,
        width_um: f64,
    ) -> Result<ThinFilmResistor, SynthesisError> {
        let r = target.ohms();
        if !(r.is_finite() && r > 0.0) {
            return Err(SynthesisError::NonPositiveValue {
                what: "resistance",
                value: r,
            });
        }
        if width_um < process.min_line_um() {
            return Err(SynthesisError::OutOfRange {
                what: "resistor line width (µm)",
                value: width_um,
                min: process.min_line_um(),
                max: f64::INFINITY,
            });
        }
        let film = process.resistor_film();
        let sheet = film.sheet_resistance_ohm_sq();
        let squares = r / sheet;
        if !(MIN_SQUARES..=MAX_SQUARES).contains(&squares) {
            return Err(SynthesisError::OutOfRange {
                what: "resistance",
                value: r,
                min: MIN_SQUARES * sheet,
                max: MAX_SQUARES * sheet,
            });
        }

        let w = width_um;
        let s = process.min_space_um();
        let pad = process.contact_pad_um();
        let pad_area_mm2 = 2.0 * (pad * 1e-3) * (pad * 1e-3);

        // Search the leg count for the smallest bounding area.
        let mut best: Option<(u32, f64, f64)> = None; // (legs, leg_len_um, area_mm2)
        let max_legs = (squares.sqrt().ceil() as u32 * 2 + 4).max(2);
        for legs in 1..=max_legs {
            let corner_squares = CORNER_SQUARES * 2.0 * f64::from(legs - 1);
            let line_squares = squares - corner_squares;
            if line_squares <= 0.0 {
                break;
            }
            let leg_len = line_squares / f64::from(legs) * w;
            if legs > 1 && leg_len < w {
                continue; // legs degenerate below one square each
            }
            let region_w = f64::from(legs) * (w + s) - s;
            let region_h = leg_len;
            // Clearance of one spacing around the meander region.
            let area_mm2 =
                ((region_w + 2.0 * s) * 1e-3) * ((region_h + 2.0 * s) * 1e-3) + pad_area_mm2;
            if best.is_none_or(|(_, _, a)| area_mm2 < a) {
                best = Some((legs, leg_len, area_mm2));
            }
        }
        let (legs, leg_length_um, area_mm2) = best.ok_or(SynthesisError::OutOfRange {
            what: "resistance",
            value: r,
            min: MIN_SQUARES * sheet,
            max: MAX_SQUARES * sheet,
        })?;

        Ok(ThinFilmResistor {
            target,
            squares,
            width_um: w,
            legs,
            leg_length_um,
            area: Area::from_mm2(area_mm2),
            trim: TrimState::AsFabricated,
            as_fabricated: film.as_fabricated_tolerance(),
            trimmed: film.trimmed_tolerance(),
        })
    }

    /// Mark the resistor as laser-trimmed (tightens the tolerance to the
    /// film's trimmed class).
    pub fn with_trim(mut self) -> ThinFilmResistor {
        self.trim = TrimState::LaserTrimmed;
        self
    }

    /// The target resistance.
    pub fn resistance(&self) -> Resistance {
        self.target
    }

    /// The number of film squares.
    pub fn squares(&self) -> f64 {
        self.squares
    }

    /// The line width in µm.
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// The number of meander legs (1 = straight line).
    pub fn legs(&self) -> u32 {
        self.legs
    }

    /// The length of one meander leg in µm.
    pub fn leg_length_um(&self) -> f64 {
        self.leg_length_um
    }

    /// Substrate area consumed, including terminal pads and clearance.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The trim state.
    pub fn trim_state(&self) -> TrimState {
        self.trim
    }

    /// The effective tolerance in the current trim state.
    pub fn tolerance(&self) -> Tolerance {
        match self.trim {
            TrimState::AsFabricated => self.as_fabricated,
            TrimState::LaserTrimmed => self.trimmed,
        }
    }
}

impl fmt::Display for ThinFilmResistor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} thin-film R ({:.1} sq, {} leg(s), {}, {})",
            self.target,
            self.squares,
            self.legs,
            self.area,
            self.tolerance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn process() -> ThinFilmProcess {
        ThinFilmProcess::summit_mcm_d()
    }

    #[test]
    fn table1_anchor_100k() {
        let r = ThinFilmResistor::synthesize(Resistance::from_kilo(100.0), &process()).unwrap();
        assert!(
            (r.area().mm2() - 0.25).abs() < 0.05,
            "area {} should be ≈0.25 mm²",
            r.area()
        );
        assert!(
            r.legs() > 5,
            "100 kΩ needs a meander, got {} legs",
            r.legs()
        );
        assert!((r.squares() - 277.8).abs() < 0.1);
    }

    #[test]
    fn paper_200_ohm_example() {
        let r = ThinFilmResistor::synthesize(Resistance::new(200.0), &process()).unwrap();
        assert!(
            (r.area().mm2() - 0.01).abs() < 0.005,
            "area {} should be ≈0.01 mm²",
            r.area()
        );
        assert_eq!(r.legs(), 1);
    }

    #[test]
    fn trim_changes_tolerance_class() {
        let r = ThinFilmResistor::synthesize(Resistance::from_kilo(10.0), &process()).unwrap();
        assert_eq!(r.tolerance(), Tolerance::percent(15.0));
        let trimmed = r.with_trim();
        assert_eq!(trimmed.trim_state(), TrimState::LaserTrimmed);
        assert!(trimmed.tolerance().satisfies(Tolerance::percent(1.0)));
    }

    #[test]
    fn wider_lines_take_more_area() {
        let narrow =
            ThinFilmResistor::synthesize_with_width(Resistance::from_kilo(10.0), &process(), 20.0)
                .unwrap();
        let wide =
            ThinFilmResistor::synthesize_with_width(Resistance::from_kilo(10.0), &process(), 60.0)
                .unwrap();
        assert!(wide.area().mm2() > narrow.area().mm2());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            ThinFilmResistor::synthesize(Resistance::new(0.0), &process()),
            Err(SynthesisError::NonPositiveValue { .. })
        ));
        assert!(matches!(
            ThinFilmResistor::synthesize(Resistance::new(1.0), &process()),
            Err(SynthesisError::OutOfRange { .. })
        ));
        assert!(matches!(
            ThinFilmResistor::synthesize(Resistance::from_mega(100.0), &process()),
            Err(SynthesisError::OutOfRange { .. })
        ));
        assert!(matches!(
            ThinFilmResistor::synthesize_with_width(Resistance::new(200.0), &process(), 5.0),
            Err(SynthesisError::OutOfRange { .. })
        ));
    }

    #[test]
    fn nicr_needs_more_squares_for_same_value() {
        let crsi = ThinFilmResistor::synthesize(Resistance::from_kilo(10.0), &process()).unwrap();
        let nicr_process = process().with_resistor_film(crate::materials::ResistiveFilm::ni_cr());
        let nicr =
            ThinFilmResistor::synthesize(Resistance::from_kilo(10.0), &nicr_process).unwrap();
        assert!(nicr.squares() > crsi.squares());
        assert!(nicr.area().mm2() > crsi.area().mm2());
    }

    #[test]
    fn display_is_informative() {
        let r = ThinFilmResistor::synthesize(Resistance::from_kilo(100.0), &process()).unwrap();
        let s = r.to_string();
        assert!(s.contains("100 kΩ") && s.contains("±15%"));
    }

    proptest! {
        #[test]
        fn area_grows_with_resistance(r1 in 100.0f64..1e6, factor in 1.5f64..10.0) {
            let p = process();
            let small = ThinFilmResistor::synthesize(Resistance::new(r1), &p).unwrap();
            let large = ThinFilmResistor::synthesize(Resistance::new(r1 * factor), &p).unwrap();
            prop_assert!(large.area().mm2() >= small.area().mm2() * 0.95,
                "{} -> {}, {} -> {}", r1, small.area(), r1 * factor, large.area());
        }

        #[test]
        fn synthesized_squares_match_target(r in 50.0f64..1e6) {
            let p = process();
            let res = ThinFilmResistor::synthesize(Resistance::new(r), &p).unwrap();
            prop_assert!((res.squares() * 360.0 - r).abs() < 1e-6);
        }

        #[test]
        fn meander_region_is_roughly_square(r in 1e4f64..1e6) {
            // The optimizer should not produce extreme aspect ratios.
            let p = process();
            let res = ThinFilmResistor::synthesize(Resistance::new(r), &p).unwrap();
            if res.legs() > 3 {
                let w = f64::from(res.legs()) * 40.0;
                let aspect = w.max(res.leg_length_um()) / w.min(res.leg_length_um());
                prop_assert!(aspect < 4.0, "aspect {} at {}Ω", aspect, r);
            }
        }
    }
}
