//! Normalized low-pass prototype element values (g-values).

/// Butterworth (maximally flat) prototype values `g₁…gₙ`, with both
/// terminations equal to 1 (gₙ₊₁ = 1 implied).
///
/// # Panics
///
/// Panics for order 0.
///
/// # Examples
///
/// ```
/// use ipass_rf::butterworth_g;
///
/// let g = butterworth_g(2);
/// assert!((g[0] - std::f64::consts::SQRT_2).abs() < 1e-12);
/// assert!((g[1] - std::f64::consts::SQRT_2).abs() < 1e-12);
/// ```
pub fn butterworth_g(order: usize) -> Vec<f64> {
    assert!(order >= 1, "filter order must be at least 1");
    (1..=order)
        .map(|k| 2.0 * ((2.0 * k as f64 - 1.0) * std::f64::consts::PI / (2.0 * order as f64)).sin())
        .collect()
}

/// Chebyshev (equal-ripple) prototype values `g₁…gₙ` for a passband
/// ripple in dB. The source termination is 1; the load termination is
/// returned by [`chebyshev_load_g`] (≠ 1 for even orders).
///
/// # Panics
///
/// Panics for order 0 or non-positive ripple.
///
/// # Examples
///
/// ```
/// use ipass_rf::chebyshev_g;
///
/// // Matthaei/Young/Jones Table 4.05-2(a): n=2, 0.5 dB ripple.
/// let g = chebyshev_g(2, 0.5);
/// assert!((g[0] - 1.4029).abs() < 1e-3);
/// assert!((g[1] - 0.7071).abs() < 1e-3);
/// ```
pub fn chebyshev_g(order: usize, ripple_db: f64) -> Vec<f64> {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(
        ripple_db > 0.0 && ripple_db.is_finite(),
        "ripple must be positive dB, got {ripple_db}"
    );
    let n = order as f64;
    let beta = (ripple_db / 17.37).tanh().recip().ln();
    let gamma = (beta / (2.0 * n)).sinh();
    let a: Vec<f64> = (1..=order)
        .map(|k| ((2.0 * k as f64 - 1.0) * std::f64::consts::PI / (2.0 * n)).sin())
        .collect();
    let b: Vec<f64> = (1..=order)
        .map(|k| gamma * gamma + ((k as f64) * std::f64::consts::PI / n).sin().powi(2))
        .collect();
    let mut g = Vec::with_capacity(order);
    g.push(2.0 * a[0] / gamma);
    for k in 1..order {
        let prev = g[k - 1];
        g.push(4.0 * a[k - 1] * a[k] / (b[k - 1] * prev));
    }
    g
}

/// The load termination gₙ₊₁ of the Chebyshev prototype: 1 for odd
/// orders, `coth²(β/4)` for even orders.
///
/// # Panics
///
/// Panics for order 0 or non-positive ripple.
///
/// # Examples
///
/// ```
/// use ipass_rf::chebyshev_load_g;
///
/// assert!((chebyshev_load_g(3, 0.5) - 1.0).abs() < 1e-12);
/// // n=2, 0.5 dB: the classic 1.9841 mismatch.
/// assert!((chebyshev_load_g(2, 0.5) - 1.9841).abs() < 1e-3);
/// ```
pub fn chebyshev_load_g(order: usize, ripple_db: f64) -> f64 {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(
        ripple_db > 0.0 && ripple_db.is_finite(),
        "ripple must be positive dB, got {ripple_db}"
    );
    if order % 2 == 1 {
        1.0
    } else {
        let beta = (ripple_db / 17.37).tanh().recip().ln();
        (beta / 4.0).tanh().recip().powi(2)
    }
}

/// Classic midband insertion-loss estimate for a bandpass filter built
/// from resonators with unloaded quality factor `qu` (Cohn's formula):
/// `ΔIL ≈ 4.343 · Σgᵢ / (FBW · Qu)` dB.
///
/// # Panics
///
/// Panics if `fbw` or `qu` are not positive.
///
/// # Examples
///
/// ```
/// use ipass_rf::{chebyshev_g, midband_loss_estimate_db};
///
/// let g = chebyshev_g(2, 0.5);
/// let il = midband_loss_estimate_db(&g, 0.114, 12.0);
/// assert!(il > 6.0 && il < 7.5);
/// ```
pub fn midband_loss_estimate_db(g: &[f64], fbw: f64, qu: f64) -> f64 {
    assert!(
        fbw > 0.0,
        "fractional bandwidth must be positive, got {fbw}"
    );
    assert!(qu > 0.0, "unloaded Q must be positive, got {qu}");
    4.343 * g.iter().sum::<f64>() / (fbw * qu)
}

/// Combine unloaded Qs of the inductor and capacitor of a resonator:
/// `1/Qu = 1/Q_L + 1/Q_C`.
///
/// # Examples
///
/// ```
/// use ipass_rf::combined_qu;
///
/// let qu = combined_qu(12.0, 95.0);
/// assert!((qu - 10.65).abs() < 0.1);
/// ```
pub fn combined_qu(q_l: f64, q_c: f64) -> f64 {
    assert!(q_l > 0.0 && q_c > 0.0, "Qs must be positive");
    1.0 / (1.0 / q_l + 1.0 / q_c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn butterworth_known_orders() {
        // n=3: 1, 2, 1.
        let g = butterworth_g(3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 2.0).abs() < 1e-12);
        assert!((g[2] - 1.0).abs() < 1e-12);
        // n=5 middle element = 2.
        let g5 = butterworth_g(5);
        assert!((g5[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_published_tables() {
        // Matthaei/Young/Jones, 0.5 dB ripple.
        let g3 = chebyshev_g(3, 0.5);
        assert!((g3[0] - 1.5963).abs() < 1e-3);
        assert!((g3[1] - 1.0967).abs() < 1e-3);
        assert!((g3[2] - 1.5963).abs() < 1e-3);
        // 0.2 dB ripple, n=3.
        let g = chebyshev_g(3, 0.2);
        assert!((g[0] - 1.2275).abs() < 1e-3);
        assert!((g[1] - 1.1525).abs() < 1e-3);
        assert!((g[2] - 1.2275).abs() < 1e-3);
        // 0.1 dB ripple, n=2.
        let g2 = chebyshev_g(2, 0.1);
        assert!((g2[0] - 0.8431).abs() < 1e-3);
        assert!((g2[1] - 0.6220).abs() < 1e-3);
    }

    #[test]
    fn odd_chebyshev_is_symmetric() {
        let g = chebyshev_g(5, 0.5);
        assert!((g[0] - g[4]).abs() < 1e-9);
        assert!((g[1] - g[3]).abs() < 1e-9);
    }

    #[test]
    fn load_terminations() {
        assert_eq!(chebyshev_load_g(3, 0.5), 1.0);
        assert!((chebyshev_load_g(2, 0.1) - 1.3554).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "order")]
    fn zero_order_rejected() {
        let _ = butterworth_g(0);
    }

    #[test]
    #[should_panic(expected = "ripple")]
    fn zero_ripple_rejected() {
        let _ = chebyshev_g(3, 0.0);
    }

    #[test]
    fn loss_estimate_matches_hand_calc() {
        // The paper-calibration case: n=2 0.5 dB, FBW 0.1143, Qu 12.02
        // → ≈ 6.7 dB.
        let g = chebyshev_g(2, 0.5);
        let il = midband_loss_estimate_db(&g, 0.1143, 12.02);
        assert!((il - 6.67).abs() < 0.1, "il {il}");
    }

    #[test]
    fn combined_qu_is_dominated_by_worst() {
        assert!(combined_qu(10.0, 1e9) - 10.0 < 1e-6);
        assert!(combined_qu(10.0, 10.0) - 5.0 < 1e-9);
    }

    proptest! {
        #[test]
        fn butterworth_symmetry_and_positivity(n in 1usize..12) {
            let g = butterworth_g(n);
            prop_assert_eq!(g.len(), n);
            for k in 0..n {
                prop_assert!(g[k] > 0.0);
                prop_assert!((g[k] - g[n - 1 - k]).abs() < 1e-9);
            }
        }

        #[test]
        fn chebyshev_positive(n in 1usize..12, ripple in 0.01f64..3.0) {
            for v in chebyshev_g(n, ripple) {
                prop_assert!(v > 0.0 && v.is_finite());
            }
            prop_assert!(chebyshev_load_g(n, ripple) >= 1.0);
        }

        #[test]
        fn higher_ripple_raises_g1(n in 2usize..10) {
            let low = chebyshev_g(n, 0.1)[0];
            let high = chebyshev_g(n, 1.0)[0];
            prop_assert!(high > low);
        }
    }
}
