//! Low-pass and high-pass ladder designs, filter-order estimators and
//! group delay — rounding out the synthesis toolbox beyond the paper's
//! two bandpass cases (PLL loop filters are low-pass; DC blocks are
//! high-pass).

use crate::design::{Approximation, ElementLosses};
use crate::elements::Immittance;
use crate::twoport::{Branch, Ladder};
use ipass_units::{Capacitance, Frequency, Inductance};

/// Design a ladder low-pass (shunt capacitor first).
///
/// # Panics
///
/// Panics on zero order, non-positive cutoff or impedance.
///
/// # Examples
///
/// ```
/// use ipass_rf::{lowpass, Approximation, ElementLosses};
/// use ipass_units::Frequency;
///
/// let lp = lowpass(
///     3,
///     Approximation::Butterworth,
///     Frequency::from_mega(10.0),
///     50.0,
///     ElementLosses::ideal(),
/// );
/// // −3 dB at the Butterworth cutoff:
/// let at_fc = lp.insertion_loss_db(Frequency::from_mega(10.0));
/// assert!((at_fc - 3.01).abs() < 0.05);
/// // 3rd order: −18 dB/octave: ≈ 18 dB more one octave up.
/// let oct = lp.insertion_loss_db(Frequency::from_mega(20.0));
/// assert!((oct - at_fc - 15.3).abs() < 1.0);
/// ```
pub fn lowpass(
    order: usize,
    approximation: Approximation,
    cutoff: Frequency,
    z0: f64,
    losses: ElementLosses,
) -> Ladder {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(cutoff.hertz() > 0.0, "cutoff must be positive");
    assert!(z0 > 0.0 && z0.is_finite(), "impedance must be positive");
    let (g, g_load) = approximation.g_values_pub(order);
    let wc = cutoff.angular();
    let branches = g
        .iter()
        .enumerate()
        .map(|(k, &gk)| {
            if k % 2 == 0 {
                Branch::Shunt(Immittance::capacitor(
                    Capacitance::new(gk / (z0 * wc)),
                    losses.capacitor,
                ))
            } else {
                Branch::Series(Immittance::inductor(
                    Inductance::new(gk * z0 / wc),
                    losses.inductor,
                ))
            }
        })
        .collect();
    Ladder::new(branches, z0, z0 * g_load)
}

/// Design a ladder high-pass (shunt inductor first) by the standard
/// `ω → −ωc/ω` transformation.
///
/// # Panics
///
/// Panics on zero order, non-positive cutoff or impedance.
///
/// # Examples
///
/// ```
/// use ipass_rf::{highpass, Approximation, ElementLosses};
/// use ipass_units::Frequency;
///
/// let hp = highpass(
///     3,
///     Approximation::Butterworth,
///     Frequency::from_mega(10.0),
///     50.0,
///     ElementLosses::ideal(),
/// );
/// assert!(hp.insertion_loss_db(Frequency::from_mega(1.0)) > 50.0);
/// assert!(hp.insertion_loss_db(Frequency::from_mega(100.0)) < 0.1);
/// ```
pub fn highpass(
    order: usize,
    approximation: Approximation,
    cutoff: Frequency,
    z0: f64,
    losses: ElementLosses,
) -> Ladder {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(cutoff.hertz() > 0.0, "cutoff must be positive");
    assert!(z0 > 0.0 && z0.is_finite(), "impedance must be positive");
    let (g, g_load) = approximation.g_values_pub(order);
    let wc = cutoff.angular();
    let branches = g
        .iter()
        .enumerate()
        .map(|(k, &gk)| {
            if k % 2 == 0 {
                Branch::Shunt(Immittance::inductor(
                    Inductance::new(z0 / (gk * wc)),
                    losses.inductor,
                ))
            } else {
                Branch::Series(Immittance::capacitor(
                    Capacitance::new(1.0 / (gk * z0 * wc)),
                    losses.capacitor,
                ))
            }
        })
        .collect();
    Ladder::new(branches, z0, z0 * g_load)
}

/// Minimum Butterworth order for `atten_db` of attenuation at `omega`
/// times the cutoff frequency.
///
/// # Panics
///
/// Panics unless `atten_db > 0` and `omega > 1`.
///
/// # Examples
///
/// ```
/// use ipass_rf::butterworth_order;
///
/// // 40 dB one decade out needs n = 2; 40 dB one octave out needs n = 7.
/// assert_eq!(butterworth_order(40.0, 10.0), 2);
/// assert_eq!(butterworth_order(40.0, 2.0), 7);
/// ```
pub fn butterworth_order(atten_db: f64, omega: f64) -> usize {
    assert!(atten_db > 0.0, "attenuation must be positive dB");
    assert!(omega > 1.0, "normalized frequency must exceed 1");
    let n = ((10f64.powf(atten_db / 10.0) - 1.0).log10()) / (2.0 * omega.log10());
    n.ceil().max(1.0) as usize
}

/// Minimum Chebyshev order for `atten_db` at `omega` × cutoff given the
/// passband `ripple_db`.
///
/// # Panics
///
/// Panics unless all arguments are positive and `omega > 1`.
///
/// # Examples
///
/// ```
/// use ipass_rf::chebyshev_order;
///
/// // The equal-ripple response buys ~2 orders over Butterworth here.
/// assert!(chebyshev_order(40.0, 0.5, 2.0) < 7);
/// ```
pub fn chebyshev_order(atten_db: f64, ripple_db: f64, omega: f64) -> usize {
    assert!(atten_db > 0.0, "attenuation must be positive dB");
    assert!(ripple_db > 0.0, "ripple must be positive dB");
    assert!(omega > 1.0, "normalized frequency must exceed 1");
    let num = ((10f64.powf(atten_db / 10.0) - 1.0) / (10f64.powf(ripple_db / 10.0) - 1.0)).sqrt();
    let n = num.acosh() / omega.acosh();
    n.ceil().max(1.0) as usize
}

/// Group delay of a ladder at `f`, in seconds, from the phase slope of
/// S21 (exact ω-derivative via dual numbers — no finite-difference
/// step, so the result is free of truncation and cancellation error).
///
/// S21 of a ladder is `2√(Zs·Zl)/denom` with a real numerator, so
/// `τ = −d arg(S21)/dω = Im(denom′/denom)`; the denominator and its
/// derivative come out of one dual-valued ABCD cascade.
///
/// # Panics
///
/// Panics for non-positive `f`.
///
/// # Examples
///
/// ```
/// use ipass_rf::{group_delay, lowpass, Approximation, ElementLosses};
/// use ipass_units::Frequency;
///
/// let lp = lowpass(3, Approximation::Butterworth, Frequency::from_mega(10.0),
///                  50.0, ElementLosses::ideal());
/// // A 10 MHz Butterworth has tens of nanoseconds of in-band delay.
/// let tau = group_delay(&lp, Frequency::from_mega(5.0));
/// assert!(tau > 10e-9 && tau < 100e-9);
/// ```
pub fn group_delay(ladder: &Ladder, f: Frequency) -> f64 {
    assert!(f.hertz() > 0.0, "frequency must be positive");
    let denom = ladder.s21_denominator_dw(f);
    (denom.dw / denom.val).im
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoport::linspace;

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    #[test]
    fn butterworth_lowpass_is_maximally_flat() {
        let lp = lowpass(
            5,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        for f in linspace(mhz(0.5), mhz(5.0), 10) {
            assert!(lp.insertion_loss_db(f) < 0.2, "at {f}");
        }
        // Exact analytic magnitude: |H|² = 1/(1+Ω^2n).
        let at = lp.insertion_loss_db(mhz(15.0));
        let expect = 10.0 * (1.0 + 1.5f64.powi(10)).log10();
        assert!((at - expect).abs() < 0.1, "{at} vs {expect}");
    }

    #[test]
    fn chebyshev_lowpass_ripples_up_to_cutoff() {
        let lp = lowpass(
            5,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        let mut max_in_band: f64 = 0.0;
        for f in linspace(mhz(0.5), mhz(9.99), 200) {
            max_in_band = max_in_band.max(lp.insertion_loss_db(f));
        }
        assert!((max_in_band - 0.5).abs() < 0.05, "ripple {max_in_band}");
        // Far steeper than Butterworth of the same order at 2×fc.
        let bw = lowpass(
            5,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!(lp.insertion_loss_db(mhz(20.0)) > bw.insertion_loss_db(mhz(20.0)) + 8.0);
    }

    #[test]
    fn highpass_mirrors_lowpass() {
        let lp = lowpass(
            3,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        let hp = highpass(
            3,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        // ω → ωc²/ω symmetry: loss at 2fc of LP equals loss at fc/2 of HP.
        let a = lp.insertion_loss_db(mhz(20.0));
        let b = hp.insertion_loss_db(mhz(5.0));
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }

    #[test]
    fn losses_add_passband_attenuation() {
        let ideal = lowpass(
            3,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        let lossy = lowpass(
            3,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::q(20.0, 100.0),
        );
        let f = mhz(8.0);
        assert!(lossy.insertion_loss_db(f) > ideal.insertion_loss_db(f) + 0.1);
    }

    #[test]
    fn order_estimators_match_realized_filters() {
        // Ask for 30 dB at 3×fc, design it, verify.
        let n = butterworth_order(30.0, 3.0);
        let lp = lowpass(
            n,
            Approximation::Butterworth,
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!(lp.insertion_loss_db(mhz(30.0)) >= 30.0);
        // One order less must fail.
        if n > 1 {
            let lp_small = lowpass(
                n - 1,
                Approximation::Butterworth,
                mhz(10.0),
                50.0,
                ElementLosses::ideal(),
            );
            assert!(lp_small.insertion_loss_db(mhz(30.0)) < 30.0);
        }
        let nc = chebyshev_order(30.0, 0.5, 3.0);
        assert!(nc <= n);
        let cheb = lowpass(
            nc,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!(cheb.insertion_loss_db(mhz(30.0)) >= 30.0);
    }

    #[test]
    fn group_delay_peaks_near_cutoff_for_chebyshev() {
        let lp = lowpass(
            5,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(10.0),
            50.0,
            ElementLosses::ideal(),
        );
        let mid = group_delay(&lp, mhz(3.0));
        let edge = group_delay(&lp, mhz(9.8));
        assert!(edge > 2.0 * mid, "edge {edge} vs mid {mid}");
        assert!(mid > 0.0);
    }

    #[test]
    fn group_delay_of_through_is_zero() {
        let through = Ladder::new(vec![], 50.0, 50.0);
        // The dual derivative of the identity cascade is exactly zero —
        // no finite-difference noise floor.
        assert_eq!(group_delay(&through, mhz(100.0)), 0.0);
    }

    /// The central finite difference the function used before the dual
    /// rewrite, kept as an independent cross-check.
    fn group_delay_fd(ladder: &Ladder, f: Frequency) -> f64 {
        let df = f.hertz() * 1e-6;
        let lo = ladder.s_params(Frequency::new(f.hertz() - df)).s21;
        let hi = ladder.s_params(Frequency::new(f.hertz() + df)).s21;
        let dphi = (hi / lo).arg();
        -dphi / (2.0 * std::f64::consts::PI * 2.0 * df)
    }

    #[test]
    fn dual_group_delay_matches_finite_differences() {
        // Lossy and lossless, low-pass and high-pass, in and out of
        // band: the exact dual derivative must agree with the central
        // finite difference to the latter's truncation accuracy.
        let networks = [
            lowpass(
                5,
                Approximation::Chebyshev { ripple_db: 0.5 },
                mhz(10.0),
                50.0,
                ElementLosses::q(20.0, 100.0),
            ),
            lowpass(
                4,
                Approximation::Butterworth,
                mhz(10.0),
                50.0,
                ElementLosses::ideal(),
            ),
            highpass(
                3,
                Approximation::Butterworth,
                mhz(10.0),
                75.0,
                ElementLosses::q(40.0, 40.0),
            ),
        ];
        for ladder in &networks {
            for f in linspace(mhz(1.0), mhz(30.0), 25) {
                let exact = group_delay(ladder, f);
                let fd = group_delay_fd(ladder, f);
                let tol = 1e-6 * fd.abs().max(1e-9);
                assert!(
                    (exact - fd).abs() < tol,
                    "{ladder} at {f}: dual {exact} vs FD {fd}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn order_estimator_rejects_in_band_point() {
        let _ = butterworth_order(20.0, 0.5);
    }
}
