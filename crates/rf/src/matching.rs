//! L-section impedance matching design (the paper's "50 Ω matching
//! networks for the LNA and the mixer").

use crate::elements::{Immittance, Loss};
use crate::twoport::{Branch, Ladder};
use ipass_units::{Capacitance, Frequency, Inductance};
use std::fmt;

/// The two canonical L-section orientations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LSectionKind {
    /// Series inductor (source side), shunt capacitor (load side); used
    /// to step *up* from a lower source to a higher load resistance.
    SeriesLShuntC,
    /// Shunt capacitor (source side), series inductor (load side); used
    /// to step *down*.
    ShuntCSeriesL,
}

/// A designed L-section match between two real impedance levels.
///
/// # Examples
///
/// ```
/// use ipass_rf::{design_l_match, Loss};
/// use ipass_units::Frequency;
///
/// // Match 50 Ω to a 200 Ω LNA input at 1.575 GHz.
/// let m = design_l_match(50.0, 200.0, Frequency::from_giga(1.575), Loss::Ideal, Loss::Ideal);
/// let ladder = m.ladder();
/// // At the design frequency the match is essentially transparent:
/// assert!(ladder.insertion_loss_db(Frequency::from_giga(1.575)) < 0.01);
/// // Away from it, mismatch loss appears:
/// assert!(ladder.insertion_loss_db(Frequency::from_giga(4.0)) > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LMatch {
    kind: LSectionKind,
    source_ohms: f64,
    load_ohms: f64,
    f0: Frequency,
    inductance: Inductance,
    capacitance: Capacitance,
    l_loss: Loss,
    c_loss: Loss,
}

/// Design an L-section matching `source_ohms` to `load_ohms` at `f0`.
///
/// The orientation is chosen automatically: the series arm always goes on
/// the lower-impedance side.
///
/// # Panics
///
/// Panics when either resistance is non-positive, when they are equal
/// (nothing to match), or `f0` is non-positive.
pub fn design_l_match(
    source_ohms: f64,
    load_ohms: f64,
    f0: Frequency,
    l_loss: Loss,
    c_loss: Loss,
) -> LMatch {
    assert!(
        source_ohms > 0.0 && source_ohms.is_finite(),
        "source resistance must be positive, got {source_ohms}"
    );
    assert!(
        load_ohms > 0.0 && load_ohms.is_finite(),
        "load resistance must be positive, got {load_ohms}"
    );
    assert!(
        (source_ohms - load_ohms).abs() > 1e-9,
        "terminations are already equal; no match needed"
    );
    assert!(f0.hertz() > 0.0, "design frequency must be positive");

    let (r_low, r_high) = if source_ohms < load_ohms {
        (source_ohms, load_ohms)
    } else {
        (load_ohms, source_ohms)
    };
    let q = (r_high / r_low - 1.0).sqrt();
    let xs = q * r_low; // series reactance on the low side
    let xp = r_high / q; // shunt reactance on the high side
    let w = f0.angular();
    let inductance = Inductance::new(xs / w);
    let capacitance = Capacitance::new(1.0 / (w * xp));
    let kind = if source_ohms < load_ohms {
        LSectionKind::SeriesLShuntC
    } else {
        LSectionKind::ShuntCSeriesL
    };
    LMatch {
        kind,
        source_ohms,
        load_ohms,
        f0,
        inductance,
        capacitance,
        l_loss,
        c_loss,
    }
}

impl LMatch {
    /// The chosen orientation.
    pub fn kind(&self) -> LSectionKind {
        self.kind
    }

    /// The series inductance.
    pub fn inductance(&self) -> Inductance {
        self.inductance
    }

    /// The shunt capacitance.
    pub fn capacitance(&self) -> Capacitance {
        self.capacitance
    }

    /// The design frequency.
    pub fn frequency(&self) -> Frequency {
        self.f0
    }

    /// The loaded Q of the section, `√(R_high/R_low − 1)`.
    pub fn loaded_q(&self) -> f64 {
        let (lo, hi) = if self.source_ohms < self.load_ohms {
            (self.source_ohms, self.load_ohms)
        } else {
            (self.load_ohms, self.source_ohms)
        };
        (hi / lo - 1.0).sqrt()
    }

    /// Realize the section as a [`Ladder`] between its terminations.
    pub fn ladder(&self) -> Ladder {
        let series = Branch::Series(Immittance::inductor(self.inductance, self.l_loss));
        let shunt = Branch::Shunt(Immittance::capacitor(self.capacitance, self.c_loss));
        let branches = match self.kind {
            LSectionKind::SeriesLShuntC => vec![series, shunt],
            LSectionKind::ShuntCSeriesL => vec![shunt, series],
        };
        Ladder::new(branches, self.source_ohms, self.load_ohms)
    }
}

impl fmt::Display for LMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L-match {}Ω→{}Ω at {}: L={}, C={}",
            self.source_ohms, self.load_ohms, self.f0, self.inductance, self.capacitance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ghz(v: f64) -> Frequency {
        Frequency::from_giga(v)
    }

    #[test]
    fn step_up_is_transparent_at_f0() {
        let m = design_l_match(50.0, 200.0, ghz(1.575), Loss::Ideal, Loss::Ideal);
        assert_eq!(m.kind(), LSectionKind::SeriesLShuntC);
        assert!(m.ladder().insertion_loss_db(ghz(1.575)) < 1e-3);
        assert!((m.loaded_q() - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn step_down_is_transparent_at_f0() {
        let m = design_l_match(200.0, 50.0, ghz(1.575), Loss::Ideal, Loss::Ideal);
        assert_eq!(m.kind(), LSectionKind::ShuntCSeriesL);
        assert!(m.ladder().insertion_loss_db(ghz(1.575)) < 1e-3);
    }

    #[test]
    fn lossy_elements_leave_residual_loss() {
        let m = design_l_match(50.0, 200.0, ghz(1.575), Loss::Q(17.0), Loss::Q(80.0));
        let il = m.ladder().insertion_loss_db(ghz(1.575));
        assert!(il > 0.05 && il < 1.5, "residual loss {il} dB");
    }

    #[test]
    fn return_loss_is_excellent_at_f0() {
        let m = design_l_match(50.0, 200.0, ghz(1.575), Loss::Ideal, Loss::Ideal);
        let s = m.ladder().s_params(ghz(1.575));
        assert!(s.return_loss_db() > 40.0);
    }

    #[test]
    #[should_panic(expected = "already equal")]
    fn equal_terminations_rejected() {
        let _ = design_l_match(50.0, 50.0, ghz(1.0), Loss::Ideal, Loss::Ideal);
    }

    #[test]
    fn display_shows_elements() {
        let m = design_l_match(50.0, 200.0, ghz(1.575), Loss::Ideal, Loss::Ideal);
        let s = m.to_string();
        assert!(s.contains("50Ω→200Ω") && s.contains("L="));
    }

    proptest! {
        #[test]
        fn any_real_match_is_lossless_at_f0(
            r1 in 5.0f64..500.0,
            ratio in 1.1f64..20.0,
            up in proptest::bool::ANY,
            f_ghz in 0.1f64..5.0,
        ) {
            let (rs, rl) = if up { (r1, r1 * ratio) } else { (r1 * ratio, r1) };
            let m = design_l_match(rs, rl, ghz(f_ghz), Loss::Ideal, Loss::Ideal);
            prop_assert!(m.ladder().insertion_loss_db(ghz(f_ghz)) < 1e-6);
        }

        #[test]
        fn element_values_are_positive(r in 5.0f64..500.0, ratio in 1.1f64..20.0) {
            let m = design_l_match(r, r * ratio, ghz(1.0), Loss::Ideal, Loss::Ideal);
            prop_assert!(m.inductance().henries() > 0.0);
            prop_assert!(m.capacitance().farads() > 0.0);
        }
    }
}

/// A designed pi-section match: shunt C — series L — shunt C.
///
/// Unlike the [`LMatch`], whose loaded Q is fixed by the impedance ratio,
/// a pi section lets the designer choose a higher Q (narrower bandwidth,
/// e.g. for harmonic suppression at a PA output).
///
/// # Examples
///
/// ```
/// use ipass_rf::{design_pi_match, Loss};
/// use ipass_units::Frequency;
///
/// let f0 = Frequency::from_giga(1.575);
/// let m = design_pi_match(50.0, 200.0, f0, 5.0, Loss::Ideal, Loss::Ideal);
/// assert!(m.ladder().insertion_loss_db(f0) < 0.01);
/// // Higher Q than the minimal L-section ⇒ narrower:
/// let l = ipass_rf::design_l_match(50.0, 200.0, f0, Loss::Ideal, Loss::Ideal);
/// let off = Frequency::from_giga(1.9);
/// assert!(m.ladder().insertion_loss_db(off) > l.ladder().insertion_loss_db(off));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiMatch {
    source_ohms: f64,
    load_ohms: f64,
    f0: Frequency,
    loaded_q: f64,
    c_source: Capacitance,
    series_l: Inductance,
    c_load: Capacitance,
    l_loss: Loss,
    c_loss: Loss,
}

/// Design a pi-section matching `source_ohms` to `load_ohms` at `f0`
/// with the chosen loaded Q (defined at the higher-impedance side).
///
/// # Panics
///
/// Panics when a resistance is non-positive, the terminations are equal,
/// `f0` is non-positive, or `q` is not above the minimum
/// `√(R_high/R_low − 1)` that the impedance ratio demands.
pub fn design_pi_match(
    source_ohms: f64,
    load_ohms: f64,
    f0: Frequency,
    q: f64,
    l_loss: Loss,
    c_loss: Loss,
) -> PiMatch {
    assert!(
        source_ohms > 0.0 && source_ohms.is_finite(),
        "source resistance must be positive, got {source_ohms}"
    );
    assert!(
        load_ohms > 0.0 && load_ohms.is_finite(),
        "load resistance must be positive, got {load_ohms}"
    );
    assert!(
        (source_ohms - load_ohms).abs() > 1e-9,
        "terminations are already equal; no match needed"
    );
    assert!(f0.hertz() > 0.0, "design frequency must be positive");
    let (r_low, r_high) = if source_ohms < load_ohms {
        (source_ohms, load_ohms)
    } else {
        (load_ohms, source_ohms)
    };
    let q_min = (r_high / r_low - 1.0).sqrt();
    assert!(
        q > q_min,
        "loaded Q {q} must exceed the ratio minimum {q_min:.3}"
    );
    // Virtual resistance below both terminations sets the Q.
    let r_v = r_high / (q * q + 1.0);
    let q_high = q;
    let q_low = (r_low / r_v - 1.0).sqrt();
    let w = f0.angular();
    // Each half is an L-section down to r_v: shunt X = R/Q, series X = Q·r_v.
    let (q_src, q_ld) = if source_ohms >= load_ohms {
        (q_high, q_low)
    } else {
        (q_low, q_high)
    };
    let c_source = Capacitance::new(q_src / (w * source_ohms));
    let c_load = Capacitance::new(q_ld / (w * load_ohms));
    let series_l = Inductance::new((q_src + q_ld) * r_v / w);
    PiMatch {
        source_ohms,
        load_ohms,
        f0,
        loaded_q: q,
        c_source,
        series_l,
        c_load,
        l_loss,
        c_loss,
    }
}

impl PiMatch {
    /// The shunt capacitor on the source side.
    pub fn c_source(&self) -> Capacitance {
        self.c_source
    }

    /// The series inductor.
    pub fn series_l(&self) -> Inductance {
        self.series_l
    }

    /// The shunt capacitor on the load side.
    pub fn c_load(&self) -> Capacitance {
        self.c_load
    }

    /// The chosen loaded Q.
    pub fn loaded_q(&self) -> f64 {
        self.loaded_q
    }

    /// Realize the section as a [`Ladder`].
    pub fn ladder(&self) -> Ladder {
        Ladder::new(
            vec![
                Branch::Shunt(Immittance::capacitor(self.c_source, self.c_loss)),
                Branch::Series(Immittance::inductor(self.series_l, self.l_loss)),
                Branch::Shunt(Immittance::capacitor(self.c_load, self.c_loss)),
            ],
            self.source_ohms,
            self.load_ohms,
        )
    }
}

impl fmt::Display for PiMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi-match {}Ω→{}Ω at {} (Q {:.1}): C={}, L={}, C={}",
            self.source_ohms,
            self.load_ohms,
            self.f0,
            self.loaded_q,
            self.c_source,
            self.series_l,
            self.c_load
        )
    }
}

#[cfg(test)]
mod pi_tests {
    use super::*;

    fn ghz(v: f64) -> Frequency {
        Frequency::from_giga(v)
    }

    #[test]
    fn pi_is_transparent_at_f0_both_directions() {
        for (rs, rl) in [(50.0, 200.0), (200.0, 50.0), (50.0, 75.0)] {
            let m = design_pi_match(rs, rl, ghz(1.575), 6.0, Loss::Ideal, Loss::Ideal);
            let il = m.ladder().insertion_loss_db(ghz(1.575));
            assert!(il < 0.01, "{rs}→{rl}: {il} dB");
        }
    }

    #[test]
    fn higher_q_is_narrower() {
        let low_q = design_pi_match(50.0, 200.0, ghz(1.575), 3.0, Loss::Ideal, Loss::Ideal);
        let high_q = design_pi_match(50.0, 200.0, ghz(1.575), 10.0, Loss::Ideal, Loss::Ideal);
        let off = ghz(1.9);
        assert!(high_q.ladder().insertion_loss_db(off) > low_q.ladder().insertion_loss_db(off));
        assert_eq!(high_q.loaded_q(), 10.0);
    }

    #[test]
    fn element_values_are_sane() {
        let m = design_pi_match(50.0, 200.0, ghz(1.575), 5.0, Loss::Ideal, Loss::Ideal);
        assert!(m.c_source().picofarads() > 0.1 && m.c_source().picofarads() < 100.0);
        assert!(m.c_load().picofarads() > 0.1 && m.c_load().picofarads() < 100.0);
        assert!(m.series_l().nanohenries() > 0.1 && m.series_l().nanohenries() < 100.0);
        assert!(m.to_string().contains("pi-match"));
    }

    #[test]
    #[should_panic(expected = "must exceed the ratio minimum")]
    fn q_below_minimum_rejected() {
        let _ = design_pi_match(50.0, 200.0, ghz(1.0), 1.0, Loss::Ideal, Loss::Ideal);
    }

    #[test]
    fn lossy_pi_still_reasonable() {
        let m = design_pi_match(50.0, 200.0, ghz(1.575), 5.0, Loss::Q(25.0), Loss::Q(80.0));
        let il = m.ladder().insertion_loss_db(ghz(1.575));
        // Loaded Q 5 with element Q 25: IL ≈ 4.343·Q_loaded/Q_u ≈ 0.9 dB.
        assert!(il > 0.3 && il < 2.0, "{il} dB");
    }
}
