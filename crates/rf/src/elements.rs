//! Circuit elements with loss models, composable into one-port
//! immittances.

use crate::complex::{Complex, DualComplex};
use ipass_units::{Capacitance, Frequency, Inductance, Resistance};
use std::fmt;

/// Loss model of a reactive element.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Loss {
    /// No loss.
    #[default]
    Ideal,
    /// Constant unloaded Q across frequency (a good model for SMD parts
    /// within a band).
    Q(f64),
    /// Constant series resistance in Ω (a good model for thin-film
    /// spirals near one band: `Q = ωL/R` then falls with decreasing
    /// frequency, the paper's key observation).
    SeriesR(f64),
}

impl Loss {
    /// The series resistance this loss model implies for a reactance of
    /// magnitude `x` ohms.
    fn series_r(self, x: f64) -> f64 {
        match self {
            Loss::Ideal => 0.0,
            Loss::Q(q) => {
                assert!(q > 0.0, "Q must be positive, got {q}");
                x.abs() / q
            }
            Loss::SeriesR(r) => {
                assert!(r >= 0.0, "series resistance must be non-negative, got {r}");
                r
            }
        }
    }

    /// The series resistance together with its ω-derivative, given the
    /// reactance `x` and its derivative `dx` (d|x|/dω = sign(x)·dx).
    fn series_r_dw(self, x: f64, dx: f64) -> (f64, f64) {
        let r = self.series_r(x);
        let dr = match self {
            Loss::Ideal | Loss::SeriesR(_) => 0.0,
            Loss::Q(q) => (if x < 0.0 { -dx } else { dx }) / q,
        };
        (r, dr)
    }
}

/// A one-port immittance: a composition of (lossy) R, L, C elements.
///
/// # Examples
///
/// ```
/// use ipass_rf::{Immittance, Loss};
/// use ipass_units::{Capacitance, Frequency, Inductance};
///
/// // A series LC resonator, resonant at 1/2π√(LC):
/// let lc = Immittance::series(vec![
///     Immittance::inductor(Inductance::from_nano(40.0), Loss::Ideal),
///     Immittance::capacitor(Capacitance::from_pico(10.0), Loss::Ideal),
/// ]);
/// let f0 = 1.0 / (2.0 * std::f64::consts::PI * (40e-9f64 * 10e-12).sqrt());
/// let z = lc.impedance(Frequency::new(f0));
/// assert!(z.norm() < 1e-6); // short at resonance
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Immittance {
    /// An ideal resistor.
    Resistor(Resistance),
    /// An inductor with a loss model.
    Inductor {
        /// Inductance value.
        henries: Inductance,
        /// Loss model.
        loss: Loss,
    },
    /// A capacitor with a loss model.
    Capacitor {
        /// Capacitance value.
        farads: Capacitance,
        /// Loss model.
        loss: Loss,
    },
    /// Elements in series (impedances add).
    Series(Vec<Immittance>),
    /// Elements in parallel (admittances add).
    Parallel(Vec<Immittance>),
}

impl Immittance {
    /// An ideal resistor.
    pub fn resistor(r: Resistance) -> Immittance {
        Immittance::Resistor(r)
    }

    /// An inductor with the given loss model.
    pub fn inductor(l: Inductance, loss: Loss) -> Immittance {
        Immittance::Inductor { henries: l, loss }
    }

    /// A capacitor with the given loss model.
    pub fn capacitor(c: Capacitance, loss: Loss) -> Immittance {
        Immittance::Capacitor { farads: c, loss }
    }

    /// A series combination.
    pub fn series(parts: Vec<Immittance>) -> Immittance {
        Immittance::Series(parts)
    }

    /// A parallel combination.
    pub fn parallel(parts: Vec<Immittance>) -> Immittance {
        Immittance::Parallel(parts)
    }

    /// The complex impedance at frequency `f`.
    ///
    /// Empty series/parallel groups behave as a short / an open
    /// respectively (the identity elements of the compositions).
    pub fn impedance(&self, f: Frequency) -> Complex {
        let w = f.angular();
        match self {
            Immittance::Resistor(r) => Complex::real(r.ohms()),
            Immittance::Inductor { henries, loss } => {
                let x = w * henries.henries();
                Complex::new(loss.series_r(x), x)
            }
            Immittance::Capacitor { farads, loss } => {
                let x = -1.0 / (w * farads.farads());
                Complex::new(loss.series_r(x), x)
            }
            Immittance::Series(parts) => parts
                .iter()
                .fold(Complex::ZERO, |acc, p| acc + p.impedance(f)),
            Immittance::Parallel(parts) => {
                let y = parts
                    .iter()
                    .fold(Complex::ZERO, |acc, p| acc + safe_recip(p.impedance(f)));
                safe_recip(y)
            }
        }
    }

    /// The complex admittance at frequency `f`.
    ///
    /// A branch that is an exact short (e.g. an ideal series LC evaluated
    /// precisely at resonance) returns a very large — but finite —
    /// admittance so downstream matrix algebra stays NaN-free.
    pub fn admittance(&self, f: Frequency) -> Complex {
        safe_recip(self.impedance(f))
    }

    /// The impedance at `f` together with its exact derivative with
    /// respect to angular frequency, propagated as a dual number.
    ///
    /// The value component follows the same arithmetic as
    /// [`Immittance::impedance`]; the derivative applies the chain rule
    /// per element: `d(ωL)/dω = L`, `d(−1/(ωC))/dω = 1/(ω²C)`, and for
    /// a constant-Q loss the series resistance tracks `|x|/Q`.
    pub(crate) fn impedance_dw(&self, f: Frequency) -> DualComplex {
        let w = f.angular();
        match self {
            Immittance::Resistor(r) => DualComplex::constant(Complex::real(r.ohms())),
            Immittance::Inductor { henries, loss } => {
                let l = henries.henries();
                let x = w * l;
                let (r, dr) = loss.series_r_dw(x, l);
                DualComplex::new(Complex::new(r, x), Complex::new(dr, l))
            }
            Immittance::Capacitor { farads, loss } => {
                let c = farads.farads();
                let x = -1.0 / (w * c);
                let dx = 1.0 / (w * w * c);
                let (r, dr) = loss.series_r_dw(x, dx);
                DualComplex::new(Complex::new(r, x), Complex::new(dr, dx))
            }
            Immittance::Series(parts) => parts
                .iter()
                .fold(DualComplex::ZERO, |acc, p| acc + p.impedance_dw(f)),
            Immittance::Parallel(parts) => {
                let y = parts.iter().fold(DualComplex::ZERO, |acc, p| {
                    acc + p.impedance_dw(f).safe_recip()
                });
                y.safe_recip()
            }
        }
    }

    /// The admittance dual at `f` — [`Immittance::impedance_dw`] through
    /// the NaN-free reciprocal.
    pub(crate) fn admittance_dw(&self, f: Frequency) -> DualComplex {
        self.impedance_dw(f).safe_recip()
    }

    /// Count of primitive R/L/C elements (for BOM accounting).
    ///
    /// See also [`Immittance::admittance`] for the NaN-free reciprocal
    /// used in ladder analysis.
    pub fn element_count(&self) -> usize {
        match self {
            Immittance::Resistor(_)
            | Immittance::Inductor { .. }
            | Immittance::Capacitor { .. } => 1,
            Immittance::Series(parts) | Immittance::Parallel(parts) => {
                parts.iter().map(Immittance::element_count).sum()
            }
        }
    }
}

/// Reciprocal with exact zeros mapped to a huge finite value, keeping
/// ideal resonators NaN-free at their exact resonance.
fn safe_recip(z: Complex) -> Complex {
    if z.norm_sqr() == 0.0 {
        Complex::real(1e30)
    } else {
        z.recip()
    }
}

impl fmt::Display for Immittance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Immittance::Resistor(r) => write!(f, "R({r})"),
            Immittance::Inductor { henries, .. } => write!(f, "L({henries})"),
            Immittance::Capacitor { farads, .. } => write!(f, "C({farads})"),
            Immittance::Series(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Immittance::Parallel(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∥ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F1: Frequency = Frequency::ZERO;

    fn f(mhz: f64) -> Frequency {
        Frequency::from_mega(mhz)
    }

    #[test]
    fn resistor_is_flat() {
        let r = Immittance::resistor(Resistance::new(50.0));
        assert_eq!(r.impedance(f(1.0)), Complex::real(50.0));
        assert_eq!(r.impedance(f(1000.0)), Complex::real(50.0));
        let _ = F1; // silence unused in case of cfg changes
    }

    #[test]
    fn ideal_inductor_reactance() {
        let l = Immittance::inductor(Inductance::from_nano(100.0), Loss::Ideal);
        let z = l.impedance(f(175.0));
        assert_eq!(z.re, 0.0);
        assert!((z.im - 2.0 * std::f64::consts::PI * 175e6 * 100e-9).abs() < 1e-9);
    }

    #[test]
    fn lossy_inductor_q() {
        let l = Immittance::inductor(Inductance::from_nano(100.0), Loss::Q(12.0));
        let z = l.impedance(f(175.0));
        assert!((z.im / z.re - 12.0).abs() < 1e-9);
    }

    #[test]
    fn series_r_inductor_q_scales_with_frequency() {
        // Constant series R: Q doubles when frequency doubles.
        let l = Immittance::inductor(Inductance::from_nano(100.0), Loss::SeriesR(10.0));
        let q1 = {
            let z = l.impedance(f(100.0));
            z.im / z.re
        };
        let q2 = {
            let z = l.impedance(f(200.0));
            z.im / z.re
        };
        assert!((q2 / q1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_reactance_is_negative() {
        let c = Immittance::capacitor(Capacitance::from_pico(50.0), Loss::Q(100.0));
        let z = c.impedance(f(175.0));
        assert!(z.im < 0.0);
        assert!((z.im.abs() / z.re - 100.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_resonator_is_open_at_resonance() {
        let lc = Immittance::parallel(vec![
            Immittance::inductor(Inductance::from_nano(40.0), Loss::Ideal),
            Immittance::capacitor(Capacitance::from_pico(10.0), Loss::Ideal),
        ]);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (40e-9f64 * 10e-12).sqrt());
        let z = lc.impedance(Frequency::new(f0));
        assert!(z.norm() > 1e6, "|Z| = {}", z.norm());
    }

    #[test]
    fn series_parallel_compose() {
        // 50Ω + (100Ω ∥ 100Ω) = 100Ω.
        let net = Immittance::series(vec![
            Immittance::resistor(Resistance::new(50.0)),
            Immittance::parallel(vec![
                Immittance::resistor(Resistance::new(100.0)),
                Immittance::resistor(Resistance::new(100.0)),
            ]),
        ]);
        assert!((net.impedance(f(10.0)).re - 100.0).abs() < 1e-9);
        assert_eq!(net.element_count(), 3);
    }

    #[test]
    fn empty_groups_are_identities() {
        let short = Immittance::series(vec![]);
        assert_eq!(short.impedance(f(1.0)), Complex::ZERO);
        // An empty parallel group is an open: an effectively infinite
        // (huge finite) impedance.
        let open = Immittance::parallel(vec![]);
        assert!(open.impedance(f(1.0)).norm() > 1e20);
    }

    #[test]
    #[should_panic(expected = "Q must be positive")]
    fn zero_q_rejected() {
        let l = Immittance::inductor(Inductance::from_nano(10.0), Loss::Q(0.0));
        let _ = l.impedance(f(100.0));
    }

    #[test]
    fn display_renders_topology() {
        let net = Immittance::series(vec![
            Immittance::resistor(Resistance::new(50.0)),
            Immittance::parallel(vec![
                Immittance::inductor(Inductance::from_nano(40.0), Loss::Ideal),
                Immittance::capacitor(Capacitance::from_pico(10.0), Loss::Ideal),
            ]),
        ]);
        let s = net.to_string();
        assert!(s.contains("+") && s.contains("∥"));
    }

    proptest! {
        #[test]
        fn admittance_is_reciprocal(r in 1.0f64..1e4, mhz in 1.0f64..1e3) {
            let net = Immittance::resistor(Resistance::new(r));
            let z = net.impedance(f(mhz));
            let y = net.admittance(f(mhz));
            prop_assert!(((z * y) - Complex::ONE).norm() < 1e-12);
        }

        #[test]
        fn lossy_impedances_are_passive(nh in 1.0f64..1000.0, q in 1.0f64..500.0, mhz in 1.0f64..3e3) {
            let l = Immittance::inductor(Inductance::from_nano(nh), Loss::Q(q));
            prop_assert!(l.impedance(f(mhz)).re >= 0.0);
        }
    }
}
