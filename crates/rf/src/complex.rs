//! A small complex-number type (kept in-tree to avoid an external
//! dependency for ~200 lines of arithmetic).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use ipass_rf::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// let r = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((r.re).abs() < 1e-12 && (r.im - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Create from rectangular components.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Create a purely real number.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// Create a purely imaginary number.
    pub fn imag(im: f64) -> Complex {
        Complex { re: 0.0, im }
    }

    /// Create from polar form `r·e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Reciprocal `1/z`.
    ///
    /// Division by zero produces infinities, mirroring `f64` semantics.
    pub fn recip(self) -> Complex {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Complex {
        Complex::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Complex {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Complex {
        if n == 0 {
            return Complex::ONE;
        }
        let mut base = if n < 0 { self.recip() } else { self };
        n = n.abs();
        let mut acc = Complex::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div for Complex {
    type Output = Complex;
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ is the definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs * self
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Div<Complex> for f64 {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        Complex::real(self) / rhs
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Complex {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

/// A complex value paired with its derivative with respect to angular
/// frequency ω — a forward-mode dual number over [`Complex`].
///
/// Propagating one of these through the ladder's ABCD cascade yields
/// the exact frequency derivative of any network function in a single
/// evaluation, which is how `group_delay` gets the phase slope of S21
/// without a finite-difference step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DualComplex {
    /// The value at ω.
    pub(crate) val: Complex,
    /// The derivative d(val)/dω.
    pub(crate) dw: Complex,
}

impl DualComplex {
    pub(crate) const ZERO: DualComplex = DualComplex {
        val: Complex::ZERO,
        dw: Complex::ZERO,
    };

    /// A frequency-independent value (zero derivative).
    pub(crate) fn constant(val: Complex) -> DualComplex {
        DualComplex {
            val,
            dw: Complex::ZERO,
        }
    }

    pub(crate) fn new(val: Complex, dw: Complex) -> DualComplex {
        DualComplex { val, dw }
    }

    /// Reciprocal with the same exact-zero guard as the element layer's
    /// `safe_recip`: a short maps to a huge finite admittance whose
    /// derivative is pinned to zero (the guard value is a constant).
    pub(crate) fn safe_recip(self) -> DualComplex {
        if self.val.norm_sqr() == 0.0 {
            return DualComplex::constant(Complex::real(1e30));
        }
        let inv = self.val.recip();
        // d(1/z)/dω = −z′/z².
        DualComplex {
            val: inv,
            dw: -(inv * inv) * self.dw,
        }
    }
}

impl Add for DualComplex {
    type Output = DualComplex;
    fn add(self, rhs: DualComplex) -> DualComplex {
        DualComplex {
            val: self.val + rhs.val,
            dw: self.dw + rhs.dw,
        }
    }
}

impl Mul for DualComplex {
    type Output = DualComplex;
    fn mul(self, rhs: DualComplex) -> DualComplex {
        DualComplex {
            val: self.val * rhs.val,
            dw: self.dw * rhs.val + self.val * rhs.dw,
        }
    }
}

impl Mul<Complex> for DualComplex {
    type Output = DualComplex;
    fn mul(self, rhs: Complex) -> DualComplex {
        DualComplex {
            val: self.val * rhs,
            dw: self.dw * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex, b: Complex, eps: f64) -> bool {
        (a - b).norm() <= eps * (1.0 + a.norm().max(b.norm()))
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert!(close(a / b, a * b.recip(), 1e-15));
        let mut c = a;
        c += b;
        assert_eq!(c, Complex::new(4.0, 1.0));
        c *= Complex::I;
        assert_eq!(c, Complex::new(-1.0, 4.0));
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(2.0, 4.0);
        assert_eq!(z + 1.0, Complex::new(3.0, 4.0));
        assert_eq!(z - 1.0, Complex::new(1.0, 4.0));
        assert_eq!(z * 0.5, Complex::new(1.0, 2.0));
        assert_eq!(2.0 * z, Complex::new(4.0, 8.0));
        assert_eq!(z / 2.0, Complex::new(1.0, 2.0));
        assert!(close(1.0 / z, z.recip(), 1e-15));
        assert_eq!(Complex::from(3.0), Complex::real(3.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::new(-3.0, 4.0);
        let back = Complex::from_polar(z.norm(), z.arg());
        assert!(close(z, back, 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [
            Complex::new(4.0, 0.0),
            Complex::new(0.0, 2.0),
            Complex::new(-1.0, 0.0),
            Complex::new(3.0, -4.0),
        ] {
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z})² = {}", r * r);
            // Principal branch: non-negative real part.
            assert!(r.re >= -1e-12);
        }
    }

    #[test]
    fn exp_of_i_pi() {
        let z = Complex::imag(std::f64::consts::PI).exp();
        assert!(close(z, Complex::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex::new(1.2, -0.7);
        let mut acc = Complex::ONE;
        for k in 0..=6 {
            assert!(close(z.powi(k), acc, 1e-12), "k={k}");
            acc *= z;
        }
        assert!(close(z.powi(-2), (z * z).recip(), 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1.000000-2.000000j");
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1.000000+2.000000j");
    }

    #[test]
    fn is_finite_detects_infinities() {
        assert!(Complex::new(1.0, 1.0).is_finite());
        assert!(!Complex::new(f64::INFINITY, 0.0).is_finite());
        assert!(!(Complex::ONE / Complex::ZERO).is_finite());
    }

    proptest! {
        #[test]
        fn mul_div_roundtrip(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3, d in -1e3f64..1e3) {
            prop_assume!(c.abs() + d.abs() > 1e-6);
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            let z = (x / y) * y;
            prop_assert!(close(z, x, 1e-10));
        }

        #[test]
        fn norm_is_multiplicative(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3, d in -1e3f64..1e3) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            prop_assert!(((x * y).norm() - x.norm() * y.norm()).abs() < 1e-6 * (1.0 + x.norm() * y.norm()));
        }

        #[test]
        fn conj_distributes_over_mul(a in -1e2f64..1e2, b in -1e2f64..1e2, c in -1e2f64..1e2, d in -1e2f64..1e2) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            prop_assert!(close((x * y).conj(), x.conj() * y.conj(), 1e-12));
        }
    }
}
