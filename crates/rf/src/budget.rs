//! Cascade (chain) budget analysis: gain and noise figure through a
//! receiver lineup, Friis' formula.
//!
//! The paper's Fig. 2 sketches the GPS chain (LNA → image filter → mixer
//! → IF filter → …). Filter insertion loss is not free: a lossy passive
//! stage has a noise figure equal to its loss, attenuated in impact by
//! the gain in front of it. This module quantifies what the §4.1 filter
//! losses do to the receiver.

use std::fmt;

/// One stage of a receiver chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeStage {
    name: String,
    gain_db: f64,
    nf_db: f64,
}

impl CascadeStage {
    /// An active stage with explicit gain and noise figure.
    ///
    /// # Panics
    ///
    /// Panics on non-finite inputs or a noise figure below 0 dB.
    pub fn new(name: impl Into<String>, gain_db: f64, nf_db: f64) -> CascadeStage {
        assert!(gain_db.is_finite(), "gain must be finite");
        assert!(
            nf_db.is_finite() && nf_db >= 0.0,
            "noise figure must be ≥ 0 dB, got {nf_db}"
        );
        CascadeStage {
            name: name.into(),
            gain_db,
            nf_db,
        }
    }

    /// A passive lossy stage (filter, matching network): its noise
    /// figure equals its insertion loss.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite loss.
    pub fn passive(name: impl Into<String>, loss_db: f64) -> CascadeStage {
        assert!(
            loss_db.is_finite() && loss_db >= 0.0,
            "passive loss must be ≥ 0 dB, got {loss_db}"
        );
        CascadeStage {
            name: name.into(),
            gain_db: -loss_db,
            nf_db: loss_db,
        }
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stage gain in dB (negative for passive losses).
    pub fn gain_db(&self) -> f64 {
        self.gain_db
    }

    /// Stage noise figure in dB.
    pub fn nf_db(&self) -> f64 {
        self.nf_db
    }
}

/// A cumulative point of the budget after each stage.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetPoint {
    /// Stage name.
    pub name: String,
    /// Cumulative gain up to and including this stage (dB).
    pub cumulative_gain_db: f64,
    /// Cumulative noise figure up to and including this stage (dB).
    pub cumulative_nf_db: f64,
}

/// A receiver chain budget.
///
/// # Examples
///
/// ```
/// use ipass_rf::{CascadeStage, ChainBudget};
///
/// let chain = ChainBudget::new(vec![
///     CascadeStage::new("LNA", 15.0, 1.5),
///     CascadeStage::passive("image filter", 3.0),
///     CascadeStage::new("mixer", 8.0, 9.0),
/// ]);
/// // Friis: the 9 dB mixer dominates; the filter behind 15 dB of
/// // LNA gain costs almost nothing.
/// assert!((chain.noise_figure_db() - 2.75).abs() < 0.05);
/// assert!((chain.total_gain_db() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChainBudget {
    stages: Vec<CascadeStage>,
}

impl ChainBudget {
    /// Create a budget from stages in signal order.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn new(stages: Vec<CascadeStage>) -> ChainBudget {
        assert!(!stages.is_empty(), "a chain needs at least one stage");
        ChainBudget { stages }
    }

    /// The stages in signal order.
    pub fn stages(&self) -> &[CascadeStage] {
        &self.stages
    }

    /// Total chain gain in dB.
    pub fn total_gain_db(&self) -> f64 {
        self.stages.iter().map(CascadeStage::gain_db).sum()
    }

    /// Chain noise figure in dB (Friis' formula).
    pub fn noise_figure_db(&self) -> f64 {
        self.cumulative()
            .last()
            .map(|p| p.cumulative_nf_db)
            .unwrap_or(0.0)
    }

    /// The cumulative gain/NF after every stage.
    pub fn cumulative(&self) -> Vec<BudgetPoint> {
        let mut points = Vec::with_capacity(self.stages.len());
        let mut gain_linear = 1.0f64;
        let mut noise_factor = 1.0f64;
        for stage in &self.stages {
            let f = 10f64.powf(stage.nf_db / 10.0);
            noise_factor += (f - 1.0) / gain_linear;
            gain_linear *= 10f64.powf(stage.gain_db / 10.0);
            points.push(BudgetPoint {
                name: stage.name.clone(),
                cumulative_gain_db: 10.0 * gain_linear.log10(),
                cumulative_nf_db: 10.0 * noise_factor.log10(),
            });
        }
        points
    }

    /// Render the budget table.
    pub fn render(&self) -> String {
        let mut out = String::from("stage                         gain     NF   Σgain    ΣNF\n");
        for (stage, point) in self.stages.iter().zip(self.cumulative()) {
            out.push_str(&format!(
                "{:<28} {:>6.1} {:>6.2} {:>7.1} {:>6.2}\n",
                stage.name,
                stage.gain_db,
                stage.nf_db,
                point.cumulative_gain_db,
                point.cumulative_nf_db
            ));
        }
        out
    }
}

impl fmt::Display for ChainBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_stage_is_its_own_budget() {
        let chain = ChainBudget::new(vec![CascadeStage::new("LNA", 15.0, 1.5)]);
        assert!((chain.total_gain_db() - 15.0).abs() < 1e-12);
        assert!((chain.noise_figure_db() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn passive_stage_nf_equals_loss() {
        let s = CascadeStage::passive("filter", 3.77);
        assert_eq!(s.gain_db(), -3.77);
        assert_eq!(s.nf_db(), 3.77);
    }

    #[test]
    fn friis_textbook_example() {
        // Classic: LNA G=10 dB NF=2 dB, then a noisy stage NF=10 dB.
        // F = 1.585 + (10−1)/10 = 2.485 → 3.95 dB.
        let chain = ChainBudget::new(vec![
            CascadeStage::new("lna", 10.0, 2.0),
            CascadeStage::new("mixer", 0.0, 10.0),
        ]);
        assert!((chain.noise_figure_db() - 3.955).abs() < 0.01);
    }

    #[test]
    fn loss_before_gain_hurts_most() {
        let filter_first = ChainBudget::new(vec![
            CascadeStage::passive("filter", 3.0),
            CascadeStage::new("LNA", 15.0, 1.5),
        ]);
        let lna_first = ChainBudget::new(vec![
            CascadeStage::new("LNA", 15.0, 1.5),
            CascadeStage::passive("filter", 3.0),
        ]);
        // Pre-LNA loss adds dB-for-dB; post-LNA it is divided by gain.
        assert!((filter_first.noise_figure_db() - 4.5).abs() < 0.01);
        assert!(lna_first.noise_figure_db() < 1.8);
    }

    #[test]
    fn cumulative_is_monotone_in_nf() {
        let chain = ChainBudget::new(vec![
            CascadeStage::new("LNA", 15.0, 1.5),
            CascadeStage::passive("filter", 3.8),
            CascadeStage::new("mixer", 8.0, 9.0),
            CascadeStage::passive("IF filter", 6.6),
            CascadeStage::new("IF amp", 30.0, 4.0),
        ]);
        let points = chain.cumulative();
        for w in points.windows(2) {
            assert!(w[1].cumulative_nf_db >= w[0].cumulative_nf_db - 1e-12);
        }
        assert!(chain.render().contains("ΣNF"));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_rejected() {
        let _ = ChainBudget::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "≥ 0 dB")]
    fn negative_nf_rejected() {
        let _ = CascadeStage::new("x", 10.0, -1.0);
    }

    proptest! {
        #[test]
        fn chain_nf_at_least_first_stage_nf(
            g1 in 0.0f64..30.0, nf1 in 0.0f64..10.0,
            g2 in -10.0f64..30.0, nf2 in 0.0f64..10.0,
        ) {
            let chain = ChainBudget::new(vec![
                CascadeStage::new("a", g1, nf1),
                CascadeStage::new("b", g2, nf2),
            ]);
            prop_assert!(chain.noise_figure_db() >= nf1 - 1e-9);
        }

        #[test]
        fn total_gain_is_sum(gains in proptest::collection::vec(-20.0f64..30.0, 1..6)) {
            let stages: Vec<CascadeStage> = gains
                .iter()
                .enumerate()
                .map(|(i, &g)| CascadeStage::new(format!("s{i}"), g, 1.0))
                .collect();
            let chain = ChainBudget::new(stages);
            let expect: f64 = gains.iter().sum();
            prop_assert!((chain.total_gain_db() - expect).abs() < 1e-9);
        }
    }
}
