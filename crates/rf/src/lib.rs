//! RF network analysis and filter synthesis for the integrated-passives
//! methodology.
//!
//! The paper's performance-assessment step (§4.1) asks, for every
//! candidate build-up: *do the filters built from this technology's
//! passives still meet their specs?* This crate provides everything
//! needed to answer that from first principles:
//!
//! * [`Complex`] arithmetic and [`Abcd`] two-port (chain) matrices with
//!   S-parameter conversion ([`Abcd::to_s_params_between`] supports
//!   unequal terminations),
//! * lossy [elements](Immittance) composed into [`Ladder`] networks,
//! * classic low-pass prototypes ([`butterworth_g`], [`chebyshev_g`])
//!   and the LP→BP transformation ([`bandpass`]),
//! * the Cauer-style [`image_reject_bandpass`] with a finite
//!   transmission zero at the image frequency (the GPS LNA output
//!   filter),
//! * [L-section matching](design_l_match) (the 50 Ω matching networks),
//! * [`FilterSpec`] scoring — the paper's "relation of specified losses
//!   to calculated losses" — and [`tolerance_yield`] Monte Carlo.
//!
//! # Examples
//!
//! Reproducing the §4.1 performance scores for the 175 MHz IF filter:
//!
//! ```
//! use ipass_rf::{bandpass, Approximation, ElementLosses, FilterSpec};
//! use ipass_units::Frequency;
//!
//! let f0 = Frequency::from_mega(175.0);
//! let spec = FilterSpec::new("IF filter", f0, 3.0);
//! let design = |q_l: f64, q_c: f64| {
//!     bandpass(
//!         2,
//!         Approximation::Chebyshev { ripple_db: 0.5 },
//!         f0,
//!         Frequency::from_mega(20.0),
//!         50.0,
//!         ElementLosses::q(q_l, q_c),
//!     )
//! };
//! // SMD elements: meets spec (score 1.0).
//! assert_eq!(spec.evaluate(design(45.0, 200.0).ladder()).performance_score(), 1.0);
//! // Fully integrated: the paper's ≈0.45.
//! let ip = spec.evaluate(design(13.8, 95.0).ladder()).performance_score();
//! assert!((0.38..0.52).contains(&ip));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod complex;
mod design;
mod elements;
mod explore;
mod lowhigh;
mod matching;
mod montecarlo;
mod prototype;
mod spec;
mod twoport;

pub use budget::{BudgetPoint, CascadeStage, ChainBudget};
pub use complex::Complex;
pub use design::{bandpass, image_reject_bandpass, Approximation, BandpassDesign, ElementLosses};
pub use elements::{Immittance, Loss};
pub use explore::q_tradeoff_frontier;
pub use lowhigh::{butterworth_order, chebyshev_order, group_delay, highpass, lowpass};
pub use matching::{design_l_match, design_pi_match, LMatch, LSectionKind, PiMatch};
pub use montecarlo::{
    tolerance_yield, tolerance_yield_adaptive, tolerance_yield_with, ToleranceYield,
};
pub use prototype::{
    butterworth_g, chebyshev_g, chebyshev_load_g, combined_qu, midband_loss_estimate_db,
};
pub use spec::{FilterSpec, SpecReport, StopbandPoint};
pub use twoport::{linspace, Abcd, Branch, Ladder, SParams};
