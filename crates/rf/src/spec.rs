//! Filter specifications and the paper's performance scoring.
//!
//! §4.1 of the paper ranks implementations by "the relation of specified
//! losses to calculated losses": a filter whose computed insertion loss
//! is within spec scores 1.0; one that misses scores proportionally
//! below 1.

use crate::twoport::Ladder;
use ipass_units::Frequency;
use std::fmt;

/// A point requirement: at least `min_attenuation_db` at `frequency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopbandPoint {
    /// Where the rejection is required.
    pub frequency: Frequency,
    /// Required attenuation in dB.
    pub min_attenuation_db: f64,
}

/// The specification a filter implementation is scored against.
///
/// # Examples
///
/// ```
/// use ipass_rf::{FilterSpec, StopbandPoint};
/// use ipass_units::Frequency;
///
/// // The GPS LNA output filter: ≤4 dB at 1.575 GHz, ≥20 dB at the
/// // 1.225 GHz image.
/// let spec = FilterSpec::new("LNA output", Frequency::from_giga(1.575), 4.0)
///     .with_stopband(StopbandPoint {
///         frequency: Frequency::from_giga(1.225),
///         min_attenuation_db: 20.0,
///     });
/// assert_eq!(spec.max_passband_loss_db(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSpec {
    name: String,
    passband_center: Frequency,
    max_passband_loss_db: f64,
    stopband: Vec<StopbandPoint>,
}

impl FilterSpec {
    /// Create a spec with a passband loss budget at the center frequency.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive loss budget.
    pub fn new(
        name: impl Into<String>,
        passband_center: Frequency,
        max_passband_loss_db: f64,
    ) -> FilterSpec {
        assert!(
            max_passband_loss_db > 0.0 && max_passband_loss_db.is_finite(),
            "loss budget must be positive dB, got {max_passband_loss_db}"
        );
        FilterSpec {
            name: name.into(),
            passband_center,
            max_passband_loss_db,
            stopband: Vec::new(),
        }
    }

    /// Add a stopband requirement.
    pub fn with_stopband(mut self, point: StopbandPoint) -> FilterSpec {
        self.stopband.push(point);
        self
    }

    /// Spec name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The passband center frequency.
    pub fn passband_center(&self) -> Frequency {
        self.passband_center
    }

    /// The passband loss budget in dB.
    pub fn max_passband_loss_db(&self) -> f64 {
        self.max_passband_loss_db
    }

    /// The stopband requirements.
    pub fn stopband(&self) -> &[StopbandPoint] {
        &self.stopband
    }

    /// Evaluate a realized filter against this spec.
    pub fn evaluate(&self, ladder: &Ladder) -> SpecReport {
        let passband_loss_db = ladder.insertion_loss_db(self.passband_center);
        let stopband: Vec<(StopbandPoint, f64)> = self
            .stopband
            .iter()
            .map(|&p| (p, ladder.insertion_loss_db(p.frequency)))
            .collect();
        SpecReport {
            spec_name: self.name.clone(),
            passband_loss_db,
            loss_budget_db: self.max_passband_loss_db,
            stopband,
        }
    }
}

impl fmt::Display for FilterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ≤{} dB at {}",
            self.name, self.max_passband_loss_db, self.passband_center
        )?;
        for p in &self.stopband {
            write!(f, ", ≥{} dB at {}", p.min_attenuation_db, p.frequency)?;
        }
        Ok(())
    }
}

/// The result of scoring a filter against its [`FilterSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpecReport {
    spec_name: String,
    passband_loss_db: f64,
    loss_budget_db: f64,
    stopband: Vec<(StopbandPoint, f64)>,
}

impl SpecReport {
    /// The computed passband insertion loss in dB.
    pub fn passband_loss_db(&self) -> f64 {
        self.passband_loss_db
    }

    /// The spec's loss budget in dB.
    pub fn loss_budget_db(&self) -> f64 {
        self.loss_budget_db
    }

    /// The computed attenuation at each stopband point.
    pub fn stopband(&self) -> &[(StopbandPoint, f64)] {
        &self.stopband
    }

    /// Whether every requirement is met.
    pub fn meets_spec(&self) -> bool {
        self.passband_loss_db <= self.loss_budget_db
            && self
                .stopband
                .iter()
                .all(|(p, att)| *att >= p.min_attenuation_db)
    }

    /// The paper's §4.1 score: `min(1, specified loss / calculated loss)`,
    /// further derated by any missed stopband requirement.
    pub fn performance_score(&self) -> f64 {
        let mut score: f64 = if self.passband_loss_db <= 0.0 {
            1.0
        } else {
            (self.loss_budget_db / self.passband_loss_db).min(1.0)
        };
        for (p, att) in &self.stopband {
            if *att < p.min_attenuation_db && p.min_attenuation_db > 0.0 {
                score = score.min((att / p.min_attenuation_db).max(0.0));
            }
        }
        score
    }

    /// Safety margin in dB (budget − computed loss; negative = violated).
    pub fn margin_db(&self) -> f64 {
        self.loss_budget_db - self.passband_loss_db
    }
}

impl fmt::Display for SpecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} dB vs budget {:.2} dB (score {:.2})",
            self.spec_name,
            self.passband_loss_db,
            self.loss_budget_db,
            self.performance_score()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{bandpass, Approximation, ElementLosses};
    use ipass_units::Frequency;

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    fn if_filter(q_l: f64, q_c: f64) -> Ladder {
        bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::q(q_l, q_c),
        )
        .ladder()
        .clone()
    }

    fn if_spec() -> FilterSpec {
        FilterSpec::new("IF filter", mhz(175.0), 3.0)
    }

    #[test]
    fn good_filter_scores_one() {
        // SMD-quality elements: well within the 3 dB budget.
        let report = if_spec().evaluate(&if_filter(45.0, 200.0));
        assert!(report.meets_spec());
        assert_eq!(report.performance_score(), 1.0);
        assert!(report.margin_db() > 0.0);
    }

    #[test]
    fn integrated_filter_scores_like_paper_sol3() {
        // Full-IP IF filter: spiral Q ≈ 13.8, IP-C Q ≈ 95 at 175 MHz →
        // the paper's 0.45 performance figure.
        let report = if_spec().evaluate(&if_filter(13.8, 95.0));
        assert!(!report.meets_spec());
        let score = report.performance_score();
        assert!(
            (0.38..0.52).contains(&score),
            "sol-3 style score {score} should be ≈0.45"
        );
    }

    #[test]
    fn hybrid_filter_scores_like_paper_sol4() {
        // SMD multilayer inductors (Q ≈ 25) with IP capacitors: the
        // paper's 0.7 "borderline" case.
        let report = if_spec().evaluate(&if_filter(25.0, 95.0));
        let score = report.performance_score();
        assert!(
            (0.6..0.85).contains(&score),
            "sol-4 style score {score} should be ≈0.7"
        );
    }

    #[test]
    fn stopband_violation_derates() {
        let spec = FilterSpec::new("x", mhz(175.0), 10.0).with_stopband(StopbandPoint {
            frequency: mhz(200.0),
            min_attenuation_db: 60.0,
        });
        let report = spec.evaluate(&if_filter(45.0, 200.0));
        assert!(!report.meets_spec());
        assert!(report.performance_score() < 1.0);
        assert_eq!(report.stopband().len(), 1);
    }

    #[test]
    fn spec_display_and_accessors() {
        let spec = if_spec().with_stopband(StopbandPoint {
            frequency: mhz(400.0),
            min_attenuation_db: 30.0,
        });
        assert!(spec.to_string().contains("175 MHz"));
        assert_eq!(spec.name(), "IF filter");
        assert_eq!(spec.max_passband_loss_db(), 3.0);
        assert_eq!(spec.stopband().len(), 1);
        let report = spec.evaluate(&if_filter(45.0, 200.0));
        assert!(report.to_string().contains("score"));
    }

    #[test]
    #[should_panic(expected = "loss budget")]
    fn non_positive_budget_rejected() {
        let _ = FilterSpec::new("bad", mhz(1.0), 0.0);
    }
}
