//! Monte Carlo tolerance analysis: what fraction of manufactured filters
//! meets the spec?
//!
//! Integrated passives ship with wide as-fabricated tolerances (±15 %
//! resistors, ±10…15 % capacitors). This module quantifies the resulting
//! *parametric yield*, complementing the deterministic §4.1 loss scoring.

use crate::spec::FilterSpec;
use crate::twoport::Ladder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The outcome of a tolerance Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceYield {
    samples: usize,
    passing: usize,
    worst_passband_loss_db: f64,
    mean_passband_loss_db: f64,
}

impl ToleranceYield {
    /// Number of sampled filter instances.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Instances meeting the full spec.
    pub fn passing(&self) -> usize {
        self.passing
    }

    /// The parametric yield in `[0, 1]`.
    pub fn yield_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.passing as f64 / self.samples as f64
        }
    }

    /// Worst sampled passband loss (dB).
    pub fn worst_passband_loss_db(&self) -> f64 {
        self.worst_passband_loss_db
    }

    /// Mean sampled passband loss (dB).
    pub fn mean_passband_loss_db(&self) -> f64 {
        self.mean_passband_loss_db
    }
}

/// Sample `n` filter instances from `build` (a closure that constructs a
/// ladder with component values drawn from their tolerance
/// distributions) and evaluate each against `spec`.
///
/// # Panics
///
/// Panics when `n` is zero.
///
/// # Examples
///
/// ```
/// use ipass_rf::{tolerance_yield, Branch, FilterSpec, Immittance, Ladder, Loss};
/// use ipass_passives::Tolerance;
/// use ipass_units::{Capacitance, Frequency};
///
/// // A shunt-C low-pass whose capacitor varies ±15 %.
/// let spec = FilterSpec::new("lp", Frequency::from_mega(10.0), 1.0);
/// let result = tolerance_yield(
///     &spec,
///     500,
///     42,
///     |rng| {
///         let c = Tolerance::percent(15.0).sample_normal(100e-12, rng);
///         Ladder::new(
///             vec![Branch::Shunt(Immittance::capacitor(
///                 Capacitance::new(c),
///                 Loss::Ideal,
///             ))],
///             50.0,
///             50.0,
///         )
///     },
/// );
/// assert!(result.yield_fraction() > 0.9);
/// ```
pub fn tolerance_yield<F>(spec: &FilterSpec, n: usize, seed: u64, mut build: F) -> ToleranceYield
where
    F: FnMut(&mut StdRng) -> Ladder,
{
    assert!(n > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passing = 0usize;
    let mut worst = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for _ in 0..n {
        let ladder = build(&mut rng);
        let report = spec.evaluate(&ladder);
        if report.meets_spec() {
            passing += 1;
        }
        worst = worst.max(report.passband_loss_db());
        sum += report.passband_loss_db();
    }
    ToleranceYield {
        samples: n,
        passing,
        worst_passband_loss_db: worst,
        mean_passband_loss_db: sum / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{bandpass, Approximation, ElementLosses};
    use crate::elements::Immittance;
    use crate::twoport::Branch;
    use ipass_passives::Tolerance;
    use ipass_units::{Capacitance, Frequency, Inductance};

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    fn toleranced_if_filter(
        rng: &mut StdRng,
        tol_l: Tolerance,
        tol_c: Tolerance,
        q_l: f64,
        q_c: f64,
    ) -> Ladder {
        // Start from the nominal design and perturb each element.
        let nominal = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::q(q_l, q_c),
        );
        let branches = nominal
            .ladder()
            .branches()
            .iter()
            .map(|b| perturb_branch(b, rng, tol_l, tol_c))
            .collect();
        Ladder::new(
            branches,
            nominal.ladder().source_ohms(),
            nominal.ladder().load_ohms(),
        )
    }

    fn perturb_branch(
        branch: &Branch,
        rng: &mut StdRng,
        tol_l: Tolerance,
        tol_c: Tolerance,
    ) -> Branch {
        match branch {
            Branch::Series(imm) => Branch::Series(perturb(imm, rng, tol_l, tol_c)),
            Branch::Shunt(imm) => Branch::Shunt(perturb(imm, rng, tol_l, tol_c)),
        }
    }

    fn perturb(imm: &Immittance, rng: &mut StdRng, tol_l: Tolerance, tol_c: Tolerance) -> Immittance {
        match imm {
            Immittance::Inductor { henries, loss } => Immittance::Inductor {
                henries: Inductance::new(tol_l.sample_normal(henries.henries(), rng)),
                loss: *loss,
            },
            Immittance::Capacitor { farads, loss } => Immittance::Capacitor {
                farads: Capacitance::new(tol_c.sample_normal(farads.farads(), rng)),
                loss: *loss,
            },
            Immittance::Resistor(r) => Immittance::Resistor(*r),
            Immittance::Series(parts) => Immittance::Series(
                parts.iter().map(|p| perturb(p, rng, tol_l, tol_c)).collect(),
            ),
            Immittance::Parallel(parts) => Immittance::Parallel(
                parts.iter().map(|p| perturb(p, rng, tol_l, tol_c)).collect(),
            ),
        }
    }

    #[test]
    fn tight_tolerances_yield_everything() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let result = tolerance_yield(&spec, 300, 1, |rng| {
            toleranced_if_filter(rng, Tolerance::percent(2.0), Tolerance::percent(2.0), 45.0, 200.0)
        });
        assert!(result.yield_fraction() > 0.97, "{}", result.yield_fraction());
        assert_eq!(result.samples(), 300);
    }

    #[test]
    fn wide_tolerances_cost_yield() {
        // Same electrical design (SMD-quality Q, comfortably in spec at
        // nominal), but IP-class value tolerances: detuning pushes a
        // visible fraction of instances over the loss budget.
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let tight = tolerance_yield(&spec, 400, 2, |rng| {
            toleranced_if_filter(rng, Tolerance::percent(2.0), Tolerance::percent(2.0), 45.0, 200.0)
        });
        let wide = tolerance_yield(&spec, 400, 2, |rng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(5.0),
                Tolerance::percent(15.0),
                45.0,
                200.0,
            )
        });
        assert!(tight.yield_fraction() > 0.9, "tight {}", tight.yield_fraction());
        assert!(
            wide.yield_fraction() < tight.yield_fraction(),
            "wide {} vs tight {}",
            wide.yield_fraction(),
            tight.yield_fraction()
        );
        assert!(wide.worst_passband_loss_db() > tight.worst_passband_loss_db());
    }

    #[test]
    fn statistics_are_consistent() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let r = tolerance_yield(&spec, 100, 3, |rng| {
            toleranced_if_filter(rng, Tolerance::percent(5.0), Tolerance::percent(10.0), 25.0, 95.0)
        });
        assert!(r.mean_passband_loss_db() <= r.worst_passband_loss_db());
        assert!(r.passing() <= r.samples());
        assert!((0.0..=1.0).contains(&r.yield_fraction()));
    }

    #[test]
    fn same_seed_reproduces() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let build = |rng: &mut StdRng| {
            toleranced_if_filter(rng, Tolerance::percent(10.0), Tolerance::percent(10.0), 25.0, 95.0)
        };
        let a = tolerance_yield(&spec, 200, 7, build);
        let b = tolerance_yield(&spec, 200, 7, build);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let _ = tolerance_yield(&spec, 0, 1, |_| {
            Ladder::new(vec![], 50.0, 50.0)
        });
    }
}
