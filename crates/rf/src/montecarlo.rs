//! Monte Carlo tolerance analysis: what fraction of manufactured filters
//! meets the spec?
//!
//! Integrated passives ship with wide as-fabricated tolerances (±15 %
//! resistors, ±10…15 % capacitors). This module quantifies the resulting
//! *parametric yield*, complementing the deterministic §4.1 loss scoring.
//!
//! The sampling runs on the [`ipass_sim`] substrate: every filter
//! instance draws from its own counter-based stream, so results are
//! bit-identical for any executor thread count, and runs can stop early
//! once the yield estimate's confidence interval is tight enough.

use crate::spec::FilterSpec;
use crate::twoport::Ladder;
use ipass_sim::{
    BinomialTally, Executor, MinMax, RunOptions, Sampler, SimRng, StopRule, Welford, Z95,
};

/// The outcome of a tolerance Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceYield {
    tally: BinomialTally,
    worst_passband_loss_db: f64,
    loss: Welford,
    stopped_early: bool,
}

impl ToleranceYield {
    /// Number of sampled filter instances.
    pub fn samples(&self) -> usize {
        self.tally.trials() as usize
    }

    /// Instances meeting the full spec.
    pub fn passing(&self) -> usize {
        self.tally.successes() as usize
    }

    /// The parametric yield in `[0, 1]`.
    pub fn yield_fraction(&self) -> f64 {
        self.tally.fraction()
    }

    /// 95 % confidence-interval half width of [`yield_fraction`]
    /// (Wilson — consistent with the adaptive stop rule, and well
    /// behaved when every sample lands on the same side).
    ///
    /// [`yield_fraction`]: ToleranceYield::yield_fraction
    pub fn yield_ci_half_width(&self) -> f64 {
        self.tally.wilson_half_width(Z95)
    }

    /// Wilson 95 % confidence interval of the parametric yield.
    pub fn yield_interval(&self) -> (f64, f64) {
        self.tally.wilson_interval(Z95)
    }

    /// Worst sampled passband loss (dB).
    pub fn worst_passband_loss_db(&self) -> f64 {
        self.worst_passband_loss_db
    }

    /// Mean sampled passband loss (dB).
    pub fn mean_passband_loss_db(&self) -> f64 {
        self.loss.mean()
    }

    /// Sample standard deviation of the passband loss (dB).
    pub fn passband_loss_std_dev_db(&self) -> f64 {
        self.loss.std_dev()
    }

    /// Whether an early-stopping rule ended the run before its sample
    /// budget.
    pub fn stopped_early(&self) -> bool {
        self.stopped_early
    }
}

/// Accumulator for the tolerance sampler.
#[derive(Debug)]
struct TolAcc {
    tally: BinomialTally,
    worst: MinMax,
    loss: Welford,
}

struct TolSampler<'a, F> {
    spec: &'a FilterSpec,
    build: F,
}

impl<F> Sampler for TolSampler<'_, F>
where
    F: Fn(&mut SimRng) -> Ladder + Sync,
{
    type Acc = TolAcc;
    type Error = std::convert::Infallible;

    fn make_acc(&self) -> TolAcc {
        TolAcc {
            tally: BinomialTally::new(),
            worst: MinMax::new(),
            loss: Welford::new(),
        }
    }

    fn sample(&self, _unit: u64, rng: &mut SimRng, acc: &mut TolAcc) -> Result<(), Self::Error> {
        let ladder = (self.build)(rng);
        let report = self.spec.evaluate(&ladder);
        acc.tally.push(report.meets_spec());
        acc.worst.push(report.passband_loss_db());
        acc.loss.push(report.passband_loss_db());
        Ok(())
    }

    fn merge(&self, into: &mut TolAcc, from: TolAcc) {
        into.tally.merge(&from.tally);
        into.worst.merge(&from.worst);
        into.loss.merge(&from.loss);
    }

    fn ci_half_width(&self, acc: &TolAcc, z: f64) -> Option<f64> {
        // Wilson, not Wald: near-certain pass/fail would otherwise report
        // zero width and stop at the floor regardless of the target.
        Some(acc.tally.wilson_half_width(z))
    }
}

fn summarize(acc: TolAcc, stopped_early: bool) -> ToleranceYield {
    ToleranceYield {
        tally: acc.tally,
        worst_passband_loss_db: acc.worst.max(),
        loss: acc.loss,
        stopped_early,
    }
}

/// Sample `n` filter instances from `build` (a closure that constructs a
/// ladder with component values drawn from their tolerance
/// distributions) and evaluate each against `spec`.
///
/// Each instance draws from its own deterministic stream of `seed`;
/// [`tolerance_yield_with`] runs the identical computation on a
/// multi-thread executor with bit-identical results.
///
/// # Panics
///
/// Panics when `n` is zero.
///
/// # Examples
///
/// ```
/// use ipass_rf::{tolerance_yield, Branch, FilterSpec, Immittance, Ladder, Loss};
/// use ipass_passives::Tolerance;
/// use ipass_units::{Capacitance, Frequency};
///
/// // A shunt-C low-pass whose capacitor varies ±15 %.
/// let spec = FilterSpec::new("lp", Frequency::from_mega(10.0), 1.0);
/// let result = tolerance_yield(
///     &spec,
///     500,
///     42,
///     |rng| {
///         let c = Tolerance::percent(15.0).sample_normal(100e-12, rng);
///         Ladder::new(
///             vec![Branch::Shunt(Immittance::capacitor(
///                 Capacitance::new(c),
///                 Loss::Ideal,
///             ))],
///             50.0,
///             50.0,
///         )
///     },
/// );
/// assert!(result.yield_fraction() > 0.9);
/// ```
pub fn tolerance_yield<F>(spec: &FilterSpec, n: usize, seed: u64, build: F) -> ToleranceYield
where
    F: Fn(&mut SimRng) -> Ladder + Sync,
{
    tolerance_yield_with(spec, n, seed, &Executor::serial(), build)
}

/// [`tolerance_yield`] on an explicit executor; the thread count is a
/// pure performance knob (results are bit-identical).
///
/// # Panics
///
/// Panics when `n` is zero.
pub fn tolerance_yield_with<F>(
    spec: &FilterSpec,
    n: usize,
    seed: u64,
    executor: &Executor,
    build: F,
) -> ToleranceYield
where
    F: Fn(&mut SimRng) -> Ladder + Sync,
{
    assert!(n > 0, "need at least one sample");
    let sampler = TolSampler { spec, build };
    let acc = match executor.run(&sampler, n as u64, seed) {
        Ok(acc) => acc,
        Err(e) => match e {},
    };
    summarize(acc, false)
}

/// Adaptive variant: sample until the 95 % confidence interval of the
/// yield fraction is narrower than `±target_half_width` (or `max_n`
/// instances were evaluated). The stopping point is evaluated at
/// deterministic chunk boundaries, so results remain bit-identical for
/// any executor.
///
/// # Panics
///
/// Panics when `max_n` is zero.
pub fn tolerance_yield_adaptive<F>(
    spec: &FilterSpec,
    max_n: usize,
    seed: u64,
    target_half_width: f64,
    executor: &Executor,
    build: F,
) -> ToleranceYield
where
    F: Fn(&mut SimRng) -> Ladder + Sync,
{
    assert!(max_n > 0, "need at least one sample");
    let sampler = TolSampler { spec, build };
    let options = RunOptions {
        stop: Some(StopRule::half_width_95(target_half_width)),
    };
    let outcome = match executor.run_with(&sampler, max_n as u64, seed, &options) {
        Ok(outcome) => outcome,
        Err(e) => match e {},
    };
    summarize(outcome.acc, outcome.stopped_early)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{bandpass, Approximation, ElementLosses};
    use crate::elements::Immittance;
    use crate::twoport::Branch;
    use ipass_passives::Tolerance;
    use ipass_units::{Capacitance, Frequency, Inductance};

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    fn toleranced_if_filter(
        rng: &mut SimRng,
        tol_l: Tolerance,
        tol_c: Tolerance,
        q_l: f64,
        q_c: f64,
    ) -> Ladder {
        // Start from the nominal design and perturb each element.
        let nominal = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::q(q_l, q_c),
        );
        let branches = nominal
            .ladder()
            .branches()
            .iter()
            .map(|b| perturb_branch(b, rng, tol_l, tol_c))
            .collect();
        Ladder::new(
            branches,
            nominal.ladder().source_ohms(),
            nominal.ladder().load_ohms(),
        )
    }

    fn perturb_branch(
        branch: &Branch,
        rng: &mut SimRng,
        tol_l: Tolerance,
        tol_c: Tolerance,
    ) -> Branch {
        match branch {
            Branch::Series(imm) => Branch::Series(perturb(imm, rng, tol_l, tol_c)),
            Branch::Shunt(imm) => Branch::Shunt(perturb(imm, rng, tol_l, tol_c)),
        }
    }

    fn perturb(
        imm: &Immittance,
        rng: &mut SimRng,
        tol_l: Tolerance,
        tol_c: Tolerance,
    ) -> Immittance {
        match imm {
            Immittance::Inductor { henries, loss } => Immittance::Inductor {
                henries: Inductance::new(tol_l.sample_normal(henries.henries(), rng)),
                loss: *loss,
            },
            Immittance::Capacitor { farads, loss } => Immittance::Capacitor {
                farads: Capacitance::new(tol_c.sample_normal(farads.farads(), rng)),
                loss: *loss,
            },
            Immittance::Resistor(r) => Immittance::Resistor(*r),
            Immittance::Series(parts) => Immittance::Series(
                parts
                    .iter()
                    .map(|p| perturb(p, rng, tol_l, tol_c))
                    .collect(),
            ),
            Immittance::Parallel(parts) => Immittance::Parallel(
                parts
                    .iter()
                    .map(|p| perturb(p, rng, tol_l, tol_c))
                    .collect(),
            ),
        }
    }

    #[test]
    fn tight_tolerances_yield_everything() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let result = tolerance_yield(&spec, 300, 1, |rng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(2.0),
                Tolerance::percent(2.0),
                45.0,
                200.0,
            )
        });
        assert!(
            result.yield_fraction() > 0.97,
            "{}",
            result.yield_fraction()
        );
        assert_eq!(result.samples(), 300);
    }

    #[test]
    fn wide_tolerances_cost_yield() {
        // Same electrical design (SMD-quality Q, comfortably in spec at
        // nominal), but IP-class value tolerances: detuning pushes a
        // visible fraction of instances over the loss budget.
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let tight = tolerance_yield(&spec, 400, 2, |rng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(2.0),
                Tolerance::percent(2.0),
                45.0,
                200.0,
            )
        });
        let wide = tolerance_yield(&spec, 400, 2, |rng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(5.0),
                Tolerance::percent(15.0),
                45.0,
                200.0,
            )
        });
        assert!(
            tight.yield_fraction() > 0.9,
            "tight {}",
            tight.yield_fraction()
        );
        assert!(
            wide.yield_fraction() < tight.yield_fraction(),
            "wide {} vs tight {}",
            wide.yield_fraction(),
            tight.yield_fraction()
        );
        assert!(wide.worst_passband_loss_db() > tight.worst_passband_loss_db());
    }

    #[test]
    fn statistics_are_consistent() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let r = tolerance_yield(&spec, 100, 3, |rng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(5.0),
                Tolerance::percent(10.0),
                25.0,
                95.0,
            )
        });
        assert!(r.mean_passband_loss_db() <= r.worst_passband_loss_db());
        assert!(r.passing() <= r.samples());
        assert!((0.0..=1.0).contains(&r.yield_fraction()));
        assert!(r.passband_loss_std_dev_db() >= 0.0);
        let (lo, hi) = r.yield_interval();
        assert!(lo <= r.yield_fraction() && r.yield_fraction() <= hi);
    }

    #[test]
    fn same_seed_reproduces() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let build = |rng: &mut SimRng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(10.0),
                Tolerance::percent(10.0),
                25.0,
                95.0,
            )
        };
        let a = tolerance_yield(&spec, 200, 7, build);
        let b = tolerance_yield(&spec, 200, 7, build);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_is_a_pure_performance_knob() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let build = |rng: &mut SimRng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(10.0),
                Tolerance::percent(10.0),
                25.0,
                95.0,
            )
        };
        let serial = tolerance_yield_with(&spec, 600, 7, &Executor::new(1), build);
        let parallel = tolerance_yield_with(&spec, 600, 7, &Executor::new(8), build);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn adaptive_run_stops_when_tight() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let build = |rng: &mut SimRng| {
            toleranced_if_filter(
                rng,
                Tolerance::percent(2.0),
                Tolerance::percent(2.0),
                45.0,
                200.0,
            )
        };
        // Near-certain pass ⇒ tiny variance ⇒ stops at the floor.
        let r = tolerance_yield_adaptive(&spec, 100_000, 5, 0.02, &Executor::new(4), build);
        assert!(r.stopped_early(), "ran {} samples", r.samples());
        assert!(r.samples() < 100_000);
        assert!(r.yield_ci_half_width() <= 0.02);
        // Determinism across executors.
        let r2 = tolerance_yield_adaptive(&spec, 100_000, 5, 0.02, &Executor::new(1), build);
        assert_eq!(r, r2);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let spec = FilterSpec::new("IF", mhz(175.0), 3.0);
        let _ = tolerance_yield(&spec, 0, 1, |_| Ladder::new(vec![], 50.0, 50.0));
    }
}
