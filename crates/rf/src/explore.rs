//! Design-space exploration of filter element quality.
//!
//! The paper's §4.1 performance scores hinge on the element Q the
//! chosen technology affords (integrated spirals: Q ≈ 14 at IF; SMDs:
//! Q ≈ 45). This module asks the family question through
//! `ipass-explore`: across the whole (Q_L, Q_C) plane, which quality
//! budgets are worth paying for? The Pareto frontier over
//! *(performance ↑, Q_L ↓, Q_C ↓)* is exactly the set of element
//! technologies that buy performance with the least quality — the
//! curve a technology roadmap should sit on.

use crate::design::{bandpass, Approximation, ElementLosses};
use crate::spec::FilterSpec;
use ipass_explore::{explore_fn, Axis, Exploration, ExploreError, Levels, SamplerSpec, Sense};
use ipass_sim::Executor;
use ipass_units::Frequency;

/// Explore a bandpass design family over element quality factors:
/// a full grid over `q_inductor` × `q_capacitor`, evaluated against
/// `spec`, with the Pareto frontier over *(performance score ↑,
/// Q_L ↓, Q_C ↓)*.
///
/// Evaluations fan out on `executor`; results are identical for any
/// thread count.
///
/// # Errors
///
/// Returns [`ExploreError`] when an axis is degenerate.
///
/// # Examples
///
/// ```
/// use ipass_rf::{q_tradeoff_frontier, Approximation, FilterSpec};
/// use ipass_explore::Levels;
/// use ipass_sim::Executor;
/// use ipass_units::Frequency;
///
/// // The GPS IF filter: 175 MHz, ≤ 3 dB passband loss.
/// let spec = FilterSpec::new("IF filter", Frequency::from_mega(175.0), 3.0);
/// let exploration = q_tradeoff_frontier(
///     &Executor::serial(),
///     &spec,
///     2,
///     Approximation::Chebyshev { ripple_db: 0.5 },
///     Frequency::from_mega(20.0),
///     Levels::linspace(5.0, 60.0, 12),
///     Levels::linspace(40.0, 220.0, 10),
/// )?;
/// assert_eq!(exploration.points.len(), 120);
/// // Some cheap corner of the plane already meets the spec in full.
/// assert!(exploration
///     .frontier
///     .members()
///     .iter()
///     .any(|m| m.objectives[0] == 1.0));
/// # Ok::<(), ipass_explore::ExploreError>(())
/// ```
pub fn q_tradeoff_frontier(
    executor: &Executor,
    spec: &FilterSpec,
    order: usize,
    approximation: Approximation,
    bandwidth: Frequency,
    q_inductor: Levels,
    q_capacitor: Levels,
) -> Result<Exploration, ExploreError> {
    let axes = [
        Axis::new("inductor Q", q_inductor),
        Axis::new("capacitor Q", q_capacitor),
    ];
    let objectives = [
        ("performance score".to_string(), Sense::Maximize),
        ("inductor Q (technology cost)".to_string(), Sense::Minimize),
        ("capacitor Q (technology cost)".to_string(), Sense::Minimize),
    ];
    explore_fn(executor, &axes, &SamplerSpec::Grid, &objectives, |_, c| {
        let design = bandpass(
            order,
            approximation,
            spec.passband_center(),
            bandwidth,
            50.0,
            ElementLosses::q(c[0], c[1]),
        );
        let score = spec.evaluate(design.ladder()).performance_score();
        Ok(vec![score, c[0], c[1]])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn if_spec() -> FilterSpec {
        FilterSpec::new("IF filter", Frequency::from_mega(175.0), 3.0)
    }

    fn explore(executor: &Executor) -> Exploration {
        q_tradeoff_frontier(
            executor,
            &if_spec(),
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            Frequency::from_mega(20.0),
            Levels::linspace(5.0, 60.0, 12),
            Levels::linspace(40.0, 220.0, 10),
        )
        .unwrap()
    }

    #[test]
    fn frontier_prices_performance_in_element_quality() {
        let exploration = explore(&Executor::new(4));
        // The paper's anchor points: integrated-grade elements miss the
        // spec, SMD-grade elements meet it.
        let score_at = |ql: f64, qc: f64| {
            exploration
                .points
                .iter()
                .find(|p| (p.coords[0] - ql).abs() < 2.6 && (p.coords[1] - qc).abs() < 11.0)
                .expect("grid covers the anchor")
                .objectives[0]
        };
        assert!(score_at(14.0, 95.0) < 0.7);
        assert_eq!(score_at(45.0, 200.0), 1.0);
        // The frontier spans the trade: a full-score member (quality
        // bought performance) and the rock-bottom quality corner (the
        // cheapest technology, whatever it scores).
        let members = exploration.frontier.members();
        assert!(members.iter().any(|m| m.objectives[0] == 1.0));
        assert!(members
            .iter()
            .any(|m| m.coords[0] == 5.0 && m.coords[1] == 40.0));
        // Dominated interior exists: the full grid is NOT all frontier.
        assert!(members.len() < exploration.points.len());
    }

    #[test]
    fn results_do_not_depend_on_threads() {
        let a = explore(&Executor::serial());
        let b = explore(&Executor::new(8));
        assert_eq!(a.points, b.points);
        assert_eq!(a.frontier, b.frontier);
    }
}
