//! Two-port networks: ABCD (chain) matrices, S-parameters and ladder
//! networks.

use crate::complex::{Complex, DualComplex};
use crate::elements::Immittance;
use ipass_units::{voltage_ratio_to_db, Frequency};
use std::fmt;
use std::ops::Mul;

/// An ABCD (chain) matrix.
///
/// Cascading networks multiplies their ABCD matrices; reciprocal
/// networks satisfy `AD − BC = 1`.
///
/// # Examples
///
/// ```
/// use ipass_rf::{Abcd, Complex};
///
/// let series_50 = Abcd::series_z(Complex::real(50.0));
/// let shunt_50 = Abcd::shunt_y(Complex::real(1.0 / 50.0));
/// let l_section = series_50 * shunt_50;
/// assert!((l_section.determinant() - Complex::ONE).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Abcd {
    /// Voltage ratio term.
    pub a: Complex,
    /// Transfer impedance term (Ω).
    pub b: Complex,
    /// Transfer admittance term (S).
    pub c: Complex,
    /// Current ratio term.
    pub d: Complex,
}

impl Abcd {
    /// The identity (a through-connection).
    pub const IDENTITY: Abcd = Abcd {
        a: Complex::ONE,
        b: Complex::ZERO,
        c: Complex::ZERO,
        d: Complex::ONE,
    };

    /// A series impedance `z`.
    pub fn series_z(z: Complex) -> Abcd {
        Abcd {
            a: Complex::ONE,
            b: z,
            c: Complex::ZERO,
            d: Complex::ONE,
        }
    }

    /// A shunt admittance `y`.
    pub fn shunt_y(y: Complex) -> Abcd {
        Abcd {
            a: Complex::ONE,
            b: Complex::ZERO,
            c: y,
            d: Complex::ONE,
        }
    }

    /// An ideal transformer with turns ratio `n` (port1:port2 = n:1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not finite.
    pub fn transformer(n: f64) -> Abcd {
        assert!(
            n.is_finite() && n != 0.0,
            "turns ratio must be finite and non-zero"
        );
        Abcd {
            a: Complex::real(n),
            b: Complex::ZERO,
            c: Complex::ZERO,
            d: Complex::real(1.0 / n),
        }
    }

    /// The determinant `AD − BC` (1 for reciprocal networks).
    pub fn determinant(&self) -> Complex {
        self.a * self.d - self.b * self.c
    }

    /// Input impedance when port 2 is terminated with `z_load`.
    pub fn input_impedance(&self, z_load: Complex) -> Complex {
        (self.a * z_load + self.b) / (self.c * z_load + self.d)
    }

    /// Convert to S-parameters in a real reference impedance `z0`.
    ///
    /// # Panics
    ///
    /// Panics if `z0` is not a positive finite number.
    pub fn to_s_params(&self, z0: f64) -> SParams {
        self.to_s_params_between(z0, z0)
    }

    /// Convert to S-parameters with different real reference impedances at
    /// the two ports (Frickey 1994, real-reference case). `|S21|²` is then
    /// the transducer power gain relative to the maximum transfer between
    /// the unequal terminations.
    ///
    /// # Panics
    ///
    /// Panics if either reference is not a positive finite number.
    pub fn to_s_params_between(&self, z_source: f64, z_load: f64) -> SParams {
        assert!(
            z_source.is_finite() && z_source > 0.0,
            "reference impedance must be positive, got {z_source}"
        );
        assert!(
            z_load.is_finite() && z_load > 0.0,
            "reference impedance must be positive, got {z_load}"
        );
        let zs = Complex::real(z_source);
        let zl = Complex::real(z_load);
        let root = (z_source * z_load).sqrt();
        let denom = self.a * zl + self.b + self.c * zs * zl + self.d * zs;
        SParams {
            s11: (self.a * zl + self.b - self.c * zs * zl - self.d * zs) / denom,
            s12: (self.determinant() * (2.0 * root)) / denom,
            s21: Complex::real(2.0 * root) / denom,
            s22: (self.b + self.d * zs - self.a * zl - self.c * zs * zl) / denom,
        }
    }
}

impl Mul for Abcd {
    type Output = Abcd;

    /// Cascade: `self` followed by `rhs`.
    fn mul(self, rhs: Abcd) -> Abcd {
        Abcd {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }
}

impl Default for Abcd {
    fn default() -> Abcd {
        Abcd::IDENTITY
    }
}

/// Scattering parameters of a two-port in a real reference impedance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SParams {
    /// Input reflection.
    pub s11: Complex,
    /// Reverse transmission.
    pub s12: Complex,
    /// Forward transmission.
    pub s21: Complex,
    /// Output reflection.
    pub s22: Complex,
}

impl SParams {
    /// Insertion loss in dB (positive for loss): `−20·log₁₀|S21|`.
    pub fn insertion_loss_db(&self) -> f64 {
        -voltage_ratio_to_db(self.s21.norm())
    }

    /// Return loss in dB (positive): `−20·log₁₀|S11|`.
    pub fn return_loss_db(&self) -> f64 {
        -voltage_ratio_to_db(self.s11.norm())
    }

    /// Attenuation at this frequency, alias of insertion loss.
    pub fn attenuation_db(&self) -> f64 {
        self.insertion_loss_db()
    }

    /// Whether the two-port is passive at this point
    /// (`|S11|² + |S21|² ≤ 1`, with slack for rounding).
    pub fn is_passive(&self) -> bool {
        self.s11.norm_sqr() + self.s21.norm_sqr() <= 1.0 + 1e-9
    }
}

/// A branch of a ladder network.
#[derive(Debug, Clone, PartialEq)]
pub enum Branch {
    /// An impedance in the series arm.
    Series(Immittance),
    /// An immittance from the line to ground.
    Shunt(Immittance),
}

impl Branch {
    /// The branch's ABCD matrix at `f`.
    pub fn abcd(&self, f: Frequency) -> Abcd {
        match self {
            Branch::Series(imm) => Abcd::series_z(imm.impedance(f)),
            Branch::Shunt(imm) => Abcd::shunt_y(imm.admittance(f)),
        }
    }

    /// The immittance inside the branch.
    pub fn immittance(&self) -> &Immittance {
        match self {
            Branch::Series(imm) | Branch::Shunt(imm) => imm,
        }
    }

    /// The branch's ABCD matrix at `f` as duals over ω.
    fn abcd_dw(&self, f: Frequency) -> AbcdDw {
        match self {
            Branch::Series(imm) => AbcdDw {
                a: DualComplex::constant(Complex::ONE),
                b: imm.impedance_dw(f),
                c: DualComplex::ZERO,
                d: DualComplex::constant(Complex::ONE),
            },
            Branch::Shunt(imm) => AbcdDw {
                a: DualComplex::constant(Complex::ONE),
                b: DualComplex::ZERO,
                c: imm.admittance_dw(f),
                d: DualComplex::constant(Complex::ONE),
            },
        }
    }
}

/// An ABCD matrix of [`DualComplex`] entries: the chain matrix together
/// with its exact derivative with respect to angular frequency.
#[derive(Debug, Clone, Copy)]
struct AbcdDw {
    a: DualComplex,
    b: DualComplex,
    c: DualComplex,
    d: DualComplex,
}

impl AbcdDw {
    const IDENTITY: AbcdDw = AbcdDw {
        a: DualComplex {
            val: Complex::ONE,
            dw: Complex::ZERO,
        },
        b: DualComplex::ZERO,
        c: DualComplex::ZERO,
        d: DualComplex {
            val: Complex::ONE,
            dw: Complex::ZERO,
        },
    };

    /// Cascade: `self` followed by `rhs`, with the product rule applied
    /// entry-wise by the dual arithmetic.
    fn cascade(self, rhs: AbcdDw) -> AbcdDw {
        AbcdDw {
            a: self.a * rhs.a + self.b * rhs.c,
            b: self.a * rhs.b + self.b * rhs.d,
            c: self.c * rhs.a + self.d * rhs.c,
            d: self.c * rhs.b + self.d * rhs.d,
        }
    }
}

/// A doubly-terminated ladder network (the canonical filter structure).
///
/// # Examples
///
/// ```
/// use ipass_rf::{Branch, Immittance, Ladder, Loss};
/// use ipass_units::{Capacitance, Frequency, Inductance};
///
/// // A one-pole RC low-pass: 50Ω system, shunt 100 pF.
/// let ladder = Ladder::new(
///     vec![Branch::Shunt(Immittance::capacitor(
///         Capacitance::from_pico(100.0),
///         Loss::Ideal,
///     ))],
///     50.0,
///     50.0,
/// );
/// let low = ladder.insertion_loss_db(Frequency::from_mega(1.0));
/// let high = ladder.insertion_loss_db(Frequency::from_mega(1000.0));
/// assert!(low < 1.0 && high > 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder {
    branches: Vec<Branch>,
    source_ohms: f64,
    load_ohms: f64,
}

impl Ladder {
    /// Create a ladder between real terminations.
    ///
    /// # Panics
    ///
    /// Panics if either termination is not a positive finite resistance.
    pub fn new(branches: Vec<Branch>, source_ohms: f64, load_ohms: f64) -> Ladder {
        assert!(
            source_ohms.is_finite() && source_ohms > 0.0,
            "source termination must be positive, got {source_ohms}"
        );
        assert!(
            load_ohms.is_finite() && load_ohms > 0.0,
            "load termination must be positive, got {load_ohms}"
        );
        Ladder {
            branches,
            source_ohms,
            load_ohms,
        }
    }

    /// The branches, source to load.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Source termination in Ω.
    pub fn source_ohms(&self) -> f64 {
        self.source_ohms
    }

    /// Load termination in Ω.
    pub fn load_ohms(&self) -> f64 {
        self.load_ohms
    }

    /// Total primitive element count.
    pub fn element_count(&self) -> usize {
        self.branches
            .iter()
            .map(|b| b.immittance().element_count())
            .sum()
    }

    /// The cascade ABCD matrix at `f`.
    pub fn abcd(&self, f: Frequency) -> Abcd {
        self.branches
            .iter()
            .fold(Abcd::IDENTITY, |acc, b| acc * b.abcd(f))
    }

    /// S-parameters at `f`, referenced to the (possibly unequal) source
    /// and load terminations.
    pub fn s_params(&self, f: Frequency) -> SParams {
        self.abcd(f)
            .to_s_params_between(self.source_ohms, self.load_ohms)
    }

    /// The S21 denominator `A·Zl + B + C·Zs·Zl + D·Zs` at `f` with its
    /// exact ω-derivative.
    ///
    /// Because `S21 = 2√(Zs·Zl)/denom` with a real, frequency-independent
    /// numerator, the entire phase of S21 is `−arg(denom)`, so the group
    /// delay `τ = −d arg(S21)/dω` is exactly `Im(denom′/denom)`.
    pub(crate) fn s21_denominator_dw(&self, f: Frequency) -> DualComplex {
        let m = self
            .branches
            .iter()
            .fold(AbcdDw::IDENTITY, |acc, b| acc.cascade(b.abcd_dw(f)));
        let zs = Complex::real(self.source_ohms);
        let zl = Complex::real(self.load_ohms);
        m.a * zl + m.b + m.c * (zs * zl) + m.d * zs
    }

    /// Insertion loss in dB at `f` (relative to the maximum power
    /// transfer between the terminations).
    pub fn insertion_loss_db(&self, f: Frequency) -> f64 {
        self.s_params(f).insertion_loss_db()
    }

    /// Sweep the response over a frequency grid.
    pub fn sweep(&self, freqs: &[Frequency]) -> Vec<(Frequency, SParams)> {
        freqs.iter().map(|&f| (f, self.s_params(f))).collect()
    }
}

impl fmt::Display for Ladder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ladder {}Ω → {} branches → {}Ω",
            self.source_ohms,
            self.branches.len(),
            self.load_ohms
        )
    }
}

/// A linearly spaced frequency grid, inclusive of both ends.
///
/// # Panics
///
/// Panics if `n < 2` or the endpoints are not ordered.
///
/// # Examples
///
/// ```
/// use ipass_rf::linspace;
/// use ipass_units::Frequency;
///
/// let grid = linspace(Frequency::from_mega(100.0), Frequency::from_mega(200.0), 5);
/// assert_eq!(grid.len(), 5);
/// assert!((grid[2].megahertz() - 150.0).abs() < 1e-9);
/// ```
pub fn linspace(start: Frequency, stop: Frequency, n: usize) -> Vec<Frequency> {
    assert!(n >= 2, "need at least two grid points, got {n}");
    assert!(
        stop.hertz() > start.hertz(),
        "stop must exceed start ({start} vs {stop})"
    );
    (0..n)
        .map(|i| start.lerp(stop, i as f64 / (n - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::Loss;
    use ipass_units::{Capacitance, Inductance, Resistance};
    use proptest::prelude::*;

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    #[test]
    fn identity_is_transparent() {
        let s = Abcd::IDENTITY.to_s_params(50.0);
        assert!(s.s11.norm() < 1e-12);
        assert!((s.s21 - Complex::ONE).norm() < 1e-12);
        assert!(s.insertion_loss_db().abs() < 1e-9);
        assert_eq!(Abcd::default(), Abcd::IDENTITY);
    }

    #[test]
    fn matched_series_z0_attenuates_6db() {
        // A series 2×Z0 resistor in a Z0 system: S21 = Z0/(Z0 + Z/2)…
        // classic result: series 100Ω in 50Ω system → S21 = 0.5 → 6.02 dB.
        let s = Abcd::series_z(Complex::real(100.0)).to_s_params(50.0);
        assert!((s.insertion_loss_db() - 6.0206).abs() < 1e-3);
        assert!(s.is_passive());
    }

    #[test]
    fn cascade_matches_matrix_product() {
        let z = Complex::new(10.0, 25.0);
        let y = Complex::new(0.001, -0.01);
        let cascade = Abcd::series_z(z) * Abcd::shunt_y(y);
        assert!((cascade.a - (Complex::ONE + z * y)).norm() < 1e-12);
        assert!((cascade.b - z).norm() < 1e-12);
        assert!((cascade.c - y).norm() < 1e-12);
    }

    #[test]
    fn input_impedance_of_shorted_series_z() {
        let z = Complex::new(5.0, 15.0);
        let zin = Abcd::series_z(z).input_impedance(Complex::ZERO);
        assert!((zin - z).norm() < 1e-12);
    }

    #[test]
    fn transformer_scales_impedance() {
        let t = Abcd::transformer(2.0);
        let zin = t.input_impedance(Complex::real(50.0));
        assert!((zin - Complex::real(200.0)).norm() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "turns ratio")]
    fn zero_turns_ratio_rejected() {
        let _ = Abcd::transformer(0.0);
    }

    #[test]
    #[should_panic(expected = "reference impedance")]
    fn negative_z0_rejected() {
        let _ = Abcd::IDENTITY.to_s_params(-50.0);
    }

    #[test]
    fn lossless_lc_conserves_power() {
        let ladder = Ladder::new(
            vec![
                Branch::Series(Immittance::inductor(
                    Inductance::from_nano(80.0),
                    Loss::Ideal,
                )),
                Branch::Shunt(Immittance::capacitor(
                    Capacitance::from_pico(30.0),
                    Loss::Ideal,
                )),
            ],
            50.0,
            50.0,
        );
        for f in linspace(mhz(10.0), mhz(2000.0), 40) {
            let s = ladder.s_params(f);
            let sum = s.s11.norm_sqr() + s.s21.norm_sqr();
            assert!((sum - 1.0).abs() < 1e-9, "power sum {sum} at {f}");
        }
    }

    #[test]
    fn lossy_network_dissipates() {
        let ladder = Ladder::new(
            vec![Branch::Series(Immittance::inductor(
                Inductance::from_nano(80.0),
                Loss::Q(10.0),
            ))],
            50.0,
            50.0,
        );
        let s = ladder.s_params(mhz(500.0));
        assert!(s.s11.norm_sqr() + s.s21.norm_sqr() < 1.0);
        assert!(s.is_passive());
    }

    #[test]
    fn unequal_terminations_have_zero_loss_at_match() {
        // An ideal L-match from 50Ω to 200Ω at f0 should show ~0 dB IL at f0.
        // L-section: series L, shunt C (load side), matching 50 → 200.
        let f0 = mhz(1000.0);
        let w = f0.angular();
        let q = (200.0f64 / 50.0 - 1.0).sqrt();
        let xs = q * 50.0;
        let xp = 200.0 / q;
        let ladder = Ladder::new(
            vec![
                Branch::Series(Immittance::inductor(Inductance::new(xs / w), Loss::Ideal)),
                Branch::Shunt(Immittance::capacitor(
                    Capacitance::new(1.0 / (w * xp)),
                    Loss::Ideal,
                )),
            ],
            50.0,
            200.0,
        );
        let il = ladder.insertion_loss_db(f0);
        assert!(il.abs() < 0.01, "insertion loss {il} dB at match");
    }

    #[test]
    fn ladder_accessors() {
        let ladder = Ladder::new(
            vec![Branch::Shunt(Immittance::resistor(Resistance::new(100.0)))],
            50.0,
            75.0,
        );
        assert_eq!(ladder.branches().len(), 1);
        assert_eq!(ladder.source_ohms(), 50.0);
        assert_eq!(ladder.load_ohms(), 75.0);
        assert_eq!(ladder.element_count(), 1);
        assert!(ladder.to_string().contains("1 branches"));
        assert_eq!(ladder.sweep(&[mhz(1.0), mhz(2.0)]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "source termination")]
    fn bad_termination_rejected() {
        let _ = Ladder::new(vec![], 0.0, 50.0);
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(mhz(1.0), mhz(2.0), 3);
        assert!((g[0].megahertz() - 1.0).abs() < 1e-12);
        assert!((g[2].megahertz() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_needs_two_points() {
        let _ = linspace(mhz(1.0), mhz(2.0), 1);
    }

    proptest! {
        #[test]
        fn reciprocity_of_rlc_ladders(
            l_nh in 1.0f64..500.0,
            c_pf in 1.0f64..500.0,
            r in 1.0f64..500.0,
            f_mhz in 1.0f64..3000.0,
        ) {
            let ladder = Ladder::new(
                vec![
                    Branch::Series(Immittance::inductor(Inductance::from_nano(l_nh), Loss::Ideal)),
                    Branch::Shunt(Immittance::capacitor(Capacitance::from_pico(c_pf), Loss::Ideal)),
                    Branch::Series(Immittance::resistor(Resistance::new(r))),
                ],
                50.0,
                50.0,
            );
            let abcd = ladder.abcd(mhz(f_mhz));
            let det = abcd.determinant();
            // Relative tolerance: the determinant's rounding error scales
            // with the magnitude of the matrix entries.
            let scale = 1.0 + abcd.a.norm() * abcd.d.norm() + abcd.b.norm() * abcd.c.norm();
            prop_assert!((det - Complex::ONE).norm() < 1e-12 * scale);
            // Reciprocal ⇒ S12 = S21.
            let s = ladder.s_params(mhz(f_mhz));
            prop_assert!((s.s12 - s.s21).norm() < 1e-9 * scale);
        }

        #[test]
        fn passivity_of_lossy_ladders(
            l_nh in 1.0f64..500.0,
            c_pf in 1.0f64..500.0,
            q in 2.0f64..200.0,
            f_mhz in 1.0f64..3000.0,
        ) {
            let ladder = Ladder::new(
                vec![
                    Branch::Series(Immittance::inductor(Inductance::from_nano(l_nh), Loss::Q(q))),
                    Branch::Shunt(Immittance::capacitor(Capacitance::from_pico(c_pf), Loss::Q(q))),
                ],
                50.0,
                50.0,
            );
            prop_assert!(ladder.s_params(mhz(f_mhz)).is_passive());
        }
    }
}
