//! Filter design: low-pass prototypes transformed to concrete ladders.

use crate::elements::{Immittance, Loss};
use crate::prototype::{butterworth_g, chebyshev_g, chebyshev_load_g};
use crate::twoport::{Branch, Ladder};
use ipass_units::{Capacitance, Frequency, Inductance};
use std::fmt;

/// Loss models applied to the filter's reactive elements.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ElementLosses {
    /// Loss model for every inductor.
    pub inductor: Loss,
    /// Loss model for every capacitor.
    pub capacitor: Loss,
}

impl ElementLosses {
    /// Lossless elements.
    pub fn ideal() -> ElementLosses {
        ElementLosses::default()
    }

    /// Constant unloaded Qs for inductors and capacitors.
    pub fn q(q_l: f64, q_c: f64) -> ElementLosses {
        ElementLosses {
            inductor: Loss::Q(q_l),
            capacitor: Loss::Q(q_c),
        }
    }
}

/// The approximation family of a filter response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approximation {
    /// Maximally flat passband.
    Butterworth,
    /// Equal-ripple passband with the given ripple (dB).
    Chebyshev {
        /// Passband ripple in dB.
        ripple_db: f64,
    },
}

impl Approximation {
    /// The prototype g-values and load termination (crate-internal).
    pub(crate) fn g_values_pub(self, order: usize) -> (Vec<f64>, f64) {
        self.g_values(order)
    }

    fn g_values(self, order: usize) -> (Vec<f64>, f64) {
        match self {
            Approximation::Butterworth => (butterworth_g(order), 1.0),
            Approximation::Chebyshev { ripple_db } => (
                chebyshev_g(order, ripple_db),
                chebyshev_load_g(order, ripple_db),
            ),
        }
    }
}

/// A designed bandpass filter: the ladder plus its design parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BandpassDesign {
    ladder: Ladder,
    f0: Frequency,
    bandwidth: Frequency,
    order: usize,
}

impl BandpassDesign {
    /// The realized ladder network.
    pub fn ladder(&self) -> &Ladder {
        &self.ladder
    }

    /// Center frequency.
    pub fn center(&self) -> Frequency {
        self.f0
    }

    /// Design bandwidth.
    pub fn bandwidth(&self) -> Frequency {
        self.bandwidth
    }

    /// Fractional bandwidth `Δ = BW/f0`.
    pub fn fractional_bandwidth(&self) -> f64 {
        self.bandwidth.hertz() / self.f0.hertz()
    }

    /// Filter order (number of resonators).
    pub fn order(&self) -> usize {
        self.order
    }

    /// Lower and upper band edges.
    pub fn band_edges(&self) -> (Frequency, Frequency) {
        (
            Frequency::new(self.f0.hertz() - self.bandwidth.hertz() / 2.0),
            Frequency::new(self.f0.hertz() + self.bandwidth.hertz() / 2.0),
        )
    }
}

impl fmt::Display for BandpassDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} bandpass at {} (BW {}, {} elements)",
            self.order,
            self.f0,
            self.bandwidth,
            self.ladder.element_count()
        )
    }
}

fn check_bandpass_args(f0: Frequency, bandwidth: Frequency, z0: f64, order: usize) {
    assert!(order >= 1, "filter order must be at least 1");
    assert!(f0.hertz() > 0.0, "center frequency must be positive");
    assert!(
        bandwidth.hertz() > 0.0 && bandwidth.hertz() < 2.0 * f0.hertz(),
        "bandwidth must be positive and below 2·f0"
    );
    assert!(
        z0 > 0.0 && z0.is_finite(),
        "system impedance must be positive"
    );
}

/// Design a conventional ladder bandpass filter (shunt resonator first)
/// by the standard low-pass → band-pass transformation.
///
/// Odd orders see equal terminations; even Chebyshev orders get the
/// prototype's mismatched load (`gₙ₊₁·Z0`).
///
/// # Panics
///
/// Panics on non-positive order, frequencies, bandwidth or impedance
/// (degenerate designs are programming errors, not data).
///
/// # Examples
///
/// ```
/// use ipass_rf::{bandpass, Approximation, ElementLosses};
/// use ipass_units::Frequency;
///
/// // The GPS IF filter: 2-pole Chebyshev at 175 MHz, 20 MHz wide.
/// let f0 = Frequency::from_mega(175.0);
/// let design = bandpass(
///     2,
///     Approximation::Chebyshev { ripple_db: 0.5 },
///     f0,
///     Frequency::from_mega(20.0),
///     50.0,
///     ElementLosses::ideal(),
/// );
/// // Lossless: midband insertion loss ≈ 0 dB.
/// assert!(design.ladder().insertion_loss_db(f0) < 0.6);
/// // Far out of band: strong rejection.
/// assert!(design.ladder().insertion_loss_db(Frequency::from_mega(400.0)) > 25.0);
/// ```
pub fn bandpass(
    order: usize,
    approximation: Approximation,
    f0: Frequency,
    bandwidth: Frequency,
    z0: f64,
    losses: ElementLosses,
) -> BandpassDesign {
    check_bandpass_args(f0, bandwidth, z0, order);
    let (g, g_load) = approximation.g_values(order);
    let w0 = f0.angular();
    let delta = bandwidth.hertz() / f0.hertz();

    let mut branches = Vec::with_capacity(order);
    for (k, &gk) in g.iter().enumerate() {
        if k % 2 == 0 {
            // Shunt parallel resonator.
            let c = Capacitance::new(gk / (delta * z0 * w0));
            let l = Inductance::new(delta * z0 / (gk * w0));
            branches.push(Branch::Shunt(Immittance::parallel(vec![
                Immittance::capacitor(c, losses.capacitor),
                Immittance::inductor(l, losses.inductor),
            ])));
        } else {
            // Series series-resonator.
            let l = Inductance::new(gk * z0 / (delta * w0));
            let c = Capacitance::new(delta / (gk * z0 * w0));
            branches.push(Branch::Series(Immittance::series(vec![
                Immittance::inductor(l, losses.inductor),
                Immittance::capacitor(c, losses.capacitor),
            ])));
        }
    }
    let ladder = Ladder::new(branches, z0, z0 * g_load);
    BandpassDesign {
        ladder,
        f0,
        bandwidth,
        order,
    }
}

/// Design an image-reject ("Cauer-type") bandpass: an odd-order Chebyshev
/// bandpass whose *first* shunt resonator is replaced by a *trap*
/// resonator that places a transmission zero at `f_zero` (the image
/// frequency), giving the elliptic-style finite-zero response the paper's
/// LNA output filter uses.
///
/// The trap's shunt L is replaced by a series L′C′ branch resonant at
/// `f_zero` that presents the same effective inductance at `f0`
/// (`L′ = L/(1 − (f_zero/f0)²)` for a zero below the band), so the
/// passband is preserved while `f_zero` is shorted to ground. Only one
/// resonator carries the trap: the enlarged trap inductor has a
/// proportionally larger loss resistance, so trapping every shunt branch
/// would triple the midband loss with low-Q integrated spirals.
///
/// # Panics
///
/// Panics on degenerate parameters, on even orders, or when `f_zero`
/// falls inside the passband.
///
/// # Examples
///
/// ```
/// use ipass_rf::{image_reject_bandpass, ElementLosses};
/// use ipass_units::Frequency;
///
/// // The GPS LNA output filter: pass 1.575 GHz, kill the 1.225 GHz image.
/// let design = image_reject_bandpass(
///     3,
///     0.2,
///     Frequency::from_giga(1.575),
///     Frequency::from_giga(1.225),
///     Frequency::from_mega(470.0),
///     50.0,
///     ElementLosses::ideal(),
/// );
/// let at_image = design.ladder().insertion_loss_db(Frequency::from_giga(1.225));
/// let at_pass = design.ladder().insertion_loss_db(Frequency::from_giga(1.575));
/// assert!(at_image > 40.0, "image rejection {at_image} dB");
/// assert!(at_pass < 1.0, "passband loss {at_pass} dB");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn image_reject_bandpass(
    order: usize,
    ripple_db: f64,
    f0: Frequency,
    f_zero: Frequency,
    bandwidth: Frequency,
    z0: f64,
    losses: ElementLosses,
) -> BandpassDesign {
    check_bandpass_args(f0, bandwidth, z0, order);
    assert!(order % 2 == 1, "image-reject design needs an odd order");
    let (f_lo, f_hi) = (
        f0.hertz() - bandwidth.hertz() / 2.0,
        f0.hertz() + bandwidth.hertz() / 2.0,
    );
    assert!(
        f_zero.hertz() < f_lo || f_zero.hertz() > f_hi,
        "transmission zero must lie outside the passband"
    );

    let g = chebyshev_g(order, ripple_db);
    let w0 = f0.angular();
    let wz = f_zero.angular();
    let delta = bandwidth.hertz() / f0.hertz();
    let detune = 1.0 - (wz * wz) / (w0 * w0); // >0 for a zero below band

    let mut branches = Vec::with_capacity(order);
    for (k, &gk) in g.iter().enumerate() {
        if k == 0 {
            // Shunt resonator with trap: C2 ∥ (L1 + C1).
            let c2 = Capacitance::new(gk / (delta * z0 * w0));
            let l_eff = delta * z0 / (gk * w0);
            let l1 = Inductance::new(l_eff / detune);
            let c1 = Capacitance::new(1.0 / (wz * wz * l1.henries()));
            branches.push(Branch::Shunt(Immittance::parallel(vec![
                Immittance::capacitor(c2, losses.capacitor),
                Immittance::series(vec![
                    Immittance::inductor(l1, losses.inductor),
                    Immittance::capacitor(c1, losses.capacitor),
                ]),
            ])));
        } else if k % 2 == 0 {
            // Plain shunt parallel resonator.
            let c = Capacitance::new(gk / (delta * z0 * w0));
            let l = Inductance::new(delta * z0 / (gk * w0));
            branches.push(Branch::Shunt(Immittance::parallel(vec![
                Immittance::capacitor(c, losses.capacitor),
                Immittance::inductor(l, losses.inductor),
            ])));
        } else {
            let l = Inductance::new(gk * z0 / (delta * w0));
            let c = Capacitance::new(delta / (gk * z0 * w0));
            branches.push(Branch::Series(Immittance::series(vec![
                Immittance::inductor(l, losses.inductor),
                Immittance::capacitor(c, losses.capacitor),
            ])));
        }
    }
    let ladder = Ladder::new(branches, z0, z0);
    BandpassDesign {
        ladder,
        f0,
        bandwidth,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twoport::linspace;

    fn ghz(v: f64) -> Frequency {
        Frequency::from_giga(v)
    }

    fn mhz(v: f64) -> Frequency {
        Frequency::from_mega(v)
    }

    #[test]
    fn lossless_chebyshev_respects_ripple() {
        let d = bandpass(
            3,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::ideal(),
        );
        // Inside the band the loss never exceeds the ripple (plus margin
        // for numerics). The LP→BP transform maps the band edges to
        // geometrically symmetric points: f·(√(1+(Δ/2)²) ± Δ/2).
        let f0 = 175.0e6;
        let delta: f64 = 20.0 / 175.0;
        let scale = (1.0 + delta * delta / 4.0).sqrt();
        let lo = Frequency::new(f0 * (scale - delta / 2.0));
        let hi = Frequency::new(f0 * (scale + delta / 2.0));
        for f in linspace(lo, hi, 41) {
            let il = d.ladder().insertion_loss_db(f);
            assert!(il < 0.55, "{il} dB at {f}");
        }
    }

    #[test]
    fn bandpass_is_geometric_symmetric() {
        // The LP→BP transform is symmetric about f0 in geometric frequency.
        let d = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::ideal(),
        );
        let f0 = 175.0e6;
        let factor = 1.3;
        let il_up = d.ladder().insertion_loss_db(Frequency::new(f0 * factor));
        let il_dn = d.ladder().insertion_loss_db(Frequency::new(f0 / factor));
        assert!((il_up - il_dn).abs() < 0.05, "{il_up} vs {il_dn}");
    }

    #[test]
    fn finite_q_creates_midband_loss_matching_cohn_estimate() {
        let q_l = 12.0;
        let q_c = 95.0;
        let d = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::q(q_l, q_c),
        );
        let measured = d.ladder().insertion_loss_db(mhz(175.0));
        let qu = crate::prototype::combined_qu(q_l, q_c);
        let g = chebyshev_g(2, 0.5);
        let estimate = crate::prototype::midband_loss_estimate_db(&g, d.fractional_bandwidth(), qu);
        assert!(
            (measured - estimate).abs() < 0.25 * estimate,
            "measured {measured} vs Cohn estimate {estimate}"
        );
    }

    #[test]
    fn butterworth_bandpass_works_too() {
        let d = bandpass(
            3,
            Approximation::Butterworth,
            ghz(1.0),
            mhz(200.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!(d.ladder().insertion_loss_db(ghz(1.0)) < 0.01);
        assert!(d.ladder().insertion_loss_db(ghz(2.0)) > 30.0);
        assert_eq!(d.order(), 3);
    }

    #[test]
    fn even_order_gets_mismatched_load() {
        let d = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!((d.ladder().load_ohms() - 50.0 * 1.9841).abs() < 0.1);
    }

    #[test]
    fn image_reject_zero_is_deep_and_passband_clean() {
        let d = image_reject_bandpass(
            3,
            0.2,
            ghz(1.575),
            ghz(1.225),
            mhz(470.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert!(d.ladder().insertion_loss_db(ghz(1.225)) > 40.0);
        assert!(d.ladder().insertion_loss_db(ghz(1.575)) < 0.5);
        // The zero really is a *finite* transmission zero: rejection at the
        // image exceeds rejection a bit further down.
        let deeper = d.ladder().insertion_loss_db(ghz(1.1));
        assert!(d.ladder().insertion_loss_db(ghz(1.225)) > deeper);
    }

    #[test]
    fn image_reject_with_summit_losses_matches_paper_3db() {
        // §4.1: the integrated LNA output filter "has losses of 3 dB at
        // the GPS signal frequency". SUMMIT-class spirals reach Q ≈ 25 at
        // 1.575 GHz with widened lines ([3]: "High Q Inductors for
        // MCM-Si"); the high-κ capacitors sit near Q ≈ 80.
        let d = image_reject_bandpass(
            3,
            0.2,
            ghz(1.575),
            ghz(1.225),
            mhz(470.0),
            50.0,
            ElementLosses::q(25.0, 80.0),
        );
        let il = d.ladder().insertion_loss_db(ghz(1.575));
        assert!((2.0..4.5).contains(&il), "passband loss {il} dB");
        let rej = d.ladder().insertion_loss_db(ghz(1.225));
        assert!(rej > 20.0, "image rejection {rej} dB");
    }

    #[test]
    #[should_panic(expected = "odd order")]
    fn image_reject_rejects_even_orders() {
        let _ = image_reject_bandpass(
            2,
            0.2,
            ghz(1.575),
            ghz(1.225),
            mhz(470.0),
            50.0,
            ElementLosses::ideal(),
        );
    }

    #[test]
    #[should_panic(expected = "outside the passband")]
    fn image_reject_zero_must_be_out_of_band() {
        let _ = image_reject_bandpass(
            3,
            0.2,
            ghz(1.575),
            ghz(1.5),
            mhz(470.0),
            50.0,
            ElementLosses::ideal(),
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn degenerate_bandwidth_rejected() {
        let _ = bandpass(
            2,
            Approximation::Butterworth,
            mhz(100.0),
            mhz(0.0),
            50.0,
            ElementLosses::ideal(),
        );
    }

    #[test]
    fn design_accessors() {
        let d = bandpass(
            2,
            Approximation::Chebyshev { ripple_db: 0.5 },
            mhz(175.0),
            mhz(20.0),
            50.0,
            ElementLosses::ideal(),
        );
        assert_eq!(d.center(), mhz(175.0));
        assert_eq!(d.bandwidth(), mhz(20.0));
        assert!((d.fractional_bandwidth() - 20.0 / 175.0).abs() < 1e-12);
        let (lo, hi) = d.band_edges();
        assert!((lo.megahertz() - 165.0).abs() < 1e-9);
        assert!((hi.megahertz() - 185.0).abs() < 1e-9);
        assert!(d.to_string().contains("bandpass"));
        assert_eq!(d.ladder().element_count(), 4);
    }
}
