//! The numbers the paper publishes, for paper-vs-measured reporting.

/// Names of the four implementations, in the paper's order.
pub const SOLUTION_NAMES: [&str; 4] = [
    "1: PCB/SMD (reference)",
    "2: MCM-D(Si)/WB/SMD",
    "3: MCM-D(Si)/FC/IP",
    "4: MCM-D(Si)/FC/IP&SMD",
];

/// Fig. 3: area consumed by the build-ups, percent of the PCB reference.
pub const FIG3_AREA_PERCENT: [f64; 4] = [100.0, 79.0, 60.0, 37.0];

/// Fig. 5: final cost, percent of the PCB reference
/// (penalties of 4.7 %, 12.8 % and 5.3 %).
pub const FIG5_COST_PERCENT: [f64; 4] = [100.0, 104.7, 112.8, 105.3];

/// §4.1 / Fig. 6: the performance scores.
pub const PERFORMANCE_SCORES: [f64; 4] = [1.0, 1.0, 0.45, 0.70];

/// Fig. 6: the figures of merit (product of factors).
pub const FIG6_FOM: [f64; 4] = [1.0, 1.2, 0.66, 1.8];

/// Table 2: the SMD placement counts per solution (solution 3 has none).
pub const SMD_COUNTS: [u32; 4] = [112, 112, 0, 12];

/// Table 2: total wire bonds in solution 2.
pub const BOND_COUNT: u32 = 212;

/// Fig. 4's illustrative Monte Carlo outcome: modules shipped and
/// scrapped in the pictured run.
pub const FIG4_SHIPPED: u64 = 7799;
/// Fig. 4: scrapped modules in the pictured run.
pub const FIG4_SCRAPPED: u64 = 208;
/// Fig. 4: units started (shipped + scrapped).
pub const FIG4_STARTED: u64 = FIG4_SHIPPED + FIG4_SCRAPPED;

/// §2: CrSi sheet resistance quoted by the paper (Ω/sq).
pub const CRSI_SHEET_OHM_SQ: f64 = 360.0;

/// §2: capacitance density quoted by the paper (pF/mm²).
pub const CAP_DENSITY_PF_MM2: f64 = 100.0;

/// Table 1 anchor areas (mm²) for the integrated passives.
pub const TABLE1_IP_R_100K_MM2: f64 = 0.25;
/// Table 1: 50 pF integrated capacitor area (mm²).
pub const TABLE1_IP_C_50P_MM2: f64 = 0.3;
/// Table 1: 40 nH integrated inductor area (mm²).
pub const TABLE1_IP_L_40N_MM2: f64 = 1.0;
/// Table 1: SMD filter module area (mm²).
pub const TABLE1_FILTER_SMD_MM2: f64 = 27.5;
/// Table 1: integrated 3-stage filter area (mm²).
pub const TABLE1_FILTER_IP_MM2: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(FIG4_STARTED, 8007);
        assert_eq!(SOLUTION_NAMES.len(), 4);
        // The paper's own FoM arithmetic: perf × (1/size) × (1/cost).
        for i in 0..4 {
            let fom = PERFORMANCE_SCORES[i]
                * (100.0 / FIG3_AREA_PERCENT[i])
                * (100.0 / FIG5_COST_PERCENT[i]);
            assert!(
                (fom - FIG6_FOM[i]).abs() < 0.1,
                "solution {}: fom {} vs published {}",
                i + 1,
                fom,
                FIG6_FOM[i]
            );
        }
    }
}
