//! Table 2: the cost and yield cards of the four implementations.
//!
//! Ambiguities in the published table are resolved as follows (the only
//! reading we found that reproduces Fig. 5's ordering; the ablation
//! benches exercise the alternatives):
//!
//! * **Substrate "yield/cost per cm²"** — the cost is per cm²; the yield
//!   acts twice: as a *fab yield per cm²* that marks up the purchase
//!   price of tested substrates (`cost/y^A`), and as a flat latent-defect
//!   yield caught only at final module test.
//! * **Chip assembly yield** — per reflow pass for the PCB (93.3 % for
//!   the solder joints of both QFPs), per die for MCM bonding
//!   (99 % each ⇒ 98.01 % for the two dies).
//! * **Wire bond / SMD yields** — per machine pass (the 0.01 *cost* is
//!   per bond/placement and multiplies with the counts).

use crate::chipset::Chip;
use ipass_core::{BuildUp, ChipCost, CostInputs, DieAttach, SubstrateTech, YieldBasis};
use ipass_units::{Money, Probability};

fn p(v: f64) -> Probability {
    Probability::clamped(v)
}

/// Number of dies in the chip set (drives the per-die attach yield).
const DIE_COUNT: i32 = 2;

/// The Table 2 card for a build-up.
///
/// # Examples
///
/// ```
/// use ipass_core::BuildUp;
/// use ipass_gps::table2::cost_inputs;
///
/// let card = cost_inputs(&BuildUp::pcb_reference());
/// assert_eq!(card.final_test_cost, ipass_units::Money::new(10.0));
/// assert!(card.packaging.is_none()); // a PCB needs no BGA laminate
/// ```
pub fn cost_inputs(buildup: &BuildUp) -> CostInputs {
    match buildup.substrate() {
        SubstrateTech::Pcb => CostInputs {
            substrate_cost_per_cm2: Money::new(0.1),
            substrate_fab_yield_per_cm2: Some(p(0.9999)),
            substrate_yield: p(0.9999),
            chips: Chip::set()
                .iter()
                .map(|c| ChipCost::new(c.name(), c.packaged_cost(), c.packaged_yield()))
                .collect(),
            chip_attach_cost_per_die: Money::new(0.15),
            chip_attach_yield: p(0.933), // one reflow pass for both QFPs
            wire_bond_cost_per_bond: Money::new(0.01),
            wire_bond_yield: p(0.9999),
            smd_parts_cost_override: Some(Money::new(11.0)),
            smd_attach_cost_per_part: Money::new(0.01),
            smd_attach_yield: p(0.9999),
            packaging: None,
            final_test_cost: Money::new(10.0),
            fault_coverage: p(0.99),
            yield_basis: YieldBasis::PerStep,
        },
        SubstrateTech::McmDSi => {
            let (sub_cost, sub_yield) = if buildup.supports_ip() {
                (Money::new(2.25), p(0.90)) // IP substrate: pricier, riskier
            } else {
                (Money::new(1.75), p(0.99)) // plain MCM-D
            };
            // Packaging gets cheaper as the module shrinks (Table 2:
            // 7.30 / 4.70 / 3.50).
            let packaging_cost = match (buildup.die_attach(), buildup.supports_ip()) {
                (DieAttach::WireBond, _) => Money::new(7.30),
                (DieAttach::FlipChip, true) => {
                    if buildup.passives() == ipass_core::PassivePolicy::Optimized {
                        Money::new(3.50)
                    } else {
                        Money::new(4.70)
                    }
                }
                (DieAttach::FlipChip, false) => Money::new(4.70),
                (DieAttach::Packaged, _) => unreachable!("MCM carries bare dies"),
            };
            // The SMD kit price is quoted in Table 2 for solutions 2 and
            // 4 (8.6 / 2.6); solution 4's matches the BOM's own sum, so
            // only solution 2 needs the override.
            let smd_override = match buildup.passives() {
                ipass_core::PassivePolicy::AllSmd => Some(Money::new(8.6)),
                _ => None,
            };
            CostInputs {
                substrate_cost_per_cm2: sub_cost,
                substrate_fab_yield_per_cm2: Some(sub_yield),
                substrate_yield: sub_yield,
                chips: Chip::set()
                    .iter()
                    .map(|c| ChipCost::new(c.name(), c.bare_cost(), c.bare_yield()))
                    .collect(),
                chip_attach_cost_per_die: Money::new(0.10),
                chip_attach_yield: p(0.99f64.powi(DIE_COUNT)), // per die
                wire_bond_cost_per_bond: Money::new(0.01),
                wire_bond_yield: p(0.9999),
                smd_parts_cost_override: smd_override,
                smd_attach_cost_per_part: Money::new(0.01),
                smd_attach_yield: p(0.9999),
                packaging: Some((packaging_cost, p(0.968))),
                final_test_cost: Money::new(10.0),
                fault_coverage: p(0.99),
                yield_basis: YieldBasis::PerStep,
            }
        }
    }
}

/// Extension helpers on [`BuildUp`] used by the cards.
trait BuildUpExt {
    fn supports_ip(&self) -> bool;
}

impl BuildUpExt for BuildUp {
    fn supports_ip(&self) -> bool {
        self.substrate().supports_integrated_passives()
            && self.passives() != ipass_core::PassivePolicy::AllSmd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_core::PassivePolicy;

    #[test]
    fn solution_cards_follow_table2() {
        let s1 = cost_inputs(&BuildUp::pcb_reference());
        assert_eq!(s1.substrate_cost_per_cm2, Money::new(0.1));
        assert!((s1.chip_attach_yield.value() - 0.933).abs() < 1e-12);
        assert_eq!(s1.smd_parts_cost_override, Some(Money::new(11.0)));
        assert!(s1.packaging.is_none());

        let s2 = cost_inputs(&BuildUp::mcm_wire_bond(PassivePolicy::AllSmd));
        assert_eq!(s2.substrate_cost_per_cm2, Money::new(1.75));
        assert!((s2.substrate_yield.value() - 0.99).abs() < 1e-12);
        assert_eq!(s2.smd_parts_cost_override, Some(Money::new(8.6)));
        assert_eq!(s2.packaging.unwrap().0, Money::new(7.30));

        let s3 = cost_inputs(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        assert_eq!(s3.substrate_cost_per_cm2, Money::new(2.25));
        assert!((s3.substrate_yield.value() - 0.90).abs() < 1e-12);
        assert_eq!(s3.packaging.unwrap().0, Money::new(4.70));
        assert_eq!(s3.smd_parts_cost_override, None);

        let s4 = cost_inputs(&BuildUp::mcm_flip_chip(PassivePolicy::Optimized));
        assert_eq!(s4.packaging.unwrap().0, Money::new(3.50));
        assert_eq!(s4.smd_parts_cost_override, None);
    }

    #[test]
    fn mcm_die_attach_compounds_per_die() {
        let s2 = cost_inputs(&BuildUp::mcm_wire_bond(PassivePolicy::AllSmd));
        assert!((s2.chip_attach_yield.value() - 0.9801).abs() < 1e-12);
    }

    #[test]
    fn bare_dies_on_every_mcm() {
        for b in [
            BuildUp::mcm_wire_bond(PassivePolicy::AllSmd),
            BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated),
            BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
        ] {
            let card = cost_inputs(&b);
            let total: Money = card.chips.iter().map(|c| c.cost).sum();
            assert_eq!(total, Money::new(195.0), "{b}");
        }
    }
}
