//! The GPS analog chain's filters and the §4.1 performance assessment.
//!
//! Three filter functions matter (Fig. 2): the LNA output band-pass at
//! 1.575 GHz (Cauer type, must reject the 1.225 GHz image), the two IF
//! band-passes at 175 MHz (2-pole Tchebyscheff) and the 50 Ω matching
//! networks. Per build-up, each filter is realized with the element
//! quality the chosen technology offers, analyzed, and scored against its
//! spec; the solution's performance figure is the worst filter's score
//! (the weakest link gates the receiver).

use ipass_core::{BuildUp, PassivePolicy};
use ipass_rf::{
    bandpass, image_reject_bandpass, Approximation, BandpassDesign, ElementLosses, FilterSpec,
    StopbandPoint,
};
use ipass_units::Frequency;
use std::fmt;

/// Element quality (unloaded Q) by technology and band.
///
/// * SMD filter modules: dedicated high-Q parts (wire-wound L).
/// * Integrated spirals: Q ≈ 17 at 1.575 GHz but ≈ 13.8 at 175 MHz even
///   with widened lines (`ipass-passives` derives these from conductor
///   loss; see `SpiralInductor`).
/// * Solution 4's hybrid IF filter: SMD multilayer chip inductors
///   (Q ≈ 25 at VHF) with integrated capacitors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyQ {
    /// Inductor unloaded Q at the RF band (1.575 GHz).
    pub l_q_rf: f64,
    /// Inductor unloaded Q at the IF band (175 MHz).
    pub l_q_if: f64,
    /// Capacitor unloaded Q (both bands).
    pub c_q: f64,
}

impl TechnologyQ {
    /// SMD filter modules / discrete high-Q parts.
    pub fn smd_modules() -> TechnologyQ {
        TechnologyQ {
            l_q_rf: 40.0,
            l_q_if: 45.0,
            c_q: 200.0,
        }
    }

    /// Fully integrated thin-film passives.
    pub fn integrated() -> TechnologyQ {
        TechnologyQ {
            l_q_rf: 25.0,
            l_q_if: 13.8,
            c_q: 95.0,
        }
    }

    /// The hybrid of solution 4: SMD multilayer inductors, integrated
    /// capacitors and resistors.
    pub fn hybrid() -> TechnologyQ {
        TechnologyQ {
            l_q_rf: 25.0, // LNA filter stays integrated in solution 4
            l_q_if: 25.0, // SMD multilayer chip inductor at 175 MHz
            c_q: 95.0,
        }
    }

    /// The Q card a build-up's filters see.
    pub fn for_buildup(buildup: &BuildUp) -> TechnologyQ {
        if !buildup.substrate().supports_integrated_passives() {
            return TechnologyQ::smd_modules();
        }
        match buildup.passives() {
            PassivePolicy::AllSmd => TechnologyQ::smd_modules(),
            PassivePolicy::AllIntegrated => TechnologyQ::integrated(),
            PassivePolicy::Optimized => TechnologyQ::hybrid(),
        }
    }
}

/// The GPS signal frequency.
pub fn gps_l1() -> Frequency {
    Frequency::from_giga(1.575)
}

/// The image frequency rejected by the LNA output filter.
pub fn image_frequency() -> Frequency {
    Frequency::from_giga(1.225)
}

/// The intermediate frequency.
pub fn intermediate_frequency() -> Frequency {
    Frequency::from_mega(175.0)
}

/// The LNA output filter spec: ≤4 dB at 1.575 GHz ("losses of 3 dB …
/// meeting the performance specifications"), ≥20 dB at the image.
pub fn lna_filter_spec() -> FilterSpec {
    FilterSpec::new("LNA output BP 1.575 GHz", gps_l1(), 4.0).with_stopband(StopbandPoint {
        frequency: image_frequency(),
        min_attenuation_db: 20.0,
    })
}

/// The IF filter spec: ≤3 dB at 175 MHz.
pub fn if_filter_spec() -> FilterSpec {
    FilterSpec::new("IF BP 175 MHz", intermediate_frequency(), 3.0)
}

/// Design the LNA output image-reject ("Cauer type") filter with the
/// given element quality.
pub fn lna_filter(q: &TechnologyQ) -> BandpassDesign {
    image_reject_bandpass(
        3,
        0.2,
        gps_l1(),
        image_frequency(),
        Frequency::from_mega(470.0),
        50.0,
        ElementLosses::q(q.l_q_rf, q.c_q),
    )
}

/// Design the 2-pole Tchebyscheff IF filter with the given element
/// quality.
pub fn if_filter(q: &TechnologyQ) -> BandpassDesign {
    bandpass(
        2,
        Approximation::Chebyshev { ripple_db: 0.5 },
        intermediate_frequency(),
        Frequency::from_mega(20.0),
        50.0,
        ElementLosses::q(q.l_q_if, q.c_q),
    )
}

/// The per-filter scores and the overall performance of a build-up.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceAssessment {
    /// Build-up name.
    pub buildup: String,
    /// LNA output filter score.
    pub lna_score: f64,
    /// LNA passband insertion loss (dB).
    pub lna_loss_db: f64,
    /// Image rejection achieved (dB).
    pub image_rejection_db: f64,
    /// IF filter score.
    pub if_score: f64,
    /// IF midband insertion loss (dB).
    pub if_loss_db: f64,
    /// Overall performance: the worst filter gates the receiver.
    pub overall: f64,
}

impl fmt::Display for PerformanceAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: LNA {:.2} dB (score {:.2}, image −{:.1} dB), IF {:.2} dB (score {:.2}) → {:.2}",
            self.buildup,
            self.lna_loss_db,
            self.lna_score,
            self.image_rejection_db,
            self.if_loss_db,
            self.if_score,
            self.overall
        )
    }
}

/// Assess a build-up's analog chain (methodology step 2).
///
/// # Examples
///
/// ```
/// use ipass_core::{BuildUp, PassivePolicy};
/// use ipass_gps::filters::assess_performance;
///
/// // The full-IP solution misses the IF loss budget — the paper's 0.45.
/// let sol3 = assess_performance(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
/// assert!(sol3.overall < 0.55 && sol3.overall > 0.35);
///
/// // The SMD reference meets everything.
/// let sol1 = assess_performance(&BuildUp::pcb_reference());
/// assert_eq!(sol1.overall, 1.0);
/// ```
pub fn assess_performance(buildup: &BuildUp) -> PerformanceAssessment {
    let q = TechnologyQ::for_buildup(buildup);
    let lna = lna_filter(&q);
    let lna_report = lna_filter_spec().evaluate(lna.ladder());
    let iff = if_filter(&q);
    let if_report = if_filter_spec().evaluate(iff.ladder());
    let lna_score = lna_report.performance_score();
    let if_score = if_report.performance_score();
    PerformanceAssessment {
        buildup: buildup.to_string(),
        lna_score,
        lna_loss_db: lna_report.passband_loss_db(),
        image_rejection_db: lna.ladder().insertion_loss_db(image_frequency()),
        if_score,
        if_loss_db: if_report.passband_loss_db(),
        overall: lna_score.min(if_score),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn scores_reproduce_section_4_1() {
        let solutions = BuildUp::paper_solutions();
        let scores: Vec<f64> = solutions
            .iter()
            .map(|b| assess_performance(b).overall)
            .collect();
        assert_eq!(scores[0], 1.0);
        assert_eq!(scores[1], 1.0);
        assert!(
            (scores[2] - paper::PERFORMANCE_SCORES[2]).abs() < 0.08,
            "solution 3 score {} vs paper 0.45",
            scores[2]
        );
        assert!(
            (scores[3] - paper::PERFORMANCE_SCORES[3]).abs() < 0.08,
            "solution 4 score {} vs paper 0.70",
            scores[3]
        );
    }

    #[test]
    fn lna_filter_meets_spec_in_every_technology() {
        // §4.1: "The LNA output filter can use integrated passives only …
        // meeting the performance specifications."
        for b in BuildUp::paper_solutions() {
            let a = assess_performance(&b);
            assert_eq!(a.lna_score, 1.0, "{b}: LNA loss {} dB", a.lna_loss_db);
            assert!(
                a.image_rejection_db > 20.0,
                "{b}: rejection {}",
                a.image_rejection_db
            );
        }
    }

    #[test]
    fn integrated_lna_loss_is_about_3db() {
        let a = assess_performance(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        assert!(
            (2.0..4.0).contains(&a.lna_loss_db),
            "LNA loss {} dB should be ≈3 dB",
            a.lna_loss_db
        );
    }

    #[test]
    fn if_filter_is_the_weak_link() {
        let a = assess_performance(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        assert!(a.if_score < a.lna_score);
        assert_eq!(a.overall, a.if_score);
        // "Such a filter would have had higher losses than were allowed."
        assert!(a.if_loss_db > if_filter_spec().max_passband_loss_db());
    }

    #[test]
    fn hybrid_is_borderline_but_better() {
        let sol3 = assess_performance(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        let sol4 = assess_performance(&BuildUp::mcm_flip_chip(PassivePolicy::Optimized));
        assert!(sol4.overall > sol3.overall);
        assert!(sol4.overall < 1.0, "solution 4 keeps a reduced margin");
    }

    #[test]
    fn display_reports_both_filters() {
        let a = assess_performance(&BuildUp::pcb_reference());
        let s = a.to_string();
        assert!(s.contains("LNA") && s.contains("IF"));
    }
}
