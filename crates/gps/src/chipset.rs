//! The GPS chip set: the THOMSON-CSF DETEXIS RF chip and DSP correlator.
//!
//! Areas are Table 1 of the paper. The chip *prices* were confidential
//! (Table 2 prints `XX`, `YY`, `ZZ`, `AA`); the constants here are
//! calibrated so the four final-cost percentages land on the paper's
//! Fig. 5 (100 / 104.7 / 112.8 / 105.3). The calibration is forced by the
//! published structure: with every non-chip cost fixed by Table 2, only a
//! chip set around 200 cost units keeps the MCM variants within the
//! published +4.7…+12.8 % band — i.e. the confidential chip cost must
//! have dominated the module cost, which is exactly what Fig. 5's
//! "thereof: chip cost" bar shows. See EXPERIMENTS.md.

use ipass_units::{Area, Money, Probability};

/// Wire bonds needed by the RF chip (of the paper's 212 total).
pub const RF_BOND_COUNT: u32 = 100;
/// Wire bonds needed by the DSP correlator.
pub const DSP_BOND_COUNT: u32 = 112;

/// One die of the chip set with its Table 1 areas and calibrated costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Chip {
    name: &'static str,
    packaged_area: Area,
    wire_bond_area: Area,
    flip_chip_area: Area,
    bonds: u32,
    packaged_cost: Money,
    bare_cost: Money,
    packaged_yield: Probability,
    bare_yield: Probability,
}

impl Chip {
    /// The RF front-end chip (TQFP 225 mm² / WB 28 mm² / FC 13 mm²).
    pub fn rf() -> Chip {
        Chip {
            name: "RF chip",
            packaged_area: Area::from_mm2(225.0),
            wire_bond_area: Area::from_mm2(28.0),
            flip_chip_area: Area::from_mm2(13.0),
            bonds: RF_BOND_COUNT,
            packaged_cost: Money::new(87.0), // calibrated "XX"
            bare_cost: Money::new(78.0),     // calibrated "YY"
            packaged_yield: Probability::clamped(0.999),
            bare_yield: Probability::clamped(0.95),
        }
    }

    /// The DSP correlator (PQFP 1165 mm² / WB 88 mm² / FC 59 mm²).
    pub fn dsp() -> Chip {
        Chip {
            name: "DSP correlator",
            packaged_area: Area::from_mm2(1165.0),
            wire_bond_area: Area::from_mm2(88.0),
            flip_chip_area: Area::from_mm2(59.0),
            bonds: DSP_BOND_COUNT,
            packaged_cost: Money::new(130.0), // calibrated "ZZ"
            bare_cost: Money::new(117.0),     // calibrated "AA"
            packaged_yield: Probability::clamped(0.9999),
            bare_yield: Probability::clamped(0.99),
        }
    }

    /// Both dies of the chip set.
    pub fn set() -> [Chip; 2] {
        [Chip::rf(), Chip::dsp()]
    }

    /// Die name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Footprint as a packaged QFP (Table 1).
    pub fn packaged_area(&self) -> Area {
        self.packaged_area
    }

    /// Area as a wire-bonded bare die including the bond ring (Table 1).
    pub fn wire_bond_area(&self) -> Area {
        self.wire_bond_area
    }

    /// Area as a flip-chip die (Table 1).
    pub fn flip_chip_area(&self) -> Area {
        self.flip_chip_area
    }

    /// Wire bonds when wire bonded.
    pub fn bonds(&self) -> u32 {
        self.bonds
    }

    /// Price of the packaged, fully tested part.
    pub fn packaged_cost(&self) -> Money {
        self.packaged_cost
    }

    /// Price of the bare (not fully tested) die.
    pub fn bare_cost(&self) -> Money {
        self.bare_cost
    }

    /// Incoming yield of the packaged part (Table 2: 99.9 % / 99.99 %).
    pub fn packaged_yield(&self) -> Probability {
        self.packaged_yield
    }

    /// Incoming yield of the bare die (Table 2: 95 % / 99 %).
    pub fn bare_yield(&self) -> Probability {
        self.bare_yield
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_areas() {
        let rf = Chip::rf();
        assert_eq!(rf.packaged_area().mm2(), 225.0);
        assert_eq!(rf.wire_bond_area().mm2(), 28.0);
        assert_eq!(rf.flip_chip_area().mm2(), 13.0);
        let dsp = Chip::dsp();
        assert_eq!(dsp.packaged_area().mm2(), 1165.0);
        assert_eq!(dsp.wire_bond_area().mm2(), 88.0);
        assert_eq!(dsp.flip_chip_area().mm2(), 59.0);
    }

    #[test]
    fn table2_bond_total_is_212() {
        assert_eq!(Chip::rf().bonds() + Chip::dsp().bonds(), 212);
    }

    #[test]
    fn table2_yields() {
        assert!((Chip::rf().packaged_yield().value() - 0.999).abs() < 1e-12);
        assert!((Chip::rf().bare_yield().value() - 0.95).abs() < 1e-12);
        assert!((Chip::dsp().packaged_yield().value() - 0.9999).abs() < 1e-12);
        assert!((Chip::dsp().bare_yield().value() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn bare_dies_are_cheaper_than_packaged() {
        for chip in Chip::set() {
            assert!(chip.bare_cost() < chip.packaged_cost(), "{}", chip.name());
        }
    }

    #[test]
    fn calibrated_chipset_totals() {
        // The Fig. 5 calibration: packaged set ≈ 217, bare set ≈ 195.
        let packaged: Money = Chip::set().iter().map(|c| c.packaged_cost()).sum();
        let bare: Money = Chip::set().iter().map(|c| c.bare_cost()).sum();
        assert_eq!(packaged, Money::new(217.0));
        assert_eq!(bare, Money::new(195.0));
    }
}
