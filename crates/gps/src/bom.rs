//! The GPS front end's bill of materials.
//!
//! §4 of the paper: "the filtering networks including decoupling and
//! pull-up resistors require about 60 passive components"; Table 2 counts
//! 112 SMD placements in solutions 1–2 and 12 in solution 4. This BOM
//! realizes those counts exactly:
//!
//! | group                       | qty | SMD              | integrated            |
//! |-----------------------------|-----|------------------|-----------------------|
//! | decoupling caps 3.3 nF      | 8   | 0805, 4.5 mm²    | 33 mm² (Si₃N₄ MIM)    |
//! | bias / pull-up R ~100 kΩ    | 35  | 0603, 3.75 mm²   | 0.25 mm² (CrSi)       |
//! | RF / coupling C ≤50 pF      | 45  | 0603, 3.75 mm²   | 0.3 mm² (high-κ MIM)  |
//! | matching / choke L ~40 nH   | 20  | 0603, 3.75 mm²   | 1 mm² (spiral)        |
//! | RF band-pass 1.575 GHz      | 1   | module, 27.5 mm² | 12 mm² (3-stage)      |
//! | IF band-pass 175 MHz        | 2   | module, 27.5 mm² | decomposed (below)    |
//! | PLL loop filter             | 1   | module, 27.5 mm² | decomposed (below)    |
//!
//! For build-ups that can integrate passives, the IF and PLL filters are
//! decomposed into elements (per filter: 2 L + 3 C + 1 R for the IF
//! 2-pole Tchebyscheff; 2 R + 2 C for the PLL RC), so the per-component
//! optimizer can make the paper's hybrid choice: SMD inductors (3.75 mm²
//! beats the 5 mm² wide-line IF spiral) with integrated capacitors and
//! resistors. 8 decaps + 4 IF inductors = the 12 SMDs of solution 4.

use crate::chipset::Chip;
use ipass_core::{BomItem, BuildUp, PassivePolicy, Realization};
use ipass_units::{Area, Money};

/// How the filter networks appear in the BOM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterStyle {
    /// Purchased SMD filter modules (solutions 1–2).
    Modules,
    /// Networks decomposed into their R/L/C elements so passives can be
    /// integrated per component (solutions 3–4).
    Elements,
}

impl FilterStyle {
    /// The style a build-up calls for: SMD-only build-ups buy modules;
    /// integrating build-ups decompose.
    pub fn for_buildup(buildup: &BuildUp) -> FilterStyle {
        if buildup.substrate().supports_integrated_passives()
            && buildup.passives() != PassivePolicy::AllSmd
        {
            FilterStyle::Elements
        } else {
            FilterStyle::Modules
        }
    }
}

fn die_item(chip: &Chip) -> BomItem {
    BomItem::die(chip.name())
        .with_packaged(Realization::new(chip.packaged_area(), chip.packaged_cost()))
        .with_wire_bond(
            Realization::new(chip.wire_bond_area(), chip.bare_cost()).with_bonds(chip.bonds()),
        )
        .with_flip_chip(Realization::new(chip.flip_chip_area(), chip.bare_cost()))
}

fn smd(area_mm2: f64, cost: f64) -> Realization {
    Realization::new(Area::from_mm2(area_mm2), Money::new(cost))
}

fn ip(area_mm2: f64) -> Realization {
    Realization::new(Area::from_mm2(area_mm2), Money::ZERO)
}

/// SMD filter module price (calibrated so the solution-1 kit totals the
/// paper's 11.0).
const FILTER_MODULE_COST: f64 = 1.29;

/// The discrete passives common to every build-up.
fn discrete_passives() -> Vec<BomItem> {
    vec![
        BomItem::passive("decoupling C 3.3 nF", 8)
            .with_smd(smd(4.5, 0.10))
            .with_integrated(ip(33.0)),
        BomItem::passive("bias/pull-up R 100 kΩ", 35)
            .with_smd(smd(3.75, 0.02))
            .with_integrated(ip(0.25)),
        BomItem::passive("RF/coupling C ≤50 pF", 45)
            .with_smd(smd(3.75, 0.03))
            .with_integrated(ip(0.3)),
        BomItem::passive("matching/choke L 40 nH", 20)
            .with_smd(smd(3.75, 0.15))
            .with_integrated(ip(1.0)),
    ]
}

/// The filter networks in the requested style.
fn filter_items(style: FilterStyle) -> Vec<BomItem> {
    match style {
        FilterStyle::Modules => vec![
            BomItem::passive("RF BP filter 1.575 GHz (module)", 1)
                .with_smd(smd(27.5, FILTER_MODULE_COST)),
            BomItem::passive("IF BP filter 175 MHz (module)", 2)
                .with_smd(smd(27.5, FILTER_MODULE_COST)),
            BomItem::passive("PLL loop filter (module)", 1).with_smd(smd(27.5, FILTER_MODULE_COST)),
        ],
        FilterStyle::Elements => vec![
            // The image-reject BP stays a block: its integrated form is
            // Table 1's 12 mm² 3-stage filter; as an SMD it is a module.
            BomItem::passive("RF BP filter 1.575 GHz", 1)
                .with_smd(smd(27.5, FILTER_MODULE_COST))
                .with_integrated(ip(12.0)),
            // IF filters decomposed: 2 pole ⇒ 2 L + 3 C + 1 R per filter.
            // The integrated IF inductor needs wide lines for Q ⇒ 5 mm².
            BomItem::passive("IF filter L ~100 nH", 4)
                .with_smd(smd(3.75, 0.45))
                .with_integrated(ip(5.0)),
            BomItem::passive("IF filter C", 6)
                .with_smd(smd(3.75, 0.03))
                .with_integrated(ip(0.3)),
            BomItem::passive("IF filter termination R", 2)
                .with_smd(smd(3.75, 0.02))
                .with_integrated(ip(0.25)),
            // PLL loop filter decomposed: RC network.
            BomItem::passive("PLL filter R", 2)
                .with_smd(smd(3.75, 0.02))
                .with_integrated(ip(0.25)),
            BomItem::passive("PLL filter C", 2)
                .with_smd(smd(3.75, 0.03))
                .with_integrated(ip(0.3)),
        ],
    }
}

/// The full GPS front-end BOM for a build-up.
///
/// # Examples
///
/// ```
/// use ipass_core::{BuildUp, SelectionObjective};
/// use ipass_gps::bom::gps_bom;
///
/// let buildup = BuildUp::pcb_reference();
/// let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
/// assert_eq!(plan.smd_placements(), 112); // Table 2's "# SMD's"
/// # Ok::<(), ipass_core::PlanError>(())
/// ```
pub fn gps_bom(buildup: &BuildUp) -> Vec<BomItem> {
    let mut items = vec![die_item(&Chip::rf()), die_item(&Chip::dsp())];
    items.extend(discrete_passives());
    items.extend(filter_items(FilterStyle::for_buildup(buildup)));
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_core::SelectionObjective;

    fn plan(buildup: BuildUp) -> ipass_core::BuildUpPlan {
        buildup
            .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
            .unwrap()
    }

    #[test]
    fn solution1_counts_match_table2() {
        let p = plan(BuildUp::pcb_reference());
        assert_eq!(p.smd_placements(), 112);
        assert_eq!(p.bond_count(), 0);
        // Kit cost ≈ the paper's 11.0.
        assert!(
            (p.smd_parts_cost().units() - 11.0).abs() < 0.1,
            "kit {}",
            p.smd_parts_cost()
        );
    }

    #[test]
    fn solution2_counts_match_table2() {
        let p = plan(BuildUp::mcm_wire_bond(PassivePolicy::AllSmd));
        assert_eq!(p.smd_placements(), 112);
        assert_eq!(p.bond_count(), 212);
    }

    #[test]
    fn solution3_integrates_everything() {
        let p = plan(BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        assert_eq!(p.smd_placements(), 0);
        assert!(p.integrated_count() > 100);
    }

    #[test]
    fn solution4_keeps_exactly_12_smds() {
        // The paper's hybrid: 8 decaps + 4 IF inductors stay SMD.
        let p = plan(BuildUp::mcm_flip_chip(PassivePolicy::Optimized));
        assert_eq!(p.smd_placements(), 12);
        // And their kit costs the paper's 2.6.
        assert!(
            (p.smd_parts_cost().units() - 2.6).abs() < 1e-9,
            "kit {}",
            p.smd_parts_cost()
        );
        let smd_items: Vec<&str> = p
            .selections()
            .iter()
            .filter(|s| matches!(s.choice, ipass_core::Choice::Smd))
            .map(|s| s.item_name.as_str())
            .collect();
        assert_eq!(smd_items.len(), 2);
        assert!(smd_items.iter().any(|n| n.contains("decoupling")));
        assert!(smd_items.iter().any(|n| n.contains("IF filter L")));
    }

    #[test]
    fn component_areas_match_the_calibration() {
        // These sums drive Fig. 3; pin them down.
        let s1 = plan(BuildUp::pcb_reference()).component_area().mm2();
        assert!((s1 - 1911.0).abs() < 1.0, "S1 {s1}");
        let s2 = plan(BuildUp::mcm_wire_bond(PassivePolicy::AllSmd))
            .component_area()
            .mm2();
        assert!((s2 - 637.0).abs() < 1.0, "S2 {s2}");
        let s3 = plan(BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated))
            .component_area()
            .mm2();
        assert!((s3 - 413.65).abs() < 1.0, "S3 {s3}");
        let s4 = plan(BuildUp::mcm_flip_chip(PassivePolicy::Optimized))
            .component_area()
            .mm2();
        assert!((s4 - 180.65).abs() < 1.0, "S4 {s4}");
    }

    #[test]
    fn filter_style_follows_policy() {
        assert_eq!(
            FilterStyle::for_buildup(&BuildUp::pcb_reference()),
            FilterStyle::Modules
        );
        assert_eq!(
            FilterStyle::for_buildup(&BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)),
            FilterStyle::Modules
        );
        assert_eq!(
            FilterStyle::for_buildup(&BuildUp::mcm_flip_chip(PassivePolicy::Optimized)),
            FilterStyle::Elements
        );
    }

    #[test]
    fn about_60_filtering_passives() {
        // §4: "the filtering networks including decoupling and pull-up
        // resistors require about 60 passive components": the decomposed
        // filter elements + decaps + matching parts ≈ 60.
        let buildup = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated);
        let filtering: u32 = gps_bom(&buildup)
            .iter()
            .filter(|i| {
                i.name().contains("filter")
                    || i.name().contains("decoupling")
                    || i.name().contains("matching")
                    || i.name().contains("BP")
            })
            .map(|i| i.quantity())
            .sum();
        assert!(
            (40..=70).contains(&filtering),
            "filtering passives {filtering}"
        );
    }
}
