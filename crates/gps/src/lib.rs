//! The GPS receiver front-end case study — the paper's evaluation,
//! reproduced end to end.
//!
//! This crate encodes the SUMMIT GPS demonstrator: the chip set
//! ([`chipset`]), the full bill of materials ([`bom`]), the RF filter
//! chain and its §4.1 performance scores ([`filters`]), the Table 2
//! cost/yield cards ([`table2`]), and one reproduction entry point per
//! table/figure ([`experiments`]). The paper's published numbers are
//! collected in [`paper`] so every experiment can report
//! paper-vs-measured.
//!
//! # Examples
//!
//! ```
//! use ipass_gps::experiments;
//!
//! // Fig. 3: relative module areas of the four build-ups.
//! let fig3 = experiments::fig3()?;
//! let measured: Vec<f64> = fig3.rows.iter().map(|r| r.measured_percent).collect();
//! assert!((measured[0] - 100.0).abs() < 1e-9);
//! assert!((measured[3] - 37.0).abs() < 3.0); // the paper's 37 %
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bom;
pub mod chain;
pub mod chipset;
pub mod experiments;
pub mod filters;
pub mod paper;
pub mod table2;
