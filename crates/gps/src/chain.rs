//! The Fig. 2 receiver chain as a gain/noise budget per build-up.
//!
//! §3: "the GPS signal passes via a matched impedance line to a
//! low-noise amplifier (LNA), and is filtered at 1.575 GHz to reject the
//! image frequency … the signal is downconverted via intermediate
//! frequencies to the base band." The filters' §4.1 insertion losses are
//! computed from the technology's element Q and inserted into the
//! cascade; Friis' formula then shows what the integration choice costs
//! the receiver's noise figure.

use crate::filters::{if_filter, image_frequency, lna_filter, TechnologyQ};
use ipass_core::BuildUp;
use ipass_rf::{CascadeStage, ChainBudget};
use std::fmt;

/// Typical 1999-era GPS front-end active-stage parameters (the chip set's
/// own numbers are confidential, like its price).
mod active {
    /// LNA gain, dB.
    pub const LNA_GAIN: f64 = 15.0;
    /// LNA noise figure, dB.
    pub const LNA_NF: f64 = 1.8;
    /// Mixer conversion gain, dB.
    pub const MIXER_GAIN: f64 = 8.0;
    /// Mixer noise figure, dB.
    pub const MIXER_NF: f64 = 9.0;
    /// IF amplifier gain, dB.
    pub const IF_AMP_GAIN: f64 = 30.0;
    /// IF amplifier noise figure, dB.
    pub const IF_AMP_NF: f64 = 4.0;
    /// External (pre-LNA) filter loss, dB — identical in every build-up.
    pub const EXTERNAL_FILTER_LOSS: f64 = 1.0;
}

/// The budget of one build-up's receive chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAssessment {
    /// Build-up name.
    pub buildup: String,
    /// The cascade budget.
    pub budget: ChainBudget,
    /// Image rejection provided by the LNA output filter (dB).
    pub image_rejection_db: f64,
}

impl ChainAssessment {
    /// Chain noise figure in dB.
    pub fn noise_figure_db(&self) -> f64 {
        self.budget.noise_figure_db()
    }

    /// Total chain gain in dB.
    pub fn gain_db(&self) -> f64 {
        self.budget.total_gain_db()
    }
}

impl fmt::Display for ChainAssessment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: NF {:.2} dB, gain {:.1} dB, image rejection {:.1} dB",
            self.buildup,
            self.noise_figure_db(),
            self.gain_db(),
            self.image_rejection_db
        )?;
        f.write_str(&self.budget.render())
    }
}

/// Build the Fig. 2 chain budget for a build-up, with filter losses
/// computed from its passive technology.
///
/// # Examples
///
/// ```
/// use ipass_core::{BuildUp, PassivePolicy};
/// use ipass_gps::chain::chain_budget;
///
/// let reference = chain_budget(&BuildUp::pcb_reference());
/// let full_ip = chain_budget(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
/// // The integrated filters cost noise figure, but the LNA in front
/// // cushions most of it — the system-level reason the paper can even
/// // consider a 0.45-performance build-up.
/// let penalty = full_ip.noise_figure_db() - reference.noise_figure_db();
/// assert!(penalty > 0.05 && penalty < 1.0);
/// ```
pub fn chain_budget(buildup: &BuildUp) -> ChainAssessment {
    let q = TechnologyQ::for_buildup(buildup);
    let lna_design = lna_filter(&q);
    let lna_loss = lna_design
        .ladder()
        .insertion_loss_db(crate::filters::gps_l1());
    let if_loss = if_filter(&q)
        .ladder()
        .insertion_loss_db(crate::filters::intermediate_frequency());
    let budget = ChainBudget::new(vec![
        CascadeStage::passive("external filter", active::EXTERNAL_FILTER_LOSS),
        CascadeStage::new("LNA", active::LNA_GAIN, active::LNA_NF),
        CascadeStage::passive("LNA output BP (image reject)", lna_loss),
        CascadeStage::new("mixer", active::MIXER_GAIN, active::MIXER_NF),
        CascadeStage::passive("IF BP 175 MHz", if_loss),
        CascadeStage::new("IF amplifier", active::IF_AMP_GAIN, active::IF_AMP_NF),
        CascadeStage::passive("2nd IF BP", if_loss),
    ]);
    ChainAssessment {
        buildup: buildup.to_string(),
        budget,
        image_rejection_db: lna_design.ladder().insertion_loss_db(image_frequency()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_core::PassivePolicy;

    #[test]
    fn all_solutions_have_workable_receivers() {
        for b in BuildUp::paper_solutions() {
            let chain = chain_budget(&b);
            // GPS needs NF well under 6 dB and plenty of gain.
            assert!(
                chain.noise_figure_db() < 6.0,
                "{b}: NF {}",
                chain.noise_figure_db()
            );
            assert!(chain.gain_db() > 35.0, "{b}: gain {}", chain.gain_db());
            assert!(chain.image_rejection_db > 20.0, "{b}");
        }
    }

    #[test]
    fn integration_penalty_is_cushioned_by_the_lna() {
        let reference = chain_budget(&BuildUp::pcb_reference());
        let full_ip = chain_budget(&BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated));
        let hybrid = chain_budget(&BuildUp::mcm_flip_chip(PassivePolicy::Optimized));
        // Filter-loss deltas of ~4 dB shrink to fractions of a dB of NF.
        let penalty_ip = full_ip.noise_figure_db() - reference.noise_figure_db();
        let penalty_hybrid = hybrid.noise_figure_db() - reference.noise_figure_db();
        assert!(penalty_ip > penalty_hybrid);
        assert!(penalty_ip < 1.0, "penalty {penalty_ip}");
        assert!(penalty_hybrid > 0.0);
    }

    #[test]
    fn display_contains_the_lineup() {
        let chain = chain_budget(&BuildUp::pcb_reference());
        let text = chain.to_string();
        assert!(text.contains("LNA") && text.contains("mixer") && text.contains("ΣNF"));
    }
}
