//! One reproduction entry point per table and figure of the paper.
//!
//! Every function returns a structure holding the *measured* values next
//! to the *paper's* published ones, plus a `render()` for human-readable
//! output. EXPERIMENTS.md records the resulting deltas.

use crate::bom::gps_bom;
use crate::filters::{assess_performance, PerformanceAssessment};
use crate::paper;
use crate::table2::cost_inputs;
use ipass_core::{
    AreaBreakdown, BuildUp, BuildUpPlan, CandidateScore, DecisionError, DecisionTable, FomWeights,
    PlanError, SelectionObjective,
};
use ipass_explore::ExploreError;
use ipass_moe::{CostCategory, CostReport, Flow, FlowError, SimOptions, SimSummary};
use ipass_passives::{
    smd_area_series, MimCapacitor, SpiralInductor, SynthesisError, ThinFilmProcess,
    ThinFilmResistor,
};
use ipass_units::{Capacitance, Inductance, Resistance};
use std::error::Error;
use std::fmt;

/// Error from an experiment driver.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// Technology selection failed.
    Plan(PlanError),
    /// Cost-flow evaluation failed.
    Flow(FlowError),
    /// Decision ranking failed.
    Decision(DecisionError),
    /// Component synthesis failed.
    Synthesis(SynthesisError),
    /// Design-space exploration failed.
    Explore(ExploreError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Plan(e) => write!(f, "planning failed: {e}"),
            ExperimentError::Flow(e) => write!(f, "cost evaluation failed: {e}"),
            ExperimentError::Decision(e) => write!(f, "decision failed: {e}"),
            ExperimentError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            ExperimentError::Explore(e) => write!(f, "exploration failed: {e}"),
        }
    }
}

impl Error for ExperimentError {}

impl From<PlanError> for ExperimentError {
    fn from(e: PlanError) -> Self {
        ExperimentError::Plan(e)
    }
}

impl From<FlowError> for ExperimentError {
    fn from(e: FlowError) -> Self {
        ExperimentError::Flow(e)
    }
}

impl From<DecisionError> for ExperimentError {
    fn from(e: DecisionError) -> Self {
        ExperimentError::Decision(e)
    }
}

impl From<SynthesisError> for ExperimentError {
    fn from(e: SynthesisError) -> Self {
        ExperimentError::Synthesis(e)
    }
}

impl From<ExploreError> for ExperimentError {
    fn from(e: ExploreError) -> Self {
        ExperimentError::Explore(e)
    }
}

/// Everything the methodology derives for one solution.
#[derive(Debug, Clone)]
pub struct SolutionAssessment {
    /// The build-up.
    pub buildup: BuildUp,
    /// The paper's name for it.
    pub label: &'static str,
    /// The selected plan.
    pub plan: BuildUpPlan,
    /// Step 3: areas.
    pub area: AreaBreakdown,
    /// Step 2: filter performance.
    pub performance: PerformanceAssessment,
    /// Step 4: the analytic cost report.
    pub cost: CostReport,
}

/// Run methodology steps 1–4 for all four paper solutions (analytic cost
/// engine). The solutions are assessed in parallel on the shared
/// [`ipass_sim`] executor — an embarrassingly parallel batch.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or cost evaluation fails.
pub fn assess_all() -> Result<Vec<SolutionAssessment>, ExperimentError> {
    let solutions: Vec<(BuildUp, &'static str)> = BuildUp::paper_solutions()
        .iter()
        .copied()
        .zip(paper::SOLUTION_NAMES.iter().copied())
        .collect();
    ipass_sim::Executor::available().try_map(&solutions, |_, &(buildup, label)| {
        let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
        let area = plan.area();
        let flow = plan.production_flow(area.substrate_area, &cost_inputs(&buildup))?;
        let cost = flow.analyze()?;
        Ok(SolutionAssessment {
            buildup,
            label,
            plan,
            area,
            performance: assess_performance(&buildup),
            cost,
        })
    })
}

/// The four paper solutions' production flows, labelled with the
/// paper's solution names — the full committed-model surface the
/// `ipass lint` gate verifies statically (every flow a registry
/// artifact evaluates passes through here).
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or flow construction fails.
pub fn solution_flows() -> Result<Vec<(&'static str, Flow)>, ExperimentError> {
    BuildUp::paper_solutions()
        .iter()
        .zip(paper::SOLUTION_NAMES.iter().copied())
        .map(|(buildup, label)| {
            let plan = buildup.plan(&gps_bom(buildup), SelectionObjective::MinArea)?;
            let flow = plan.production_flow(plan.area().substrate_area, &cost_inputs(buildup))?;
            Ok((label, flow))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 1 — area vs SMD type.
// ---------------------------------------------------------------------

/// One bar of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Case code (e.g. "0603").
    pub code: &'static str,
    /// Pure component (body) area, mm².
    pub body_mm2: f64,
    /// Mounted footprint area, mm².
    pub footprint_mm2: f64,
}

/// Fig. 1: pure component vs footprint area over the SMD sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// The bars, largest case first.
    pub rows: Vec<Fig1Row>,
}

impl Fig1 {
    /// The figure as a typed [`Series`](ipass_report::Series) artifact
    /// (case codes on x; body, footprint and overhead lines).
    pub fn artifact(&self) -> ipass_report::Series {
        ipass_report::Series::new(
            "Fig. 1 — area vs SMD type [mm²]",
            "type",
            ipass_report::SeriesX::Labels(self.rows.iter().map(|r| r.code.to_owned()).collect()),
        )
        .with_precision(2)
        .line("body", self.rows.iter().map(|r| r.body_mm2).collect())
        .line(
            "footprint",
            self.rows.iter().map(|r| r.footprint_mm2).collect(),
        )
        .line(
            "overhead",
            self.rows
                .iter()
                .map(|r| r.footprint_mm2 - r.body_mm2)
                .collect(),
        )
    }

    /// Render the series (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Regenerate Fig. 1 from the SMD catalog.
pub fn fig1() -> Fig1 {
    Fig1 {
        rows: smd_area_series()
            .into_iter()
            .map(|(size, body, footprint)| Fig1Row {
                code: size.code(),
                body_mm2: body.mm2(),
                footprint_mm2: footprint.mm2(),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Table 1 — area-relevant data (with synthesis cross-checks).
// ---------------------------------------------------------------------

/// One paper-vs-synthesized area comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// What is compared.
    pub label: String,
    /// The paper's Table 1 value (mm²).
    pub paper_mm2: f64,
    /// Our synthesized/catalog value (mm²).
    pub measured_mm2: f64,
}

/// Table 1 reproduced: paper constants vs in-crate synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// The comparison rows.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// The comparison as a typed artifact table.
    pub fn artifact(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        self.rows.iter().fold(
            ipass_report::Table::new("Table 1 — area-relevant data [mm²]")
                .text_column("component")
                .numeric_column("paper", 3)
                .numeric_column("measured", 3),
            |t, r| {
                t.row(vec![
                    Cell::text(&r.label),
                    Cell::num(r.paper_mm2),
                    Cell::num(r.measured_mm2),
                ])
            },
        )
    }

    /// Render the comparison (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Regenerate Table 1's integrated-passive areas by synthesis in the
/// SUMMIT process, next to the catalog SMD footprints.
///
/// # Errors
///
/// Returns [`ExperimentError::Synthesis`] if a component cannot be
/// synthesized (it can, for the published values).
pub fn table1() -> Result<Table1, ExperimentError> {
    let process = ThinFilmProcess::summit_mcm_d();
    let r100k = ThinFilmResistor::synthesize(Resistance::from_kilo(100.0), &process)?;
    let c50p = MimCapacitor::synthesize(Capacitance::from_pico(50.0), &process)?;
    let l40n = SpiralInductor::synthesize(Inductance::from_nano(40.0), &process)?;
    let rows = vec![
        Table1Row {
            label: "IP-R 100 kΩ (CrSi meander)".into(),
            paper_mm2: paper::TABLE1_IP_R_100K_MM2,
            measured_mm2: r100k.area().mm2(),
        },
        Table1Row {
            label: "IP-C 50 pF (high-κ MIM)".into(),
            paper_mm2: paper::TABLE1_IP_C_50P_MM2,
            measured_mm2: c50p.area().mm2(),
        },
        Table1Row {
            label: "IP-L 40 nH (square spiral)".into(),
            paper_mm2: paper::TABLE1_IP_L_40N_MM2,
            measured_mm2: l40n.area().mm2(),
        },
        Table1Row {
            label: "SMD 0603 footprint".into(),
            paper_mm2: 3.75,
            measured_mm2: ipass_passives::SmdSize::I0603.footprint_area().mm2(),
        },
        Table1Row {
            label: "SMD 0805 footprint".into(),
            paper_mm2: 4.5,
            measured_mm2: ipass_passives::SmdSize::I0805.footprint_area().mm2(),
        },
    ];
    Ok(Table1 { rows })
}

// ---------------------------------------------------------------------
// Table 2 — the cost and yield cards of the four implementations.
// ---------------------------------------------------------------------

/// One implementation's Table 2 card, labeled with the paper's name.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The paper's name for the solution.
    pub label: &'static str,
    /// The cost/yield card (see [`crate::table2::cost_inputs`] for the
    /// ambiguity-resolution notes).
    pub card: ipass_core::CostInputs,
}

/// Table 2 reproduced: the cost and yield cards driving the MOE cost
/// analysis, one row per paper solution.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The four cards, in solution order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// The cards as a typed artifact table (empty cells where a card
    /// has no such step — a PCB needs no BGA laminate).
    pub fn artifact(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        let opt_money = |m: Option<ipass_units::Money>| match m {
            Some(m) => Cell::num(m.units()),
            None => Cell::Empty,
        };
        self.rows
            .iter()
            .fold(
                ipass_report::Table::new("Table 2 — cost [cost units] and yield cards")
                    .text_column("implementation")
                    .numeric_column("substrate $/cm²", 2)
                    .numeric_column("substrate yield", 4)
                    .numeric_column("chip set", 1)
                    .numeric_column("chip attach yield", 4)
                    .numeric_column("SMD kit", 1)
                    .numeric_column("packaging", 2)
                    .numeric_column("packaging yield", 3)
                    .numeric_column("final test", 1)
                    .numeric_column("fault coverage", 3),
                |t, r| {
                    let card = &r.card;
                    t.row(vec![
                        Cell::text(r.label),
                        Cell::num(card.substrate_cost_per_cm2.units()),
                        Cell::num(card.substrate_yield.value()),
                        Cell::num(card.chips.iter().map(|c| c.cost.units()).sum::<f64>()),
                        Cell::num(card.chip_attach_yield.value()),
                        opt_money(card.smd_parts_cost_override),
                        opt_money(card.packaging.map(|(c, _)| c)),
                        match card.packaging {
                            Some((_, y)) => Cell::num(y.value()),
                            None => Cell::Empty,
                        },
                        Cell::num(card.final_test_cost.units()),
                        Cell::num(card.fault_coverage.value()),
                    ])
                },
            )
            .note("empty SMD kit: the kit price equals the BOM's own sum (no override)")
            .note("empty packaging: the PCB reference ships without a BGA laminate")
    }

    /// Render the cards (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Regenerate Table 2: the cost/yield card of every paper solution.
pub fn table2() -> Table2 {
    Table2 {
        rows: BuildUp::paper_solutions()
            .iter()
            .zip(paper::SOLUTION_NAMES.iter())
            .map(|(buildup, label)| Table2Row {
                label,
                card: cost_inputs(buildup),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Fig. 3 — area consumed by the build-ups.
// ---------------------------------------------------------------------

/// One bar of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Solution label.
    pub label: &'static str,
    /// Absolute module area.
    pub module_area_mm2: f64,
    /// Percent of the PCB reference.
    pub measured_percent: f64,
    /// The paper's percentage.
    pub paper_percent: f64,
}

/// Fig. 3 reproduced.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The four bars.
    pub rows: Vec<Fig3Row>,
}

impl Fig3 {
    /// The comparison as a typed artifact table.
    pub fn artifact(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        self.rows.iter().fold(
            ipass_report::Table::new("Fig. 3 — area consumed by the build-ups")
                .text_column("implementation")
                .numeric_column("module [mm²]", 1)
                .numeric_column("measured %", 1)
                .numeric_column("paper %", 0),
            |t, r| {
                t.row(vec![
                    Cell::text(r.label),
                    Cell::num(r.module_area_mm2),
                    Cell::num(r.measured_percent),
                    Cell::num(r.paper_percent),
                ])
            },
        )
    }

    /// Render the comparison (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Regenerate Fig. 3 (methodology step 3 for all four solutions).
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning fails.
pub fn fig3() -> Result<Fig3, ExperimentError> {
    let assessments = assess_all()?;
    let reference = assessments[0].area.module_area;
    Ok(Fig3 {
        rows: assessments
            .iter()
            .enumerate()
            .map(|(i, a)| Fig3Row {
                label: a.label,
                module_area_mm2: a.area.module_area.mm2(),
                measured_percent: a.area.module_area / reference * 100.0,
                paper_percent: paper::FIG3_AREA_PERCENT[i],
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------
// Fig. 4 — the MOE production model, Monte Carlo.
// ---------------------------------------------------------------------

/// Fig. 4 reproduced: the solution-2 production model run through the
/// Monte Carlo engine with the figure's unit count.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Stage names of the generic model, in flow order.
    pub stages: Vec<String>,
    /// The Fig. 4-style box diagram of the model.
    pub diagram: String,
    /// The Monte Carlo outcome.
    pub summary: SimSummary,
    /// Units started (the figure's 8007).
    pub started: u64,
}

impl Fig4 {
    /// Modules shipped in the run.
    pub fn shipped(&self) -> f64 {
        self.summary.report.shipped()
    }

    /// Modules scrapped in the run.
    pub fn scrapped(&self) -> f64 {
        self.summary.scrapped
    }

    /// The run outcome as a typed artifact table (measured vs the
    /// paper's illustration).
    pub fn artifact(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        ipass_report::Table::new("Fig. 4 — generic MOE model (solution 2), Monte Carlo run")
            .text_column("quantity")
            .numeric_column("measured", 0)
            .numeric_column("paper", 0)
            .row(vec![
                Cell::text("units started"),
                Cell::num(self.started as f64),
                Cell::num(paper::FIG4_STARTED as f64),
            ])
            .row(vec![
                Cell::text("modules shipped"),
                Cell::num(self.shipped()),
                Cell::num(paper::FIG4_SHIPPED as f64),
            ])
            .row(vec![
                Cell::text("units scrapped"),
                Cell::num(self.scrapped()),
                Cell::num(paper::FIG4_SCRAPPED as f64),
            ])
    }

    /// Render the model and outcome.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 4 — generic MOE model (solution 2), Monte Carlo run\n");
        out.push_str(&self.diagram);
        out.push_str(&format!(
            "  started {} → shipped {:.0} (paper's illustration: {} → {}), scrapped {:.0} (paper: {})\n",
            self.started,
            self.shipped(),
            paper::FIG4_STARTED,
            paper::FIG4_SHIPPED,
            self.scrapped(),
            paper::FIG4_SCRAPPED,
        ));
        out
    }
}

/// Run the Fig. 4 model with `seed`; `paper::FIG4_STARTED` units enter.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or simulation fails.
pub fn fig4(seed: u64) -> Result<Fig4, ExperimentError> {
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
    let area = plan.area();
    let flow = plan.production_flow(area.substrate_area, &cost_inputs(&buildup))?;
    let mut stages: Vec<String> = vec![format!(
        "component/carrier: {}",
        flow.line().carrier().name()
    )];
    stages.extend(flow.line().stages().iter().map(|s| s.name().to_owned()));
    stages.push("collector: modules to be shipped".into());
    stages.push("scrap".into());
    let summary = flow.simulate_summary(&SimOptions::new(paper::FIG4_STARTED).with_seed(seed))?;
    Ok(Fig4 {
        stages,
        diagram: flow.line().render_diagram(),
        summary,
        started: paper::FIG4_STARTED,
    })
}

// ---------------------------------------------------------------------
// Fig. 5 — cost analysis.
// ---------------------------------------------------------------------

/// One bar of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Solution label.
    pub label: &'static str,
    /// Final cost per shipped unit (Eq. 1), cost units.
    pub final_cost: f64,
    /// Percent of the PCB reference.
    pub measured_percent: f64,
    /// The paper's percentage.
    pub paper_percent: f64,
    /// Direct-cost component per shipped unit.
    pub direct_cost: f64,
    /// Yield-loss component per shipped unit.
    pub yield_loss: f64,
    /// "Thereof: chip cost" per shipped unit.
    pub chip_cost: f64,
}

/// Fig. 5 reproduced.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The four bars.
    pub rows: Vec<Fig5Row>,
}

impl Fig5 {
    /// The figure as a typed artifact table (final cost, percent of
    /// reference vs paper, the cost components).
    pub fn artifact_table(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        self.rows.iter().fold(
            ipass_report::Table::new("Fig. 5 — final cost (MOE), percent of PCB reference")
                .text_column("implementation")
                .numeric_column("final", 1)
                .numeric_column("measured %", 1)
                .numeric_column("paper %", 1)
                .numeric_column("direct", 1)
                .numeric_column("yield loss", 1)
                .numeric_column("chip cost", 1),
            |t, r| {
                t.row(vec![
                    Cell::text(r.label),
                    Cell::num(r.final_cost),
                    Cell::num(r.measured_percent),
                    Cell::num(r.paper_percent),
                    Cell::num(r.direct_cost),
                    Cell::num(r.yield_loss),
                    Cell::num(r.chip_cost),
                ])
            },
        )
    }

    /// The figure as a typed stacked [`Breakdown`] artifact: one bar
    /// per solution (direct cost + yield loss per shipped unit, chip
    /// cost as the paper's callout).
    ///
    /// [`Breakdown`]: ipass_report::Breakdown
    pub fn artifact_breakdown(&self) -> ipass_report::Breakdown {
        use ipass_report::Segment;
        self.rows
            .iter()
            .fold(
                ipass_report::Breakdown::new(
                    "Fig. 5 — final cost composition per shipped unit",
                    "cost units",
                ),
                |b, r| {
                    b.group_with_callouts(
                        r.label,
                        vec![
                            Segment::new("direct cost", r.direct_cost),
                            Segment::new("yield loss", r.yield_loss),
                        ],
                        vec![Segment::new("chip cost", r.chip_cost)],
                    )
                },
            )
            .note("percent of PCB reference: see the fig5 table artifact")
    }

    /// Render the stacked-bar data (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact_table().to_txt()
    }
}

fn fig5_from_reports(reports: Vec<(&'static str, CostReport)>) -> Fig5 {
    let reference = reports[0].1.final_cost_per_shipped();
    Fig5 {
        rows: reports
            .into_iter()
            .enumerate()
            .map(|(i, (label, report))| Fig5Row {
                label,
                final_cost: report.final_cost_per_shipped().units(),
                measured_percent: report.final_cost_per_shipped() / reference * 100.0,
                paper_percent: paper::FIG5_COST_PERCENT[i],
                direct_cost: report.direct_cost_per_shipped().units(),
                yield_loss: report.yield_loss_per_shipped().units(),
                chip_cost: report.category_cost_per_shipped(CostCategory::Chip).units(),
            })
            .collect(),
    }
}

/// Regenerate Fig. 5 with the closed-form engine.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or evaluation fails.
pub fn fig5() -> Result<Fig5, ExperimentError> {
    let assessments = assess_all()?;
    Ok(fig5_from_reports(
        assessments.into_iter().map(|a| (a.label, a.cost)).collect(),
    ))
}

/// Regenerate Fig. 5 with the Monte Carlo engine (the paper's actual
/// procedure). The four solutions are simulated in parallel; the
/// reports are bit-identical to serial runs (the determinism contract
/// of `ipass-sim`).
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or simulation fails.
pub fn fig5_monte_carlo(units: u64, seed: u64) -> Result<Fig5, ExperimentError> {
    let solutions: Vec<(BuildUp, &'static str)> = BuildUp::paper_solutions()
        .iter()
        .copied()
        .zip(paper::SOLUTION_NAMES.iter().copied())
        .collect();
    let reports =
        ipass_sim::Executor::available().try_map(&solutions, |_, &(buildup, label)| {
            let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
            let flow = plan.production_flow(plan.area().substrate_area, &cost_inputs(&buildup))?;
            Ok::<_, ExperimentError>((
                label,
                flow.simulate(&SimOptions::new(units).with_seed(seed))?,
            ))
        })?;
    Ok(fig5_from_reports(reports))
}

// ---------------------------------------------------------------------
// Fig. 6 — figure of merit.
// ---------------------------------------------------------------------

/// Fig. 6 reproduced: the decision table plus the paper's column.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The computed decision table.
    pub table: DecisionTable,
    /// The paper's published FoM values, aligned with the rows.
    pub paper_fom: [f64; 4],
}

impl Fig6 {
    /// The decision as a typed artifact table: the computed factors and
    /// figure of merit next to the paper's published FoM column, the
    /// winner marked `◀ chosen`.
    pub fn artifact(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        let best = self.table.best().name.clone();
        self.table.rows().iter().zip(self.paper_fom.iter()).fold(
            ipass_report::Table::new("Fig. 6 — figure of merit (perf × 1/size × 1/cost)")
                .text_column("implementation")
                .numeric_column("perf", 2)
                .numeric_column("size ×", 2)
                .numeric_column("cost ×", 3)
                .numeric_column("FoM", 2)
                .numeric_column("paper", 2)
                .text_column(""),
            |t, (row, paper_fom)| {
                t.row(vec![
                    Cell::text(&row.name),
                    Cell::num(row.performance),
                    Cell::num(row.size_ratio),
                    Cell::num(row.cost_ratio),
                    Cell::num(row.fom),
                    Cell::num(*paper_fom),
                    Cell::text(if row.name == best { "◀ chosen" } else { "" }),
                ])
            },
        )
    }

    /// Render paper-vs-measured (the artifact pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Regenerate Fig. 6 (methodology step 5).
///
/// # Errors
///
/// Returns [`ExperimentError`] if any earlier step fails.
pub fn fig6() -> Result<Fig6, ExperimentError> {
    let assessments = assess_all()?;
    let candidates: Vec<CandidateScore> = assessments
        .iter()
        .map(|a| {
            CandidateScore::new(
                a.label,
                a.performance.overall,
                a.area.module_area,
                a.cost.final_cost_per_shipped(),
            )
        })
        .collect();
    let table = DecisionTable::rank(
        &candidates,
        paper::SOLUTION_NAMES[0],
        FomWeights::unweighted(),
    )?;
    Ok(Fig6 {
        table,
        paper_fom: paper::FIG6_FOM,
    })
}

// ---------------------------------------------------------------------
// Sensitivity — which Table 2 inputs drive solution 4's cost?
// ---------------------------------------------------------------------

/// Tornado sensitivity of a solution's final cost to the Table 2 inputs.
///
/// Perturbs each input to a low/high variant (±20 % costs, ±5 points
/// yields, coverage 95…99.9 %) and ranks the swings. The paper's remark
/// that results were compared "for different cost and yield
/// implications" becomes a chart.
///
/// The production line is planned and compiled **once**; every variant
/// is a [`ipass_moe::FlowPatch`] overwriting the relevant parameter
/// slots of the shared compiled program — no per-variant flow rebuild
/// (the pre-patching implementation built `1 + 2·6` full flows). When a
/// perturbed parameter was compiled away (a degenerate card — e.g. a
/// certain substrate yield leaves no yield slot to patch), the
/// experiment falls back to that rebuild-per-variant path, so the
/// domain of valid cards is unchanged.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning or evaluation fails.
pub fn sensitivity(solution_index: usize) -> Result<ipass_moe::Tornado, ExperimentError> {
    let buildup = BuildUp::paper_solutions()[solution_index];
    let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&buildup);
    match sensitivity_patched(&plan, area, &base_card) {
        Err(FlowError::UnknownPatchSlot { .. }) => sensitivity_rebuild(&plan, area, &base_card),
        other => Ok(other?),
    }
}

/// The fast path: one dual-carrying analytic walk covers the baseline
/// and every pure-cost row at once — final cost is affine in each cost
/// slot, so the gradient extrapolation `baseline + ∂cost/∂scale · Δ` is
/// *exact*, not first-order (see
/// [`CompiledFlow::analyze_duals`](ipass_moe::CompiledFlow::analyze_duals)).
/// Only the two rows whose large steps move cohort masses nonlinearly —
/// the KGS-coupled substrate-yield shift and the 99.9 → 95 % coverage
/// drop — are still re-evaluated as patches. The pre-dual
/// implementation paid `1 + 2·n` full walks for n rows; this pays
/// `1 + 4`.
fn sensitivity_patched(
    plan: &BuildUpPlan,
    area: ipass_units::Area,
    base_card: &ipass_core::CostInputs,
) -> Result<ipass_moe::Tornado, FlowError> {
    use ipass_moe::{DualDirection, FlowPatch, SlotKind, StepCost, Tornado, TornadoRow};
    use ipass_units::Probability;

    let flow = plan.production_flow(area, base_card)?;
    let compiled = flow.compiled()?;
    let carrier = flow.line().carrier().name().to_owned();

    // A "scale this slot by a factor" direction: weighting each slot by
    // its current per-unit cost makes the lane's derivative
    // ∂cost/∂(scale factor), so a ±x % row extrapolates with Δ = ±x/100.
    let scale_dir = |slots: &[String]| -> Result<DualDirection, FlowError> {
        let mut dir = DualDirection::new();
        for slot in slots {
            dir = dir.with(slot, SlotKind::Cost, compiled.slot_unit_cost(slot)?.units());
        }
        Ok(dir)
    };
    let chip_slots: Vec<String> = base_card
        .chips
        .iter()
        .map(|chip| format!("chip assembly/{}", chip.name))
        .collect();
    let mut cost_rows = vec![
        ("chip cost ±10 %", scale_dir(&chip_slots)?, 0.1),
        (
            "substrate cost/cm² ±20 %",
            scale_dir(std::slice::from_ref(&carrier))?,
            0.2,
        ),
        (
            "test cost ±50 %",
            scale_dir(&["functional test".to_owned()])?,
            0.5,
        ),
    ];
    if base_card.packaging.is_some() {
        cost_rows.push((
            "packaging cost ±30 %",
            scale_dir(&["packaging / mount on laminate".to_owned()])?,
            0.3,
        ));
    }

    let directions: Vec<DualDirection> = cost_rows.iter().map(|(_, d, _)| d.clone()).collect();
    let dual = compiled.analyze_duals(&directions)?;
    let baseline = dual.report.final_cost_per_shipped().units();
    let mut rows: Vec<TornadoRow> = cost_rows
        .iter()
        .zip(&dual.gradients)
        .map(|((name, _, delta), g)| TornadoRow {
            name: (*name).to_owned(),
            low_cost: baseline - g.final_cost_per_shipped * delta,
            high_cost: baseline + g.final_cost_per_shipped * delta,
        })
        .collect();

    let shift_substrate_yield = |delta: f64| -> Result<FlowPatch, FlowError> {
        let mut patch = compiled.patch();
        let y = Probability::clamped(base_card.substrate_yield.value() + delta);
        patch.set_yield(&carrier, y)?;
        if base_card.substrate_fab_yield_per_cm2.is_some() {
            // Known-good-substrate markup: the purchase cost pays for
            // the fab's own scrap, so a yield shift moves the carrier
            // cost too — the same expression `production_flow` uses.
            let rate = base_card.substrate_cost_per_cm2 / y.powf(area.cm2()).value();
            patch.set_cost(&carrier, StepCost::per_area(rate, area).total())?;
        }
        Ok(patch)
    };
    let set_coverage = |cov: f64| -> Result<FlowPatch, FlowError> {
        let mut patch = compiled.patch();
        patch.set_coverage("functional test", Probability::clamped(cov))?;
        Ok(patch)
    };
    let patched_cost = |patch: Result<FlowPatch, FlowError>| -> Result<f64, FlowError> {
        Ok(patch?.analyze()?.final_cost_per_shipped().units())
    };
    rows.push(TornadoRow {
        name: "substrate yield ∓5 pts".to_owned(),
        low_cost: patched_cost(shift_substrate_yield(0.05))?,
        high_cost: patched_cost(shift_substrate_yield(-0.05))?,
    });
    rows.push(TornadoRow {
        name: "fault coverage 99.9 → 95 %".to_owned(),
        low_cost: patched_cost(set_coverage(0.999))?,
        high_cost: patched_cost(set_coverage(0.95))?,
    });
    Ok(Tornado::from_rows(baseline, rows))
}

/// The rebuild fallback (the pre-patching implementation, kept for
/// degenerate cards whose perturbed parameters compiled away): every
/// variant is a freshly built flow from a modified cost card.
fn sensitivity_rebuild(
    plan: &BuildUpPlan,
    area: ipass_units::Area,
    base_card: &ipass_core::CostInputs,
) -> Result<ipass_moe::Tornado, ExperimentError> {
    use ipass_moe::TornadoInput;
    use ipass_units::{Money, Probability};

    let flow_for = |card: &ipass_core::CostInputs| plan.production_flow(area, card);
    let baseline = flow_for(base_card)?;

    let scale_chips = |factor: f64| {
        let mut card = base_card.clone();
        for chip in card.chips.iter_mut() {
            chip.cost = chip.cost * factor;
        }
        card
    };
    let scale_substrate = |factor: f64| {
        let mut card = base_card.clone();
        card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * factor;
        card
    };
    let shift_substrate_yield = |delta: f64| {
        let mut card = base_card.clone();
        let y = Probability::clamped(card.substrate_yield.value() + delta);
        card.substrate_yield = y;
        card.substrate_fab_yield_per_cm2 = card.substrate_fab_yield_per_cm2.map(|_| y);
        card
    };
    let set_coverage = |cov: f64| {
        let mut card = base_card.clone();
        card.fault_coverage = Probability::clamped(cov);
        card
    };
    let scale_packaging = |factor: f64| {
        let mut card = base_card.clone();
        card.packaging = card.packaging.map(|(c, y)| (c * factor, y));
        card
    };
    let scale_test = |factor: f64| {
        let mut card = base_card.clone();
        card.final_test_cost = Money::new(card.final_test_cost.units() * factor);
        card
    };

    let inputs = vec![
        TornadoInput {
            name: "chip cost ±10 %",
            low: flow_for(&scale_chips(0.9))?,
            high: flow_for(&scale_chips(1.1))?,
        },
        TornadoInput {
            name: "substrate cost/cm² ±20 %",
            low: flow_for(&scale_substrate(0.8))?,
            high: flow_for(&scale_substrate(1.2))?,
        },
        TornadoInput {
            name: "substrate yield ∓5 pts",
            low: flow_for(&shift_substrate_yield(0.05))?,
            high: flow_for(&shift_substrate_yield(-0.05))?,
        },
        TornadoInput {
            name: "fault coverage 99.9 → 95 %",
            low: flow_for(&set_coverage(0.999))?,
            high: flow_for(&set_coverage(0.95))?,
        },
        TornadoInput {
            name: "test cost ±50 %",
            low: flow_for(&scale_test(0.5))?,
            high: flow_for(&scale_test(1.5))?,
        },
        TornadoInput {
            name: "packaging cost ±30 %",
            low: flow_for(&scale_packaging(0.7))?,
            high: flow_for(&scale_packaging(1.3))?,
        },
    ];
    Ok(ipass_moe::Tornado::evaluate(&baseline, inputs)?)
}

// ---------------------------------------------------------------------
// Design space — volume × substrate yield, beyond the paper's points.
// ---------------------------------------------------------------------

/// A solution's production-economics design space: amortization volume
/// × substrate yield, screened analytically and refined by Monte Carlo
/// (see [`ipass_explore::FlowExplorer::refine`]).
///
/// The paper evaluates each build-up at one volume and one yield card;
/// this experiment asks the family question instead — *at which volumes
/// and substrate yields does the solution's cost story hold?* — and
/// returns the Pareto frontier over *(final cost ↓, shipped fraction ↑)*
/// with only the frontier-adjacent band paying for MC confirmation.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// The paper's name for the explored solution.
    pub label: &'static str,
    /// NRE charged to the run (the 30 000-unit IP mask-set ablation's
    /// figure), amortized along the volume axis.
    pub nre: ipass_units::Money,
    /// The refined exploration.
    pub refined: ipass_explore::Refined,
}

impl DesignSpace {
    /// The exploration as a typed
    /// [`FrontierPlot`](ipass_report::FrontierPlot) artifact: every
    /// screened point, the frontier, and the Monte Carlo confirmations
    /// of the promoted band.
    pub fn artifact(&self) -> ipass_report::FrontierPlot {
        self.refined.frontier_plot(format!(
            "design space — {} (volume × substrate yield, NRE {:.0})",
            self.label,
            self.nre.units()
        ))
    }

    /// Render the frontier and refinement summary (the artifact
    /// pipeline's txt sink).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

/// Explore `solution_index`'s volume × substrate-yield design space on
/// a `grid × grid` screen.
///
/// The production line is planned and compiled **once**; every screen
/// point is a [`ipass_explore::FlowAxis`] patch of the shared compiled
/// program (the substrate-yield axis is a *custom* axis: under a
/// known-good-substrate card the purchase cost pays for the fab's own
/// scrap, so a yield shift moves the carrier cost too — the same
/// expression `production_flow` uses). Promoted points are rebuilt and
/// Monte-Carlo-confirmed with CI-based early stopping.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning, evaluation or simulation
/// fails.
pub fn design_space(solution_index: usize, grid: usize) -> Result<DesignSpace, ExperimentError> {
    use ipass_explore::{
        FlowAxis, FlowExplorer, Levels, Metric, Objective, RefineOptions, SamplerSpec,
    };
    use ipass_moe::{StepCost, StopRule};
    use ipass_units::{Money, Probability};

    let buildup = BuildUp::paper_solutions()[solution_index];
    let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
    let area = plan.area().substrate_area;
    let card = cost_inputs(&buildup);
    let nre = Money::new(30_000.0);

    let flow = plan.production_flow(area, &card)?.with_nre(nre);
    let carrier = flow.line().carrier().name().to_owned();
    let compiled = flow.compiled()?;

    let y0 = card.substrate_yield.value();
    let yields = Levels::linspace((y0 - 0.08).max(0.5), (y0 + 0.05).min(0.999), grid);
    let substrate_yield_axis = {
        let carrier = carrier.clone();
        let card = card.clone();
        FlowAxis::custom("substrate yield", yields, move |y, patch| {
            let y = Probability::clamped(y);
            patch.set_yield(&carrier, y)?;
            if card.substrate_fab_yield_per_cm2.is_some() {
                let rate = card.substrate_cost_per_cm2 / y.powf(area.cm2()).value();
                patch.set_cost(&carrier, StepCost::per_area(rate, area).total())?;
            }
            Ok(())
        })
    };

    let refined = FlowExplorer::new(compiled)
        .axis(FlowAxis::volume(Levels::linspace(1_000.0, 100_000.0, grid)))
        .axis(substrate_yield_axis)
        .objective(Objective::minimize(Metric::FinalCostPerShipped))
        .objective(Objective::maximize(Metric::ShippedFraction))
        .refine(
            &SamplerSpec::Grid,
            &RefineOptions {
                margin: 0.05,
                mc_units: 60_000,
                seed: 2_000,
                stop: Some(StopRule::half_width_95(0.005)),
                ..RefineOptions::default()
            },
            |coords| {
                // Rebuild for MC: the same card surgery, through the
                // flow builder instead of the patch table.
                let mut point_card = card.clone();
                let y = Probability::clamped(coords[1]);
                point_card.substrate_yield = y;
                point_card.substrate_fab_yield_per_cm2 =
                    point_card.substrate_fab_yield_per_cm2.map(|_| y);
                Ok(plan
                    .production_flow(area, &point_card)?
                    .with_nre(nre)
                    .with_volume(coords[0].round() as u64))
            },
        )?;
    Ok(DesignSpace {
        label: paper::SOLUTION_NAMES[solution_index],
        nre,
        refined,
    })
}

// ---------------------------------------------------------------------
// §4.4 — the final design check.
// ---------------------------------------------------------------------

/// The paper's closing validation: "an adaptation of solution 4 has been
/// chosen for the final design. The silicon area of the final layout
/// corresponded well with the predicted value."
///
/// We re-enact it: place solution 4's actual component outlines with the
/// bottom-left skyline packer and compare the resulting silicon area to
/// the trivial-placement prediction.
#[derive(Debug, Clone)]
pub struct FinalDesignCheck {
    /// Predicted silicon substrate area (trivial placement, step 3).
    pub predicted_mm2: f64,
    /// Area of the packed layout (skyline packer, with edge clearance).
    pub packed_mm2: f64,
    /// Components placed.
    pub placed: usize,
}

impl FinalDesignCheck {
    /// Packed / predicted ratio (1.0 = perfect prediction).
    pub fn ratio(&self) -> f64 {
        self.packed_mm2 / self.predicted_mm2
    }

    /// Render the comparison.
    pub fn render(&self) -> String {
        format!(
            "§4.4 final design (solution 4): predicted Si {:.0} mm², packed layout {:.0} mm² \
             ({} parts, ratio {:.2}) — \"corresponded well with the predicted value\"\n",
            self.predicted_mm2,
            self.packed_mm2,
            self.placed,
            self.ratio()
        )
    }
}

/// Re-enact the §4.4 layout-vs-prediction check.
///
/// # Errors
///
/// Returns [`ExperimentError`] if planning fails (packing of the GPS set
/// cannot fail: every part fits the predicted substrate width).
pub fn final_design_check() -> Result<FinalDesignCheck, ExperimentError> {
    use ipass_layout::{Rect, SkylinePacker, SubstrateRule};

    let buildup = BuildUp::paper_solutions()[3];
    let plan = buildup.plan(&gps_bom(&buildup), SelectionObjective::MinArea)?;
    let predicted = plan.area().substrate_area;

    let mut rects = Vec::new();
    for sel in plan.selections() {
        let side = sel.realization.area().square_side_mm();
        for _ in 0..sel.quantity {
            rects.push(Rect::new(side, side));
        }
    }
    let rule = SubstrateRule::mcm_d_si();
    let usable = predicted.square_side_mm() - 2.0 * rule.edge_clearance_mm();
    let packing = SkylinePacker::new(usable)
        .pack(&rects)
        .expect("every GPS part fits the predicted substrate width");
    let packed_side = packing.height().max(usable) + 2.0 * rule.edge_clearance_mm();
    Ok(FinalDesignCheck {
        predicted_mm2: predicted.mm2(),
        packed_mm2: packed_side * packed_side,
        placed: packing.placements().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_the_papers_argument() {
        let fig = fig1();
        assert_eq!(fig.rows.len(), 6);
        // Bodies shrink monotonically, footprints much more slowly.
        for w in fig.rows.windows(2) {
            assert!(w[1].body_mm2 < w[0].body_mm2);
            assert!(w[1].footprint_mm2 < w[0].footprint_mm2);
        }
        let first = &fig.rows[0];
        let last = &fig.rows[5];
        assert!(first.body_mm2 / last.body_mm2 > 50.0);
        assert!(first.footprint_mm2 / last.footprint_mm2 < 15.0);
        assert!(fig.render().contains("0603"));
    }

    #[test]
    fn table1_synthesis_tracks_paper_values() {
        let t = table1().unwrap();
        for row in &t.rows {
            let rel = (row.measured_mm2 - row.paper_mm2).abs() / row.paper_mm2;
            assert!(
                rel < 0.35,
                "{}: measured {} vs paper {} ({}% off)",
                row.label,
                row.measured_mm2,
                row.paper_mm2,
                (rel * 100.0) as i32
            );
        }
        assert!(t.render().contains("IP-R"));
    }

    #[test]
    fn fig3_reproduces_the_area_ladder() {
        let fig = fig3().unwrap();
        for row in &fig.rows {
            assert!(
                (row.measured_percent - row.paper_percent).abs() < 3.0,
                "{}: measured {:.1}% vs paper {:.0}%",
                row.label,
                row.measured_percent,
                row.paper_percent
            );
        }
        assert!(fig.render().contains("Fig. 3"));
    }

    #[test]
    fn fig5_reproduces_the_cost_ordering() {
        let fig = fig5().unwrap();
        let m: Vec<f64> = fig.rows.iter().map(|r| r.measured_percent).collect();
        // Ordering: 1 < 2 < 4 < 3.
        assert!(m[0] < m[1] && m[1] < m[3] && m[3] < m[2], "{m:?}");
        // Magnitudes within 2.5 points of the paper.
        for row in &fig.rows {
            assert!(
                (row.measured_percent - row.paper_percent).abs() < 2.5,
                "{}: measured {:.1}% vs paper {:.1}%",
                row.label,
                row.measured_percent,
                row.paper_percent
            );
        }
        // Chip cost dominates the direct cost (Fig. 5's callout).
        for row in &fig.rows {
            assert!(row.chip_cost / row.direct_cost > 0.5);
        }
    }

    #[test]
    fn fig6_picks_solution_4() {
        let fig = fig6().unwrap();
        assert!(fig.table.best().name.contains("IP&SMD"));
        let foms: Vec<f64> = fig.table.rows().iter().map(|r| r.fom).collect();
        assert!((foms[0] - 1.0).abs() < 1e-9);
        assert!(
            (foms[1] - paper::FIG6_FOM[1]).abs() < 0.15,
            "sol2 {}",
            foms[1]
        );
        assert!(
            (foms[2] - paper::FIG6_FOM[2]).abs() < 0.15,
            "sol3 {}",
            foms[2]
        );
        assert!(
            (foms[3] - paper::FIG6_FOM[3]).abs() < 0.3,
            "sol4 {}",
            foms[3]
        );
        assert!(fig.render().contains("◀ chosen"));
    }

    #[test]
    fn fig4_model_and_simulation() {
        let fig = fig4(42).unwrap();
        // The generic model's stages (Fig. 4's boxes).
        let joined = fig.stages.join(" | ");
        assert!(joined.contains("chip assembly"));
        assert!(joined.contains("wire bonding"));
        assert!(joined.contains("SMD mounting"));
        assert!(joined.contains("functional test"));
        assert!(joined.contains("scrap"));
        // Conservation.
        assert!((fig.shipped() + fig.scrapped() - fig.started as f64).abs() < 0.5);
        assert!(fig.render().contains("7799"));
    }

    #[test]
    fn final_design_layout_matches_prediction() {
        let check = final_design_check().unwrap();
        assert_eq!(check.placed, 127); // 2 dies + 112 discretes + 13 filter elements
                                       // "Corresponded well": within 25 % of the trivial prediction.
        assert!(
            (0.8..1.25).contains(&check.ratio()),
            "packed/predicted ratio {}",
            check.ratio()
        );
        assert!(check.render().contains("final design"));
    }

    #[test]
    fn sensitivity_ranks_chip_cost_first() {
        let tornado = sensitivity(3).unwrap();
        assert!(!tornado.rows().is_empty());
        // The calibrated chip set dominates everything else.
        assert_eq!(tornado.rows()[0].name, "chip cost ±10 %");
        assert!(tornado.baseline_cost() > 200.0);
        assert!(tornado.render().contains("█"));
    }

    #[test]
    fn sensitivity_fallback_agrees_with_patched_fast_path() {
        // The rebuild fallback (taken for degenerate cards) and the
        // patched fast path must describe the same tornado on a
        // regular card.
        let buildup = BuildUp::paper_solutions()[3];
        let plan = buildup
            .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
            .unwrap();
        let area = plan.area().substrate_area;
        let card = cost_inputs(&buildup);
        let patched = sensitivity_patched(&plan, area, &card).unwrap();
        let rebuilt = sensitivity_rebuild(&plan, area, &card).unwrap();
        assert_eq!(patched.baseline_cost(), rebuilt.baseline_cost());
        assert_eq!(patched.rows().len(), rebuilt.rows().len());
        for (a, b) in patched.rows().iter().zip(rebuilt.rows().iter()) {
            assert_eq!(a.name, b.name);
            let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(1.0);
            assert!(close(a.low_cost, b.low_cost), "{}: low", a.name);
            assert!(close(a.high_cost, b.high_cost), "{}: high", a.name);
        }
    }

    #[test]
    fn design_space_refines_volume_yield_grid() {
        let space = design_space(1, 12).unwrap();
        let refined = &space.refined;
        assert_eq!(refined.screen.points.len(), 144);
        assert!(!refined.frontier().members().is_empty());
        // The analytic screen prunes the dominated interior: only the
        // frontier-adjacent band pays for Monte Carlo.
        assert!(
            refined.promoted_fraction() <= 0.30,
            "promoted {:.1} %",
            100.0 * refined.promoted_fraction()
        );
        // Economics sanity on the screen: at fixed substrate yield,
        // larger volume amortizes the mask-set NRE away.
        let p0 = &refined.screen.points[0]; // volume 1 000, lowest yield
        let p_last_vol = &refined.screen.points[132]; // volume 100 000, lowest yield
        assert_eq!(p0.coords[1], p_last_vol.coords[1]);
        assert!(p_last_vol.objectives[0] < p0.objectives[0]);
        // The KGS card makes higher substrate yield strictly better
        // (cheaper carrier *and* more shipped), so the frontier
        // discovers the push-both-axes corner.
        for m in refined.frontier().members() {
            assert_eq!(m.coords[0], 100_000.0, "frontier off the max volume");
        }
        // MC confirms the analytic screen closely (the patch's coupled
        // carrier-cost/yield surgery equals the rebuilt card's).
        for c in &refined.confirmations {
            let analytic = &refined.screen.points[c.index].objectives;
            let rel = (c.objectives[0] - analytic[0]).abs() / analytic[0];
            assert!(
                rel < 0.03,
                "point {}: MC {} vs analytic {}",
                c.index,
                c.objectives[0],
                analytic[0]
            );
        }
        assert!(space.render().contains("design space"));
    }

    #[test]
    fn directed_screen_reproduces_solution2_golden_frontier() {
        // The golden 32×32 substrate-cost × test-coverage grid of the
        // real solution-2 flow (the `explore_frontier` bench shape):
        // gradient-directed screening must reproduce the full-grid
        // frontier exactly while evaluating fewer analytic points.
        use ipass_explore::{FlowAxis, FlowExplorer, Levels, Metric, Objective, SamplerSpec};

        let buildup = BuildUp::paper_solutions()[1];
        let plan = buildup
            .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
            .unwrap();
        let area = plan.area().substrate_area;
        let flow = plan.production_flow(area, &cost_inputs(&buildup)).unwrap();
        let carrier = flow.line().carrier().name().to_owned();
        let explorer = FlowExplorer::new(flow.compiled().unwrap())
            .axis(FlowAxis::cost_scale(
                &carrier,
                Levels::linspace(0.5, 1.5, 32),
            ))
            .axis(FlowAxis::coverage(
                "functional test",
                Levels::linspace(0.9, 0.999, 32),
            ))
            .objective(Objective::minimize(Metric::FinalCostPerShipped))
            .objective(Objective::minimize(Metric::EscapeRate));
        let full = explorer.screen_frontier(&SamplerSpec::Grid).unwrap();
        let directed = explorer.screen_frontier_directed().unwrap();
        assert_eq!(directed.frontier, full);
        assert!(
            directed.evaluated < directed.grid_points,
            "directed paid {} of {} points",
            directed.evaluated,
            directed.grid_points
        );
    }

    #[test]
    fn mc_and_analytic_fig5_agree() {
        let analytic = fig5().unwrap();
        let mc = fig5_monte_carlo(60_000, 7).unwrap();
        for (a, m) in analytic.rows.iter().zip(mc.rows.iter()) {
            assert!(
                (a.measured_percent - m.measured_percent).abs() < 1.0,
                "{}: analytic {:.1}% vs MC {:.1}%",
                a.label,
                a.measured_percent,
                m.measured_percent
            );
        }
    }
}
