//! The protocol's reference flow: a small, fully deterministic
//! production line the golden wire transcripts and the test battery
//! are pinned against. Deliberately *not* one of the paper's GPS
//! solutions — those evolve with the model; this one exists to keep
//! the wire format stable and must not change shape.

use ipass_moe::{
    Attach, CostCategory, FailAction, Flow, Line, Part, Process, StepCost, Test, YieldModel,
};
use ipass_units::{Money, Probability};

fn p(v: f64) -> Probability {
    Probability::new(v).expect("literal probabilities are in range")
}

/// The `demo` flow: carrier `c`, process `p`, attach `a` consuming two
/// `die` parts, final test `ft` scrapping failures.
pub fn demo_flow() -> Flow {
    let line = Line::builder(
        "demo",
        Part::new("c", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(10.0))),
    )
    .process(
        Process::new("p")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_yield(YieldModel::flat(p(0.9))),
    )
    .attach(
        Attach::new("a").input(
            Part::new("die", CostCategory::Chip)
                .with_cost(StepCost::fixed(Money::new(5.0)))
                .with_incoming_yield(YieldModel::flat(p(0.95))),
            2,
        ),
    )
    .test(
        Test::new("ft")
            .with_cost(StepCost::fixed(Money::new(0.5)))
            .with_coverage(p(0.99))
            .on_fail(FailAction::Scrap),
    )
    .build()
    .expect("the reference line is valid");
    Flow::new(line)
}
