//! A minimal blocking client for the `ipassd` wire protocol — the
//! harness the test battery, the load bench and `ipassd --smoke` all
//! drive the server with.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One protocol connection: line-oriented request/response.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A generous client-side guard so a wedged server fails a test
        // instead of hanging it.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Send one request line and read the one response line (both
    /// without their trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including a server-side close).
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_raw(line.as_bytes())?;
        self.send_raw(b"\n")?;
        self.read_line()
    }

    /// Write raw bytes without framing — the robustness tests use this
    /// for partial writes and non-UTF-8 payloads.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut stream = self.reader.get_ref();
        stream.write_all(bytes)?;
        stream.flush()
    }

    /// Read one response line (trailing newline stripped).
    ///
    /// # Errors
    ///
    /// Propagates read failures; a clean server-side close surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Whether the server has closed this connection (a zero-byte
    /// read). Consumes at most one pending byte of the stream, so only
    /// call it when no response is outstanding.
    pub fn is_closed(&mut self) -> bool {
        let stream = self.reader.get_ref();
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let mut probe = [0u8; 1];
        matches!(self.reader.get_ref().take(1).read(&mut probe), Ok(0))
    }
}
