//! `ipass-serve` — the `ipassd` serving layer for compiled flows.
//!
//! The paper's cost methodology is compile-once / query-many: a flow
//! compiles to a routing program once, and every scenario question is
//! a cheap patched re-evaluation. This crate puts that model behind a
//! long-running TCP server so many clients share one compiled design
//! space: a newline-delimited JSON protocol (verbs `list`, `analyze`,
//! `patch`, `mc`, `stats`, `shutdown`) over `std::net`, with
//!
//! * a compiled-program cache keyed by flow hash
//!   ([`registry::FlowRegistry`], backed by `ipass_sim::Memo`, hit/miss
//!   counted on the probe plane),
//! * request batching onto the `ipass-sim` executor
//!   (one parallel fan-out per accumulated batch),
//! * per-request derived seeds ([`protocol::derived_seed`]) so
//!   concurrent clients get bit-identical answers regardless of
//!   interleaving, and
//! * robustness plumbing: bounded request size, per-connection idle
//!   timeouts, typed error responses for every failure, graceful
//!   shutdown that drains in-flight work.
//!
//! DESIGN.md's serving-layer section documents the protocol grammar
//! and the invariants the test battery enforces; the golden wire
//! transcripts under `tests/golden/` pin the encoding byte-for-byte.
//!
//! # Examples
//!
//! ```
//! use ipass_serve::{Client, FlowRegistry, Server, ServerConfig};
//!
//! let mut registry = FlowRegistry::new();
//! registry.register("demo", ipass_serve::testflow::demo_flow());
//! let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let listing = client.request(r#"{"verb":"list"}"#)?;
//! assert_eq!(listing, r#"{"ok":true,"verb":"list","flows":["demo"]}"#);
//! client.request(r#"{"verb":"shutdown"}"#)?;
//! server.wait();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod client;
mod engine;
pub mod protocol;
mod registry;
mod server;
pub mod testflow;

pub use client::Client;
pub use engine::Engine;
pub use protocol::{
    derived_seed, parse_request, ErrorCode, Request, ServeError, MAX_MC_UNITS, MAX_REQUEST_BYTES,
};
pub use registry::FlowRegistry;
pub use server::{Server, ServerConfig};
