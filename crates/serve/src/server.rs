//! The TCP server: accept loop, per-connection framing, graceful
//! shutdown.
//!
//! Each connection gets a reader thread that frames newline-delimited
//! requests, answers framing-level failures (oversized lines, invalid
//! UTF-8, idle timeouts) with typed errors directly, and hands every
//! well-framed line to the shared [`Batcher`]. Reads poll with a short
//! timeout so connections notice the shutdown latch promptly; a
//! `shutdown` request (or [`Server::shutdown`]) stops the accept loop,
//! lets every in-flight request finish and be answered, then joins all
//! threads — no request that reached the queue is ever dropped.

use crate::batch::{BatchHandle, Batcher};
use crate::engine::Engine;
use crate::protocol::{ErrorCode, MAX_REQUEST_BYTES};
use crate::registry::FlowRegistry;
use ipass_sim::Executor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs (all have serviceable defaults).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads of the batch executor.
    pub threads: usize,
    /// Hard bound on one request line, bytes.
    pub max_request_bytes: usize,
    /// Poll granularity of connection reads — the latency bound on
    /// noticing the shutdown latch, not a protocol timeout.
    pub read_poll: Duration,
    /// Close a connection (with a typed `timeout` error) after this
    /// much client silence.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 2,
            max_request_bytes: MAX_REQUEST_BYTES,
            read_poll: Duration::from_millis(25),
            idle_timeout: Duration::from_secs(300),
        }
    }
}

/// A running `ipassd` server.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    batcher: Batcher,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(
        registry: FlowRegistry,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(registry));
        let batcher = Batcher::start(Arc::clone(&engine), Executor::new(config.threads));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_engine = Arc::clone(&engine);
        let accept_connections = Arc::clone(&connections);
        let batch_handle = batcher.handle();
        let accept = std::thread::spawn(move || {
            accept_loop(
                &listener,
                &accept_engine,
                &accept_connections,
                &batch_handle,
                &config,
            );
        });

        Ok(Server {
            addr,
            engine,
            accept: Some(accept),
            connections,
            batcher,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine's cumulative [`ipass_obs::RunStats`] snapshot.
    pub fn run_stats(&self) -> ipass_obs::RunStats {
        self.engine.run_stats()
    }

    /// Whether shutdown has been requested (by verb or by
    /// [`Server::shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.engine.shutdown_requested()
    }

    /// Request shutdown programmatically and wake the accept loop.
    pub fn shutdown(&self) {
        self.engine.request_shutdown();
        self.wake_accept();
    }

    /// Block until shutdown is requested (e.g. by a client's
    /// `shutdown` verb), then drain and join everything.
    pub fn wait(self) {
        while !self.engine.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.join();
    }

    /// Drain in-flight work and join all threads. Call after
    /// [`Server::shutdown`] (it is invoked implicitly if shutdown was
    /// requested over the wire).
    pub fn join(mut self) {
        self.engine.request_shutdown();
        self.wake_accept();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles =
            std::mem::take(&mut *self.connections.lock().unwrap_or_else(|p| p.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
        self.batcher.stop();
    }

    /// The accept loop blocks in `accept()`; a throwaway local
    /// connection unblocks it so it can observe the latch.
    fn wake_accept(&self) {
        let _ = TcpStream::connect(self.addr);
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    batcher: &BatchHandle,
    config: &ServerConfig,
) {
    for stream in listener.incoming() {
        if engine.shutdown_requested() {
            break;
        }
        let Ok(stream) = stream else { continue };
        engine.serve.connections.fetch_add(1, Ordering::Relaxed);
        let engine = Arc::clone(engine);
        let batcher = batcher.clone();
        let config = config.clone();
        let handle =
            std::thread::spawn(move || serve_connection(stream, &engine, &batcher, &config));
        connections
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(handle);
    }
}

fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Engine>,
    batcher: &BatchHandle,
    config: &ServerConfig,
) {
    if stream.set_read_timeout(Some(config.read_poll)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut discarding = false;
    let mut last_activity = Instant::now();
    loop {
        if engine.shutdown_requested() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                last_activity = Instant::now();
                buf.extend_from_slice(&chunk[..n]);
                if !drain_lines(
                    &mut buf,
                    &mut discarding,
                    &mut stream,
                    engine,
                    batcher,
                    config,
                ) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= config.idle_timeout {
                    let line = engine.frame_error(
                        ErrorCode::Timeout,
                        format!(
                            "connection idle for more than {:?}; closing",
                            config.idle_timeout
                        ),
                    );
                    let _ = write_response(&mut stream, engine, &line);
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Process every complete line in `buf`; returns `false` when the
/// connection should close (write failure). Handles the oversized-line
/// protocol: a buffer that outgrows the bound without a newline is
/// answered once and then discarded up to the next newline.
fn drain_lines(
    buf: &mut Vec<u8>,
    discarding: &mut bool,
    stream: &mut TcpStream,
    engine: &Arc<Engine>,
    batcher: &BatchHandle,
    config: &ServerConfig,
) -> bool {
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
        let line_bytes = &line_bytes[..line_bytes.len() - 1];
        if std::mem::take(discarding) {
            // The tail of an already-answered oversized line.
            continue;
        }
        engine
            .serve
            .bytes_in
            .fetch_add(line_bytes.len() as u64 + 1, Ordering::Relaxed);
        let line_bytes = match line_bytes.split_last() {
            Some((b'\r', rest)) => rest,
            _ => line_bytes,
        };
        if line_bytes.is_empty() {
            continue; // blank keep-alive lines are not requests
        }
        let response = if line_bytes.len() > config.max_request_bytes {
            engine.frame_error(
                ErrorCode::OversizedRequest,
                format!(
                    "request line is {} bytes; the bound is {}",
                    line_bytes.len(),
                    config.max_request_bytes
                ),
            )
        } else {
            match std::str::from_utf8(line_bytes) {
                Err(_) => {
                    engine.frame_error(ErrorCode::InvalidUtf8, "request line is not valid UTF-8")
                }
                Ok(line) => batcher.submit(line.to_owned()),
            }
        };
        if !write_response(stream, engine, &response) {
            return false;
        }
    }
    if !*discarding && buf.len() > config.max_request_bytes {
        // No newline yet and already over budget: answer now, swallow
        // the rest of the line when it eventually arrives.
        let response = engine.frame_error(
            ErrorCode::OversizedRequest,
            format!(
                "request line exceeds the {}-byte bound",
                config.max_request_bytes
            ),
        );
        buf.clear();
        *discarding = true;
        if !write_response(stream, engine, &response) {
            return false;
        }
    }
    true
}

fn write_response(stream: &mut TcpStream, engine: &Arc<Engine>, line: &str) -> bool {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    engine
        .serve
        .bytes_out
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .is_ok()
}
