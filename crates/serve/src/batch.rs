//! Request batching onto the `ipass-sim` executor.
//!
//! Connection threads never evaluate requests themselves: they enqueue
//! `(request line, reply channel)` jobs through a [`BatchHandle`] and
//! block on the reply. A single dispatcher thread drains whatever has
//! accumulated since the last dispatch and evaluates the whole batch
//! in parallel through [`Executor::map`] — under load, concurrent
//! clients amortize into one executor fan-out instead of a
//! thread-per-request stampede.
//!
//! Batching is invisible on the wire: responses are pure functions of
//! request content (see [`Engine::handle_line`]), so *which* batch a
//! request lands in can change latency but never bytes. The
//! arrival-timing-dependent grouping is observable only through the
//! `batches` / `batched_requests` counters, which is exactly why
//! [`ipass_obs::RunStats::invariant_core`] zeroes those two fields.
//!
//! [`Engine::handle_line`]: crate::engine::Engine::handle_line

use crate::engine::Engine;
use crate::protocol::{ErrorCode, ServeError};
use ipass_sim::Executor;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One queued request: the raw line and where to send the response.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

#[derive(Default)]
struct Queue {
    jobs: Vec<Job>,
    stopped: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

/// A cloneable submission handle onto the dispatcher's queue.
#[derive(Debug, Clone)]
pub(crate) struct BatchHandle {
    shared: Arc<Shared>,
}

impl BatchHandle {
    /// Enqueue one request line and block until its response arrives.
    /// After [`Batcher::stop`] the queue refuses new work with a typed
    /// error rather than hanging.
    pub fn submit(&self, line: String) -> String {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            if queue.stopped {
                return ServeError::new(ErrorCode::InternalError, "server is shutting down")
                    .response_line();
            }
            queue.jobs.push(Job { line, reply: tx });
        }
        self.shared.ready.notify_one();
        rx.recv().unwrap_or_else(|_| {
            ServeError::new(ErrorCode::InternalError, "dispatcher dropped the request")
                .response_line()
        })
    }
}

/// The batch dispatcher: owns the worker thread; stopped (draining
/// queued work first) on [`Batcher::stop`] or drop.
#[derive(Debug)]
pub(crate) struct Batcher {
    handle: BatchHandle,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Start the dispatcher thread, evaluating batches on `executor`.
    pub fn start(engine: Arc<Engine>, executor: Executor) -> Batcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            ready: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || dispatch_loop(&worker_shared, &engine, &executor));
        Batcher {
            handle: BatchHandle { shared },
            worker: Some(worker),
        }
    }

    /// A new submission handle for a connection thread.
    pub fn handle(&self) -> BatchHandle {
        self.handle.clone()
    }

    /// Stop the dispatcher: queued work is still drained and answered,
    /// then the worker exits and is joined.
    pub fn stop(&mut self) {
        {
            let mut queue = self
                .handle
                .shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            queue.stopped = true;
        }
        self.handle.shared.ready.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.stop();
    }
}

fn dispatch_loop(shared: &Shared, engine: &Engine, executor: &Executor) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            while queue.jobs.is_empty() && !queue.stopped {
                queue = shared.ready.wait(queue).unwrap_or_else(|p| p.into_inner());
            }
            if queue.jobs.is_empty() {
                // Stopped and drained.
                return;
            }
            std::mem::take(&mut queue.jobs)
        };
        engine.serve.batches.fetch_add(1, Ordering::Relaxed);
        engine
            .serve
            .batched_requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        // `mpsc::Sender` is not `Sync`, so split the lines (mapped in
        // parallel) from the reply channels (answered serially after).
        let (lines, replies): (Vec<String>, Vec<mpsc::Sender<String>>) =
            batch.into_iter().map(|j| (j.line, j.reply)).unzip();
        let responses = executor.map(&lines, |_, line| engine.handle_line(line));
        for (reply, response) in replies.into_iter().zip(responses) {
            // A client that hung up mid-flight is not an error.
            let _ = reply.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::FlowRegistry;
    use crate::testflow::demo_flow;

    fn batcher(threads: usize) -> (Arc<Engine>, Batcher) {
        let mut reg = FlowRegistry::new();
        reg.register("demo", demo_flow());
        let engine = Arc::new(Engine::new(reg));
        let b = Batcher::start(Arc::clone(&engine), Executor::new(threads));
        (engine, b)
    }

    #[test]
    fn batched_responses_match_direct_evaluation() {
        let (engine, b) = batcher(2);
        let line = r#"{"verb":"analyze","flow":"demo"}"#;
        let direct = engine.handle_line(line);
        assert_eq!(b.handle().submit(line.to_owned()), direct);
    }

    #[test]
    fn concurrent_submissions_all_get_answers_and_are_counted() {
        let (engine, mut b) = batcher(4);
        let handle = b.handle();
        std::thread::scope(|scope| {
            for i in 0..16 {
                let handle = handle.clone();
                scope.spawn(move || {
                    let line = format!(r#"{{"verb":"mc","flow":"demo","units":200,"seed":{i}}}"#);
                    let resp = handle.submit(line);
                    assert!(resp.starts_with(r#"{"ok":true"#), "{resp}");
                });
            }
        });
        b.stop();
        let stats = engine.run_stats().serve;
        assert_eq!(stats.batched_requests, 16);
        assert!(stats.batches >= 1 && stats.batches <= 16);
        assert_eq!(stats.responses_ok, 16);
    }

    #[test]
    fn stop_refuses_new_work_with_a_typed_error() {
        let (_, mut b) = batcher(1);
        let handle = b.handle();
        b.stop();
        let resp = handle.submit(r#"{"verb":"list"}"#.to_owned());
        assert!(resp.contains("internal-error"), "{resp}");
    }
}
