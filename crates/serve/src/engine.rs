//! Request evaluation: one pure function from request line to response
//! line, plus the server's counter plane.
//!
//! Every response-producing path is a pure function of the request
//! content (the `stats` verb excepted, by design) — this is what makes
//! the wire-level determinism property testable: batching, thread
//! counts and client interleaving can change *when* a request is
//! evaluated but never *what* it answers.

use crate::protocol::{derived_seed, parse_request, ErrorCode, Request, ServeError};
use crate::registry::FlowRegistry;
use ipass_moe::{CostReport, Probe, SimOptions};
use ipass_obs::{RunStats, ServeStats};
use ipass_report::json::Json;
use ipass_report::Artifact;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Relaxed lifetime counters of the serving plane (the atomics behind
/// [`ServeStats`]). Like the memo counters, totals are exact once the
/// server is quiescent.
#[derive(Debug, Default)]
pub(crate) struct ServeCounters {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub responses_ok: AtomicU64,
    pub responses_err: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
}

impl ServeCounters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses_ok: self.responses_ok.load(Ordering::Relaxed),
            responses_err: self.responses_err.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
        }
    }
}

/// The serving core: registry, counters and the shutdown latch. Shared
/// (via `Arc`) between the accept loop, every connection thread and the
/// batch dispatcher.
#[derive(Debug)]
pub struct Engine {
    registry: FlowRegistry,
    pub(crate) serve: ServeCounters,
    /// Portable cores of every probed Monte Carlo run, merged — the
    /// engine-side half of the `stats` verb.
    engine_stats: Mutex<RunStats>,
    shutdown: AtomicBool,
}

impl Engine {
    /// An engine serving `registry`.
    pub fn new(registry: FlowRegistry) -> Engine {
        Engine {
            registry,
            serve: ServeCounters::default(),
            engine_stats: Mutex::new(RunStats::default()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Trigger shutdown programmatically (the `shutdown` verb does the
    /// same).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The cumulative [`RunStats`] of this server: merged engine
    /// counters from probed runs, the serve plane from the connection
    /// counters, the memo plane from the compiled-program cache.
    pub fn run_stats(&self) -> RunStats {
        let mut stats = *self.engine_stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.serve = self.serve.snapshot();
        stats.memo = self.registry.cache_stats();
        stats
    }

    /// Evaluate one request line to one response line (no trailing
    /// newline). Never panics: handler panics are caught and answered
    /// as typed `internal-error` responses.
    pub fn handle_line(&self, line: &str) -> String {
        self.serve.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            parse_request(line).and_then(|req| self.dispatch(req))
        }));
        let (response, ok) = match outcome {
            Ok(Ok(json)) => (json.render_compact(), true),
            Ok(Err(err)) => (err.response_line(), false),
            Err(_) => (
                ServeError::new(
                    ErrorCode::InternalError,
                    "request handler panicked; the server keeps serving",
                )
                .response_line(),
                false,
            ),
        };
        self.count_response(ok);
        response
    }

    /// A connection-level (framing) error as a counted response line:
    /// oversized lines, invalid UTF-8 and idle timeouts never reach the
    /// parser but still produce typed, counted responses.
    pub fn frame_error(&self, code: ErrorCode, message: impl Into<String>) -> String {
        self.serve.requests.fetch_add(1, Ordering::Relaxed);
        self.count_response(false);
        ServeError::new(code, message).response_line()
    }

    fn count_response(&self, ok: bool) {
        if ok {
            &self.serve.responses_ok
        } else {
            &self.serve.responses_err
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn dispatch(&self, req: Request) -> Result<Json, ServeError> {
        match req {
            Request::List => Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::str("list")),
                ("flows", Json::strs(self.registry.names())),
            ])),
            Request::Analyze { flow } => {
                let report = self
                    .registry
                    .compiled(&flow)?
                    .analyze()
                    .map_err(engine_error)?;
                Ok(report_response("analyze", &flow, Vec::new(), &report))
            }
            Request::Patch {
                flow,
                directives,
                volume,
            } => {
                let compiled = self.registry.compiled(&flow)?;
                let mut patch = compiled.patch();
                for directive in &directives {
                    patch.apply(directive).map_err(engine_error)?;
                }
                if let Some(v) = volume {
                    patch.set_volume(v);
                }
                let report = patch.analyze().map_err(engine_error)?;
                let extra = vec![("writes", Json::Int(patch.writes() as i64))];
                Ok(report_response("patch", &flow, extra, &report))
            }
            Request::Mc { flow, units, seed } => {
                let effective = derived_seed(&flow, seed);
                let options = SimOptions::new(units)
                    .with_seed(effective)
                    .with_threads(1)
                    .with_probe(Probe::ON);
                let summary = self
                    .registry
                    .compiled(&flow)?
                    .simulate_summary(&options)
                    .map_err(engine_error)?;
                if let Some(stats) = &summary.stats {
                    let mut cumulative =
                        self.engine_stats.lock().unwrap_or_else(|p| p.into_inner());
                    cumulative.merge(&stats.invariant_core());
                }
                let extra = vec![
                    ("units", Json::Int(units as i64)),
                    ("seed", Json::str(seed.to_string())),
                    ("derived_seed", Json::str(effective.to_string())),
                ];
                Ok(report_response("mc", &flow, extra, &summary.report))
            }
            Request::Stats => Ok(self.stats_response()),
            Request::Shutdown => {
                self.request_shutdown();
                Ok(Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("verb", Json::str("shutdown")),
                ]))
            }
        }
    }

    fn stats_response(&self) -> Json {
        let stats = self.run_stats();
        let count = |v: u64| Json::Int(v as i64);
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("verb", Json::str("stats")),
            (
                "serve",
                Json::obj(vec![
                    ("connections", count(stats.serve.connections)),
                    ("requests", count(stats.serve.requests)),
                    ("responses_ok", count(stats.serve.responses_ok)),
                    ("responses_err", count(stats.serve.responses_err)),
                    ("bytes_in", count(stats.serve.bytes_in)),
                    ("bytes_out", count(stats.serve.bytes_out)),
                    ("batches", count(stats.serve.batches)),
                    ("batched_requests", count(stats.serve.batched_requests)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", count(stats.memo.hits)),
                    ("misses", count(stats.memo.misses)),
                    ("dropped", count(stats.memo.dropped)),
                    ("poisoned", count(stats.memo.poisoned)),
                ]),
            ),
            (
                "engine",
                Json::obj(vec![
                    ("units", count(stats.units)),
                    ("draws", count(stats.draws)),
                    ("rework_attempts", count(stats.rework_attempts)),
                    ("sub_units_built", count(stats.sub_units_built)),
                    ("patch_writes", count(stats.patch_writes)),
                ]),
            ),
        ])
    }
}

fn engine_error(e: ipass_moe::FlowError) -> ServeError {
    ServeError::new(ErrorCode::EngineError, e.to_string())
}

/// The shared `ok` response layout: verb, flow, verb-specific members,
/// then the cost report in the artifact JSON encoding (the same
/// [`Artifact::to_json`] tree `ipass artifact --format json` commits).
fn report_response(verb: &str, flow: &str, extra: Vec<(&str, Json)>, report: &CostReport) -> Json {
    let mut members = vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::str(verb)),
        ("flow", Json::str(flow)),
    ];
    members.extend(extra);
    members.push(("report", Artifact::Table(report.artifact_table()).to_json()));
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testflow::demo_flow;
    use ipass_report::json;

    fn engine() -> Engine {
        let mut reg = FlowRegistry::new();
        reg.register("demo", demo_flow());
        Engine::new(reg)
    }

    #[test]
    fn responses_are_pure_functions_of_the_request() {
        let e = engine();
        for line in [
            r#"{"verb":"list"}"#,
            r#"{"verb":"analyze","flow":"demo"}"#,
            r#"{"verb":"patch","flow":"demo","directives":[{"scale":"cost","slot":"c","factor":2}]}"#,
            r#"{"verb":"mc","flow":"demo","units":2000,"seed":42}"#,
        ] {
            assert_eq!(e.handle_line(line), e.handle_line(line), "{line}");
        }
    }

    #[test]
    fn mc_seed_defaults_and_derivation_show_up_in_the_response() {
        let e = engine();
        let with_default = e.handle_line(r#"{"verb":"mc","flow":"demo","units":500}"#);
        let with_zero = e.handle_line(r#"{"verb":"mc","flow":"demo","units":500,"seed":0}"#);
        assert_eq!(with_default, with_zero);
        assert_eq!(
            json::string_field(&with_default, "derived_seed").unwrap(),
            derived_seed("demo", 0).to_string()
        );
    }

    #[test]
    fn engine_errors_are_typed_responses() {
        let e = engine();
        let resp = e.handle_line(r#"{"verb":"analyze","flow":"ghost"}"#);
        assert_eq!(json::string_field(&resp, "ok"), Some("false"));
        let err = json::field_value(&resp, "error").unwrap();
        assert_eq!(json::string_field(err, "code"), Some("unknown-flow"));
        let resp = e.handle_line(
            r#"{"verb":"patch","flow":"demo","directives":[{"set":"cost","slot":"ghost","value":1}]}"#,
        );
        let err = json::field_value(&resp, "error").unwrap();
        assert_eq!(json::string_field(err, "code"), Some("engine-error"));
    }

    #[test]
    fn stats_counts_requests_and_cache_traffic() {
        let e = engine();
        let _ = e.handle_line(r#"{"verb":"analyze","flow":"demo"}"#);
        let _ = e.handle_line(r#"{"verb":"analyze","flow":"demo"}"#);
        let _ = e.handle_line(r#"{"verb":"nope"}"#);
        let resp = e.handle_line(r#"{"verb":"stats"}"#);
        let serve = json::field_value(&resp, "serve").unwrap();
        assert_eq!(json::number_field(serve, "requests"), Some(4.0));
        assert_eq!(json::number_field(serve, "responses_ok"), Some(2.0));
        assert_eq!(json::number_field(serve, "responses_err"), Some(1.0));
        let cache = json::field_value(&resp, "cache").unwrap();
        assert_eq!(json::number_field(cache, "hits"), Some(1.0));
        assert_eq!(json::number_field(cache, "misses"), Some(1.0));
    }

    #[test]
    fn mc_merges_portable_probe_cores() {
        let e = engine();
        let _ = e.handle_line(r#"{"verb":"mc","flow":"demo","units":1000,"seed":1}"#);
        let _ = e.handle_line(r#"{"verb":"mc","flow":"demo","units":500,"seed":2}"#);
        let stats = e.run_stats();
        assert_eq!(stats.units, 1500);
        assert!(stats.draws > 0);
    }

    #[test]
    fn shutdown_verb_latches() {
        let e = engine();
        assert!(!e.shutdown_requested());
        let resp = e.handle_line(r#"{"verb":"shutdown"}"#);
        assert_eq!(resp, r#"{"ok":true,"verb":"shutdown"}"#);
        assert!(e.shutdown_requested());
    }
}
