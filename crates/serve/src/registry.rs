//! The flow registry: named flows plus the compiled-program cache.
//!
//! Compilation (validation, label indexing, op lowering) is the
//! expensive, shareable step of the compile-once / query-many model;
//! the registry performs it at most once per flow by keying an
//! [`ipass_sim::Memo`] on the *flow hash* — FNV-1a over the flow's
//! canonical debug form. Every request for a flow goes through the
//! cache, so the hit/miss counters ([`Memo::stats`]) measure exactly
//! how much compilation the serving layer is amortizing, on the same
//! probe plane PR 9 introduced.

use crate::protocol::{fnv1a, ErrorCode, ServeError};
use ipass_moe::{CompiledFlow, Flow};
use ipass_sim::Memo;
use std::sync::Arc;

/// A named, registered flow.
#[derive(Debug)]
struct Entry {
    name: String,
    flow: Flow,
    /// FNV-1a over name + debug form — the compiled-program cache key.
    hash: u64,
}

/// Registered flows plus the shared compiled-program cache.
#[derive(Debug, Default)]
pub struct FlowRegistry {
    entries: Vec<Entry>,
    cache: Memo<u64, CompiledFlow>,
}

impl FlowRegistry {
    /// An empty registry.
    pub fn new() -> FlowRegistry {
        FlowRegistry::default()
    }

    /// Register `flow` under `name` (replaces an existing entry of the
    /// same name — last registration wins, like a patch slot write).
    pub fn register(&mut self, name: impl Into<String>, flow: Flow) -> &mut FlowRegistry {
        let name = name.into();
        let hash = fnv1a(format!("{name}\u{1f}{flow:?}").as_bytes());
        self.entries.retain(|e| e.name != name);
        self.entries.push(Entry { name, flow, hash });
        self
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no flows are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The compiled program for `name`, compiling on first use and
    /// serving the shared cached copy afterwards.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownFlow`] for unregistered names,
    /// [`ErrorCode::EngineError`] when compilation itself fails.
    pub fn compiled(&self, name: &str) -> Result<Arc<CompiledFlow>, ServeError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| {
                ServeError::new(
                    ErrorCode::UnknownFlow,
                    format!("no flow named {name:?} is registered (try \"list\")"),
                )
            })?;
        self.cache
            .get_or_try_insert_with(entry.hash, || entry.flow.compiled())
            .map_err(|e| ServeError::new(ErrorCode::EngineError, e.to_string()))
    }

    /// Compiled-program cache counters (hits, misses, dropped,
    /// poisoned).
    pub fn cache_stats(&self) -> ipass_obs::MemoStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_moe::{CostCategory, Line, Part, Process, StepCost, YieldModel};
    use ipass_units::{Money, Probability};

    fn toy(name: &str, cost: f64) -> Flow {
        Flow::new(
            Line::builder(
                name,
                Part::new("c", CostCategory::Substrate)
                    .with_cost(StepCost::fixed(Money::new(cost))),
            )
            .process(Process::new("p").with_yield(YieldModel::flat(Probability::new(0.9).unwrap())))
            .build()
            .unwrap(),
        )
    }

    #[test]
    fn compiles_once_and_counts_hits() {
        let mut reg = FlowRegistry::new();
        reg.register("a", toy("a", 1.0))
            .register("b", toy("b", 2.0));
        assert_eq!(reg.names(), vec!["a", "b"]);
        let first = reg.compiled("a").unwrap();
        let again = reg.compiled("a").unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let stats = reg.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(reg.compiled("ghost").is_err());
        // Unknown flow never touches the cache.
        assert_eq!(reg.cache_stats().misses, 1);
    }

    #[test]
    fn reregistration_replaces_and_rehashes() {
        let mut reg = FlowRegistry::new();
        reg.register("a", toy("a", 1.0));
        let before = reg.compiled("a").unwrap().analyze().unwrap();
        reg.register("a", toy("a", 5.0));
        assert_eq!(reg.len(), 1);
        let after = reg.compiled("a").unwrap().analyze().unwrap();
        assert!(after.final_cost_per_shipped() > before.final_cost_per_shipped());
    }
}
