//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line — the newline is the
//! frame, so partial writes and interleaved sends cannot corrupt a
//! conversation. Requests are parsed with the tolerant scanner of
//! [`ipass_report::json`]; responses are built as [`Json`] trees and
//! rendered with [`Json::render_compact`], so the encoding is the same
//! deterministic writer the artifact pipeline commits to disk.
//!
//! Every failure is a *typed error response* (`{"ok":false,"error":
//! {"code":…,"message":…}}`) rather than a dropped connection; the
//! error codes are a closed set ([`ErrorCode`]) the golden wire tests
//! pin byte-for-byte.

use ipass_moe::PatchDirective;
use ipass_report::json::{self, Json};
use ipass_units::{Money, Probability};

/// Hard bound on one request line (bytes, newline excluded). Longer
/// lines are answered with an `oversized-request` error and discarded
/// up to the next newline; the connection keeps serving.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Hard bound on the Monte Carlo unit budget of one `mc` request —
/// a shared server refuses to burn minutes on a single query.
pub const MAX_MC_UNITS: u64 = 1_000_000;

/// A parsed request — one protocol verb.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `list`: names of the registered flows.
    List,
    /// `analyze`: closed-form evaluation of a registered flow.
    Analyze {
        /// Registered flow name.
        flow: String,
    },
    /// `patch`: apply directives to the compiled program, then analyze.
    Patch {
        /// Registered flow name.
        flow: String,
        /// Slot overwrites, in request order.
        directives: Vec<PatchDirective>,
        /// Optional amortization-volume override.
        volume: Option<u64>,
    },
    /// `mc`: seeded Monte Carlo evaluation of a registered flow.
    Mc {
        /// Registered flow name.
        flow: String,
        /// Carrier units to start (bounded by [`MAX_MC_UNITS`]).
        units: u64,
        /// Client seed; the server mixes it with the flow-name hash
        /// (see [`derived_seed`]) so equal requests get equal answers
        /// on any server, any interleaving.
        seed: u64,
    },
    /// `stats`: server / cache / engine counters.
    Stats,
    /// `shutdown`: stop accepting, drain in-flight work, exit.
    Shutdown,
}

/// The closed set of protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not a JSON object.
    MalformedJson,
    /// The `verb` member names no known verb.
    UnknownVerb,
    /// A required member is absent.
    MissingField,
    /// A member is present but unusable (wrong type, out of range).
    BadField,
    /// The named flow is not registered.
    UnknownFlow,
    /// The request line exceeds [`MAX_REQUEST_BYTES`].
    OversizedRequest,
    /// The request line is not valid UTF-8.
    InvalidUtf8,
    /// The engine rejected the evaluation (unknown slot, nothing
    /// shipped, …) — the message carries the engine's own wording.
    EngineError,
    /// The connection sat idle past the server's idle timeout.
    Timeout,
    /// The request handler panicked (caught; the server keeps serving).
    InternalError,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed-json",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::MissingField => "missing-field",
            ErrorCode::BadField => "bad-field",
            ErrorCode::UnknownFlow => "unknown-flow",
            ErrorCode::OversizedRequest => "oversized-request",
            ErrorCode::InvalidUtf8 => "invalid-utf8",
            ErrorCode::EngineError => "engine-error",
            ErrorCode::Timeout => "timeout",
            ErrorCode::InternalError => "internal-error",
        }
    }
}

/// A typed protocol error: code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Which kind of failure.
    pub code: ErrorCode,
    /// What exactly went wrong.
    pub message: String,
}

impl ServeError {
    /// A new error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServeError {
        ServeError {
            code,
            message: message.into(),
        }
    }

    /// The error as its wire response tree.
    pub fn to_response(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::str(self.code.as_str())),
                    ("message", Json::str(self.message.clone())),
                ]),
            ),
        ])
    }

    /// The error as one rendered response line (no trailing newline).
    pub fn response_line(&self) -> String {
        self.to_response().render_compact()
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// FNV-1a over `bytes` — the stable, dependency-free hash the protocol
/// documents for flow names (DESIGN.md pins the constants).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer — the documented seed mixer.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The effective Monte Carlo seed of an `mc` request:
/// `mix64(fnv1a(flow_name) ^ mix64(client_seed))`. A pure function of
/// request content — never of arrival order, connection identity or
/// server state — so concurrent clients asking the same question get
/// bit-identical answers, and distinct flows sharing a client seed
/// still draw from uncorrelated streams.
pub fn derived_seed(flow: &str, client_seed: u64) -> u64 {
    mix64(fnv1a(flow.as_bytes()) ^ mix64(client_seed))
}

/// Parse one request line (framing already done: complete, UTF-8,
/// within size bounds).
///
/// # Errors
///
/// A [`ServeError`] describing exactly what was wrong — parsing never
/// panics and never partially succeeds.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let line = line.trim();
    if !line.starts_with('{') {
        return Err(ServeError::new(
            ErrorCode::MalformedJson,
            "request must be one JSON object per line",
        ));
    }
    let verb = json::string_field(line, "verb").ok_or_else(|| {
        ServeError::new(ErrorCode::MissingField, "request object has no \"verb\"")
    })?;
    match verb {
        "list" => Ok(Request::List),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "analyze" => Ok(Request::Analyze {
            flow: required_flow(line)?,
        }),
        "mc" => {
            let flow = required_flow(line)?;
            let units = required_u64(line, "units")?;
            if units == 0 || units > MAX_MC_UNITS {
                return Err(ServeError::new(
                    ErrorCode::BadField,
                    format!("\"units\" must be in 1..={MAX_MC_UNITS}, got {units}"),
                ));
            }
            let seed = optional_u64(line, "seed")?.unwrap_or(0);
            Ok(Request::Mc { flow, units, seed })
        }
        "patch" => {
            let flow = required_flow(line)?;
            let directives_raw = json::field_value(line, "directives").ok_or_else(|| {
                ServeError::new(
                    ErrorCode::MissingField,
                    "patch request has no \"directives\" array",
                )
            })?;
            if !directives_raw.starts_with('[') {
                return Err(ServeError::new(
                    ErrorCode::BadField,
                    "\"directives\" must be an array of directive objects",
                ));
            }
            let directives = json::objects(directives_raw)
                .into_iter()
                .map(parse_directive)
                .collect::<Result<Vec<_>, _>>()?;
            if directives.is_empty() {
                return Err(ServeError::new(
                    ErrorCode::BadField,
                    "\"directives\" must contain at least one directive",
                ));
            }
            let volume = optional_u64(line, "volume")?;
            Ok(Request::Patch {
                flow,
                directives,
                volume,
            })
        }
        other => Err(ServeError::new(
            ErrorCode::UnknownVerb,
            format!(
                "unknown verb {other:?} (expected list, analyze, patch, mc, stats or shutdown)"
            ),
        )),
    }
}

fn required_flow(line: &str) -> Result<String, ServeError> {
    let flow = json::string_field(line, "flow").ok_or_else(|| {
        ServeError::new(ErrorCode::MissingField, "request object has no \"flow\"")
    })?;
    if flow.is_empty() {
        return Err(ServeError::new(ErrorCode::BadField, "\"flow\" is empty"));
    }
    Ok(flow.to_owned())
}

/// An integer member parsed exactly (`u64::from_str`, not through an
/// `f64` — seeds above 2^53 must not silently lose bits).
fn optional_u64(line: &str, field: &str) -> Result<Option<u64>, ServeError> {
    match json::field_value(line, field) {
        None => Ok(None),
        Some(raw) => raw.parse::<u64>().map(Some).map_err(|_| {
            ServeError::new(
                ErrorCode::BadField,
                format!("\"{field}\" must be an unsigned integer, got {raw}"),
            )
        }),
    }
}

fn required_u64(line: &str, field: &str) -> Result<u64, ServeError> {
    optional_u64(line, field)?.ok_or_else(|| {
        ServeError::new(
            ErrorCode::MissingField,
            format!("request object has no \"{field}\""),
        )
    })
}

fn finite_number(obj: &str, field: &str) -> Result<f64, ServeError> {
    let v = json::number_field(obj, field).ok_or_else(|| {
        ServeError::new(
            ErrorCode::MissingField,
            format!("directive has no numeric \"{field}\""),
        )
    })?;
    if !v.is_finite() {
        return Err(ServeError::new(
            ErrorCode::BadField,
            format!("directive \"{field}\" must be finite"),
        ));
    }
    Ok(v)
}

fn probability(obj: &str, field: &str) -> Result<Probability, ServeError> {
    let v = finite_number(obj, field)?;
    Probability::new(v).map_err(|_| {
        ServeError::new(
            ErrorCode::BadField,
            format!("directive \"{field}\" must be a probability in [0, 1], got {v}"),
        )
    })
}

/// Parse one directive object. Wire forms:
///
/// ```text
/// {"set":"cost","slot":S,"value":V}      V = cost per input unit
/// {"scale":"cost","slot":S,"factor":F}
/// {"set":"yield","slot":S,"value":P}     P in [0, 1]
/// {"set":"coverage","slot":S,"value":P}
/// ```
fn parse_directive(obj: &str) -> Result<PatchDirective, ServeError> {
    let slot = json::string_field(obj, "slot")
        .ok_or_else(|| ServeError::new(ErrorCode::MissingField, "directive has no \"slot\""))?
        .to_owned();
    if let Some(kind) = json::string_field(obj, "scale") {
        if kind != "cost" {
            return Err(ServeError::new(
                ErrorCode::BadField,
                format!("only \"scale\":\"cost\" is supported, got {kind:?}"),
            ));
        }
        let factor = finite_number(obj, "factor")?;
        return Ok(PatchDirective::ScaleCost { slot, factor });
    }
    let kind = json::string_field(obj, "set").ok_or_else(|| {
        ServeError::new(
            ErrorCode::MissingField,
            "directive needs a \"set\" or \"scale\" member",
        )
    })?;
    match kind {
        "cost" => Ok(PatchDirective::SetCost {
            slot,
            unit_cost: Money::new(finite_number(obj, "value")?),
        }),
        "yield" => Ok(PatchDirective::SetYield {
            slot,
            p: probability(obj, "value")?,
        }),
        "coverage" => Ok(PatchDirective::SetCoverage {
            slot,
            p: probability(obj, "value")?,
        }),
        other => Err(ServeError::new(
            ErrorCode::BadField,
            format!("unknown \"set\" kind {other:?} (expected cost, yield or coverage)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request(r#"{"verb":"list"}"#).unwrap(), Request::List);
        assert_eq!(
            parse_request(r#"{"verb":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"verb":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request(r#"{"verb":"analyze","flow":"demo"}"#).unwrap(),
            Request::Analyze {
                flow: "demo".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"verb":"mc","flow":"demo","units":1000,"seed":7}"#).unwrap(),
            Request::Mc {
                flow: "demo".into(),
                units: 1000,
                seed: 7
            }
        );
        // Seed defaults to 0; whitespace is tolerated.
        assert_eq!(
            parse_request(r#" { "verb" : "mc" , "flow" : "demo" , "units" : 5 } "#).unwrap(),
            Request::Mc {
                flow: "demo".into(),
                units: 5,
                seed: 0
            }
        );
    }

    #[test]
    fn patch_directives_parse() {
        let req = parse_request(
            r#"{"verb":"patch","flow":"demo","volume":50000,"directives":[
                {"set":"cost","slot":"c","value":12.5},
                {"scale":"cost","slot":"c","factor":1.5},
                {"set":"yield","slot":"p","value":0.9},
                {"set":"coverage","slot":"ft","value":0.95}]}"#,
        )
        .unwrap();
        let Request::Patch {
            flow,
            directives,
            volume,
        } = req
        else {
            panic!("not a patch");
        };
        assert_eq!(flow, "demo");
        assert_eq!(volume, Some(50000));
        assert_eq!(directives.len(), 4);
        assert!(matches!(
            &directives[1],
            PatchDirective::ScaleCost { slot, factor } if slot == "c" && *factor == 1.5
        ));
    }

    #[test]
    fn malformed_inputs_get_the_right_code() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("hello"), ErrorCode::MalformedJson);
        assert_eq!(code("[1,2]"), ErrorCode::MalformedJson);
        assert_eq!(code(r#"{"no":"verb"}"#), ErrorCode::MissingField);
        assert_eq!(code(r#"{"verb":"frobnicate"}"#), ErrorCode::UnknownVerb);
        assert_eq!(code(r#"{"verb":"analyze"}"#), ErrorCode::MissingField);
        assert_eq!(code(r#"{"verb":"analyze","flow":""}"#), ErrorCode::BadField);
        assert_eq!(code(r#"{"verb":"mc","flow":"d"}"#), ErrorCode::MissingField);
        assert_eq!(
            code(r#"{"verb":"mc","flow":"d","units":0}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(r#"{"verb":"mc","flow":"d","units":99999999999}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(r#"{"verb":"mc","flow":"d","units":"many"}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(r#"{"verb":"mc","flow":"d","units":12.5}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(r#"{"verb":"patch","flow":"d"}"#),
            ErrorCode::MissingField
        );
        assert_eq!(
            code(r#"{"verb":"patch","flow":"d","directives":[]}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(r#"{"verb":"patch","flow":"d","directives":7}"#),
            ErrorCode::BadField
        );
        assert_eq!(
            code(
                r#"{"verb":"patch","flow":"d","directives":[{"set":"yield","slot":"p","value":1.5}]}"#
            ),
            ErrorCode::BadField
        );
        assert_eq!(
            code(
                r#"{"verb":"patch","flow":"d","directives":[{"scale":"yield","slot":"p","factor":2}]}"#
            ),
            ErrorCode::BadField
        );
    }

    #[test]
    fn truncated_json_yields_a_typed_error_not_a_panic() {
        // The tolerant scanner may still find earlier members; whatever
        // it resolves, the outcome must be a typed error or a complete
        // parse — never a panic.
        for line in [
            r#"{"verb":"analyze","flow":"demo"#,
            r#"{"verb":"anal"#,
            r#"{"verb""#,
            "{",
            r#"{"verb":"patch","flow":"d","directives":[{"set":"cost""#,
        ] {
            let _ = parse_request(line);
        }
    }

    #[test]
    fn seeds_keep_all_64_bits() {
        let big = u64::MAX - 3;
        let req = parse_request(&format!(
            r#"{{"verb":"mc","flow":"d","units":1,"seed":{big}}}"#
        ))
        .unwrap();
        assert_eq!(
            req,
            Request::Mc {
                flow: "d".into(),
                units: 1,
                seed: big
            }
        );
    }

    #[test]
    fn derived_seed_is_a_pure_function_of_flow_and_seed() {
        assert_eq!(derived_seed("demo", 7), derived_seed("demo", 7));
        assert_ne!(derived_seed("demo", 7), derived_seed("demo", 8));
        assert_ne!(derived_seed("demo", 7), derived_seed("other", 7));
        // Pinned: the DESIGN.md rule, so a mixer change cannot slip by.
        assert_eq!(derived_seed("demo", 7), mix64(fnv1a(b"demo") ^ mix64(7)));
    }

    #[test]
    fn error_responses_have_the_pinned_shape() {
        let e = ServeError::new(ErrorCode::UnknownVerb, "unknown verb \"zap\"");
        assert_eq!(
            e.response_line(),
            r#"{"ok":false,"error":{"code":"unknown-verb","message":"unknown verb \"zap\""}}"#
        );
    }
}
