//! Golden wire transcripts: byte-pinned request/response pairs for
//! every verb (and the error-response shape), recorded over a real
//! connection against the reference `demo` flow. The protocol cannot
//! drift silently: any change to the encoding, the error codes, the
//! artifact JSON layout or the seed-derivation rule shows up as a
//! transcript diff.
//!
//! Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p ipass-serve --test golden_wire`.

use ipass_serve::{testflow, Client, FlowRegistry, Server, ServerConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "wire transcript drifted from {} (regenerate deliberately with UPDATE_GOLDEN=1)",
        path.display()
    );
}

/// Run `requests` serially on one fresh server/connection and render
/// the `> request` / `< response` transcript.
fn transcript(requests: &[&str]) -> String {
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut out = String::new();
    for req in requests {
        let resp = client.request(req).unwrap();
        writeln!(out, "> {req}").unwrap();
        writeln!(out, "< {resp}").unwrap();
    }
    server.shutdown();
    server.join();
    out
}

#[test]
fn golden_wire_verbs() {
    // One transcript per query verb; `shutdown` is pinned separately
    // (it ends the conversation).
    check("list.txt", &transcript(&[r#"{"verb":"list"}"#]));
    check(
        "analyze.txt",
        &transcript(&[r#"{"verb":"analyze","flow":"demo"}"#]),
    );
    check(
        "patch.txt",
        &transcript(&[
            r#"{"verb":"patch","flow":"demo","directives":[{"set":"cost","slot":"c","value":12.5},{"set":"yield","slot":"p","value":0.8}]}"#,
            r#"{"verb":"patch","flow":"demo","directives":[{"scale":"cost","slot":"a/die","factor":2}],"volume":50000}"#,
        ]),
    );
    check(
        "mc.txt",
        &transcript(&[
            r#"{"verb":"mc","flow":"demo","units":2000,"seed":42}"#,
            r#"{"verb":"mc","flow":"demo","units":2000}"#,
        ]),
    );
}

#[test]
fn golden_wire_stats() {
    // The stats counters are deterministic for a serial, single-client
    // history on a fresh server: two analyzes (one cache miss, one
    // hit) then stats. `batches` equals dispatched requests because a
    // lone blocking client never accumulates a deeper queue.
    check(
        "stats.txt",
        &transcript(&[
            r#"{"verb":"analyze","flow":"demo"}"#,
            r#"{"verb":"analyze","flow":"demo"}"#,
            r#"{"verb":"stats"}"#,
        ]),
    );
}

#[test]
fn golden_wire_errors() {
    check(
        "errors.txt",
        &transcript(&[
            "not json at all",
            r#"{"no":"verb"}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"analyze"}"#,
            r#"{"verb":"analyze","flow":"ghost"}"#,
            r#"{"verb":"mc","flow":"demo","units":0}"#,
            r#"{"verb":"patch","flow":"demo","directives":[{"set":"cost","slot":"ghost","value":1}]}"#,
        ]),
    );
}

#[test]
fn golden_wire_shutdown() {
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let req = r#"{"verb":"shutdown"}"#;
    let resp = client.request(req).unwrap();
    server.wait();
    check("shutdown.txt", &format!("> {req}\n< {resp}\n"));
}
