//! Protocol fuzz/robustness battery: every malformed input in the
//! corpus must yield a *typed* error response and leave the server
//! serving — never a panic, a hang, or a silently closed connection.

use ipass_report::json;
use ipass_serve::{testflow, Client, ErrorCode, FlowRegistry, Server, ServerConfig};
use std::time::Duration;

fn server() -> Server {
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    Server::start(registry, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback")
}

fn error_code(response: &str) -> String {
    assert_eq!(
        json::string_field(response, "ok"),
        Some("false"),
        "expected an error response, got {response}"
    );
    let err = json::field_value(response, "error").expect("error member");
    json::string_field(err, "code")
        .expect("code member")
        .to_owned()
}

/// The server is still alive iff a well-formed request round-trips.
fn assert_still_serving(client: &mut Client) {
    let resp = client
        .request(r#"{"verb":"list"}"#)
        .expect("server must keep serving after a malformed request");
    assert_eq!(resp, r#"{"ok":true,"verb":"list","flows":["demo"]}"#);
}

#[test]
fn malformed_corpus_yields_typed_errors_and_the_server_survives() {
    // (input line, expected error code) — the seeded corpus of the
    // ISSUE: truncated JSON, unknown verbs, missing/bad fields,
    // unknown flows. Every entry runs on the SAME connection, which
    // must stay usable throughout.
    let corpus: &[(&str, ErrorCode)] = &[
        ("hello world", ErrorCode::MalformedJson),
        ("[1,2,3]", ErrorCode::MalformedJson),
        ("42", ErrorCode::MalformedJson),
        ("{}", ErrorCode::MissingField),
        (r#"{"verb":"frobnicate"}"#, ErrorCode::UnknownVerb),
        (r#"{"verb":17}"#, ErrorCode::UnknownVerb),
        (r#"{"verb":"analyze"}"#, ErrorCode::MissingField),
        (
            r#"{"verb":"analyze","flow":"ghost"}"#,
            ErrorCode::UnknownFlow,
        ),
        (r#"{"verb":"analyze","flow":""}"#, ErrorCode::BadField),
        (r#"{"verb":"mc","flow":"demo"}"#, ErrorCode::MissingField),
        (
            r#"{"verb":"mc","flow":"demo","units":0}"#,
            ErrorCode::BadField,
        ),
        (
            r#"{"verb":"mc","flow":"demo","units":10000000000}"#,
            ErrorCode::BadField,
        ),
        (
            r#"{"verb":"mc","flow":"demo","units":"many"}"#,
            ErrorCode::BadField,
        ),
        (
            r#"{"verb":"mc","flow":"demo","units":100,"seed":-1}"#,
            ErrorCode::BadField,
        ),
        (r#"{"verb":"patch","flow":"demo"}"#, ErrorCode::MissingField),
        (
            r#"{"verb":"patch","flow":"demo","directives":[]}"#,
            ErrorCode::BadField,
        ),
        (
            r#"{"verb":"patch","flow":"demo","directives":[{"slot":"c"}]}"#,
            ErrorCode::MissingField,
        ),
        (
            r#"{"verb":"patch","flow":"demo","directives":[{"set":"yield","slot":"p","value":1.5}]}"#,
            ErrorCode::BadField,
        ),
        (
            r#"{"verb":"patch","flow":"demo","directives":[{"set":"cost","slot":"ghost","value":1}]}"#,
            ErrorCode::EngineError,
        ),
        // Truncated JSON: the tolerant scanner still fails typed-ly.
        // (A string truncated only at its closing quote, like
        // `"flow":"demo`, is *recovered* by design — see the separate
        // truncated-flow test.)
        (r#"{"verb":"analyze","flo"#, ErrorCode::MissingField),
        (r#"{"verb"#, ErrorCode::MissingField),
        ("{", ErrorCode::MissingField),
    ];
    let server = server();
    let mut client = Client::connect(server.addr()).unwrap();
    for (input, expected) in corpus {
        let resp = client
            .request(input)
            .expect("a typed response, not a close");
        assert_eq!(
            error_code(&resp),
            expected.as_str(),
            "input {input:?} answered {resp}"
        );
        assert_still_serving(&mut client);
    }
    server.shutdown();
    server.join();
}

#[test]
fn truncated_flow_string_resolves_or_errors_but_never_hangs() {
    // A truncated string value swallows the rest of the line; whatever
    // the scanner resolves, the answer must be typed and prompt.
    let server = server();
    let mut client = Client::connect(server.addr()).unwrap();
    let resp = client.request(r#"{"verb":"analyze","flow":"de"#).unwrap();
    assert_eq!(json::string_field(&resp, "ok"), Some("false"));
    assert_still_serving(&mut client);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_line_is_refused_and_the_connection_keeps_serving() {
    let config = ServerConfig {
        max_request_bytes: 1024,
        ..ServerConfig::default()
    };
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    let server = Server::start(registry, "127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // One giant junk line (sent in pieces, to also exercise the
    // over-budget-before-newline path), then a valid request.
    let junk = vec![b'a'; 8 * 1024];
    for piece in junk.chunks(3000) {
        client.send_raw(piece).unwrap();
    }
    client.send_raw(b"\n").unwrap();
    let resp = client.read_line().unwrap();
    assert_eq!(error_code(&resp), "oversized-request");
    assert_still_serving(&mut client);

    // An oversized line that fits no newline for a while must be
    // answered as soon as the budget is blown, not after the newline.
    client.send_raw(&vec![b'b'; 4 * 1024]).unwrap();
    let resp = client.read_line().unwrap();
    assert_eq!(error_code(&resp), "oversized-request");
    client.send_raw(b"ccc\n").unwrap(); // the tail, discarded silently
    assert_still_serving(&mut client);
    server.shutdown();
    server.join();
}

#[test]
fn non_utf8_bytes_get_a_typed_error() {
    let server = server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(b"\xff\xfe{\"verb\":\"list\"}\n").unwrap();
    let resp = client.read_line().unwrap();
    assert_eq!(error_code(&resp), "invalid-utf8");
    assert_still_serving(&mut client);
    server.shutdown();
    server.join();
}

#[test]
fn interleaved_partial_writes_frame_correctly() {
    let server = server();
    let mut client = Client::connect(server.addr()).unwrap();
    // Half a request, a pause, the rest: the newline is the frame, so
    // the response must be the same as for a single write.
    client.send_raw(br#"{"verb":"ana"#).unwrap();
    std::thread::sleep(Duration::from_millis(120));
    client.send_raw(b"lyze\",\"flow\":\"demo\"}\n").unwrap();
    let split = client.read_line().unwrap();
    let whole = client
        .request(r#"{"verb":"analyze","flow":"demo"}"#)
        .unwrap();
    assert_eq!(split, whole);
    // Two requests in one write: two responses, in order.
    client
        .send_raw(b"{\"verb\":\"list\"}\n{\"verb\":\"stats\"}\n")
        .unwrap();
    let first = client.read_line().unwrap();
    let second = client.read_line().unwrap();
    assert_eq!(first, r#"{"ok":true,"verb":"list","flows":["demo"]}"#);
    assert_eq!(json::string_field(&second, "verb"), Some("stats"));
    server.shutdown();
    server.join();
}

#[test]
fn blank_lines_are_ignored_not_answered() {
    let server = server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.send_raw(b"\n\r\n").unwrap();
    let resp = client.request(r#"{"verb":"list"}"#).unwrap();
    assert_eq!(resp, r#"{"ok":true,"verb":"list","flows":["demo"]}"#);
    server.shutdown();
    server.join();
}

#[test]
fn idle_connections_time_out_with_a_typed_error_then_close() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        read_poll: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    let server = Server::start(registry, "127.0.0.1:0", config).unwrap();
    let mut idle = Client::connect(server.addr()).unwrap();
    let resp = idle.read_line().expect("timeout notice before close");
    assert_eq!(error_code(&resp), "timeout");
    assert!(idle.is_closed(), "connection must close after the notice");
    // The *server* is still serving fresh connections.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_still_serving(&mut fresh);
    server.shutdown();
    server.join();
}

#[test]
fn a_dead_client_does_not_take_the_server_down() {
    let server = server();
    {
        let mut doomed = Client::connect(server.addr()).unwrap();
        doomed
            .send_raw(br#"{"verb":"analyze","flow":"demo"}"#)
            .unwrap();
        // Drop mid-request without the newline: the connection closes
        // from our side with a partial frame outstanding.
    }
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_still_serving(&mut fresh);
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_in_flight_work() {
    let server = server();
    let addr = server.addr();
    let mut worker = Client::connect(addr).unwrap();
    let mut killer = Client::connect(addr).unwrap();
    // Queue real work and the shutdown concurrently; the worker's
    // response must still arrive complete and well-formed.
    worker
        .send_raw(b"{\"verb\":\"mc\",\"flow\":\"demo\",\"units\":200000,\"seed\":9}\n")
        .unwrap();
    // Give the worker's connection thread time to pick the request up,
    // so the shutdown latch finds it genuinely in flight.
    std::thread::sleep(Duration::from_millis(150));
    let bye = killer.request(r#"{"verb":"shutdown"}"#).unwrap();
    assert_eq!(bye, r#"{"ok":true,"verb":"shutdown"}"#);
    let resp = worker.read_line().expect("in-flight work must be answered");
    assert_eq!(json::string_field(&resp, "ok"), Some("true"), "{resp}");
    assert_eq!(json::string_field(&resp, "verb"), Some("mc"));
    server.wait();
}
