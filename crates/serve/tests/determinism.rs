//! Concurrency determinism on the wire: N in-process clients issuing
//! shuffled request streams must get responses byte-identical to the
//! same requests evaluated serially, for executor thread counts 1, 2
//! and 8 — the PR-1/PR-9 bit-identity contract extended to the serving
//! layer. The `stats` verb is excluded by design (it reports live
//! counters); everything else is a pure function of request content.

use ipass_serve::{testflow, Client, FlowRegistry, Server, ServerConfig};
use std::collections::HashMap;

fn registry() -> FlowRegistry {
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    registry.register("demo2", testflow::demo_flow());
    registry
}

/// The request mix: every verb with a pure response, several flows,
/// several seeds, overlapping patch directives.
fn requests() -> Vec<String> {
    let mut reqs = vec![
        r#"{"verb":"list"}"#.to_owned(),
        r#"{"verb":"analyze","flow":"demo"}"#.to_owned(),
        r#"{"verb":"analyze","flow":"demo2"}"#.to_owned(),
        r#"{"verb":"analyze","flow":"ghost"}"#.to_owned(),
        r#"{"verb":"patch","flow":"demo","directives":[{"set":"cost","slot":"c","value":12.5}]}"#
            .to_owned(),
        r#"{"verb":"patch","flow":"demo","directives":[{"scale":"cost","slot":"c","factor":1.5},{"set":"yield","slot":"p","value":0.8}],"volume":50000}"#
            .to_owned(),
        r#"{"verb":"patch","flow":"demo","directives":[{"set":"coverage","slot":"ft","value":0.9}]}"#
            .to_owned(),
        r#"{"verb":"frobnicate"}"#.to_owned(),
    ];
    for seed in [0u64, 1, 7, 42, u64::MAX] {
        reqs.push(format!(
            r#"{{"verb":"mc","flow":"demo","units":1500,"seed":{seed}}}"#
        ));
        reqs.push(format!(
            r#"{{"verb":"mc","flow":"demo2","units":800,"seed":{seed}}}"#
        ));
    }
    reqs
}

/// Deterministic in-place shuffle (xorshift64*), so every client
/// stream has its own fixed order without pulling in an RNG crate.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let j = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[test]
fn concurrent_responses_are_byte_identical_to_serial_for_threads_1_2_8() {
    let reqs = requests();
    // The serial reference: one fresh server, one client, request
    // order as written.
    let reference: HashMap<String, String> = {
        let server = Server::start(registry(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let map = reqs
            .iter()
            .map(|r| (r.clone(), client.request(r).unwrap()))
            .collect();
        server.shutdown();
        server.join();
        map
    };

    for threads in [1usize, 2, 8] {
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        let server = Server::start(registry(), "127.0.0.1:0", config).unwrap();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for client_id in 0..6u64 {
                let reference = &reference;
                let mut stream = reqs.clone();
                scope.spawn(move || {
                    shuffle(&mut stream, 0x9e37_79b9 * (client_id + 1) + threads as u64);
                    let mut client = Client::connect(addr).unwrap();
                    for req in &stream {
                        let resp = client.request(req).unwrap();
                        assert_eq!(
                            &resp, &reference[req],
                            "threads={threads} client={client_id} req={req}"
                        );
                    }
                });
            }
        });
        server.shutdown();
        server.join();
    }
}

#[test]
fn equal_mc_requests_agree_across_distinct_servers() {
    // Seed derivation is a pure function of request content, so two
    // independent servers — different uptime, different caches — must
    // return identical bytes for an identical request.
    let req = r#"{"verb":"mc","flow":"demo","units":2000,"seed":123}"#;
    let mut answers = Vec::new();
    for _ in 0..2 {
        let server = Server::start(registry(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        // Warm one server's cache differently on purpose.
        let _ = client.request(r#"{"verb":"analyze","flow":"demo2"}"#);
        answers.push(client.request(req).unwrap());
        server.shutdown();
        server.join();
    }
    assert_eq!(answers[0], answers[1]);
}
