#![forbid(unsafe_code)]
//! Two-plane observability for the `ipass` stack.
//!
//! **Deterministic plane** — [`Probe`]-gated counters ([`EngineCounters`],
//! [`MemoStats`], [`ExploreStats`], folded into [`RunStats`]) that are
//! accumulated *inside* the engines and merged exactly like results: in
//! chunk order, with associative operations only (`u64` adds, `min`,
//! `max`). A `RunStats` snapshot is therefore bit-identical for any
//! executor thread count, and its portable core ([`RunStats::invariant_core`])
//! is additionally identical across lane widths. Deterministic counters
//! never contain a timestamp.
//!
//! **Wall-clock plane** — [`Profiler`] span scopes ([`Profiler::span`])
//! that record real elapsed time per named phase and drain into a
//! [`Trace`]. Wall-clock data is kept strictly out of `RunStats`; the two
//! planes never mix, so goldens and property tests can pin the first
//! while dashboards read the second.
//!
//! The crate is dependency-free and knows nothing about flows, lanes or
//! caches — engines own the counting sites, this crate owns the shapes
//! and the fold law.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Index of `Op::Cost` in [`EngineCounters::ops`].
pub const OP_COST: usize = 0;
/// Index of `Op::Condemn` in [`EngineCounters::ops`].
pub const OP_CONDEMN: usize = 1;
/// Index of `Op::Step` in [`EngineCounters::ops`].
pub const OP_STEP: usize = 2;
/// Index of `Op::SubLine` in [`EngineCounters::ops`].
pub const OP_SUB_LINE: usize = 3;
/// Index of `Op::TestScrap` in [`EngineCounters::ops`].
pub const OP_TEST_SCRAP: usize = 4;
/// Index of `Op::TestRework` in [`EngineCounters::ops`].
pub const OP_TEST_REWORK: usize = 5;
/// Human-readable labels for the [`EngineCounters::ops`] slots, in order.
pub const OP_KINDS: [&str; 6] = [
    "cost",
    "condemn",
    "step",
    "sub_line",
    "test_scrap",
    "test_rework",
];
/// Lane widths covered by the [`EngineCounters::lanes`] histogram:
/// slot `k` counts units processed at width `2^k`.
pub const LANE_WIDTHS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A zero-cost on/off switch for deterministic counting.
///
/// Engines take a `Probe` by value and branch on [`Probe::is_on`] once per
/// counting site; the default is [`Probe::OFF`], under which every probe
/// block is dead code the optimizer removes from the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Probe(bool);

impl Probe {
    /// Counting disabled (the default): probe blocks compile to nothing.
    pub const OFF: Probe = Probe(false);
    /// Counting enabled.
    pub const ON: Probe = Probe(true);

    /// Whether counting is enabled.
    #[inline(always)]
    #[must_use]
    pub fn is_on(self) -> bool {
        self.0
    }
}

/// Deterministic counters owned by a single MC engine run.
///
/// Lives inside the per-chunk accumulator and is merged in chunk order,
/// so every field inherits the executor's bit-identity guarantee. All
/// merge operations are associative (`+`, `min`, `max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total RNG draws consumed across all units.
    pub draws: u64,
    /// Fewest draws consumed by any single unit (`u64::MAX` when empty).
    pub draws_min: u64,
    /// Most draws consumed by any single unit.
    pub draws_max: u64,
    /// Ops executed on the unit's routing path, by kind
    /// (indexed by [`OP_COST`] … [`OP_TEST_REWORK`]).
    pub ops: [u64; 6],
    /// Lane occupancy histogram: `lanes[k]` counts units processed at
    /// lane width `2^k` (see [`LANE_WIDTHS`]); the sum equals the number
    /// of units attempted.
    pub lanes: [u64; 7],
}

impl Default for EngineCounters {
    fn default() -> EngineCounters {
        EngineCounters {
            draws: 0,
            draws_min: u64::MAX,
            draws_max: 0,
            ops: [0; 6],
            lanes: [0; 7],
        }
    }
}

impl EngineCounters {
    /// The empty (merge-identity) counter set.
    #[must_use]
    pub fn new() -> EngineCounters {
        EngineCounters::default()
    }

    /// Fold one unit's draw count into the totals and the min/max range.
    #[inline]
    pub fn record_unit(&mut self, draws: u64) {
        self.draws += draws;
        self.draws_min = self.draws_min.min(draws);
        self.draws_max = self.draws_max.max(draws);
    }

    /// Associative merge; `EngineCounters::new()` is the identity.
    pub fn merge(&mut self, other: &EngineCounters) {
        self.draws += other.draws;
        self.draws_min = self.draws_min.min(other.draws_min);
        self.draws_max = self.draws_max.max(other.draws_max);
        for (a, b) in self.ops.iter_mut().zip(other.ops) {
            *a += b;
        }
        for (a, b) in self.lanes.iter_mut().zip(other.lanes) {
            *a += b;
        }
    }
}

/// Cache-effectiveness counters for `ipass-sim`'s memo table.
///
/// Maintained with relaxed atomics: totals are exact once the cache is
/// quiescent, but the hit/miss *split* can wobble by racing lookups, so
/// memo counters are excluded from the strict bit-identity contract
/// (see [`RunStats::invariant_core`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// Entries not cached because their shard was at capacity.
    pub dropped: u64,
    /// Shard-lock poison events recovered from (a writer panicked).
    pub poisoned: u64,
}

impl MemoStats {
    /// Associative merge (field-wise sum).
    pub fn merge(&mut self, other: &MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.dropped += other.dropped;
        self.poisoned += other.poisoned;
    }
}

/// Request counters for one `ipass-serve` server instance.
///
/// Maintained with relaxed atomics on the serving hot path: totals are
/// exact once the server is quiescent (drained and shut down), which is
/// when the snapshot is read. Every count is a pure function of the
/// request stream the server saw — never of wall-clock time — so a
/// drained server's snapshot is reproducible for a fixed client
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines received (well-formed or not).
    pub requests: u64,
    /// Requests answered with an `ok` response.
    pub responses_ok: u64,
    /// Requests answered with a typed error response.
    pub responses_err: u64,
    /// Payload bytes read off the wire (request lines incl. newline).
    pub bytes_in: u64,
    /// Response bytes written to the wire (incl. newline).
    pub bytes_out: u64,
    /// Batches dispatched onto the executor.
    pub batches: u64,
    /// Requests that rode a batch of size ≥ 2 (the rest dispatched
    /// alone).
    pub batched_requests: u64,
}

impl ServeStats {
    /// Associative merge (field-wise sum).
    pub fn merge(&mut self, other: &ServeStats) {
        self.connections += other.connections;
        self.requests += other.requests;
        self.responses_ok += other.responses_ok;
        self.responses_err += other.responses_err;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
    }
}

/// Deterministic counters for one explorer `refine()` pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Design points evaluated by the screening pass.
    pub screened: u64,
    /// Points promoted into the confirmation band.
    pub promoted: u64,
    /// Points confirmed with full MC runs.
    pub confirmed: u64,
    /// Confirmation runs that stopped early on a CI-width rule.
    pub early_stops: u64,
}

impl ExploreStats {
    /// Associative merge (field-wise sum).
    pub fn merge(&mut self, other: &ExploreStats) {
        self.screened += other.screened;
        self.promoted += other.promoted;
        self.confirmed += other.confirmed;
        self.early_stops += other.early_stops;
    }
}

/// The deterministic-plane snapshot of a run.
///
/// Built from [`EngineCounters`] plus whatever memo / explorer / patch
/// counters the caller owns. The full snapshot is bit-identical across
/// executor thread counts; [`RunStats::invariant_core`] strips the
/// fields that legitimately depend on kernel shape (lane histogram) or
/// on concurrent cache races (memo split), leaving a view that is also
/// identical across lane widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Units attempted by the engine.
    pub units: u64,
    /// Total RNG draws consumed.
    pub draws: u64,
    /// Fewest draws consumed by any single unit (0 when `units == 0`).
    pub draws_min: u64,
    /// Most draws consumed by any single unit.
    pub draws_max: u64,
    /// Ops executed by kind (indexed by [`OP_COST`] … [`OP_TEST_REWORK`]).
    pub ops: [u64; 6],
    /// Lane occupancy histogram (units per width; see [`LANE_WIDTHS`]).
    pub lanes: [u64; 7],
    /// Rework passes attempted by `TestRework` ops.
    pub rework_attempts: u64,
    /// Subassembly units built (including scrapped ones).
    pub sub_units_built: u64,
    /// Slot writes applied through `FlowPatch`es.
    pub patch_writes: u64,
    /// Memo-cache counters (approximate under concurrency).
    pub memo: MemoStats,
    /// Explorer counters, when the run went through `refine()`.
    pub explore: ExploreStats,
    /// Server counters, when the run was driven through `ipassd`.
    pub serve: ServeStats,
}

impl RunStats {
    /// Assemble a snapshot from an engine's counters.
    ///
    /// Normalizes the empty-run sentinel: with no units recorded,
    /// `draws_min` collapses from `u64::MAX` to 0.
    #[must_use]
    pub fn from_engine(units: u64, eng: &EngineCounters) -> RunStats {
        RunStats {
            units,
            draws: eng.draws,
            draws_min: if units == 0 { 0 } else { eng.draws_min },
            draws_max: eng.draws_max,
            ops: eng.ops,
            lanes: eng.lanes,
            ..RunStats::default()
        }
    }

    /// Associative merge (sums, plus `min`/`max` on the draw range).
    pub fn merge(&mut self, other: &RunStats) {
        let min = match (self.units, other.units) {
            (0, _) => other.draws_min,
            (_, 0) => self.draws_min,
            _ => self.draws_min.min(other.draws_min),
        };
        self.units += other.units;
        self.draws += other.draws;
        self.draws_min = min;
        self.draws_max = self.draws_max.max(other.draws_max);
        for (a, b) in self.ops.iter_mut().zip(other.ops) {
            *a += b;
        }
        for (a, b) in self.lanes.iter_mut().zip(other.lanes) {
            *a += b;
        }
        self.rework_attempts += other.rework_attempts;
        self.sub_units_built += other.sub_units_built;
        self.patch_writes += other.patch_writes;
        self.memo.merge(&other.memo);
        self.explore.merge(&other.explore);
        self.serve.merge(&other.serve);
    }

    /// The width- and concurrency-invariant core of the snapshot.
    ///
    /// Zeroes the lane histogram (which reports kernel shape, so it
    /// *should* change with lane width), the memo split (whose hit/miss
    /// balance can race under concurrency) and the server's batch
    /// grouping (how many requests shared a dispatch is arrival-timing
    /// dependent, even though every response's *bytes* are not).
    /// Everything left is bit-identical across thread counts *and*
    /// lane widths.
    #[must_use]
    pub fn invariant_core(&self) -> RunStats {
        RunStats {
            lanes: [0; 7],
            memo: MemoStats::default(),
            serve: ServeStats {
                batches: 0,
                batched_requests: 0,
                ..self.serve
            },
            ..*self
        }
    }
}

/// Aggregated wall-clock time for one named span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name (e.g. `"screen"`, `"confirm"`, `"chunk"`).
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Total elapsed nanoseconds across all entries.
    pub total_ns: u64,
}

/// The wall-clock plane: a cheap, cloneable sink for span timings.
///
/// Clones share the same buffer, so one `Profiler` can be handed to the
/// compiler, the executor and the explorer and drained once at the end
/// with [`Profiler::trace`]. Never feeds the deterministic plane.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    spans: Arc<Mutex<Vec<SpanStat>>>,
}

impl Profiler {
    /// A profiler with no recorded spans.
    #[must_use]
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Fold `nanos` into the span named `name`.
    pub fn record(&self, name: &str, nanos: u64) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        match spans.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.count += 1;
                s.total_ns += nanos;
            }
            None => spans.push(SpanStat {
                name: name.to_string(),
                count: 1,
                total_ns: nanos,
            }),
        }
    }

    /// Open a scope that records its elapsed time into `name` on drop.
    #[must_use]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            profiler: self.clone(),
            name,
            start: Instant::now(),
        }
    }

    /// Snapshot the recorded spans, in first-entered order.
    #[must_use]
    pub fn trace(&self) -> Trace {
        Trace {
            spans: self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// RAII scope from [`Profiler::span`]; records elapsed time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    profiler: Profiler,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.profiler.record(self.name, nanos);
    }
}

/// A drained wall-clock trace, serializable as JSON without any
/// external dependency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Aggregated spans in first-entered order.
    pub spans: Vec<SpanStat>,
}

impl Trace {
    /// Render as a compact JSON object: `{"spans":[{...},...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            for c in s.name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push_str(&format!(
                "\",\"count\":{},\"total_ns\":{}}}",
                s.count, s.total_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_defaults_off() {
        assert!(!Probe::default().is_on());
        assert!(!Probe::OFF.is_on());
        assert!(Probe::ON.is_on());
    }

    #[test]
    fn engine_counters_merge_is_associative_with_identity() {
        let mut a = EngineCounters::new();
        a.record_unit(3);
        a.record_unit(9);
        a.ops[OP_STEP] = 4;
        a.lanes[6] = 2;
        let mut b = EngineCounters::new();
        b.record_unit(1);
        b.ops[OP_COST] = 7;
        b.lanes[0] = 1;

        // identity
        let mut with_id = a;
        with_id.merge(&EngineCounters::new());
        assert_eq!(with_id, a);

        // (a ⊕ b) == fold of the unit stream in either grouping
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.draws, 13);
        assert_eq!(ab.draws_min, 1);
        assert_eq!(ab.draws_max, 9);
        assert_eq!(ab.ops[OP_STEP], 4);
        assert_eq!(ab.ops[OP_COST], 7);
        assert_eq!(ab.lanes[6] + ab.lanes[0], 3);
    }

    #[test]
    fn run_stats_from_engine_normalizes_empty_min() {
        let empty = RunStats::from_engine(0, &EngineCounters::new());
        assert_eq!(empty.draws_min, 0);
        let mut eng = EngineCounters::new();
        eng.record_unit(5);
        let one = RunStats::from_engine(1, &eng);
        assert_eq!(one.draws_min, 5);
        assert_eq!(one.draws_max, 5);
    }

    #[test]
    fn run_stats_merge_skips_empty_side_min() {
        let mut eng = EngineCounters::new();
        eng.record_unit(4);
        let mut total = RunStats::from_engine(0, &EngineCounters::new());
        total.merge(&RunStats::from_engine(1, &eng));
        assert_eq!(total.draws_min, 4);
        assert_eq!(total.units, 1);
        let mut rev = RunStats::from_engine(1, &eng);
        rev.merge(&RunStats::from_engine(0, &EngineCounters::new()));
        assert_eq!(rev, total);
    }

    #[test]
    fn invariant_core_strips_lanes_memo_and_batch_grouping_only() {
        let mut eng = EngineCounters::new();
        eng.record_unit(2);
        eng.lanes[6] = 1;
        let mut stats = RunStats::from_engine(1, &eng);
        stats.memo.hits = 10;
        stats.rework_attempts = 3;
        stats.serve.requests = 9;
        stats.serve.batches = 4;
        stats.serve.batched_requests = 6;
        let core = stats.invariant_core();
        assert_eq!(core.lanes, [0; 7]);
        assert_eq!(core.memo, MemoStats::default());
        assert_eq!(core.draws, stats.draws);
        assert_eq!(core.rework_attempts, 3);
        // Request totals are workload-determined and stay; how they were
        // grouped into batches is arrival timing and goes.
        assert_eq!(core.serve.requests, 9);
        assert_eq!(core.serve.batches, 0);
        assert_eq!(core.serve.batched_requests, 0);
    }

    #[test]
    fn serve_stats_merge_is_field_wise_sum() {
        let mut a = ServeStats {
            connections: 1,
            requests: 5,
            responses_ok: 4,
            responses_err: 1,
            bytes_in: 100,
            bytes_out: 300,
            batches: 2,
            batched_requests: 3,
        };
        let b = ServeStats {
            connections: 2,
            requests: 7,
            ..ServeStats::default()
        };
        let id = ServeStats::default();
        let mut with_id = a;
        with_id.merge(&id);
        assert_eq!(with_id, a);
        a.merge(&b);
        assert_eq!(a.connections, 3);
        assert_eq!(a.requests, 12);
        assert_eq!(a.responses_ok, 4);
        // RunStats::merge delegates field-wise.
        let mut run = RunStats {
            serve: b,
            ..RunStats::default()
        };
        run.merge(&RunStats {
            serve: b,
            ..RunStats::default()
        });
        assert_eq!(run.serve.connections, 4);
    }

    #[test]
    fn profiler_aggregates_and_serializes() {
        let prof = Profiler::new();
        prof.record("screen", 100);
        prof.record("confirm", 50);
        prof.record("screen", 25);
        let trace = prof.trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "screen");
        assert_eq!(trace.spans[0].count, 2);
        assert_eq!(trace.spans[0].total_ns, 125);
        assert_eq!(
            trace.to_json(),
            "{\"spans\":[{\"name\":\"screen\",\"count\":2,\"total_ns\":125},\
             {\"name\":\"confirm\",\"count\":1,\"total_ns\":50}]}"
        );
    }

    #[test]
    fn span_guard_records_on_drop() {
        let prof = Profiler::new();
        {
            let _g = prof.span("work");
        }
        let trace = prof.trace();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "work");
        assert_eq!(trace.spans[0].count, 1);
    }

    #[test]
    fn trace_json_escapes_names() {
        let trace = Trace {
            spans: vec![SpanStat {
                name: "a\"b\\c\n".to_string(),
                count: 1,
                total_ns: 2,
            }],
        };
        assert_eq!(
            trace.to_json(),
            "{\"spans\":[{\"name\":\"a\\\"b\\\\c\\u000a\",\"count\":1,\"total_ns\":2}]}"
        );
    }

    #[test]
    fn profiler_clones_share_a_buffer() {
        let prof = Profiler::new();
        let clone = prof.clone();
        clone.record("chunk", 7);
        assert_eq!(prof.trace().spans[0].total_ns, 7);
    }
}
