//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace ships
//! this local shim implementing the subset of the proptest API its
//! tests use: the [`proptest!`] macro, range/tuple/`prop_map`/`vec`/
//! `option`/`bool` strategies, `prop_oneof!`, and the `prop_assert*`
//! macros. Unlike the real crate it does not shrink failing inputs; it
//! reports the failing case's values and deterministic case index
//! instead.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th test case; fixed across runs.
    pub fn for_case(case: u64) -> TestRng {
        TestRng {
            state: 0xB5AD_4ECE_DA1C_E2A9 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// `prop_map` combinator.
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
#[derive(Debug)]
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> OneOf<T> {
    /// Choose uniformly among `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{fmt, Range, Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{fmt, Strategy, TestRng};

    /// Strategy for `Option`s (three in four generated values are
    /// `Some`, matching proptest's default weighting).
    #[derive(Debug)]
    pub struct OptionStrategy<S>(S);

    /// Generate `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Run a property body over generated cases; used by [`proptest!`].
pub fn run_cases(cases: u32, mut body: impl FnMut(u64) -> Result<(), TestCaseError>) {
    for case in 0..u64::from(cases) {
        match body(case) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case}/{cases} failed: {msg}")
            }
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(cfg.cases, move |__case| {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __dbg_input = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                        $(&$arg),+
                    );
                    let mut __run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __run().map_err(|e| match e {
                        $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                            format!("{msg}\n  inputs: {}", __dbg_input),
                        ),
                        other => other,
                    })
                });
            }
        )*
    };
}

/// Assert inside a property; failure reports the case instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3.0f64..7.0, n in 1u32..5, b in crate::bool::ANY) {
            prop_assert!((3.0..7.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            let _ = b;
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u64..10, 1..6),
            o in crate::option::of(0.0f64..1.0),
            m in (1u32..3).prop_map(|x| x * 100),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            if let Some(p) = o {
                prop_assert!((0.0..1.0).contains(&p));
            }
            prop_assert!(m == 100 || m == 200);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn config_is_respected() {
        let mut runs = 0;
        crate::run_cases(17, |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 17);
    }
}
