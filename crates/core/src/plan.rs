//! Technology selection and area aggregation (methodology steps 1 & 3).

use crate::bom::{BomItem, ItemRole, Realization};
use crate::technology::{BuildUp, DieAttach, PassivePolicy, SubstrateTech};
use ipass_layout::{BgaLaminate, SubstrateRule};
use ipass_units::{Area, Money};
use std::error::Error;
use std::fmt;

/// Objective driving the [`PassivePolicy::Optimized`] per-component
/// choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionObjective {
    /// Choose the smaller realization (the paper's rule: SMD wins
    /// whenever it consumes less area than the integrated part).
    MinArea,
    /// Choose the cheaper realization, pricing integrated area at the
    /// substrate's cost per cm² and adding per-placement assembly cost
    /// to SMDs.
    MinCost {
        /// Substrate cost per cm² (prices integrated area).
        substrate_cost_per_cm2: Money,
        /// Assembly cost per SMD placement.
        smd_assembly_cost: Money,
    },
}

/// Which realization was selected for an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Packaged part on the PCB.
    Packaged,
    /// Wire-bonded bare die.
    WireBond,
    /// Flip-chip bare die.
    FlipChip,
    /// Mounted SMD.
    Smd,
    /// Embedded in the substrate.
    Integrated,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Choice::Packaged => "packaged",
            Choice::WireBond => "wire bond",
            Choice::FlipChip => "flip chip",
            Choice::Smd => "SMD",
            Choice::Integrated => "integrated",
        })
    }
}

/// Error selecting realizations for a build-up.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// An item offers no realization compatible with the build-up.
    NoFeasibleRealization {
        /// The item's name.
        item: String,
        /// The build-up being planned.
        buildup: String,
    },
    /// The BOM is empty.
    EmptyBom,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoFeasibleRealization { item, buildup } => {
                write!(f, "item {item:?} has no feasible realization in {buildup}")
            }
            PlanError::EmptyBom => write!(f, "cannot plan an empty bill of materials"),
        }
    }
}

impl Error for PlanError {}

/// One selected line of the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Index into the planned BOM.
    pub item_index: usize,
    /// Item name (copied for reporting convenience).
    pub item_name: String,
    /// Pieces.
    pub quantity: u32,
    /// The chosen realization kind.
    pub choice: Choice,
    /// The chosen realization data.
    pub realization: Realization,
}

/// The areas resulting from a plan (methodology step 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Σ component areas (what the substrate must host).
    pub component_area: Area,
    /// The sized substrate (board for PCB, silicon for MCM).
    pub substrate_area: Area,
    /// The final module outline: the board itself for PCB, the BGA
    /// laminate for MCM — the quantity Fig. 3 compares.
    pub module_area: Area,
}

/// A build-up with concrete technology selections for every BOM item.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildUpPlan {
    buildup: BuildUp,
    selections: Vec<Selection>,
}

impl BuildUp {
    /// Select a realization for every BOM item under this build-up
    /// (methodology steps 1+3 preparation).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the BOM is empty or an item has no
    /// feasible realization for this build-up.
    pub fn plan(
        &self,
        items: &[BomItem],
        objective: SelectionObjective,
    ) -> Result<BuildUpPlan, PlanError> {
        if items.is_empty() {
            return Err(PlanError::EmptyBom);
        }
        let mut selections = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let (choice, realization) =
                select(self, item, objective).ok_or_else(|| PlanError::NoFeasibleRealization {
                    item: item.name().to_owned(),
                    buildup: self.to_string(),
                })?;
            selections.push(Selection {
                item_index: i,
                item_name: item.name().to_owned(),
                quantity: item.quantity(),
                choice,
                realization,
            });
        }
        Ok(BuildUpPlan {
            buildup: *self,
            selections,
        })
    }
}

fn select(
    buildup: &BuildUp,
    item: &BomItem,
    objective: SelectionObjective,
) -> Option<(Choice, Realization)> {
    match item.role() {
        ItemRole::Die => match buildup.die_attach() {
            DieAttach::Packaged => item.packaged().map(|r| (Choice::Packaged, *r)),
            DieAttach::WireBond => item.wire_bond().map(|r| (Choice::WireBond, *r)),
            DieAttach::FlipChip => item.flip_chip().map(|r| (Choice::FlipChip, *r)),
        },
        ItemRole::FixedSmd => item.smd().map(|r| (Choice::Smd, *r)),
        ItemRole::Passive => {
            let smd = item.smd().map(|r| (Choice::Smd, *r));
            if !buildup.substrate().supports_integrated_passives() {
                return smd;
            }
            let integrated = item.integrated().map(|r| (Choice::Integrated, *r));
            match buildup.passives() {
                PassivePolicy::AllSmd => smd,
                PassivePolicy::AllIntegrated => integrated.or(smd),
                PassivePolicy::Optimized => match (smd, integrated) {
                    (Some(s), Some(i)) => Some(pick(objective, s, i)),
                    (s, i) => s.or(i),
                },
            }
        }
    }
}

fn pick(
    objective: SelectionObjective,
    smd: (Choice, Realization),
    integrated: (Choice, Realization),
) -> (Choice, Realization) {
    match objective {
        SelectionObjective::MinArea => {
            // The paper's rule: "in case SMD components consume less area
            // than integrated passives, the SMD component is preferred".
            if smd.1.area().mm2() < integrated.1.area().mm2() {
                smd
            } else {
                integrated
            }
        }
        SelectionObjective::MinCost {
            substrate_cost_per_cm2,
            smd_assembly_cost,
        } => {
            let smd_cost =
                smd.1.unit_cost() + smd_assembly_cost + substrate_cost_per_cm2 * smd.1.area().cm2();
            let ip_cost =
                integrated.1.unit_cost() + substrate_cost_per_cm2 * integrated.1.area().cm2();
            if smd_cost.units() < ip_cost.units() {
                smd
            } else {
                integrated
            }
        }
    }
}

impl BuildUpPlan {
    /// The planned build-up.
    pub fn buildup(&self) -> &BuildUp {
        &self.buildup
    }

    /// Per-item selections.
    pub fn selections(&self) -> &[Selection] {
        &self.selections
    }

    /// Σ selected component areas.
    pub fn component_area(&self) -> Area {
        self.selections
            .iter()
            .map(|s| s.realization.area() * f64::from(s.quantity))
            .sum()
    }

    /// Number of SMD placements (pick-and-place operations), including
    /// packaged parts on the PCB.
    pub fn smd_placements(&self) -> u32 {
        self.selections
            .iter()
            .filter(|s| matches!(s.choice, Choice::Smd))
            .map(|s| s.quantity)
            .sum()
    }

    /// Purchase cost of all SMD-mounted passives.
    pub fn smd_parts_cost(&self) -> Money {
        self.selections
            .iter()
            .filter(|s| matches!(s.choice, Choice::Smd))
            .map(|s| s.realization.unit_cost() * f64::from(s.quantity))
            .sum()
    }

    /// Number of bare dies to attach.
    pub fn die_count(&self) -> u32 {
        self.selections
            .iter()
            .filter(|s| {
                matches!(
                    s.choice,
                    Choice::WireBond | Choice::FlipChip | Choice::Packaged
                )
            })
            .map(|s| s.quantity)
            .sum()
    }

    /// Total wire bonds required.
    pub fn bond_count(&self) -> u32 {
        self.selections
            .iter()
            .filter(|s| matches!(s.choice, Choice::WireBond))
            .map(|s| s.quantity * s.realization.bonds())
            .sum()
    }

    /// Number of integrated passives embedded in the substrate.
    pub fn integrated_count(&self) -> u32 {
        self.selections
            .iter()
            .filter(|s| matches!(s.choice, Choice::Integrated))
            .map(|s| s.quantity)
            .sum()
    }

    /// Apply the layout sizing rules (methodology step 3).
    pub fn area(&self) -> AreaBreakdown {
        let component_area = self.component_area();
        match self.buildup.substrate() {
            SubstrateTech::Pcb => {
                let board = SubstrateRule::pcb_double_sided().required_area(component_area);
                AreaBreakdown {
                    component_area,
                    substrate_area: board,
                    module_area: board,
                }
            }
            SubstrateTech::McmDSi => {
                let si = SubstrateRule::mcm_d_si().required_area(component_area);
                let module = BgaLaminate::standard().module_area(si);
                AreaBreakdown {
                    component_area,
                    substrate_area: si,
                    module_area: module,
                }
            }
        }
    }

    /// Render the selection table.
    pub fn render(&self) -> String {
        let mut out = format!("build-up: {}\n", self.buildup);
        for s in &self.selections {
            out.push_str(&format!(
                "  {:<28} ×{:<4} {:<11} {:>9.2} mm²  {:>8}\n",
                s.item_name,
                s.quantity,
                s.choice.to_string(),
                s.realization.area().mm2() * f64::from(s.quantity),
                (s.realization.unit_cost() * f64::from(s.quantity)).to_string(),
            ));
        }
        let a = self.area();
        out.push_str(&format!(
            "  Σ components {:.1} mm² → substrate {:.1} mm² → module {:.1} mm²\n",
            a.component_area.mm2(),
            a.substrate_area.mm2(),
            a.module_area.mm2()
        ));
        out
    }
}

impl fmt::Display for BuildUpPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decap() -> BomItem {
        BomItem::passive("decap", 8)
            .with_smd(Realization::new(Area::from_mm2(4.5), Money::new(0.10)))
            .with_integrated(Realization::new(Area::from_mm2(33.0), Money::ZERO))
    }

    fn pullup() -> BomItem {
        BomItem::passive("pull-up", 35)
            .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
            .with_integrated(Realization::new(Area::from_mm2(0.25), Money::ZERO))
    }

    fn dies() -> Vec<BomItem> {
        vec![
            BomItem::die("RF")
                .with_packaged(Realization::new(Area::from_mm2(225.0), Money::new(90.0)))
                .with_wire_bond(
                    Realization::new(Area::from_mm2(28.0), Money::new(79.0)).with_bonds(100),
                )
                .with_flip_chip(Realization::new(Area::from_mm2(13.0), Money::new(79.0))),
            BomItem::die("DSP")
                .with_packaged(Realization::new(Area::from_mm2(1165.0), Money::new(130.0)))
                .with_wire_bond(
                    Realization::new(Area::from_mm2(88.0), Money::new(119.0)).with_bonds(112),
                )
                .with_flip_chip(Realization::new(Area::from_mm2(59.0), Money::new(119.0))),
        ]
    }

    fn full_bom() -> Vec<BomItem> {
        let mut bom = dies();
        bom.push(decap());
        bom.push(pullup());
        bom
    }

    #[test]
    fn pcb_plan_uses_packaged_and_smd() {
        let plan = BuildUp::pcb_reference()
            .plan(&full_bom(), SelectionObjective::MinArea)
            .unwrap();
        assert_eq!(plan.die_count(), 2);
        assert_eq!(plan.smd_placements(), 43);
        assert_eq!(plan.bond_count(), 0);
        assert_eq!(plan.integrated_count(), 0);
        let area = plan.area();
        assert_eq!(area.substrate_area, area.module_area);
    }

    #[test]
    fn all_integrated_plan_embeds_everything() {
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated)
            .plan(&full_bom(), SelectionObjective::MinArea)
            .unwrap();
        assert_eq!(plan.smd_placements(), 0);
        assert_eq!(plan.integrated_count(), 43);
        // Decaps integrated: 8 × 33 = 264 mm² dominate the passive area.
        assert!(plan.component_area().mm2() > 300.0);
    }

    #[test]
    fn optimized_plan_applies_the_paper_rule() {
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::Optimized)
            .plan(&full_bom(), SelectionObjective::MinArea)
            .unwrap();
        // Decaps stay SMD (4.5 < 33), pull-ups integrate (0.25 < 3.75).
        assert_eq!(plan.smd_placements(), 8);
        assert_eq!(plan.integrated_count(), 35);
        assert!((plan.smd_parts_cost().units() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn wire_bond_plan_counts_bonds() {
        let plan = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)
            .plan(&full_bom(), SelectionObjective::MinArea)
            .unwrap();
        assert_eq!(plan.bond_count(), 212);
        let module = plan.area().module_area;
        let substrate = plan.area().substrate_area;
        assert!(module.mm2() > substrate.mm2(), "laminate adds edge");
    }

    #[test]
    fn min_cost_objective_can_flip_choices() {
        // With very expensive substrate area, even the pull-up prefers
        // SMD mounting despite its bigger footprint.
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::Optimized)
            .plan(
                &[pullup()],
                SelectionObjective::MinCost {
                    substrate_cost_per_cm2: Money::new(2.25),
                    smd_assembly_cost: Money::new(0.01),
                },
            )
            .unwrap();
        // SMD: 0.02 + 0.01 + 2.25×0.0375 = 0.114; IP: 2.25×0.0025 = 0.006.
        // Integrated still wins here; verify the computation picks it.
        assert_eq!(plan.integrated_count(), 35);

        // Now price the substrate absurdly high — SMD wins because its
        // footprint rides on cheap... still substrate. Use a bigger IP
        // area instead: the decap case.
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::Optimized)
            .plan(
                &[decap()],
                SelectionObjective::MinCost {
                    substrate_cost_per_cm2: Money::new(2.25),
                    smd_assembly_cost: Money::new(0.01),
                },
            )
            .unwrap();
        // SMD: 0.10+0.01+2.25×0.045 = 0.211; IP: 2.25×0.33 = 0.743.
        assert_eq!(plan.smd_placements(), 8);
    }

    #[test]
    fn missing_realization_is_an_error() {
        let bare = BomItem::passive("weird part", 1); // no realizations at all
        let err = BuildUp::pcb_reference()
            .plan(&[bare], SelectionObjective::MinArea)
            .unwrap_err();
        assert!(matches!(err, PlanError::NoFeasibleRealization { .. }));
        assert!(err.to_string().contains("weird part"));
    }

    #[test]
    fn empty_bom_is_an_error() {
        let err = BuildUp::pcb_reference()
            .plan(&[], SelectionObjective::MinArea)
            .unwrap_err();
        assert_eq!(err, PlanError::EmptyBom);
    }

    #[test]
    fn all_integrated_falls_back_to_smd_when_infeasible() {
        // A crystal cannot be integrated; AllIntegrated keeps it SMD.
        let crystal = BomItem::passive("crystal", 1)
            .with_smd(Realization::new(Area::from_mm2(10.0), Money::new(1.0)));
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated)
            .plan(&[crystal], SelectionObjective::MinArea)
            .unwrap();
        assert_eq!(plan.smd_placements(), 1);
    }

    #[test]
    fn render_lists_every_item() {
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::Optimized)
            .plan(&full_bom(), SelectionObjective::MinArea)
            .unwrap();
        let text = plan.render();
        assert!(text.contains("decap") && text.contains("pull-up") && text.contains("module"));
    }
}
