//! Bill-of-materials items with per-technology realizations.

use ipass_moe::CostCategory;
use ipass_units::{Area, Money};
use std::fmt;

/// One way to realize a BOM item: area consumed on the carrier and the
/// purchase cost per piece (integrated realizations are part of the
/// substrate and cost nothing to purchase; their cost appears as
/// substrate area).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Realization {
    area: Area,
    unit_cost: Money,
    bonds: u32,
}

impl Realization {
    /// A realization with the given mounted area and purchase cost.
    pub fn new(area: Area, unit_cost: Money) -> Realization {
        Realization {
            area,
            unit_cost,
            bonds: 0,
        }
    }

    /// Attach a bond-wire count (wire-bonded dies).
    pub fn with_bonds(mut self, bonds: u32) -> Realization {
        self.bonds = bonds;
        self
    }

    /// Area consumed on the carrier (footprint for SMDs, substrate area
    /// for integrated parts, die + pad ring for bare dies).
    pub fn area(&self) -> Area {
        self.area
    }

    /// Purchase cost per piece.
    pub fn unit_cost(&self) -> Money {
        self.unit_cost
    }

    /// Bond wires needed per piece (wire-bonded dies only).
    pub fn bonds(&self) -> u32 {
        self.bonds
    }
}

/// What role an item plays (drives cost categorization and which
/// realization applies under which die-attach/passive choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemRole {
    /// An active die / IC: realizations keyed by die attach.
    Die,
    /// A passive (or passive network): realizations keyed by passive
    /// policy.
    Passive,
    /// A component only ever mounted (connectors, crystals, shields):
    /// always the SMD realization.
    FixedSmd,
}

/// A BOM line: `quantity` pieces of a component, with whichever
/// realizations the technologies offer.
///
/// Missing realizations express infeasibility — e.g. a filter whose
/// integrated version cannot meet spec simply has no integrated
/// realization for build-ups where that matters, or carries one with a
/// performance penalty tracked separately by the RF analysis.
///
/// # Examples
///
/// ```
/// use ipass_core::{BomItem, ItemRole, Realization};
/// use ipass_units::{Area, Money};
///
/// let rf_chip = BomItem::die("RF chip")
///     .with_packaged(Realization::new(Area::from_mm2(225.0), Money::new(90.0)))
///     .with_wire_bond(Realization::new(Area::from_mm2(28.0), Money::new(79.0)).with_bonds(100))
///     .with_flip_chip(Realization::new(Area::from_mm2(13.0), Money::new(79.0)));
/// assert_eq!(rf_chip.role(), ItemRole::Die);
/// assert_eq!(rf_chip.quantity(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BomItem {
    name: String,
    role: ItemRole,
    quantity: u32,
    category: CostCategory,
    packaged: Option<Realization>,
    wire_bond: Option<Realization>,
    flip_chip: Option<Realization>,
    smd: Option<Realization>,
    integrated: Option<Realization>,
}

impl BomItem {
    fn new(
        name: impl Into<String>,
        role: ItemRole,
        quantity: u32,
        category: CostCategory,
    ) -> BomItem {
        assert!(quantity > 0, "BOM quantity must be positive");
        BomItem {
            name: name.into(),
            role,
            quantity,
            category,
            packaged: None,
            wire_bond: None,
            flip_chip: None,
            smd: None,
            integrated: None,
        }
    }

    /// A die (quantity 1), booked under the chip cost category.
    pub fn die(name: impl Into<String>) -> BomItem {
        BomItem::new(name, ItemRole::Die, 1, CostCategory::Chip)
    }

    /// A passive component (or passive network), booked under passive
    /// parts.
    ///
    /// # Panics
    ///
    /// Panics on zero quantity.
    pub fn passive(name: impl Into<String>, quantity: u32) -> BomItem {
        BomItem::new(
            name,
            ItemRole::Passive,
            quantity,
            CostCategory::PassiveParts,
        )
    }

    /// A component that is always mounted as an SMD regardless of policy.
    ///
    /// # Panics
    ///
    /// Panics on zero quantity.
    pub fn fixed_smd(name: impl Into<String>, quantity: u32) -> BomItem {
        BomItem::new(
            name,
            ItemRole::FixedSmd,
            quantity,
            CostCategory::PassiveParts,
        )
    }

    /// Set the packaged (QFP-on-PCB) realization.
    pub fn with_packaged(mut self, r: Realization) -> BomItem {
        self.packaged = Some(r);
        self
    }

    /// Set the wire-bonded bare-die realization.
    pub fn with_wire_bond(mut self, r: Realization) -> BomItem {
        self.wire_bond = Some(r);
        self
    }

    /// Set the flip-chip bare-die realization.
    pub fn with_flip_chip(mut self, r: Realization) -> BomItem {
        self.flip_chip = Some(r);
        self
    }

    /// Set the SMD realization.
    pub fn with_smd(mut self, r: Realization) -> BomItem {
        self.smd = Some(r);
        self
    }

    /// Set the integrated (in-substrate) realization.
    pub fn with_integrated(mut self, r: Realization) -> BomItem {
        self.integrated = Some(r);
        self
    }

    /// Item name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Item role.
    pub fn role(&self) -> ItemRole {
        self.role
    }

    /// Pieces of this item.
    pub fn quantity(&self) -> u32 {
        self.quantity
    }

    /// Cost category for purchase costs.
    pub fn category(&self) -> CostCategory {
        self.category
    }

    /// The packaged realization, if any.
    pub fn packaged(&self) -> Option<&Realization> {
        self.packaged.as_ref()
    }

    /// The wire-bond realization, if any.
    pub fn wire_bond(&self) -> Option<&Realization> {
        self.wire_bond.as_ref()
    }

    /// The flip-chip realization, if any.
    pub fn flip_chip(&self) -> Option<&Realization> {
        self.flip_chip.as_ref()
    }

    /// The SMD realization, if any.
    pub fn smd(&self) -> Option<&Realization> {
        self.smd.as_ref()
    }

    /// The integrated realization, if any.
    pub fn integrated(&self) -> Option<&Realization> {
        self.integrated.as_ref()
    }
}

impl fmt::Display for BomItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}× {}", self.quantity, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_accessors() {
        let item = BomItem::passive("cap", 45)
            .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.03)))
            .with_integrated(Realization::new(Area::from_mm2(0.3), Money::ZERO));
        assert_eq!(item.name(), "cap");
        assert_eq!(item.quantity(), 45);
        assert_eq!(item.category(), CostCategory::PassiveParts);
        assert!(item.smd().is_some());
        assert!(item.integrated().is_some());
        assert!(item.packaged().is_none());
        assert_eq!(item.to_string(), "45× cap");
    }

    #[test]
    fn die_defaults() {
        let die = BomItem::die("DSP");
        assert_eq!(die.role(), ItemRole::Die);
        assert_eq!(die.quantity(), 1);
        assert_eq!(die.category(), CostCategory::Chip);
    }

    #[test]
    fn bonds_ride_on_realizations() {
        let r = Realization::new(Area::from_mm2(28.0), Money::new(10.0)).with_bonds(100);
        assert_eq!(r.bonds(), 100);
        assert_eq!(r.area().mm2(), 28.0);
        assert_eq!(r.unit_cost(), Money::new(10.0));
    }

    #[test]
    #[should_panic(expected = "quantity")]
    fn zero_quantity_rejected() {
        let _ = BomItem::passive("x", 0);
    }

    #[test]
    fn fixed_smd_role() {
        let x = BomItem::fixed_smd("crystal", 1);
        assert_eq!(x.role(), ItemRole::FixedSmd);
    }
}
