//! Technology descriptors and build-up generation (methodology step 1).

use std::fmt;

/// The carrier technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubstrateTech {
    /// Conventional FR4 printed circuit board.
    Pcb,
    /// Thin-film multichip module on silicon (MCM-D(Si)).
    McmDSi,
}

impl SubstrateTech {
    /// Whether this substrate can embed integrated passives.
    pub fn supports_integrated_passives(self) -> bool {
        matches!(self, SubstrateTech::McmDSi)
    }

    /// Whether modules on this substrate need a BGA laminate carrier.
    pub fn needs_laminate(self) -> bool {
        matches!(self, SubstrateTech::McmDSi)
    }
}

impl fmt::Display for SubstrateTech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubstrateTech::Pcb => "PCB",
            SubstrateTech::McmDSi => "MCM-D(Si)",
        })
    }
}

/// The first-level interconnect for the active dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DieAttach {
    /// Packaged parts (QFP) soldered like any SMD — the PCB reference.
    Packaged,
    /// Bare die, wire bonded.
    WireBond,
    /// Bare die, flip chip.
    FlipChip,
}

impl fmt::Display for DieAttach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DieAttach::Packaged => "packaged",
            DieAttach::WireBond => "WB",
            DieAttach::FlipChip => "FC",
        })
    }
}

/// How passives are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassivePolicy {
    /// Every passive is a mounted SMD.
    AllSmd,
    /// Every passive that *can* be integrated is integrated (the paper's
    /// solution 3).
    AllIntegrated,
    /// Per component, the smaller (or cheaper, per the objective)
    /// realization wins — the paper's "passives optimized" solution 4.
    Optimized,
}

impl fmt::Display for PassivePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PassivePolicy::AllSmd => "SMD",
            PassivePolicy::AllIntegrated => "IP",
            PassivePolicy::Optimized => "IP&SMD",
        })
    }
}

/// A physical build-up: substrate + die attach + passive policy.
///
/// # Examples
///
/// ```
/// use ipass_core::{BuildUp, PassivePolicy};
///
/// let four = BuildUp::paper_solutions();
/// assert_eq!(four.len(), 4);
/// assert_eq!(four[3].to_string(), "MCM-D(Si)/FC/IP&SMD");
/// assert!(BuildUp::enumerate().len() >= 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BuildUp {
    substrate: SubstrateTech,
    die_attach: DieAttach,
    passives: PassivePolicy,
}

impl BuildUp {
    /// Construct an arbitrary build-up.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent combinations: a PCB cannot integrate
    /// passives or carry bare dies, and an MCM does not host packaged
    /// parts.
    pub fn new(
        substrate: SubstrateTech,
        die_attach: DieAttach,
        passives: PassivePolicy,
    ) -> BuildUp {
        match substrate {
            SubstrateTech::Pcb => {
                assert!(
                    die_attach == DieAttach::Packaged,
                    "PCB build-ups use packaged parts, not {die_attach}"
                );
                assert!(
                    passives == PassivePolicy::AllSmd,
                    "PCB cannot embed integrated passives"
                );
            }
            SubstrateTech::McmDSi => {
                assert!(
                    die_attach != DieAttach::Packaged,
                    "MCM-D carries bare dies, not packaged parts"
                );
            }
        }
        BuildUp {
            substrate,
            die_attach,
            passives,
        }
    }

    /// The PCB/SMD reference (the paper's solution 1).
    pub fn pcb_reference() -> BuildUp {
        BuildUp::new(
            SubstrateTech::Pcb,
            DieAttach::Packaged,
            PassivePolicy::AllSmd,
        )
    }

    /// MCM-D with wire-bonded dies (solution 2 uses `AllSmd`).
    pub fn mcm_wire_bond(passives: PassivePolicy) -> BuildUp {
        BuildUp::new(SubstrateTech::McmDSi, DieAttach::WireBond, passives)
    }

    /// MCM-D with flip-chip dies (solutions 3 and 4).
    pub fn mcm_flip_chip(passives: PassivePolicy) -> BuildUp {
        BuildUp::new(SubstrateTech::McmDSi, DieAttach::FlipChip, passives)
    }

    /// The four implementations evaluated in the paper, in order.
    pub fn paper_solutions() -> [BuildUp; 4] {
        [
            BuildUp::pcb_reference(),
            BuildUp::mcm_wire_bond(PassivePolicy::AllSmd),
            BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated),
            BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
        ]
    }

    /// Every structurally viable build-up (methodology step 1's search
    /// space; the paper prunes this to its four candidates).
    pub fn enumerate() -> Vec<BuildUp> {
        let mut all = vec![BuildUp::pcb_reference()];
        for attach in [DieAttach::WireBond, DieAttach::FlipChip] {
            for policy in [
                PassivePolicy::AllSmd,
                PassivePolicy::AllIntegrated,
                PassivePolicy::Optimized,
            ] {
                all.push(BuildUp::new(SubstrateTech::McmDSi, attach, policy));
            }
        }
        all
    }

    /// The substrate technology.
    pub fn substrate(&self) -> SubstrateTech {
        self.substrate
    }

    /// The die attach technology.
    pub fn die_attach(&self) -> DieAttach {
        self.die_attach
    }

    /// The passive implementation policy.
    pub fn passives(&self) -> PassivePolicy {
        self.passives
    }
}

impl fmt::Display for BuildUp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.substrate {
            SubstrateTech::Pcb => write!(f, "PCB/SMD"),
            SubstrateTech::McmDSi => {
                write!(
                    f,
                    "{}/{}/{}",
                    self.substrate, self.die_attach, self.passives
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_solutions_match_section_4_1() {
        let s = BuildUp::paper_solutions();
        assert_eq!(s[0].to_string(), "PCB/SMD");
        assert_eq!(s[1].to_string(), "MCM-D(Si)/WB/SMD");
        assert_eq!(s[2].to_string(), "MCM-D(Si)/FC/IP");
        assert_eq!(s[3].to_string(), "MCM-D(Si)/FC/IP&SMD");
    }

    #[test]
    fn enumerate_contains_the_paper_set() {
        let all = BuildUp::enumerate();
        assert_eq!(all.len(), 7);
        for s in BuildUp::paper_solutions() {
            assert!(all.contains(&s), "{s} missing from enumeration");
        }
        // No duplicates.
        for (i, a) in all.iter().enumerate() {
            assert!(!all[i + 1..].contains(a));
        }
    }

    #[test]
    fn capability_flags() {
        assert!(!SubstrateTech::Pcb.supports_integrated_passives());
        assert!(SubstrateTech::McmDSi.supports_integrated_passives());
        assert!(!SubstrateTech::Pcb.needs_laminate());
        assert!(SubstrateTech::McmDSi.needs_laminate());
    }

    #[test]
    #[should_panic(expected = "integrated passives")]
    fn pcb_with_ip_rejected() {
        let _ = BuildUp::new(
            SubstrateTech::Pcb,
            DieAttach::Packaged,
            PassivePolicy::AllIntegrated,
        );
    }

    #[test]
    #[should_panic(expected = "bare dies")]
    fn mcm_with_packaged_rejected() {
        let _ = BuildUp::new(
            SubstrateTech::McmDSi,
            DieAttach::Packaged,
            PassivePolicy::AllSmd,
        );
    }

    #[test]
    #[should_panic(expected = "packaged parts")]
    fn pcb_with_flip_chip_rejected() {
        let _ = BuildUp::new(
            SubstrateTech::Pcb,
            DieAttach::FlipChip,
            PassivePolicy::AllSmd,
        );
    }

    #[test]
    fn accessors() {
        let b = BuildUp::mcm_flip_chip(PassivePolicy::Optimized);
        assert_eq!(b.substrate(), SubstrateTech::McmDSi);
        assert_eq!(b.die_attach(), DieAttach::FlipChip);
        assert_eq!(b.passives(), PassivePolicy::Optimized);
    }
}
