//! The five-step methodology behind a single entry point.
//!
//! [`TradeStudy`] takes the BOM, the candidate build-ups with their cost
//! cards and performance scores, and runs selection → area → cost →
//! figure of merit in one call, returning a [`StudyReport`] that renders
//! the full decision story.

use crate::bom::BomItem;
use crate::flowbuild::CostInputs;
use crate::fom::{CandidateScore, DecisionError, DecisionTable, FomWeights};
use crate::plan::{AreaBreakdown, BuildUpPlan, PlanError, SelectionObjective};
use crate::technology::BuildUp;
use ipass_explore::{
    Exploration, ExploreError, FlowAxis, FlowExplorer, FrontierDiff, Metric, Objective, SamplerSpec,
};
use ipass_moe::{CompiledFlow, CostReport, FlowError, PatchDirective};
use ipass_sim::Executor;
use ipass_units::Money;
use std::borrow::Cow;
use std::error::Error;
use std::fmt;

/// One candidate of a trade study: a build-up, its Table-2-style cost
/// card and its (externally assessed) performance score.
#[derive(Debug, Clone)]
pub struct StudyCandidate {
    /// The build-up.
    pub buildup: BuildUp,
    /// The cost/yield card.
    pub inputs: CostInputs,
    /// Performance score in `(0, 1]` (from the RF assessment).
    pub performance: f64,
}

impl StudyCandidate {
    /// Create a candidate.
    pub fn new(buildup: BuildUp, inputs: CostInputs, performance: f64) -> StudyCandidate {
        StudyCandidate {
            buildup,
            inputs,
            performance,
        }
    }
}

/// Error running a trade study.
#[derive(Debug)]
#[non_exhaustive]
pub enum StudyError {
    /// No candidates were registered.
    NoCandidates,
    /// Technology selection failed for a candidate.
    Plan(PlanError),
    /// Cost evaluation failed for a candidate.
    Flow(FlowError),
    /// Ranking failed.
    Decision(DecisionError),
    /// A design-space exploration failed.
    Explore(ExploreError),
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::NoCandidates => write!(f, "trade study has no candidates"),
            StudyError::Plan(e) => write!(f, "planning failed: {e}"),
            StudyError::Flow(e) => write!(f, "cost evaluation failed: {e}"),
            StudyError::Decision(e) => write!(f, "ranking failed: {e}"),
            StudyError::Explore(e) => write!(f, "exploration failed: {e}"),
        }
    }
}

impl Error for StudyError {}

impl From<PlanError> for StudyError {
    fn from(e: PlanError) -> StudyError {
        StudyError::Plan(e)
    }
}

impl From<FlowError> for StudyError {
    fn from(e: FlowError) -> StudyError {
        StudyError::Flow(e)
    }
}

impl From<DecisionError> for StudyError {
    fn from(e: DecisionError) -> StudyError {
        StudyError::Decision(e)
    }
}

impl From<ExploreError> for StudyError {
    fn from(e: ExploreError) -> StudyError {
        StudyError::Explore(e)
    }
}

/// A configured trade study (methodology steps 1–5).
///
/// The first registered candidate is the reference the others are
/// normalized against (the paper's "solution 1 = 100 %").
///
/// # Examples
///
/// ```
/// use ipass_core::{
///     BomItem, BuildUp, FomWeights, PassivePolicy, Realization, SelectionObjective,
///     StudyCandidate, TradeStudy,
/// };
/// use ipass_units::{Area, Money, Probability};
///
/// # fn card(pcb: bool) -> ipass_core::CostInputs {
/// #     ipass_core::CostInputs {
/// #         substrate_cost_per_cm2: Money::new(if pcb { 0.1 } else { 2.25 }),
/// #         substrate_fab_yield_per_cm2: None,
/// #         substrate_yield: Probability::clamped(if pcb { 0.9999 } else { 0.9 }),
/// #         chips: vec![ipass_core::ChipCost::new("ASIC", Money::new(20.0), Probability::clamped(0.99))],
/// #         chip_attach_cost_per_die: Money::new(0.1),
/// #         chip_attach_yield: Probability::clamped(0.99),
/// #         wire_bond_cost_per_bond: Money::new(0.01),
/// #         wire_bond_yield: Probability::clamped(0.9999),
/// #         smd_parts_cost_override: None,
/// #         smd_attach_cost_per_part: Money::new(0.01),
/// #         smd_attach_yield: Probability::clamped(0.9999),
/// #         packaging: (!pcb).then(|| (Money::new(3.5), Probability::clamped(0.968))),
/// #         final_test_cost: Money::new(2.0),
/// #         fault_coverage: Probability::clamped(0.99),
/// #         yield_basis: ipass_core::YieldBasis::PerStep,
/// #     }
/// # }
/// let bom = vec![
///     BomItem::die("ASIC")
///         .with_packaged(Realization::new(Area::from_mm2(400.0), Money::new(25.0)))
///         .with_flip_chip(Realization::new(Area::from_mm2(36.0), Money::new(20.0))),
///     BomItem::passive("bias R", 30)
///         .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
///         .with_integrated(Realization::new(Area::from_mm2(0.2), Money::ZERO)),
/// ];
/// let report = TradeStudy::new("demo", bom)
///     .candidate(StudyCandidate::new(BuildUp::pcb_reference(), card(true), 1.0))
///     .candidate(StudyCandidate::new(
///         BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
///         card(false),
///         1.0,
///     ))
///     .run()?;
/// assert_eq!(report.rows().len(), 2);
/// println!("{}", report.render());
/// # Ok::<(), ipass_core::StudyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TradeStudy {
    name: String,
    bom: Vec<BomItem>,
    candidates: Vec<StudyCandidate>,
    objective: SelectionObjective,
    weights: FomWeights,
    executor: Executor,
}

impl TradeStudy {
    /// Create a study over a BOM.
    pub fn new(name: impl Into<String>, bom: Vec<BomItem>) -> TradeStudy {
        TradeStudy {
            name: name.into(),
            bom,
            candidates: Vec::new(),
            objective: SelectionObjective::MinArea,
            weights: FomWeights::unweighted(),
            executor: Executor::available(),
        }
    }

    /// Register a candidate (the first is the reference).
    pub fn candidate(mut self, candidate: StudyCandidate) -> TradeStudy {
        self.candidates.push(candidate);
        self
    }

    /// Change the selection objective (default: the paper's minimum
    /// area).
    pub fn with_objective(mut self, objective: SelectionObjective) -> TradeStudy {
        self.objective = objective;
        self
    }

    /// Change the figure-of-merit weights (default: unweighted product).
    pub fn with_weights(mut self, weights: FomWeights) -> TradeStudy {
        self.weights = weights;
        self
    }

    /// Change the executor candidates are fanned out on (default: one
    /// worker per available core; results do not depend on the choice).
    pub fn with_executor(mut self, executor: Executor) -> TradeStudy {
        self.executor = executor;
        self
    }

    /// Run all five steps.
    ///
    /// Candidates are evaluated in parallel on the study's executor.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError`] when no candidates are registered, a
    /// candidate cannot be planned, or a flow cannot be evaluated.
    pub fn run(&self) -> Result<StudyReport, StudyError> {
        let mut reports = self.run_scenarios(std::slice::from_ref(&StudyScenario::baseline()))?;
        Ok(reports.pop().expect("one scenario in, one report out"))
    }

    /// Run the study under several scenarios at once.
    ///
    /// Memoization happens on two levels, both fanned out through the
    /// executor:
    ///
    /// 1. **Plan + compile** per (candidate, objective): scenarios that
    ///    share a selection objective share the selected plan, its
    ///    packed areas and the *compiled* production program.
    /// 2. **Cost** per (candidate, objective, patch): a scenario's
    ///    [`cost patch`](StudyScenario::patch) is applied to the cached
    ///    compiled program — a copy of the flat op vector with a few
    ///    slots overwritten, never a rebuilt flow — and scenarios with
    ///    equal patches share the resulting report and only re-rank the
    ///    decision.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError`] when no candidates are registered, or any
    /// candidate fails to plan or evaluate under any scenario (including
    /// a patch naming a slot the compiled flow does not expose).
    pub fn run_scenarios(
        &self,
        scenarios: &[StudyScenario],
    ) -> Result<Vec<StudyReport>, StudyError> {
        if self.candidates.is_empty() {
            return Err(StudyError::NoCandidates);
        }
        // Scenario configurations collapse into equivalence classes:
        // that deduplication *is* the memoization — each (candidate,
        // objective) cell is planned and compiled exactly once, each
        // (candidate, objective, patch) cell costed exactly once,
        // however many scenarios share them.
        let mut objectives: Vec<SelectionObjective> = Vec::new();
        let mut cost_classes: Vec<(usize, Option<&[PatchDirective]>)> = Vec::new();
        let scenario_class: Vec<usize> = scenarios
            .iter()
            .map(|s| {
                let objective = s.objective.unwrap_or(self.objective);
                let o = match objectives.iter().position(|c| *c == objective) {
                    Some(i) => i,
                    None => {
                        objectives.push(objective);
                        objectives.len() - 1
                    }
                };
                let patch = s.patch.as_deref();
                match cost_classes
                    .iter()
                    .position(|&(co, cp)| co == o && cp == patch)
                {
                    Some(i) => i,
                    None => {
                        cost_classes.push((o, patch));
                        cost_classes.len() - 1
                    }
                }
            })
            .collect();

        // Level 1: plan, size and compile each candidate once per
        // objective class.
        let base_grid: Vec<(usize, usize)> = (0..self.candidates.len())
            .flat_map(|c| (0..objectives.len()).map(move |o| (c, o)))
            .collect();
        let bases = self.executor.try_map(&base_grid, |_, &(c, o)| {
            self.plan_candidate(c, objectives[o])
        })?;

        // Level 2: one analytic evaluation per candidate × cost class,
        // patching the cached program instead of rebuilding anything.
        let cost_grid: Vec<(usize, usize)> = (0..self.candidates.len())
            .flat_map(|c| (0..cost_classes.len()).map(move |k| (c, k)))
            .collect();
        let costs: Vec<CostReport> =
            ipass_moe::analyze_patched_batch(&self.executor, &cost_grid, |_, &(c, k)| {
                let (o, patch) = cost_classes[k];
                let compiled = &bases[c * objectives.len() + o].compiled;
                let mut point = compiled.patch();
                if let Some(directives) = patch {
                    for directive in directives {
                        point.apply(directive)?;
                    }
                }
                Ok(Cow::Owned(point))
            })?;

        scenarios
            .iter()
            .zip(scenario_class.iter())
            .map(|(scenario, &class)| {
                let (obj_class, _) = cost_classes[class];
                let rows: Vec<StudyRow> = (0..self.candidates.len())
                    .map(|c| {
                        let base = &bases[c * objectives.len() + obj_class];
                        StudyRow {
                            plan: base.plan.clone(),
                            area: base.area,
                            cost: costs[c * cost_classes.len() + class].clone(),
                            performance: base.performance,
                        }
                    })
                    .collect();
                let scores: Vec<CandidateScore> = rows
                    .iter()
                    .map(|row| {
                        CandidateScore::new(
                            row.plan.buildup().to_string(),
                            row.performance,
                            row.area.module_area,
                            row.cost.final_cost_per_shipped(),
                        )
                    })
                    .collect();
                let reference = scores[0].name.clone();
                let weights = scenario.weights.unwrap_or(self.weights);
                let decision = DecisionTable::rank(&scores, &reference, weights)?;
                let name = if scenario.name.is_empty() {
                    self.name.clone()
                } else {
                    format!("{} / {}", self.name, scenario.name)
                };
                Ok(StudyReport {
                    name,
                    rows,
                    decision,
                })
            })
            .collect()
    }

    /// Run a design-space exploration over every candidate: the same
    /// axes (say, amortization volume × test coverage) are swept over
    /// each candidate's compiled production program through
    /// `ipass-explore`, and the study is decided on the *frontier-best*
    /// cost of each candidate rather than a single point estimate.
    ///
    /// Each candidate is planned and compiled once (the study's
    /// selection objective applies); the explorer then screens every
    /// sampled point analytically — a patched op-vector copy per point,
    /// never a rebuilt flow — and extracts a Pareto frontier over
    /// *(final cost per shipped unit ↓, shipped fraction ↑)*. The
    /// returned [`StudyExploration`] carries, per candidate, the full
    /// screen, the frontier, and the frontier diff against the
    /// reference candidate, plus a [`DecisionTable`] ranked at each
    /// candidate's cheapest frontier point.
    ///
    /// The axes name patch slots by their stage/part path; they must
    /// resolve in **every** candidate's compiled flow (stages shared by
    /// construction — `"functional test"`, volume — are safe choices).
    ///
    /// # Errors
    ///
    /// Returns [`StudyError`] when no candidates are registered, a
    /// candidate fails to plan, an axis names a slot some candidate
    /// does not expose, or ranking fails.
    pub fn run_exploration(
        &self,
        axes: &[FlowAxis],
        sampler: &SamplerSpec,
    ) -> Result<StudyExploration, StudyError> {
        if self.candidates.is_empty() {
            return Err(StudyError::NoCandidates);
        }
        let cells: Vec<usize> = (0..self.candidates.len()).collect();
        let bases = self
            .executor
            .try_map(&cells, |_, &c| self.plan_candidate(c, self.objective))?;
        let explorations: Vec<Exploration> = bases
            .iter()
            .map(|cell| {
                let mut explorer = FlowExplorer::new(cell.compiled.clone())
                    .objective(Objective::minimize(Metric::FinalCostPerShipped))
                    .objective(Objective::maximize(Metric::ShippedFraction))
                    .with_executor(self.executor);
                for axis in axes {
                    explorer = explorer.axis(axis.clone());
                }
                Ok::<Exploration, StudyError>(explorer.explore(sampler)?)
            })
            .collect::<Result<_, _>>()?;

        // Only the reference's frontier is needed for the diffs — keep
        // a copy of that and *move* each (potentially huge) screen into
        // its CandidateExploration.
        let reference_frontier = explorations[0].frontier.clone();
        let mut candidates = Vec::with_capacity(bases.len());
        let mut scores = Vec::with_capacity(bases.len());
        for (i, (cell, exploration)) in bases.iter().zip(explorations).enumerate() {
            let best = exploration
                .frontier
                .best_by(0)
                .expect("explorations have at least one point");
            let best_cost = Money::new(best.objectives[0]);
            scores.push(CandidateScore::new(
                cell.plan.buildup().to_string(),
                cell.performance,
                cell.area.module_area,
                best_cost,
            ));
            let vs_reference = if i == 0 {
                None
            } else {
                Some(exploration.frontier.diff(&reference_frontier)?)
            };
            candidates.push(CandidateExploration {
                name: cell.plan.buildup().to_string(),
                exploration,
                best_cost,
                vs_reference,
            });
        }
        let reference = scores[0].name.clone();
        let decision = DecisionTable::rank(&scores, &reference, self.weights)?;
        Ok(StudyExploration {
            name: self.name.clone(),
            candidates,
            decision,
        })
    }

    fn plan_candidate(
        &self,
        index: usize,
        objective: SelectionObjective,
    ) -> Result<PlannedCell, StudyError> {
        let candidate = &self.candidates[index];
        let plan = candidate.buildup.plan(&self.bom, objective)?;
        let area = plan.area();
        let compiled = plan
            .production_flow(area.substrate_area, &candidate.inputs)?
            .compiled()?;
        Ok(PlannedCell {
            plan,
            area,
            compiled,
            performance: candidate.performance,
        })
    }
}

/// The objective-dependent half of one candidate's assessment, shared
/// by every scenario with that objective: the plan, its areas and the
/// compiled production program cost patches apply to.
#[derive(Debug, Clone)]
struct PlannedCell {
    plan: BuildUpPlan,
    area: AreaBreakdown,
    compiled: CompiledFlow,
    performance: f64,
}

/// One scenario of a [`TradeStudy::run_scenarios`] batch: overrides for
/// the study's selection objective, figure-of-merit weights, and/or the
/// cost model itself (as patches on each candidate's compiled
/// production program).
#[derive(Debug, Clone, Default)]
pub struct StudyScenario {
    /// Scenario label, appended to the report name (empty = baseline).
    pub name: String,
    /// Objective override (`None` uses the study's objective).
    pub objective: Option<SelectionObjective>,
    /// Weight override (`None` uses the study's weights).
    pub weights: Option<FomWeights>,
    /// Cost-model patch applied to every candidate's compiled flow
    /// (`None` evaluates the unpatched program). Directives name slots
    /// by their stage/part path — e.g. `"functional test"` or
    /// `"chip assembly/ASIC"`; scenarios with equal patches share the
    /// memoized cost evaluation.
    pub patch: Option<Vec<PatchDirective>>,
}

impl StudyScenario {
    /// The study's own configuration, unmodified.
    pub fn baseline() -> StudyScenario {
        StudyScenario::default()
    }

    /// A named scenario with no overrides yet.
    pub fn named(name: impl Into<String>) -> StudyScenario {
        StudyScenario {
            name: name.into(),
            ..StudyScenario::default()
        }
    }

    /// Override the selection objective.
    pub fn with_objective(mut self, objective: SelectionObjective) -> StudyScenario {
        self.objective = Some(objective);
        self
    }

    /// Override the figure-of-merit weights.
    pub fn with_weights(mut self, weights: FomWeights) -> StudyScenario {
        self.weights = Some(weights);
        self
    }

    /// Patch the cost model: the directives are applied to every
    /// candidate's compiled production program before the analytic
    /// evaluation.
    pub fn with_patch(mut self, patch: Vec<PatchDirective>) -> StudyScenario {
        self.patch = Some(patch);
        self
    }
}

/// The full assessment of one candidate.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// The selected plan (step 1).
    pub plan: BuildUpPlan,
    /// The sized areas (step 3).
    pub area: AreaBreakdown,
    /// The cost report (step 4).
    pub cost: CostReport,
    /// The performance score (step 2, supplied).
    pub performance: f64,
}

/// The outcome of a [`TradeStudy`].
#[derive(Debug, Clone)]
pub struct StudyReport {
    name: String,
    rows: Vec<StudyRow>,
    decision: DecisionTable,
}

impl StudyReport {
    /// Study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The per-candidate assessments, in registration order.
    pub fn rows(&self) -> &[StudyRow] {
        &self.rows
    }

    /// The ranked decision (step 5).
    pub fn decision(&self) -> &DecisionTable {
        &self.decision
    }

    /// The per-candidate assessment as a typed artifact table
    /// (selection counts, module area, cost, performance).
    pub fn artifact_table(&self) -> ipass_report::Table {
        use ipass_report::Cell;
        self.rows.iter().fold(
            ipass_report::Table::new(format!("trade study: {}", self.name))
                .text_column("candidate")
                .integer_column("SMDs")
                .integer_column("IPs")
                .integer_column("dies")
                .numeric_column("module [mm²]", 0)
                .numeric_column("cost", 2)
                .numeric_column("perf", 2),
            |t, row| {
                t.row(vec![
                    Cell::text(row.plan.buildup().to_string()),
                    Cell::int(row.plan.smd_placements() as i64),
                    Cell::int(row.plan.integrated_count() as i64),
                    Cell::int(row.plan.die_count() as i64),
                    Cell::num(row.area.module_area.mm2()),
                    Cell::num(row.cost.final_cost_per_shipped().units()),
                    Cell::num(row.performance),
                ])
            },
        )
    }

    /// Render the study: the candidate table plus the decision table
    /// (both through the artifact pipeline's aligned txt sink).
    pub fn render(&self) -> String {
        let mut out = self.artifact_table().to_txt();
        out.push('\n');
        out.push_str(&self.decision.render());
        out
    }
}

impl fmt::Display for StudyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One candidate's slice of a [`TradeStudy::run_exploration`].
#[derive(Debug, Clone)]
pub struct CandidateExploration {
    /// The candidate (build-up) name.
    pub name: String,
    /// The full analytic screen and its Pareto frontier over
    /// *(final cost ↓, shipped fraction ↑)*.
    pub exploration: Exploration,
    /// The cheapest frontier cost — what the decision table ranks on.
    pub best_cost: Money,
    /// Frontier diff against the reference candidate (`None` for the
    /// reference itself): which of this candidate's trade-off points
    /// the reference beats outright, and vice versa.
    pub vs_reference: Option<FrontierDiff>,
}

/// The outcome of [`TradeStudy::run_exploration`]: per-candidate
/// frontiers plus the decision table ranked at each candidate's
/// frontier-best cost.
#[derive(Debug, Clone)]
pub struct StudyExploration {
    name: String,
    /// Per-candidate explorations, in registration order (the first is
    /// the reference).
    pub candidates: Vec<CandidateExploration>,
    /// The ranking at frontier-best costs.
    pub decision: DecisionTable,
}

impl StudyExploration {
    /// Study name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Render the exploration: per-candidate frontier summaries plus
    /// the decision table.
    pub fn render(&self) -> String {
        let mut out = format!("trade-study exploration: {}\n", self.name);
        for c in &self.candidates {
            out.push_str(&format!(
                "  {:<26} frontier {:>3} / {:>5} points, best cost {:>9.2}",
                c.name,
                c.exploration.frontier.members().len(),
                c.exploration.points.len(),
                c.best_cost.units(),
            ));
            if let Some(diff) = &c.vs_reference {
                out.push_str(&format!(
                    "  (vs reference: {}/{} survive, reference {}/{})",
                    diff.left_surviving.len(),
                    diff.left_total,
                    diff.right_surviving.len(),
                    diff.right_total,
                ));
            }
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.decision.render());
        out
    }
}

impl fmt::Display for StudyExploration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bom::Realization;
    use crate::flowbuild::{ChipCost, YieldBasis};
    use crate::technology::PassivePolicy;
    use ipass_units::{Area, Money, Probability};

    fn card(pcb: bool) -> CostInputs {
        CostInputs {
            substrate_cost_per_cm2: Money::new(if pcb { 0.1 } else { 2.25 }),
            substrate_fab_yield_per_cm2: None,
            substrate_yield: Probability::clamped(if pcb { 0.9999 } else { 0.9 }),
            chips: vec![ChipCost::new(
                "ASIC",
                Money::new(20.0),
                Probability::clamped(0.99),
            )],
            chip_attach_cost_per_die: Money::new(0.1),
            chip_attach_yield: Probability::clamped(0.99),
            wire_bond_cost_per_bond: Money::new(0.01),
            wire_bond_yield: Probability::clamped(0.9999),
            smd_parts_cost_override: None,
            smd_attach_cost_per_part: Money::new(0.01),
            smd_attach_yield: Probability::clamped(0.9999),
            packaging: (!pcb).then(|| (Money::new(3.5), Probability::clamped(0.968))),
            final_test_cost: Money::new(2.0),
            fault_coverage: Probability::clamped(0.99),
            yield_basis: YieldBasis::PerStep,
        }
    }

    fn bom() -> Vec<BomItem> {
        vec![
            BomItem::die("ASIC")
                .with_packaged(Realization::new(Area::from_mm2(400.0), Money::new(25.0)))
                .with_flip_chip(Realization::new(Area::from_mm2(36.0), Money::new(20.0))),
            BomItem::passive("bias R", 30)
                .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
                .with_integrated(Realization::new(Area::from_mm2(0.2), Money::ZERO)),
        ]
    }

    fn study() -> TradeStudy {
        TradeStudy::new("unit test", bom())
            .candidate(StudyCandidate::new(
                BuildUp::pcb_reference(),
                card(true),
                1.0,
            ))
            .candidate(StudyCandidate::new(
                BuildUp::mcm_flip_chip(PassivePolicy::Optimized),
                card(false),
                0.9,
            ))
    }

    #[test]
    fn runs_end_to_end() {
        let report = study().run().unwrap();
        assert_eq!(report.rows().len(), 2);
        assert_eq!(report.decision().rows().len(), 2);
        assert_eq!(report.name(), "unit test");
        // The reference row normalizes to 1.
        assert_eq!(report.decision().rows()[0].size_ratio, 1.0);
        let text = report.render();
        assert!(text.contains("module") && text.contains("FoM"));
    }

    #[test]
    fn empty_study_is_an_error() {
        let err = TradeStudy::new("empty", bom()).run().unwrap_err();
        assert!(matches!(err, StudyError::NoCandidates));
    }

    #[test]
    fn plan_errors_propagate() {
        let study = TradeStudy::new("bad", vec![BomItem::passive("ghost", 1)]).candidate(
            StudyCandidate::new(BuildUp::pcb_reference(), card(true), 1.0),
        );
        assert!(matches!(study.run(), Err(StudyError::Plan(_))));
    }

    #[test]
    fn scenario_batch_shares_subresults_and_reranks() {
        let batch = study()
            .run_scenarios(&[
                StudyScenario::baseline(),
                StudyScenario::named("perf-heavy").with_weights(FomWeights {
                    performance: 10.0,
                    size: 1.0,
                    cost: 1.0,
                }),
            ])
            .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].name(), "unit test");
        assert_eq!(batch[1].name(), "unit test / perf-heavy");
        // Same objective ⇒ identical memoized plans and cost rows.
        for (a, b) in batch[0].rows().iter().zip(batch[1].rows().iter()) {
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.area.module_area, b.area.module_area);
        }
        // Different weights ⇒ different ranking of the MCM candidate.
        let base_fom = batch[0].decision().rows()[1].fom;
        let heavy_fom = batch[1].decision().rows()[1].fom;
        assert!(heavy_fom < base_fom);
        // Batch result matches individual runs exactly.
        let solo = study().run().unwrap();
        assert_eq!(solo.decision().rows()[1].fom, base_fom);
    }

    #[test]
    fn empty_scenario_list_is_empty() {
        assert!(study().run_scenarios(&[]).unwrap().is_empty());
    }

    #[test]
    fn patched_scenarios_change_cost_without_replanning() {
        let quadruple_test = || {
            vec![PatchDirective::ScaleCost {
                slot: "functional test".into(),
                factor: 4.0,
            }]
        };
        let batch = study()
            .run_scenarios(&[
                StudyScenario::baseline(),
                StudyScenario::named("pricey test").with_patch(quadruple_test()),
                StudyScenario::named("same patch again").with_patch(quadruple_test()),
            ])
            .unwrap();
        // The plan/area half is shared with the baseline; only the cost
        // moves.
        for (a, b) in batch[0].rows().iter().zip(batch[1].rows().iter()) {
            assert_eq!(a.area.module_area, b.area.module_area);
            assert!(b.cost.final_cost_per_shipped() > a.cost.final_cost_per_shipped());
        }
        // Equal patches collapse into one memoized cost evaluation.
        for (b, c) in batch[1].rows().iter().zip(batch[2].rows().iter()) {
            assert_eq!(b.cost, c.cost);
        }
        // The patched cell equals rebuilding the flow with the scaled
        // card — the patch is a shortcut, not an approximation.
        let mut scaled_card = card(true);
        scaled_card.final_test_cost = Money::new(8.0);
        let plan = BuildUp::pcb_reference()
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let rebuilt = plan
            .production_flow(plan.area().substrate_area, &scaled_card)
            .unwrap()
            .analyze()
            .unwrap();
        assert_eq!(
            batch[1].rows()[0].cost.final_cost_per_shipped(),
            rebuilt.final_cost_per_shipped()
        );
    }

    #[test]
    fn patch_naming_an_unknown_slot_fails_the_study() {
        let err = study()
            .run_scenarios(&[StudyScenario::named("broken").with_patch(vec![
                PatchDirective::ScaleCost {
                    slot: "ghost stage".into(),
                    factor: 2.0,
                },
            ])])
            .unwrap_err();
        assert!(matches!(
            err,
            StudyError::Flow(FlowError::UnknownPatchSlot { .. })
        ));
    }

    #[test]
    fn exploration_ranks_on_frontier_best_cost() {
        use ipass_explore::Levels;

        let axes = vec![
            FlowAxis::volume(Levels::linspace(1_000.0, 100_000.0, 6)),
            FlowAxis::coverage("functional test", Levels::linspace(0.9, 0.999, 6)),
        ];
        let result = study().run_exploration(&axes, &SamplerSpec::Grid).unwrap();
        assert_eq!(result.candidates.len(), 2);
        assert_eq!(result.decision.rows().len(), 2);
        for c in &result.candidates {
            assert_eq!(c.exploration.points.len(), 36);
            assert!(!c.exploration.frontier.members().is_empty());
            // Frontier-best really is the minimum cost over the screen.
            let min = c
                .exploration
                .points
                .iter()
                .map(|p| p.objectives[0])
                .fold(f64::INFINITY, f64::min);
            assert_eq!(c.best_cost.units(), min);
        }
        // The reference carries no self-diff; the challenger does.
        assert!(result.candidates[0].vs_reference.is_none());
        assert!(result.candidates[1].vs_reference.is_some());
        let text = result.render();
        assert!(text.contains("frontier") && text.contains("FoM"));
        // Thread count never changes the outcome.
        let serial = study()
            .with_executor(Executor::serial())
            .run_exploration(&axes, &SamplerSpec::Grid)
            .unwrap();
        for (a, b) in result.candidates.iter().zip(serial.candidates.iter()) {
            assert_eq!(a.exploration.points, b.exploration.points);
            assert_eq!(a.best_cost, b.best_cost);
        }
    }

    #[test]
    fn exploration_rejects_unknown_slots_and_empty_studies() {
        use ipass_explore::Levels;

        let axes = vec![FlowAxis::cost_scale(
            "ghost stage",
            Levels::linspace(0.5, 1.5, 3),
        )];
        let err = study()
            .run_exploration(&axes, &SamplerSpec::Grid)
            .unwrap_err();
        assert!(matches!(
            err,
            StudyError::Explore(ExploreError::Flow(FlowError::UnknownPatchSlot { .. }))
        ));
        let err = TradeStudy::new("empty", bom())
            .run_exploration(&axes, &SamplerSpec::Grid)
            .unwrap_err();
        assert!(matches!(err, StudyError::NoCandidates));
    }

    #[test]
    fn serial_executor_matches_parallel() {
        let parallel = study().run().unwrap();
        let serial = study()
            .with_executor(ipass_sim::Executor::serial())
            .run()
            .unwrap();
        assert_eq!(
            parallel.decision().rows().len(),
            serial.decision().rows().len()
        );
        for (a, b) in parallel
            .decision()
            .rows()
            .iter()
            .zip(serial.decision().rows().iter())
        {
            assert_eq!(a.fom, b.fom);
        }
    }

    #[test]
    fn weights_are_applied() {
        let default = study().run().unwrap();
        let perf_heavy = study()
            .with_weights(FomWeights {
                performance: 10.0,
                size: 1.0,
                cost: 1.0,
            })
            .run()
            .unwrap();
        // With heavy performance weighting the 0.9-perf MCM drops.
        let d = default.decision().rows()[1].fom;
        let p = perf_heavy.decision().rows()[1].fom;
        assert!(p < d);
    }
}
