//! Figure of merit and decision table (methodology step 5, Fig. 6).

use ipass_units::{Area, Money};
use std::error::Error;
use std::fmt;

/// Exponent weights for the figure-of-merit product. The paper uses the
/// plain product (all weights 1); "for more complicated cases weighting
/// factors can also be introduced".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FomWeights {
    /// Exponent on the performance factor.
    pub performance: f64,
    /// Exponent on the 1/size factor.
    pub size: f64,
    /// Exponent on the 1/cost factor.
    pub cost: f64,
}

impl FomWeights {
    /// The paper's unweighted product.
    pub fn unweighted() -> FomWeights {
        FomWeights {
            performance: 1.0,
            size: 1.0,
            cost: 1.0,
        }
    }
}

impl Default for FomWeights {
    fn default() -> FomWeights {
        FomWeights::unweighted()
    }
}

/// The per-candidate inputs to the decision: the outputs of methodology
/// steps 2–4.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Candidate name (e.g. "MCM-D(Si)/FC/IP&SMD").
    pub name: String,
    /// Performance score in `(0, 1]` from the RF assessment.
    pub performance: f64,
    /// Module area (Fig. 3's quantity).
    pub module_area: Area,
    /// Final cost per shipped unit (Eq. 1).
    pub final_cost: Money,
}

impl CandidateScore {
    /// Create a candidate entry.
    ///
    /// # Panics
    ///
    /// Panics when performance is outside `(0, 1]` or area/cost are
    /// non-positive.
    pub fn new(
        name: impl Into<String>,
        performance: f64,
        module_area: Area,
        final_cost: Money,
    ) -> CandidateScore {
        assert!(
            performance > 0.0 && performance <= 1.0,
            "performance score must be in (0, 1], got {performance}"
        );
        assert!(module_area.mm2() > 0.0, "module area must be positive");
        assert!(final_cost.units() > 0.0, "final cost must be positive");
        CandidateScore {
            name: name.into(),
            performance,
            module_area,
            final_cost,
        }
    }
}

/// One row of the Fig. 6 decision table.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRow {
    /// Candidate name.
    pub name: String,
    /// Performance factor.
    pub performance: f64,
    /// Size relative to the reference (1.0 = same area).
    pub size_ratio: f64,
    /// Cost relative to the reference (1.0 = same cost).
    pub cost_ratio: f64,
    /// The figure of merit `perf^wp · (1/size)^ws · (1/cost)^wc`.
    pub fom: f64,
}

/// Error computing a decision table.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DecisionError {
    /// The named reference candidate is not in the list.
    UnknownReference {
        /// The requested reference name.
        name: String,
    },
    /// No candidates were supplied.
    NoCandidates,
}

impl fmt::Display for DecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecisionError::UnknownReference { name } => {
                write!(f, "reference candidate {name:?} not found")
            }
            DecisionError::NoCandidates => write!(f, "no candidates to rank"),
        }
    }
}

impl Error for DecisionError {}

/// The Fig. 6 decision table: every candidate normalized to a reference
/// and ranked by figure of merit.
///
/// # Examples
///
/// ```
/// use ipass_core::{CandidateScore, DecisionTable, FomWeights};
/// use ipass_units::{Area, Money};
///
/// let rows = DecisionTable::rank(
///     &[
///         CandidateScore::new("PCB/SMD", 1.0, Area::from_mm2(1878.0), Money::new(262.3)),
///         CandidateScore::new("MCM/FC/IP&SMD", 0.70, Area::from_mm2(695.0), Money::new(276.2)),
///     ],
///     "PCB/SMD",
///     FomWeights::unweighted(),
/// )?;
/// let best = rows.best();
/// assert_eq!(best.name, "MCM/FC/IP&SMD");
/// assert!(best.fom > 1.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTable {
    reference: String,
    rows: Vec<DecisionRow>,
}

impl DecisionTable {
    /// Normalize `candidates` to the one named `reference` and compute
    /// the figures of merit. Rows keep the input order (the paper's
    /// table); use [`best`](DecisionTable::best) for the ranking.
    ///
    /// # Errors
    ///
    /// Returns [`DecisionError`] when the candidate list is empty or the
    /// reference is unknown.
    pub fn rank(
        candidates: &[CandidateScore],
        reference: &str,
        weights: FomWeights,
    ) -> Result<DecisionTable, DecisionError> {
        if candidates.is_empty() {
            return Err(DecisionError::NoCandidates);
        }
        let reference_candidate =
            candidates
                .iter()
                .find(|c| c.name == reference)
                .ok_or_else(|| DecisionError::UnknownReference {
                    name: reference.to_owned(),
                })?;
        let ref_area = reference_candidate.module_area;
        let ref_cost = reference_candidate.final_cost;
        let rows = candidates
            .iter()
            .map(|c| {
                let size_ratio = c.module_area / ref_area;
                let cost_ratio = c.final_cost / ref_cost;
                let fom = c.performance.powf(weights.performance)
                    * (1.0 / size_ratio).powf(weights.size)
                    * (1.0 / cost_ratio).powf(weights.cost);
                DecisionRow {
                    name: c.name.clone(),
                    performance: c.performance,
                    size_ratio,
                    cost_ratio,
                    fom,
                }
            })
            .collect();
        Ok(DecisionTable {
            reference: reference.to_owned(),
            rows,
        })
    }

    /// The reference candidate's name.
    pub fn reference(&self) -> &str {
        &self.reference
    }

    /// The rows, in input order.
    pub fn rows(&self) -> &[DecisionRow] {
        &self.rows
    }

    /// The row with the highest figure of merit.
    pub fn best(&self) -> &DecisionRow {
        self.rows
            .iter()
            .max_by(|a, b| {
                a.fom
                    .partial_cmp(&b.fom)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("table is never empty")
    }

    /// The decision as a typed artifact table: one row per candidate
    /// with the normalized factors and the figure of merit, the winner
    /// marked `◀ best`.
    pub fn artifact(&self) -> ipass_report::Table {
        self.artifact_titled(format!("decision table (reference: {})", self.reference))
    }

    /// [`DecisionTable::artifact`] with an explicit title.
    pub fn artifact_titled(&self, title: impl Into<String>) -> ipass_report::Table {
        use ipass_report::Cell;
        let best = self.best().name.clone();
        self.rows.iter().fold(
            ipass_report::Table::new(title)
                .text_column("implementation")
                .numeric_column("perf.", 2)
                .numeric_column("size ×", 2)
                .numeric_column("cost ×", 3)
                .numeric_column("FoM", 2)
                .text_column(""),
            |t, row| {
                t.row(vec![
                    Cell::text(&row.name),
                    Cell::num(row.performance),
                    Cell::num(row.size_ratio),
                    Cell::num(row.cost_ratio),
                    Cell::num(row.fom),
                    Cell::text(if row.name == best { "◀ best" } else { "" }),
                ])
            },
        )
    }

    /// Render the Fig. 6 style table (the artifact pipeline's aligned
    /// txt sink; the old ad-hoc formatter is gone).
    pub fn render(&self) -> String {
        self.artifact().to_txt()
    }
}

impl fmt::Display for DecisionTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_candidates() -> Vec<CandidateScore> {
        // The paper's Fig. 6 inputs: perf, area %, cost %.
        vec![
            CandidateScore::new("1 PCB/SMD", 1.0, Area::from_mm2(1000.0), Money::new(100.0)),
            CandidateScore::new(
                "2 MCM/WB/SMD",
                1.0,
                Area::from_mm2(790.0),
                Money::new(104.7),
            ),
            CandidateScore::new(
                "3 MCM/FC/IP",
                0.45,
                Area::from_mm2(600.0),
                Money::new(112.8),
            ),
            CandidateScore::new(
                "4 MCM/FC/IP&SMD",
                0.70,
                Area::from_mm2(370.0),
                Money::new(105.3),
            ),
        ]
    }

    #[test]
    fn reproduces_fig6() {
        let table = DecisionTable::rank(&paper_candidates(), "1 PCB/SMD", FomWeights::unweighted())
            .unwrap();
        let foms: Vec<f64> = table.rows().iter().map(|r| r.fom).collect();
        assert!((foms[0] - 1.0).abs() < 1e-12);
        assert!((foms[1] - 1.2).abs() < 0.05, "sol2 {}", foms[1]);
        assert!((foms[2] - 0.66).abs() < 0.05, "sol3 {}", foms[2]);
        assert!((foms[3] - 1.8).abs() < 0.05, "sol4 {}", foms[3]);
        assert_eq!(table.best().name, "4 MCM/FC/IP&SMD");
    }

    #[test]
    fn weights_can_flip_the_decision() {
        // Weighting performance heavily favors the full-spec solutions.
        let heavy_perf = FomWeights {
            performance: 6.0,
            size: 1.0,
            cost: 1.0,
        };
        let table = DecisionTable::rank(&paper_candidates(), "1 PCB/SMD", heavy_perf).unwrap();
        assert_eq!(table.best().name, "2 MCM/WB/SMD");
    }

    #[test]
    fn reference_ratios_are_unity() {
        let table =
            DecisionTable::rank(&paper_candidates(), "1 PCB/SMD", FomWeights::default()).unwrap();
        let reference_row = &table.rows()[0];
        assert_eq!(reference_row.size_ratio, 1.0);
        assert_eq!(reference_row.cost_ratio, 1.0);
        assert_eq!(table.reference(), "1 PCB/SMD");
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let err =
            DecisionTable::rank(&paper_candidates(), "nope", FomWeights::default()).unwrap_err();
        assert!(matches!(err, DecisionError::UnknownReference { .. }));
    }

    #[test]
    fn empty_candidates_is_an_error() {
        let err = DecisionTable::rank(&[], "x", FomWeights::default()).unwrap_err();
        assert_eq!(err, DecisionError::NoCandidates);
    }

    #[test]
    #[should_panic(expected = "performance score")]
    fn out_of_range_performance_rejected() {
        let _ = CandidateScore::new("bad", 1.5, Area::from_mm2(1.0), Money::new(1.0));
    }

    #[test]
    fn render_marks_the_winner() {
        let table =
            DecisionTable::rank(&paper_candidates(), "1 PCB/SMD", FomWeights::default()).unwrap();
        let text = table.render();
        assert!(text.contains("◀ best"));
        assert!(text.contains("IP&SMD"));
    }
}
