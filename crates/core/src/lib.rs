//! The paper's methodology: generate build-ups, select per-component
//! technologies, and derive a figure of merit.
//!
//! The five steps of §4 map onto this crate as follows:
//!
//! 1. **Generate viable build-up implementations** — [`BuildUp`],
//!    [`BuildUp::enumerate`], [`BuildUp::paper_solutions`].
//! 2. **Assess performance** — delegated to `ipass-rf`; the resulting
//!    score enters the [`CandidateScore`].
//! 3. **Calculate the substrate area** — [`BuildUpPlan`] aggregates the
//!    selected component areas; [`BuildUpPlan::area`] applies the
//!    `ipass-layout` sizing rules.
//! 4. **Calculate the cost including test and yield aspects** —
//!    [`BuildUpPlan::production_flow`] assembles an `ipass-moe` flow from
//!    a [`CostInputs`] table (the shape of the paper's Table 2).
//! 5. **Make a decision** — [`DecisionTable::rank`] computes the paper's
//!    Fig. 6 product-of-factors figure of merit.
//!
//! The key algorithmic piece is the **passives-optimized** selection
//! ([`PassivePolicy::Optimized`]): per component, prefer the SMD part
//! whenever it consumes less area than the integrated realization (the
//! paper's rule that rescues the decoupling capacitors), fall back to the
//! only feasible option otherwise.
//!
//! # Examples
//!
//! ```
//! use ipass_core::{BomItem, BuildUp, PassivePolicy, Realization, SelectionObjective};
//! use ipass_units::{Area, Money};
//!
//! // A decoupling capacitor: small as an SMD, huge integrated.
//! let decap = BomItem::passive("decap 3.3 nF", 8)
//!     .with_smd(Realization::new(Area::from_mm2(4.5), Money::new(0.10)))
//!     .with_integrated(Realization::new(Area::from_mm2(33.0), Money::ZERO));
//! // A pull-up resistor: tiny integrated.
//! let pullup = BomItem::passive("pull-up 100 kΩ", 35)
//!     .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
//!     .with_integrated(Realization::new(Area::from_mm2(0.25), Money::ZERO));
//!
//! let plan = BuildUp::mcm_flip_chip(PassivePolicy::Optimized)
//!     .plan(&[decap, pullup], SelectionObjective::MinArea)?;
//! // The optimizer keeps the decaps SMD and integrates the pull-ups:
//! assert_eq!(plan.smd_placements(), 8);
//! # Ok::<(), ipass_core::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bom;
mod flowbuild;
mod fom;
mod plan;
mod study;
mod technology;

pub use bom::{BomItem, ItemRole, Realization};
pub use flowbuild::{ChipCost, CostInputs, YieldBasis};
pub use fom::{CandidateScore, DecisionError, DecisionRow, DecisionTable, FomWeights};
pub use plan::{AreaBreakdown, BuildUpPlan, Choice, PlanError, Selection, SelectionObjective};
pub use study::{
    CandidateExploration, StudyCandidate, StudyError, StudyExploration, StudyReport, StudyRow,
    StudyScenario, TradeStudy,
};
pub use technology::{BuildUp, DieAttach, PassivePolicy, SubstrateTech};
