//! Production-flow construction (methodology step 4): turn a planned
//! build-up plus a Table-2-style cost/yield card into an `ipass-moe`
//! flow.

use crate::plan::BuildUpPlan;
use crate::technology::SubstrateTech;
use ipass_moe::{
    Attach, CostCategory, FailAction, Flow, Line, Part, Process, StepCost, Test, YieldModel,
};
use ipass_units::{Area, Money, Probability};

/// How per-item operations (wire bonds, SMD placements) compound into a
/// step yield.
///
/// Table 2 lists e.g. "wire bond yield 99.99 %" next to "212 bonds"; the
/// paper does not say whether the percentage is per bond or per step.
/// Both readings are supported; the reproduction uses [`PerStep`]
/// (the only reading consistent with Fig. 5's ordering — see
/// EXPERIMENTS.md), and the ablation bench flips this switch.
///
/// [`PerStep`]: YieldBasis::PerStep
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum YieldBasis {
    /// The quoted yield applies to the whole operation.
    #[default]
    PerStep,
    /// The quoted yield applies to each item and compounds (`y^n`).
    PerItem,
}

/// One die entering the flow.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipCost {
    /// Display name.
    pub name: String,
    /// Purchase cost.
    pub cost: Money,
    /// Probability the die is good on arrival (bare dies are not fully
    /// tested).
    pub incoming_yield: Probability,
}

impl ChipCost {
    /// Create a chip cost entry.
    pub fn new(name: impl Into<String>, cost: Money, incoming_yield: Probability) -> ChipCost {
        ChipCost {
            name: name.into(),
            cost,
            incoming_yield,
        }
    }
}

/// The cost/yield card for one build-up — the shape of the paper's
/// Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CostInputs {
    /// Substrate cost per cm² of substrate area.
    pub substrate_cost_per_cm2: Money,
    /// Substrate fabrication yield per cm². When set, purchased
    /// substrates are assumed tested at the fab ("known good substrate"):
    /// the purchase cost is marked up by `1 / y^area` to pay for the
    /// fab's own scrap. Large integrated-passive substrates get
    /// noticeably more expensive per good cm² — the paper's "the large
    /// area required for especially the decaps raises the direct cost".
    pub substrate_fab_yield_per_cm2: Option<Probability>,
    /// Substrate yield at module level (flat, per substrate): latent
    /// substrate defects that only the final module test catches.
    pub substrate_yield: Probability,
    /// The dies and their incoming quality.
    pub chips: Vec<ChipCost>,
    /// Attach cost per die (placement/bonding operation).
    pub chip_attach_cost_per_die: Money,
    /// Yield of the die-attach operation (per [`YieldBasis`]).
    pub chip_attach_yield: Probability,
    /// Cost per wire bond (only used when the plan has bonds).
    pub wire_bond_cost_per_bond: Money,
    /// Yield of wire bonding (per [`YieldBasis`]).
    pub wire_bond_yield: Probability,
    /// Total purchase cost of the SMD kit. `None` takes the plan's own
    /// Σ(part costs); `Some` overrides with a quoted aggregate (Table 2's
    /// "Cost SMD's" row).
    pub smd_parts_cost_override: Option<Money>,
    /// Assembly cost per SMD placement.
    pub smd_attach_cost_per_part: Money,
    /// Yield of SMD assembly (per [`YieldBasis`]).
    pub smd_attach_yield: Probability,
    /// Module packaging (BGA laminate) cost and yield; `None` for PCB.
    pub packaging: Option<(Money, Probability)>,
    /// Final test cost.
    pub final_test_cost: Money,
    /// Final test fault coverage.
    pub fault_coverage: Probability,
    /// Per-step vs per-item yield interpretation.
    pub yield_basis: YieldBasis,
}

impl CostInputs {
    fn op_yield(&self, quoted: Probability, items: u32) -> YieldModel {
        match self.yield_basis {
            YieldBasis::PerStep => YieldModel::flat(quoted),
            YieldBasis::PerItem => YieldModel::per_item(quoted, items),
        }
    }
}

impl BuildUpPlan {
    /// Assemble the MOE production flow for this plan (methodology step
    /// 4): substrate in, dies attached, bonds/SMDs applied, module
    /// packaged, final test, ship-or-scrap — the structure of the paper's
    /// Fig. 4.
    ///
    /// `substrate_area` is the sized substrate from
    /// [`area`](BuildUpPlan::area) (silicon for MCM, board for PCB).
    ///
    /// # Errors
    ///
    /// Returns an [`ipass_moe::FlowError`] if the resulting line is
    /// structurally invalid (cannot happen for non-empty plans, but the
    /// contract is explicit).
    pub fn production_flow(
        &self,
        substrate_area: Area,
        inputs: &CostInputs,
    ) -> Result<Flow, ipass_moe::FlowError> {
        let substrate_name = match self.buildup().substrate() {
            SubstrateTech::Pcb => "PCB board",
            SubstrateTech::McmDSi => "MCM-D(Si) substrate",
        };
        let substrate_rate = match inputs.substrate_fab_yield_per_cm2 {
            Some(fab_yield) => {
                let good_fraction = fab_yield.powf(substrate_area.cm2()).value();
                inputs.substrate_cost_per_cm2 / good_fraction
            }
            None => inputs.substrate_cost_per_cm2,
        };
        let substrate = Part::new(substrate_name, CostCategory::Substrate)
            .with_cost(StepCost::per_area(substrate_rate, substrate_area))
            .with_incoming_yield(YieldModel::flat(inputs.substrate_yield));

        let mut builder = Line::builder(self.buildup().to_string(), substrate);

        // Die attach.
        if !inputs.chips.is_empty() {
            let mut attach = Attach::new("chip assembly")
                .with_cost(StepCost::per_item(
                    inputs.chip_attach_cost_per_die,
                    inputs.chips.len() as u32,
                ))
                .with_yield(inputs.op_yield(inputs.chip_attach_yield, inputs.chips.len() as u32));
            for chip in &inputs.chips {
                attach = attach.input(
                    Part::new(chip.name.clone(), CostCategory::Chip)
                        .with_cost(StepCost::fixed(chip.cost))
                        .with_incoming_yield(YieldModel::flat(chip.incoming_yield)),
                    1,
                );
            }
            builder = builder.attach(attach);
        }

        // Wire bonding.
        let bonds = self.bond_count();
        if bonds > 0 {
            builder = builder.process(
                Process::new("wire bonding")
                    .with_cost(StepCost::per_item(inputs.wire_bond_cost_per_bond, bonds))
                    .with_yield(inputs.op_yield(inputs.wire_bond_yield, bonds)),
            );
        }

        // SMD mounting.
        let placements = self.smd_placements();
        if placements > 0 {
            let kit_cost = inputs
                .smd_parts_cost_override
                .unwrap_or_else(|| self.smd_parts_cost());
            let kit = Part::new("SMD kit", CostCategory::PassiveParts)
                .with_cost(StepCost::fixed(kit_cost));
            builder = builder.attach(
                Attach::new("SMD mounting")
                    .input(kit, 1)
                    .with_cost(StepCost::per_item(
                        inputs.smd_attach_cost_per_part,
                        placements,
                    ))
                    .with_yield(inputs.op_yield(inputs.smd_attach_yield, placements)),
            );
        }

        // Packaging (mount on laminate).
        if let Some((cost, pkg_yield)) = inputs.packaging {
            builder = builder.process(
                Process::new("packaging / mount on laminate")
                    .with_cost(StepCost::fixed(cost))
                    .with_yield(YieldModel::flat(pkg_yield))
                    .with_category(CostCategory::Packaging),
            );
        }

        // Final test.
        builder = builder.test(
            Test::new("functional test")
                .with_cost(StepCost::fixed(inputs.final_test_cost))
                .with_coverage(inputs.fault_coverage)
                .on_fail(FailAction::Scrap),
        );

        builder.build().map(Flow::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bom::{BomItem, Realization};
    use crate::plan::SelectionObjective;
    use crate::technology::{BuildUp, PassivePolicy};
    use ipass_moe::SimOptions;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn bom() -> Vec<BomItem> {
        vec![
            BomItem::die("RF")
                .with_wire_bond(Realization::new(Area::from_mm2(28.0), Money::ZERO).with_bonds(100))
                .with_flip_chip(Realization::new(Area::from_mm2(13.0), Money::ZERO))
                .with_packaged(Realization::new(Area::from_mm2(225.0), Money::ZERO)),
            BomItem::passive("caps", 10)
                .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.05)))
                .with_integrated(Realization::new(Area::from_mm2(0.3), Money::ZERO)),
        ]
    }

    fn inputs(packaging: bool) -> CostInputs {
        CostInputs {
            substrate_cost_per_cm2: Money::new(1.75),
            substrate_fab_yield_per_cm2: None,
            substrate_yield: p(0.99),
            chips: vec![ChipCost::new("RF die", Money::new(80.0), p(0.95))],
            chip_attach_cost_per_die: Money::new(0.10),
            chip_attach_yield: p(0.99),
            wire_bond_cost_per_bond: Money::new(0.01),
            wire_bond_yield: p(0.9999),
            smd_parts_cost_override: None,
            smd_attach_cost_per_part: Money::new(0.01),
            smd_attach_yield: p(0.9999),
            packaging: packaging.then(|| (Money::new(7.30), p(0.968))),
            final_test_cost: Money::new(10.0),
            fault_coverage: p(0.99),
            yield_basis: YieldBasis::PerStep,
        }
    }

    #[test]
    fn wire_bond_flow_has_all_stages() {
        let plan = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let flow = plan
            .production_flow(plan.area().substrate_area, &inputs(true))
            .unwrap();
        let names: Vec<&str> = flow.line().stages().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "chip assembly",
                "wire bonding",
                "SMD mounting",
                "packaging / mount on laminate",
                "functional test"
            ]
        );
        let report = flow.analyze().unwrap();
        assert!(report.shipped_fraction() > 0.8);
        // Chips dominate the cost.
        assert!(report.by_category()[CostCategory::Chip].units() > 70.0);
    }

    #[test]
    fn flip_chip_all_integrated_skips_smd_and_bonding() {
        let plan = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated)
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let flow = plan
            .production_flow(plan.area().substrate_area, &inputs(true))
            .unwrap();
        let names: Vec<&str> = flow.line().stages().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "chip assembly",
                "packaging / mount on laminate",
                "functional test"
            ]
        );
    }

    #[test]
    fn yield_basis_changes_the_outcome() {
        let plan = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let per_step = plan
            .production_flow(plan.area().substrate_area, &inputs(true))
            .unwrap()
            .analyze()
            .unwrap();
        let mut per_item_inputs = inputs(true);
        per_item_inputs.yield_basis = YieldBasis::PerItem;
        let per_item = plan
            .production_flow(plan.area().substrate_area, &per_item_inputs)
            .unwrap()
            .analyze()
            .unwrap();
        // 100 bonds at 99.99 % each < one step at 99.99 %.
        assert!(per_item.shipped_fraction() < per_step.shipped_fraction());
    }

    #[test]
    fn parts_cost_override_is_respected() {
        let plan = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let mut with_override = inputs(true);
        with_override.smd_parts_cost_override = Some(Money::new(8.6));
        let base = plan
            .production_flow(plan.area().substrate_area, &inputs(true))
            .unwrap()
            .analyze()
            .unwrap();
        let over = plan
            .production_flow(plan.area().substrate_area, &with_override)
            .unwrap()
            .analyze()
            .unwrap();
        // Plan's own kit costs 0.5; the override costs 8.6.
        let diff = over.direct_cost_per_shipped() - base.direct_cost_per_shipped();
        assert!((diff.units() - 8.1).abs() < 0.01, "diff {diff}");
    }

    #[test]
    fn analytic_and_mc_agree_on_a_full_flow() {
        let plan = BuildUp::mcm_wire_bond(PassivePolicy::AllSmd)
            .plan(&bom(), SelectionObjective::MinArea)
            .unwrap();
        let flow = plan
            .production_flow(plan.area().substrate_area, &inputs(true))
            .unwrap();
        let a = flow.analyze().unwrap();
        let m = flow
            .simulate(&SimOptions::new(150_000).with_seed(17))
            .unwrap();
        let rel = m.final_cost_per_shipped() / a.final_cost_per_shipped();
        assert!((rel - 1.0).abs() < 0.01, "rel {rel}");
    }
}
