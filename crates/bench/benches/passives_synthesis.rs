//! Integrated-passive synthesis performance (Table 1 regeneration cost).

use criterion::{criterion_group, criterion_main, Criterion};
use ipass_passives::eseries::ESeries;
use ipass_passives::{MimCapacitor, SpiralInductor, ThinFilmProcess, ThinFilmResistor};
use ipass_units::{Capacitance, Frequency, Inductance, Resistance};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let process = ThinFilmProcess::summit_mcm_d();
    c.bench_function("synthesize_resistor_100k", |b| {
        b.iter(|| {
            black_box(
                ThinFilmResistor::synthesize(black_box(Resistance::from_kilo(100.0)), &process)
                    .unwrap(),
            )
        })
    });
    c.bench_function("synthesize_capacitor_50p", |b| {
        b.iter(|| {
            black_box(
                MimCapacitor::synthesize(black_box(Capacitance::from_pico(50.0)), &process)
                    .unwrap(),
            )
        })
    });
    c.bench_function("synthesize_inductor_40n", |b| {
        b.iter(|| {
            black_box(
                SpiralInductor::synthesize(black_box(Inductance::from_nano(40.0)), &process)
                    .unwrap(),
            )
        })
    });
    c.bench_function("synthesize_inductor_for_q", |b| {
        b.iter(|| {
            black_box(
                SpiralInductor::synthesize_for_q(
                    black_box(Inductance::from_nano(107.0)),
                    &process,
                    Frequency::from_mega(175.0),
                    10.0,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_eseries(c: &mut Criterion) {
    c.bench_function("eseries_e96_snap", |b| {
        b.iter(|| black_box(ESeries::E96.snap(black_box(4900.0))))
    });
}

criterion_group!(name = passives; config = fast(); targets = bench_synthesis, bench_eseries);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(passives);
