//! Ablation studies over the modeling choices DESIGN.md calls out. Each
//! ablation prints its comparison table once, then times the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use ipass_core::{BomItem, BuildUp, PassivePolicy, Realization, SelectionObjective, YieldBasis};
use ipass_gps::{bom::gps_bom, paper, table2::cost_inputs};
use ipass_moe::{find_crossover, DefectModel, SimOptions};
use ipass_units::{Area, Money, Probability};
use std::hint::black_box;

/// Ablation 1: per-step vs per-item yield interpretation of Table 2.
fn ablation_yield_basis(c: &mut Criterion) {
    println!("\n== ablation: yield basis (final cost % of solution 1) ==");
    println!(
        "{:<28} {:>9} {:>9} {:>7}",
        "implementation", "per-step", "per-item", "paper"
    );
    let mut per_step = Vec::new();
    let mut per_item = Vec::new();
    for (i, buildup) in BuildUp::paper_solutions().iter().enumerate() {
        let plan = buildup
            .plan(&gps_bom(buildup), SelectionObjective::MinArea)
            .unwrap();
        let area = plan.area().substrate_area;
        let mut card = cost_inputs(buildup);
        card.yield_basis = YieldBasis::PerStep;
        per_step.push(
            plan.production_flow(area, &card)
                .unwrap()
                .analyze()
                .unwrap()
                .final_cost_per_shipped()
                .units(),
        );
        card.yield_basis = YieldBasis::PerItem;
        per_item.push(
            plan.production_flow(area, &card)
                .unwrap()
                .analyze()
                .unwrap()
                .final_cost_per_shipped()
                .units(),
        );
        println!(
            "{:<28} {:>8.1}% {:>8.1}% {:>6.1}%",
            paper::SOLUTION_NAMES[i],
            per_step[i] / per_step[0] * 100.0,
            per_item[i] / per_item[0] * 100.0,
            paper::FIG5_COST_PERCENT[i]
        );
    }
    println!("(per-item compounding of the 0.9999 bond/SMD yields breaks the 2-vs-4 ordering)");

    c.bench_function("ablation_yield_basis", |b| {
        b.iter(|| {
            let buildup = BuildUp::paper_solutions()[1];
            let plan = buildup
                .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
                .unwrap();
            let mut card = cost_inputs(&buildup);
            card.yield_basis = YieldBasis::PerItem;
            black_box(
                plan.production_flow(plan.area().substrate_area, &card)
                    .unwrap()
                    .analyze()
                    .unwrap(),
            )
        })
    });
}

/// Ablation 2: defect-density models for the IP substrate yield.
fn ablation_defect_models(c: &mut Criterion) {
    println!("\n== ablation: substrate yield model at D₀ chosen so Poisson = 90 % on 5.4 cm² ==");
    // 0.9 = exp(−A·D0) at A = 5.444 cm² ⇒ D0 ≈ 0.01935 /cm².
    let area = Area::from_cm2(5.444);
    let d0 = -(0.9f64.ln()) / area.cm2();
    for model in [
        DefectModel::Poisson,
        DefectModel::Murphy,
        DefectModel::Seeds,
        DefectModel::NegativeBinomial { alpha: 2.0 },
    ] {
        let y = model.yield_at(d0 * area.cm2());
        println!("  {model:?}: substrate yield {y}");
    }
    c.bench_function("ablation_defect_models", |b| {
        b.iter(|| black_box(DefectModel::Murphy.yield_at(black_box(d0 * area.cm2()))))
    });
}

/// Ablation 3: NRE amortization — the IP substrate needs a mask set; at
/// what volume does solution 4 still beat solution 1?
fn ablation_nre_volume(c: &mut Criterion) {
    println!("\n== ablation: 30 000-unit IP mask-set NRE vs production volume ==");
    let s1 = BuildUp::paper_solutions()[0];
    let s4 = BuildUp::paper_solutions()[3];
    let plan1 = s1.plan(&gps_bom(&s1), SelectionObjective::MinArea).unwrap();
    let plan4 = s4.plan(&gps_bom(&s4), SelectionObjective::MinArea).unwrap();
    let mut curve1 = Vec::new();
    let mut curve4 = Vec::new();
    for volume in [500u64, 1_000, 2_000, 5_000, 10_000, 50_000] {
        let r1 = plan1
            .production_flow(plan1.area().substrate_area, &cost_inputs(&s1))
            .unwrap()
            .with_volume(volume)
            .analyze()
            .unwrap();
        let r4 = plan4
            .production_flow(plan4.area().substrate_area, &cost_inputs(&s4))
            .unwrap()
            .with_nre(Money::new(30_000.0))
            .with_volume(volume)
            .analyze()
            .unwrap();
        println!(
            "  volume {:>6}: sol1 {:>7.1}  sol4+NRE {:>7.1}  {}",
            volume,
            r1.final_cost_per_shipped().units(),
            r4.final_cost_per_shipped().units(),
            if r4.final_cost_per_shipped() < r1.final_cost_per_shipped() * 1.1 {
                "(within the paper's +5.3 % band soon)"
            } else {
                ""
            }
        );
        curve1.push((volume as f64, r1.final_cost_per_shipped().units() * 1.053));
        curve4.push((volume as f64, r4.final_cost_per_shipped().units()));
    }
    if let Ok(Some(x)) = find_crossover(&curve4, &curve1) {
        println!("  sol4 returns to its published +5.3 % penalty at ≈ {x:.0} units");
    }
    c.bench_function("ablation_nre_volume", |b| {
        b.iter(|| {
            black_box(
                plan4
                    .production_flow(plan4.area().substrate_area, &cost_inputs(&s4))
                    .unwrap()
                    .with_nre(Money::new(30_000.0))
                    .with_volume(10_000)
                    .analyze()
                    .unwrap(),
            )
        })
    });
}

/// Ablation 4: the introduction's rule of thumb — resistor-count
/// crossover between SMD and integrated implementations.
fn ablation_resistor_crossover(c: &mut Criterion) {
    fn board(n: u32) -> Vec<BomItem> {
        vec![
            BomItem::die("ASIC")
                .with_packaged(Realization::new(Area::from_mm2(300.0), Money::new(12.0)))
                .with_flip_chip(Realization::new(Area::from_mm2(25.0), Money::new(10.0))),
            BomItem::passive("pull-up R", n)
                .with_smd(Realization::new(Area::from_mm2(3.75), Money::new(0.02)))
                .with_integrated(Realization::new(Area::from_mm2(0.08), Money::ZERO)),
        ]
    }
    fn cost(buildup: &BuildUp, n: u32) -> f64 {
        let plan = buildup
            .plan(&board(n), SelectionObjective::MinArea)
            .unwrap();
        let is_pcb = !buildup.substrate().supports_integrated_passives();
        let mut card = cost_inputs(buildup);
        // Lighter demo economics: one cheap die, cheap test.
        card.chips = vec![ipass_core::ChipCost::new(
            "ASIC",
            Money::new(if is_pcb { 12.0 } else { 10.0 }),
            Probability::clamped(0.99),
        )];
        card.final_test_cost = Money::new(1.5);
        plan.production_flow(plan.area().substrate_area, &card)
            .unwrap()
            .analyze()
            .unwrap()
            .final_cost_per_shipped()
            .units()
    }
    println!("\n== ablation: resistor-count crossover (rule of thumb [2]) ==");
    let pcb = BuildUp::pcb_reference();
    let mcm = BuildUp::mcm_flip_chip(PassivePolicy::AllIntegrated);
    let grid: Vec<f64> = (1..=30).map(f64::from).collect();
    let pcb_curve: Vec<(f64, f64)> = grid.iter().map(|&n| (n, cost(&pcb, n as u32))).collect();
    let mcm_curve: Vec<(f64, f64)> = grid.iter().map(|&n| (n, cost(&mcm, n as u32))).collect();
    match find_crossover(&mcm_curve, &pcb_curve).expect("finite cost curves") {
        Some(x) => println!("  integrated becomes cheaper above ≈ {x:.1} resistors"),
        None => println!(
            "  no crossover below 30 resistors with GPS-grade substrate pricing \
             (the [2] rule assumed a cheaper IP process)"
        ),
    }
    c.bench_function("ablation_resistor_crossover", |b| {
        b.iter(|| black_box(cost(&mcm, black_box(20))))
    });
}

/// Ablation 5: Monte Carlo sample count vs analytic truth.
fn ablation_mc_convergence(c: &mut Criterion) {
    println!("\n== ablation: MC sample count vs analytic (solution 3 final cost) ==");
    let buildup = BuildUp::paper_solutions()[2];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let flow = plan
        .production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap();
    let truth = flow.analyze().unwrap().final_cost_per_shipped().units();
    for units in [1_000u64, 10_000, 100_000] {
        let mc = flow
            .simulate(&SimOptions::new(units).with_seed(13))
            .unwrap()
            .final_cost_per_shipped()
            .units();
        println!(
            "  {units:>7} units: {mc:>8.2} (analytic {truth:.2}, error {:+.2} %)",
            (mc / truth - 1.0) * 100.0
        );
    }
    c.bench_function("ablation_mc_10k", |b| {
        b.iter(|| {
            black_box(
                flow.simulate(&SimOptions::new(10_000).with_seed(13))
                    .unwrap(),
            )
        })
    });
}

/// Ablation 6: tornado sensitivity of solution 4's final cost.
fn ablation_sensitivity(c: &mut Criterion) {
    println!("\n== ablation: Table 2 input sensitivity (solution 4) ==");
    println!(
        "{}",
        ipass_gps::experiments::sensitivity(3).unwrap().render()
    );
    c.bench_function("ablation_sensitivity_tornado", |b| {
        b.iter(|| black_box(ipass_gps::experiments::sensitivity(black_box(3)).unwrap()))
    });
}

criterion_group!(
    name = ablations;
    config = fast();
    targets =
    ablation_yield_basis,
    ablation_defect_models,
    ablation_nre_volume,
    ablation_resistor_crossover,
    ablation_mc_convergence,
    ablation_sensitivity
);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(ablations);
