//! Placement performance: the trivial sizing rule vs the shelf packer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipass_layout::{Rect, ShelfPacker, SubstrateRule};
use ipass_sim::SimRng;
use ipass_units::Area;
use std::hint::black_box;

fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = SimRng::from_seed(seed);
    (0..n)
        .map(|_| Rect::new(rng.range_f64(0.5, 6.0), rng.range_f64(0.3, 4.0)))
        .collect()
}

fn bench_trivial_rule(c: &mut Criterion) {
    let rule = SubstrateRule::mcm_d_si();
    c.bench_function("trivial_placement_rule", |b| {
        b.iter(|| black_box(rule.required_area(black_box(Area::from_mm2(637.0)))))
    });
}

fn bench_packer(c: &mut Criterion) {
    let mut group = c.benchmark_group("shelf_pack");
    for n in [100usize, 1_000, 10_000] {
        let rects = random_rects(n, 42);
        let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
        let strip = (1.2 * total).sqrt();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rects, |b, rects| {
            b.iter(|| black_box(ShelfPacker::new(strip).pack(rects).unwrap()))
        });
    }
    group.finish();
}

fn bench_validate(c: &mut Criterion) {
    let rects = random_rects(1_000, 7);
    let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
    let packing = ShelfPacker::new((1.2 * total).sqrt()).pack(&rects).unwrap();
    c.bench_function("packing_validate_1k", |b| {
        b.iter(|| black_box(packing.validate()))
    });
}

criterion_group!(name = layout; config = fast(); targets = bench_trivial_rule, bench_packer, bench_validate);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(layout);
