//! One bench per table/figure of the paper. Each regenerated artifact is
//! printed once (so `cargo bench` output contains the paper's rows), then
//! the regeneration itself is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use ipass_gps::experiments;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    println!("\n{}", experiments::fig1().render());
    c.bench_function("fig1_smd_area", |b| {
        b.iter(|| black_box(experiments::fig1()))
    });
}

fn bench_table1(c: &mut Criterion) {
    println!("\n{}", experiments::table1().unwrap().render());
    c.bench_function("table1_area_data", |b| {
        b.iter(|| black_box(experiments::table1().unwrap()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    println!("\n{}", experiments::fig3().unwrap().render());
    c.bench_function("fig3_area", |b| {
        b.iter(|| black_box(experiments::fig3().unwrap()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    println!("\n{}", experiments::fig4(42).unwrap().render());
    c.bench_function("fig4_moe_model", |b| {
        b.iter(|| black_box(experiments::fig4(black_box(42)).unwrap()))
    });
}

fn bench_fig5(c: &mut Criterion) {
    println!("\n{}", experiments::fig5().unwrap().render());
    c.bench_function("fig5_cost_analysis", |b| {
        b.iter(|| black_box(experiments::fig5().unwrap()))
    });
    c.bench_function("fig5_cost_analysis_mc_10k", |b| {
        b.iter(|| black_box(experiments::fig5_monte_carlo(10_000, 7).unwrap()))
    });
}

fn bench_fig6(c: &mut Criterion) {
    println!("\n{}", experiments::fig6().unwrap().render());
    c.bench_function("fig6_figure_of_merit", |b| {
        b.iter(|| black_box(experiments::fig6().unwrap()))
    });
}

fn bench_performance_scores(c: &mut Criterion) {
    use ipass_core::BuildUp;
    use ipass_gps::filters::assess_performance;
    for buildup in BuildUp::paper_solutions() {
        println!("{}", assess_performance(&buildup));
    }
    c.bench_function("perf_filter_analysis", |b| {
        b.iter(|| {
            for buildup in BuildUp::paper_solutions() {
                black_box(assess_performance(black_box(&buildup)));
            }
        })
    });
}

fn bench_fig2_chain(c: &mut Criterion) {
    use ipass_core::BuildUp;
    use ipass_gps::chain::chain_budget;
    for buildup in BuildUp::paper_solutions() {
        let chain = chain_budget(&buildup);
        println!(
            "{:<24} NF {:.2} dB, gain {:.1} dB",
            chain.buildup,
            chain.noise_figure_db(),
            chain.gain_db()
        );
    }
    c.bench_function("fig2_chain_budget", |b| {
        b.iter(|| {
            for buildup in BuildUp::paper_solutions() {
                black_box(chain_budget(black_box(&buildup)));
            }
        })
    });
}

fn bench_final_design(c: &mut Criterion) {
    println!("\n{}", experiments::final_design_check().unwrap().render());
    c.bench_function("sec44_final_design_check", |b| {
        b.iter(|| black_box(experiments::final_design_check().unwrap()))
    });
}

criterion_group!(
    name = figures;
    config = fast();
    targets =
    bench_fig1,
    bench_table1,
    bench_fig2_chain,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_performance_scores,
    bench_final_design
);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(figures);
