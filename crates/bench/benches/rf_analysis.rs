//! RF engine performance: filter synthesis, frequency sweeps and the
//! tolerance Monte Carlo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipass_gps::filters::{if_filter, if_filter_spec, lna_filter, TechnologyQ};
use ipass_rf::{linspace, tolerance_yield};
use ipass_units::Frequency;
use std::hint::black_box;

fn bench_design(c: &mut Criterion) {
    let q = TechnologyQ::integrated();
    c.bench_function("design_lna_image_reject", |b| {
        b.iter(|| black_box(lna_filter(black_box(&q))))
    });
    c.bench_function("design_if_chebyshev", |b| {
        b.iter(|| black_box(if_filter(black_box(&q))))
    });
}

fn bench_sweep(c: &mut Criterion) {
    let design = lna_filter(&TechnologyQ::integrated());
    let mut group = c.benchmark_group("frequency_sweep");
    for points in [101usize, 1001] {
        let grid = linspace(Frequency::from_giga(0.8), Frequency::from_giga(2.4), points);
        group.throughput(Throughput::Elements(points as u64));
        group.bench_with_input(BenchmarkId::from_parameter(points), &grid, |b, grid| {
            b.iter(|| black_box(design.ladder().sweep(grid)))
        });
    }
    group.finish();
}

fn bench_tolerance_mc(c: &mut Criterion) {
    let spec = if_filter_spec();
    let nominal = if_filter(&TechnologyQ::hybrid());
    c.bench_function("tolerance_mc_500", |b| {
        b.iter(|| {
            black_box(tolerance_yield(&spec, 500, 11, |_rng| {
                nominal.ladder().clone()
            }))
        })
    });
}

criterion_group!(name = rf; config = fast(); targets = bench_design, bench_sweep, bench_tolerance_mc);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(rf);
