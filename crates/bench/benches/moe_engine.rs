//! MOE engine performance: Monte Carlo scaling, threading, analytic
//! evaluation and rework loops on the real solution-2 flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ipass_core::{BuildUp, SelectionObjective};
use ipass_gps::{bom::gps_bom, table2::cost_inputs};
use ipass_moe::{
    CostCategory, FailAction, Flow, Line, Part, Process, Rework, SimOptions, StepCost, Test,
    YieldModel,
};
use ipass_units::{Money, Probability};
use std::hint::black_box;

fn solution2_flow() -> Flow {
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    plan.production_flow(plan.area().substrate_area, &cost_inputs(&buildup))
        .unwrap()
}

fn bench_mc_scaling(c: &mut Criterion) {
    // Lane width pinned to 1: this group is the *scalar* kernel
    // baseline the batched `mc_units_batch` group is gated against.
    let flow = solution2_flow();
    let mut group = c.benchmark_group("mc_units");
    group.threads(1);
    group.lane_width(1);
    for units in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(units));
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, &units| {
            b.iter(|| {
                black_box(
                    flow.simulate(&SimOptions::new(units).with_seed(3).with_lane_width(1))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_mc_batch(c: &mut Criterion) {
    // The batched lane kernel at the default width, same flow and seed
    // as `mc_units` — the reports are bit-identical; only the walk
    // order (lane-of-W per op) differs.
    let flow = solution2_flow();
    let width = ipass_moe::effective_lane_width(ipass_moe::DEFAULT_LANE_WIDTH);
    let mut group = c.benchmark_group("mc_units_batch");
    group.threads(1);
    group.lane_width(width);
    for units in [1_000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(units));
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, &units| {
            b.iter(|| black_box(flow.simulate(&SimOptions::new(units).with_seed(3)).unwrap()))
        });
    }
    group.finish();
}

/// Probe overhead on the lane hot path: the same 100k-unit batched run
/// with the deterministic-plane probe off vs on. A disabled probe must
/// compile to nothing (the `off` case is the `mc_units_batch/100000`
/// shape); the `on` case pays a per-unit counter pass at lane end
/// (~1.45x measured) and is gated in CI to stay within 2x of `off`.
/// The probed run's exact draw count is attached to the baseline as
/// `draws_per_elem`.
fn bench_mc_probe(c: &mut Criterion) {
    use ipass_moe::Probe;

    let flow = solution2_flow();
    let width = ipass_moe::effective_lane_width(ipass_moe::DEFAULT_LANE_WIDTH);
    const UNITS: u64 = 100_000;
    let probed = flow
        .simulate_summary(&SimOptions::new(UNITS).with_seed(3).with_probe(Probe::ON))
        .unwrap();
    let stats = probed.stats.expect("probed run carries stats");

    let mut group = c.benchmark_group("mc_probe_100k");
    group.threads(1);
    group.lane_width(width);
    group.throughput(Throughput::Elements(UNITS));
    group.bench_function("off", |b| {
        b.iter(|| black_box(flow.simulate(&SimOptions::new(UNITS).with_seed(3)).unwrap()))
    });
    group.draws_per_elem(stats.draws as f64 / stats.units as f64);
    group.bench_function("on", |b| {
        b.iter(|| {
            black_box(
                flow.simulate_summary(&SimOptions::new(UNITS).with_seed(3).with_probe(Probe::ON))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The `ipass-sim` memo table under a skewed (80/20-style) key mix:
/// per-lookup cost of `get_or_insert_with` once the cache is warm. The
/// measured hit rate off the memo's own counters rides the baseline as
/// `memo_hit_rate`.
fn bench_memo_cache(c: &mut Criterion) {
    use ipass_sim::Memo;

    const LOOKUPS: u64 = 10_000;
    let memo: Memo<u64, f64> = Memo::new();
    let key = |i: u64| (i * 31) % 64; // 64 hot keys
    for i in 0..LOOKUPS {
        memo.get_or_insert_with(key(i), || i as f64);
    }
    let warm = memo.stats();
    let lookups = warm.hits + warm.misses;

    let mut group = c.benchmark_group("memo_cache");
    group.throughput(Throughput::Elements(LOOKUPS));
    group.memo_hit_rate(warm.hits as f64 / lookups as f64);
    group.bench_function("warm_10k", |b| {
        b.iter(|| {
            for i in 0..LOOKUPS {
                black_box(memo.get_or_insert_with(key(i), || i as f64));
            }
        })
    });
    group.finish();
}

fn bench_mc_lane_widths(c: &mut Criterion) {
    // Width sweep at fixed unit count: how far the SoA lane loops
    // vectorize on this host. Width 1 is the scalar fallback path.
    let flow = solution2_flow();
    let mut group = c.benchmark_group("mc_lanes_100k");
    group.threads(1);
    group.throughput(Throughput::Elements(100_000));
    for width in [1usize, 2, 4, 8, 16, 32, 64] {
        group.lane_width(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            b.iter(|| {
                black_box(
                    flow.simulate(&SimOptions::new(100_000).with_seed(3).with_lane_width(width))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_mc_threads(c: &mut Criterion) {
    // The deterministic executor: the report is bit-identical across
    // this whole sweep; only the wall clock changes.
    let flow = solution2_flow();
    let mut group = c.benchmark_group("mc_threads_100k");
    group.throughput(Throughput::Elements(100_000));
    for threads in [1usize, 2, 4, 8] {
        group.threads(threads);
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        flow.simulate(&SimOptions::new(100_000).with_seed(3).with_threads(threads))
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let flow = solution2_flow();
    c.bench_function("analytic_solution2", |b| {
        b.iter(|| black_box(flow.analyze().unwrap()))
    });
}

/// The patched-program sweep against the rebuild-per-point baseline:
/// a 64-point substrate-cost sweep of the real solution-2 flow. The
/// rebuild path constructs and compiles a fresh production flow per
/// point; the patched path compiles once and overwrites the carrier
/// cost slot per point. Same curve (asserted in `analytic_ir.rs` and
/// the sweep unit tests), very different work per point.
fn bench_sweep_analytic(c: &mut Criterion) {
    const POINTS: u64 = 64;
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&buildup);
    let flow = solution2_flow();
    let carrier = flow.line().carrier().name().to_owned();
    let base_carrier_cost = flow.line().carrier().cost().total();
    let xs: Vec<f64> = (0..POINTS)
        .map(|i| 0.5 + i as f64 / POINTS as f64)
        .collect();

    // Serial executor on both sides: the comparison is work per point,
    // not parallel speedup.
    let serial = ipass_moe::Executor::serial();
    let mut group = c.benchmark_group("sweep_analytic");
    group.throughput(Throughput::Elements(POINTS));
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            let points = ipass_moe::sweep_with(&serial, xs.iter().copied(), |x| {
                let mut card = base_card.clone();
                card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * x;
                plan.production_flow(area, &card)
            })
            .unwrap();
            black_box(points)
        })
    });
    group.bench_function("patched", |b| {
        b.iter(|| {
            let points =
                ipass_moe::sweep_patched_with(&serial, &flow, xs.iter().copied(), |x, patch| {
                    patch.set_cost(&carrier, base_carrier_cost * x)?;
                    Ok(())
                })
                .unwrap();
            black_box(points)
        })
    });
    group.finish();
}

/// The design-space explorer against the naive rebuild-per-point loop:
/// a 1 024-point (32 × 32) substrate-cost × test-coverage grid of the
/// real solution-2 flow, reduced to its Pareto frontier over
/// *(final cost ↓, escape rate ↓)*.
///
/// * `rebuild` — the pre-subsystem shape: build and compile a fresh
///   production flow per grid point, then extract the frontier.
/// * `screen` — `ipass-explore`: compile once, patch the op vector per
///   point, chunked map-reduce straight to the frontier.
/// * `refine` — `screen` plus Monte Carlo confirmation of the
///   frontier-adjacent band (the adaptive analytic→MC pipeline).
fn bench_explore_frontier(c: &mut Criterion) {
    use ipass_explore::{
        DesignPoint, FlowAxis, FlowExplorer, Levels, Metric, Objective, RefineOptions, SamplerSpec,
    };

    const SIDE: usize = 32;
    let buildup = BuildUp::paper_solutions()[1];
    let plan = buildup
        .plan(&gps_bom(&buildup), SelectionObjective::MinArea)
        .unwrap();
    let area = plan.area().substrate_area;
    let base_card = cost_inputs(&buildup);
    let flow = solution2_flow();
    let carrier = flow.line().carrier().name().to_owned();

    let scales = Levels::linspace(0.5, 1.5, SIDE);
    let coverages = Levels::linspace(0.9, 0.999, SIDE);
    let explorer = FlowExplorer::new(flow.compiled().unwrap())
        .axis(FlowAxis::cost_scale(&carrier, scales.clone()))
        .axis(FlowAxis::coverage("functional test", coverages.clone()))
        .objective(Objective::minimize(Metric::FinalCostPerShipped))
        .objective(Objective::minimize(Metric::EscapeRate))
        // Serial on both sides: the comparison is work per point.
        .with_executor(ipass_moe::Executor::serial());

    let mut group = c.benchmark_group("explore_frontier");
    group.throughput(Throughput::Elements((SIDE * SIDE) as u64));
    group.bench_function("rebuild", |b| {
        b.iter(|| {
            // The naive loop: one full flow build + compile + analyze
            // per point, frontier extracted afterwards.
            let mut points = Vec::with_capacity(SIDE * SIDE);
            for i in 0..SIDE {
                for j in 0..SIDE {
                    let mut card = base_card.clone();
                    card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * scales.level(i);
                    card.fault_coverage = Probability::clamped(coverages.level(j));
                    let report = plan
                        .production_flow(area, &card)
                        .unwrap()
                        .analyze()
                        .unwrap();
                    points.push(DesignPoint {
                        index: i * SIDE + j,
                        coords: vec![scales.level(i), coverages.level(j)],
                        objectives: vec![
                            report.final_cost_per_shipped().units(),
                            report.escape_rate(),
                        ],
                    });
                }
            }
            black_box(ipass_explore::ParetoFrontier::extract(
                vec![
                    ipass_explore::Sense::Minimize,
                    ipass_explore::Sense::Minimize,
                ],
                points,
            ))
        })
    });
    group.bench_function("screen", |b| {
        b.iter(|| black_box(explorer.screen_frontier(&SamplerSpec::Grid).unwrap()))
    });
    group.bench_function("directed", |b| {
        // Gradient-directed screening: seed lattice + dual-guided
        // descent + frontier expansion; same frontier as `screen`
        // (asserted in the gps and explore test suites) from a
        // fraction of the point evaluations.
        b.iter(|| black_box(explorer.screen_frontier_directed().unwrap()))
    });
    let refine_options = RefineOptions {
        margin: 0.05,
        mc_units: 2_000,
        seed: 7,
        stop: None,
        ..RefineOptions::default()
    };
    group.bench_function("refine", |b| {
        b.iter(|| {
            black_box(
                explorer
                    .refine(&SamplerSpec::Grid, &refine_options, |coords| {
                        let mut card = base_card.clone();
                        card.substrate_cost_per_cm2 = card.substrate_cost_per_cm2 * coords[0];
                        card.fault_coverage = Probability::clamped(coords[1]);
                        plan.production_flow(area, &card)
                    })
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The headline dual-number comparison: a 12-row cost tornado of the
/// real solution-2 flow, evaluated two ways.
///
/// * `dual_pass` — one K=12 forward-mode walk
///   ([`Tornado::evaluate_gradients`]): every row is an exact gradient
///   extrapolation off a single analytic evaluation.
/// * `patched_batch` — the pre-dual shape
///   ([`Tornado::evaluate_patches`]): `1 + 2·12` patched cohort walks,
///   serial executor so the comparison is work per chart, not parallel
///   speedup.
///
/// For pure cost rows the two charts are numerically identical (final
/// cost is affine in every cost slot), so this measures the same
/// answer computed 25 walks vs 1.
fn bench_sensitivity_duals(c: &mut Criterion) {
    use ipass_moe::{DualDirection, SlotKind, Tornado, TornadoDirection, TornadoPatch};

    let flow = solution2_flow();
    let compiled = flow.compiled().unwrap();
    // 12 rows: every single cost slot of the program (9 on the
    // solution-2 flow) plus three composite multi-slot rows ("all
    // chips", "board-level", "everything"), each a ±10 % scale.
    let singles: Vec<Vec<String>> = compiled
        .slots()
        .filter(|(_, kind)| *kind == SlotKind::Cost)
        .map(|(name, _)| vec![name.to_owned()])
        .collect();
    let composites = vec![
        vec![
            "chip assembly/RF chip".to_string(),
            "chip assembly/DSP correlator".to_string(),
            "SMD mounting/SMD kit".to_string(),
        ],
        vec![
            "MCM-D(Si) substrate".to_string(),
            "packaging / mount on laminate".to_string(),
        ],
        singles.iter().map(|s| s[0].clone()).collect(),
    ];
    let rows: Vec<Vec<String>> = singles.into_iter().chain(composites).collect();
    assert_eq!(rows.len(), 12, "the solution-2 tornado is 12 rows");

    // Chart specifications are built once — both strategies take their
    // inputs by reference, so the bench measures the per-chart
    // evaluation work, not one-time spec assembly.
    let directions: Vec<TornadoDirection<'_>> = rows
        .iter()
        .map(|slots| {
            let mut direction = DualDirection::new();
            for slot in slots {
                let unit = compiled.slot_unit_cost(slot).unwrap().units();
                direction = direction.with(slot, SlotKind::Cost, unit);
            }
            TornadoDirection {
                name: &slots[0],
                direction,
                low: -0.1,
                high: 0.1,
            }
        })
        .collect();
    let patches: Vec<TornadoPatch<'_>> = rows
        .iter()
        .map(|slots| {
            let mut low = compiled.patch();
            let mut high = compiled.patch();
            for slot in slots {
                low.scale_cost(slot, 0.9).unwrap();
                high.scale_cost(slot, 1.1).unwrap();
            }
            TornadoPatch {
                name: &slots[0],
                low,
                high,
            }
        })
        .collect();

    let serial = ipass_moe::Executor::serial();
    let mut group = c.benchmark_group("sensitivity_duals");
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("dual_pass", |b| {
        b.iter(|| black_box(Tornado::evaluate_gradients(&compiled, &directions).unwrap()))
    });
    group.bench_function("patched_batch", |b| {
        b.iter(|| black_box(Tornado::evaluate_patches_with(&serial, &compiled, &patches).unwrap()))
    });
    group.finish();
}

fn rework_flow(max_attempts: u32) -> Flow {
    let line = Line::builder(
        "rework-bench",
        Part::new("carrier", CostCategory::Substrate).with_cost(StepCost::fixed(Money::new(5.0))),
    )
    .process(
        Process::new("assemble")
            .with_cost(StepCost::fixed(Money::new(1.0)))
            .with_yield(YieldModel::percent(85.0)),
    )
    .test(
        Test::new("test")
            .with_cost(StepCost::fixed(Money::new(0.5)))
            .with_coverage(Probability::clamped(0.98))
            .on_fail(FailAction::Rework(Rework::new(
                StepCost::fixed(Money::new(0.8)),
                Probability::clamped(0.6),
                max_attempts,
            ))),
    )
    .build()
    .unwrap();
    Flow::new(line)
}

fn bench_rework(c: &mut Criterion) {
    let mut group = c.benchmark_group("rework_mc_20k");
    // 20 000 routed units per iteration: per-element normalization so
    // bench_gate can reason about these cases too.
    group.throughput(Throughput::Elements(20_000));
    for attempts in [0u32, 1, 3] {
        let flow = if attempts == 0 {
            // plain scrap
            Flow::new(
                Line::builder(
                    "scrap-bench",
                    Part::new("carrier", CostCategory::Substrate)
                        .with_cost(StepCost::fixed(Money::new(5.0))),
                )
                .process(
                    Process::new("assemble")
                        .with_cost(StepCost::fixed(Money::new(1.0)))
                        .with_yield(YieldModel::percent(85.0)),
                )
                .test(
                    Test::new("test")
                        .with_cost(StepCost::fixed(Money::new(0.5)))
                        .with_coverage(Probability::clamped(0.98)),
                )
                .build()
                .unwrap(),
            )
        } else {
            rework_flow(attempts)
        };
        group.bench_with_input(BenchmarkId::from_parameter(attempts), &flow, |b, flow| {
            b.iter(|| {
                black_box(
                    flow.simulate(&SimOptions::new(20_000).with_seed(9))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = engine;
    config = fast();
    targets =
    bench_mc_scaling,
    bench_mc_batch,
    bench_mc_probe,
    bench_memo_cache,
    bench_mc_lane_widths,
    bench_mc_threads,
    bench_analytic,
    bench_sweep_analytic,
    bench_explore_frontier,
    bench_sensitivity_duals,
    bench_rework
);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(engine);
