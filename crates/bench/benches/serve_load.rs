//! `ipassd` load harness: request throughput and latency over a real
//! loopback TCP connection against the serving layer, on the protocol's
//! reference `demo` flow.
//!
//! Two planes are recorded into the committed `BENCH_serve.json`:
//!
//! * **throughput** — each measured iteration drives `CLIENTS`
//!   concurrent connections through `PER_CLIENT` blocking round-trips;
//!   with `Throughput::Elements(total requests)` the baseline's
//!   `ns_per_elem` is mean ns *per request*, so the CI gate's ratio is a
//!   direct requests/second regression bound.
//! * **latency** — a pre-measured single-client pass records p50/p99
//!   round-trip nanoseconds into the case metadata (`p50_ns`/`p99_ns`).
//!
//! `analyze` queries hit the compiled-program cache (the analytic
//! fast path); `mc_2000` runs a 2000-unit derived-seed Monte Carlo per
//! request (the batching executor path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ipass_serve::{testflow, Client, FlowRegistry, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::Instant;

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 16;
const LATENCY_SAMPLES: usize = 120;

fn boot() -> Server {
    let mut registry = FlowRegistry::new();
    registry.register("demo", testflow::demo_flow());
    Server::start(registry, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback")
}

/// One load round: `CLIENTS` threads, each a persistent connection
/// driving `PER_CLIENT` blocking round-trips of `request`.
fn round(addr: SocketAddr, request: &str) {
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..PER_CLIENT {
                    let resp = client.request(request).expect("round-trip");
                    assert!(resp.starts_with(r#"{"ok":true"#), "load answer: {resp}");
                }
            });
        }
    });
}

/// Single-client p50/p99 round-trip latency in nanoseconds (cache and
/// connection warm — the steady-state figure, not the cold start).
fn latency_ns(addr: SocketAddr, request: &str) -> (f64, f64) {
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..8 {
        client.request(request).expect("warm-up");
    }
    let mut samples: Vec<u64> = (0..LATENCY_SAMPLES)
        .map(|_| {
            let start = Instant::now();
            client.request(request).expect("round-trip");
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    let pick = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize] as f64;
    (pick(0.50), pick(0.99))
}

fn bench_serve_load(c: &mut Criterion) {
    let cases: &[(&str, &str)] = &[
        ("analyze", r#"{"verb":"analyze","flow":"demo"}"#),
        (
            "mc_2000",
            r#"{"verb":"mc","flow":"demo","units":2000,"seed":42}"#,
        ),
    ];
    let mut group = c.benchmark_group("serve_load");
    group.threads(ServerConfig::default().threads);
    group.throughput(Throughput::Elements((CLIENTS * PER_CLIENT) as u64));
    for (name, request) in cases {
        let server = boot();
        let addr = server.addr();
        let (p50, p99) = latency_ns(addr, request);
        group.latency_ns(p50, p99);
        group.bench_function(name, |b| b.iter(|| round(addr, request)));
        server.shutdown();
        server.join();
    }
    group.finish();
}

criterion_group!(
    name = serve;
    config = fast();
    targets = bench_serve_load
);

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_main!(serve);
