//! Shared helpers for the benchmark harness (see `benches/`).
//!
//! The actual table/figure regeneration lives in Criterion benches; this
//! library only hosts small utilities they share.
#![forbid(unsafe_code)]

/// Format a percentage for bench harness output.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
