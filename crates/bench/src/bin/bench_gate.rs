//! Bench regression gate: compare one benchmark case of a fresh
//! `BENCH_JSON` run against the committed baseline and fail (exit 1)
//! when ns/element regressed beyond a ratio.
//!
//! The bound is deliberately loose — it exists to catch architectural
//! regressions (e.g. accidentally reintroducing the per-unit line
//! interpreter, a ~3.6x slowdown), not scheduler noise on shared CI
//! hosts.
//!
//! JSON scanning is `ipass_report::json` — the shared string- and
//! nesting-aware object scanner (this binary used to carry its own
//! brace-splitting copy).
//!
//! ```text
//! bench_gate <baseline.json> <current.json> <case-id> <max-ratio> [baseline-id]
//! bench_gate BENCH_moe.json target/bench_smoke.json mc_units/100000 3.0
//! bench_gate BENCH_moe.json target/bench_smoke.json mc_units_batch/100000 0.5 mc_units/100000
//! ```
//!
//! The optional fifth argument compares the current `case-id` against a
//! *different* baseline case. That turns the gate into a **speedup
//! floor**: with `max-ratio` 0.5, the batched kernel's per-unit time
//! must stay at most half the committed *scalar* baseline — i.e. the
//! lane kernel must remain at least 2x faster than the scalar kernel it
//! replaced, or CI fails.

use ipass_report::json::{number_field, objects, string_field};
use std::process::ExitCode;

/// Extract a numeric field from the JSON object whose `"id"` equals
/// `id`.
fn lookup(json: &str, id: &str, field: &str) -> Option<f64> {
    objects(json)
        .into_iter()
        .find(|obj| string_field(obj, "id") == Some(id))
        .and_then(|obj| number_field(obj, field))
}

/// Mean ns/element for a case: the recorded `ns_per_elem` when present,
/// otherwise derived from `mean_ns` and `elements` (older baselines),
/// otherwise plain `mean_ns` (cases without throughput).
fn ns_per_element(json: &str, id: &str) -> Option<f64> {
    if let Some(npe) = lookup(json, id, "ns_per_elem") {
        return Some(npe);
    }
    let mean = lookup(json, id, "mean_ns")?;
    match lookup(json, id, "elements") {
        Some(elements) if elements > 0.0 => Some(mean / elements),
        _ => Some(mean),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path, id, max_ratio, baseline_id) = match args.as_slice() {
        [b, c, i, r] => (b, c, i, r, i),
        [b, c, i, r, bi] => (b, c, i, r, bi),
        _ => {
            eprintln!(
                "usage: bench_gate <baseline.json> <current.json> <case-id> <max-ratio> \
                 [baseline-id]"
            );
            return ExitCode::FAILURE;
        }
    };
    let Ok(max_ratio) = max_ratio.parse::<f64>() else {
        eprintln!("bench_gate: max-ratio {max_ratio:?} is not a number");
        return ExitCode::FAILURE;
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };
    let Some(base) = ns_per_element(&baseline, baseline_id) else {
        eprintln!("bench_gate: case {baseline_id:?} not found in {baseline_path}");
        return ExitCode::FAILURE;
    };
    let Some(now) = ns_per_element(&current, id) else {
        eprintln!("bench_gate: case {id:?} not found in {current_path}");
        return ExitCode::FAILURE;
    };
    let ratio = now / base;
    let vs = if baseline_id == id {
        String::new()
    } else {
        format!(" (vs {baseline_id})")
    };
    println!(
        "bench_gate {id}{vs}: baseline {base:.2} ns/elem, current {now:.2} ns/elem, \
         ratio {ratio:.2} (limit {max_ratio:.2})"
    );
    if ratio > max_ratio {
        eprintln!(
            "bench_gate: REGRESSION — {id}{vs} at {ratio:.2}x of baseline \
             (limit {max_ratio:.2}x)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "mc_units/100000", "mean_ns": 2800000.0, "min_ns": 2600000.0, "max_ns": 3100000.0, "samples": 20, "iters_per_sample": 5, "elements": 100000, "ns_per_elem": 28.00, "threads": 1, "git_rev": "abc1234"},
  {"id": "legacy/no_npe", "mean_ns": 500.0, "min_ns": 400.0, "max_ns": 600.0, "samples": 20, "iters_per_sample": 5, "elements": null}
]"#;

    #[test]
    fn reads_recorded_ns_per_elem() {
        assert_eq!(ns_per_element(SAMPLE, "mc_units/100000"), Some(28.0));
    }

    #[test]
    fn falls_back_to_mean_without_elements() {
        assert_eq!(ns_per_element(SAMPLE, "legacy/no_npe"), Some(500.0));
    }

    #[test]
    fn derives_from_mean_and_elements() {
        let old = r#"[
  {"id": "mc_units/100000", "mean_ns": 9995084.2, "min_ns": 9632445.5, "max_ns": 11672631.8, "samples": 20, "iters_per_sample": 4, "elements": 100000}
]"#;
        let npe = ns_per_element(old, "mc_units/100000").unwrap();
        assert!((npe - 99.950842).abs() < 1e-6);
    }

    #[test]
    fn missing_case_is_none() {
        assert_eq!(ns_per_element(SAMPLE, "absent/case"), None);
    }

    #[test]
    fn lookup_tolerates_reformatted_whitespace() {
        let compact = r#"[{"id":"a/1","mean_ns":100.0,"elements":10,"ns_per_elem":10.0}]"#;
        assert_eq!(lookup(compact, "a/1", "ns_per_elem"), Some(10.0));
        let spaced = r#"[{"id"  :  "a/1" , "mean_ns" : 100.0 , "ns_per_elem" : 10.0}]"#;
        assert_eq!(lookup(spaced, "a/1", "ns_per_elem"), Some(10.0));
        let pretty = "[\n  {\n    \"id\": \"a/1\",\n    \"mean_ns\": 100.0,\n    \"elements\": 10,\n    \"ns_per_elem\": 10.0\n  },\n  {\n    \"id\": \"b/2\",\n    \"mean_ns\": 7.0\n  }\n]\n";
        assert_eq!(lookup(pretty, "a/1", "ns_per_elem"), Some(10.0));
        assert_eq!(lookup(pretty, "b/2", "mean_ns"), Some(7.0));
        assert_eq!(ns_per_element(pretty, "a/1"), Some(10.0));
    }

    #[test]
    fn lookup_distinguishes_similar_field_names() {
        // "min_ns"/"max_ns" share a suffix with "mean_ns"; a value
        // spelling a field name must not shadow the real key. The
        // shared scanner also survives escaped quotes and nested
        // objects (pinned in `ipass_report::json`'s own tests).
        let entry = r#"[{"id": "weird", "git_rev": "mean_ns", "min_ns": 1.0, "mean_ns": 5.0, "max_ns": 9.0}]"#;
        assert_eq!(lookup(entry, "weird", "mean_ns"), Some(5.0));
        assert_eq!(lookup(entry, "weird", "min_ns"), Some(1.0));
        assert_eq!(lookup(entry, "weird", "absent"), None);
    }

    #[test]
    fn ns_per_element_fallback_order_is_npe_then_derived_then_mean() {
        let both = r#"[{"id": "x", "mean_ns": 1000.0, "elements": 10, "ns_per_elem": 3.0}]"#;
        assert_eq!(ns_per_element(both, "x"), Some(3.0));
        let zero = r#"[{"id": "x", "mean_ns": 1000.0, "elements": 0}]"#;
        assert_eq!(ns_per_element(zero, "x"), Some(1000.0));
        let bare = r#"[{"id": "x", "elements": 10}]"#;
        assert_eq!(ns_per_element(bare, "x"), None);
    }

    #[test]
    fn cross_case_speedup_floor_inputs_resolve() {
        // The 5-arg form reads `baseline-id` from the baseline file and
        // `case-id` from the current file; both lookups go through
        // `ns_per_element`, so a two-entry file must resolve each id to
        // its own throughput.
        let two = r#"[
  {"id": "mc_units/100000", "mean_ns": 2200000.0, "elements": 100000, "ns_per_elem": 22.0},
  {"id": "mc_units_batch/100000", "mean_ns": 880000.0, "elements": 100000, "ns_per_elem": 8.8}
]"#;
        let scalar = ns_per_element(two, "mc_units/100000").unwrap();
        let batch = ns_per_element(two, "mc_units_batch/100000").unwrap();
        assert_eq!(scalar, 22.0);
        assert_eq!(batch, 8.8);
        assert!(batch / scalar <= 0.5, "speedup floor would fail");
    }

    #[test]
    fn lookup_survives_escapes_and_nesting() {
        // The cases the old brace-splitting scanner got wrong.
        let tricky = r#"[
  {"id": "a/1", "note": "brace \" } in a string", "meta": {"mean_ns": 1.0}, "mean_ns": 42.0}
]"#;
        assert_eq!(lookup(tricky, "a/1", "mean_ns"), Some(42.0));
    }
}
