//! Bench regression gate: compare one benchmark case of a fresh
//! `BENCH_JSON` run against the committed baseline and fail (exit 1)
//! when ns/element regressed beyond a ratio.
//!
//! The bound is deliberately loose — it exists to catch architectural
//! regressions (e.g. accidentally reintroducing the per-unit line
//! interpreter, a ~3.6x slowdown), not scheduler noise on shared CI
//! hosts.
//!
//! JSON scanning is `ipass_report::json` — the shared string- and
//! nesting-aware object scanner (this binary used to carry its own
//! brace-splitting copy).
//!
//! ```text
//! bench_gate <baseline.json> <current.json> <case-id> <max-ratio> [baseline-id]
//! bench_gate BENCH_moe.json target/bench_smoke.json mc_units/100000 3.0
//! bench_gate BENCH_moe.json target/bench_smoke.json mc_units_batch/100000 0.5 mc_units/100000
//! ```
//!
//! The optional fifth argument compares the current `case-id` against a
//! *different* baseline case. That turns the gate into a **speedup
//! floor**: with `max-ratio` 0.5, the batched kernel's per-unit time
//! must stay at most half the committed *scalar* baseline — i.e. the
//! lane kernel must remain at least 2x faster than the scalar kernel it
//! replaced, or CI fails.

use ipass_report::json::{number_field, objects, string_field};
use std::process::ExitCode;

/// Extract a numeric field from the JSON object whose `"id"` equals
/// `id`.
fn lookup(json: &str, id: &str, field: &str) -> Option<f64> {
    objects(json)
        .into_iter()
        .find(|obj| string_field(obj, "id") == Some(id))
        .and_then(|obj| number_field(obj, field))
}

/// Mean ns/element for a case: the recorded `ns_per_elem` when present,
/// otherwise derived from `mean_ns` and `elements` (older baselines),
/// otherwise plain `mean_ns` (cases without throughput).
fn ns_per_element(json: &str, id: &str) -> Option<f64> {
    if let Some(npe) = lookup(json, id, "ns_per_elem") {
        return Some(npe);
    }
    let mean = lookup(json, id, "mean_ns")?;
    match lookup(json, id, "elements") {
        Some(elements) if elements > 0.0 => Some(mean / elements),
        _ => Some(mean),
    }
}

/// Parsed command line. The 4-arg form gates `id` against the same id
/// in the baseline file; the 5-arg form names a *different* baseline
/// case, turning the gate into a cross-case speedup floor.
#[derive(Debug, PartialEq)]
struct GateArgs<'a> {
    baseline_path: &'a str,
    current_path: &'a str,
    id: &'a str,
    max_ratio: f64,
    baseline_id: &'a str,
}

fn parse_args(args: &[String]) -> Result<GateArgs<'_>, String> {
    let (baseline_path, current_path, id, max_ratio, baseline_id) = match args {
        [b, c, i, r] => (b, c, i, r, i),
        [b, c, i, r, bi] => (b, c, i, r, bi),
        _ => {
            return Err(
                "usage: bench_gate <baseline.json> <current.json> <case-id> <max-ratio> \
                 [baseline-id]"
                    .to_string(),
            )
        }
    };
    let max_ratio = max_ratio
        .parse::<f64>()
        .map_err(|_| format!("bench_gate: max-ratio {max_ratio:?} is not a number"))?;
    Ok(GateArgs {
        baseline_path,
        current_path,
        id,
        max_ratio,
        baseline_id,
    })
}

/// The gate decision on already-loaded JSON: the human-readable report
/// line, plus the regression message when the ratio exceeds the limit.
fn evaluate(
    baseline: &str,
    current: &str,
    args: &GateArgs<'_>,
) -> Result<(String, Option<String>), String> {
    let base = ns_per_element(baseline, args.baseline_id).ok_or_else(|| {
        format!(
            "bench_gate: case {:?} not found in {}",
            args.baseline_id, args.baseline_path
        )
    })?;
    let now = ns_per_element(current, args.id).ok_or_else(|| {
        format!(
            "bench_gate: case {:?} not found in {}",
            args.id, args.current_path
        )
    })?;
    let ratio = now / base;
    let vs = if args.baseline_id == args.id {
        String::new()
    } else {
        format!(" (vs {})", args.baseline_id)
    };
    let report = format!(
        "bench_gate {}{vs}: baseline {base:.2} ns/elem, current {now:.2} ns/elem, \
         ratio {ratio:.2} (limit {:.2})",
        args.id, args.max_ratio
    );
    let regression = (ratio > args.max_ratio).then(|| {
        format!(
            "bench_gate: REGRESSION — {}{vs} at {ratio:.2}x of baseline (limit {:.2}x)",
            args.id, args.max_ratio
        )
    });
    Ok((report, regression))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(args.baseline_path), read(args.current_path))
    else {
        return ExitCode::FAILURE;
    };
    match evaluate(&baseline, &current, &args) {
        Ok((report, regression)) => {
            println!("{report}");
            if let Some(message) = regression {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "mc_units/100000", "mean_ns": 2800000.0, "min_ns": 2600000.0, "max_ns": 3100000.0, "samples": 20, "iters_per_sample": 5, "elements": 100000, "ns_per_elem": 28.00, "threads": 1, "git_rev": "abc1234"},
  {"id": "legacy/no_npe", "mean_ns": 500.0, "min_ns": 400.0, "max_ns": 600.0, "samples": 20, "iters_per_sample": 5, "elements": null}
]"#;

    #[test]
    fn reads_recorded_ns_per_elem() {
        assert_eq!(ns_per_element(SAMPLE, "mc_units/100000"), Some(28.0));
    }

    #[test]
    fn falls_back_to_mean_without_elements() {
        assert_eq!(ns_per_element(SAMPLE, "legacy/no_npe"), Some(500.0));
    }

    #[test]
    fn derives_from_mean_and_elements() {
        let old = r#"[
  {"id": "mc_units/100000", "mean_ns": 9995084.2, "min_ns": 9632445.5, "max_ns": 11672631.8, "samples": 20, "iters_per_sample": 4, "elements": 100000}
]"#;
        let npe = ns_per_element(old, "mc_units/100000").unwrap();
        assert!((npe - 99.950842).abs() < 1e-6);
    }

    #[test]
    fn missing_case_is_none() {
        assert_eq!(ns_per_element(SAMPLE, "absent/case"), None);
    }

    #[test]
    fn lookup_tolerates_reformatted_whitespace() {
        let compact = r#"[{"id":"a/1","mean_ns":100.0,"elements":10,"ns_per_elem":10.0}]"#;
        assert_eq!(lookup(compact, "a/1", "ns_per_elem"), Some(10.0));
        let spaced = r#"[{"id"  :  "a/1" , "mean_ns" : 100.0 , "ns_per_elem" : 10.0}]"#;
        assert_eq!(lookup(spaced, "a/1", "ns_per_elem"), Some(10.0));
        let pretty = "[\n  {\n    \"id\": \"a/1\",\n    \"mean_ns\": 100.0,\n    \"elements\": 10,\n    \"ns_per_elem\": 10.0\n  },\n  {\n    \"id\": \"b/2\",\n    \"mean_ns\": 7.0\n  }\n]\n";
        assert_eq!(lookup(pretty, "a/1", "ns_per_elem"), Some(10.0));
        assert_eq!(lookup(pretty, "b/2", "mean_ns"), Some(7.0));
        assert_eq!(ns_per_element(pretty, "a/1"), Some(10.0));
    }

    #[test]
    fn lookup_distinguishes_similar_field_names() {
        // "min_ns"/"max_ns" share a suffix with "mean_ns"; a value
        // spelling a field name must not shadow the real key. The
        // shared scanner also survives escaped quotes and nested
        // objects (pinned in `ipass_report::json`'s own tests).
        let entry = r#"[{"id": "weird", "git_rev": "mean_ns", "min_ns": 1.0, "mean_ns": 5.0, "max_ns": 9.0}]"#;
        assert_eq!(lookup(entry, "weird", "mean_ns"), Some(5.0));
        assert_eq!(lookup(entry, "weird", "min_ns"), Some(1.0));
        assert_eq!(lookup(entry, "weird", "absent"), None);
    }

    #[test]
    fn ns_per_element_fallback_order_is_npe_then_derived_then_mean() {
        let both = r#"[{"id": "x", "mean_ns": 1000.0, "elements": 10, "ns_per_elem": 3.0}]"#;
        assert_eq!(ns_per_element(both, "x"), Some(3.0));
        let zero = r#"[{"id": "x", "mean_ns": 1000.0, "elements": 0}]"#;
        assert_eq!(ns_per_element(zero, "x"), Some(1000.0));
        let bare = r#"[{"id": "x", "elements": 10}]"#;
        assert_eq!(ns_per_element(bare, "x"), None);
    }

    #[test]
    fn cross_case_speedup_floor_inputs_resolve() {
        // The 5-arg form reads `baseline-id` from the baseline file and
        // `case-id` from the current file; both lookups go through
        // `ns_per_element`, so a two-entry file must resolve each id to
        // its own throughput.
        let two = r#"[
  {"id": "mc_units/100000", "mean_ns": 2200000.0, "elements": 100000, "ns_per_elem": 22.0},
  {"id": "mc_units_batch/100000", "mean_ns": 880000.0, "elements": 100000, "ns_per_elem": 8.8}
]"#;
        let scalar = ns_per_element(two, "mc_units/100000").unwrap();
        let batch = ns_per_element(two, "mc_units_batch/100000").unwrap();
        assert_eq!(scalar, 22.0);
        assert_eq!(batch, 8.8);
        assert!(batch / scalar <= 0.5, "speedup floor would fail");
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn four_args_gate_the_case_against_itself() {
        let args = strings(&["base.json", "now.json", "mc_units/100000", "3.0"]);
        let parsed = parse_args(&args).unwrap();
        assert_eq!(parsed.baseline_id, "mc_units/100000");
        assert_eq!(parsed.id, "mc_units/100000");
        assert_eq!(parsed.max_ratio, 3.0);
        assert_eq!(parsed.baseline_path, "base.json");
        assert_eq!(parsed.current_path, "now.json");
    }

    #[test]
    fn fifth_arg_selects_a_different_baseline_case() {
        let args = strings(&[
            "base.json",
            "now.json",
            "mc_units_batch/100000",
            "0.5",
            "mc_units/100000",
        ]);
        let parsed = parse_args(&args).unwrap();
        assert_eq!(parsed.id, "mc_units_batch/100000");
        assert_eq!(parsed.baseline_id, "mc_units/100000");
        assert_eq!(parsed.max_ratio, 0.5);
    }

    #[test]
    fn wrong_arity_and_bad_ratio_are_rejected() {
        assert!(parse_args(&strings(&["a", "b", "c"]))
            .unwrap_err()
            .contains("usage"));
        assert!(parse_args(&strings(&["a", "b", "c", "1.0", "d", "e"]))
            .unwrap_err()
            .contains("usage"));
        assert!(parse_args(&strings(&["a", "b", "c", "fast"]))
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn same_id_gate_passes_and_fails_on_the_ratio() {
        let baseline = r#"[{"id": "x", "ns_per_elem": 10.0}]"#;
        let slow = r#"[{"id": "x", "ns_per_elem": 35.0}]"#;
        let raw = strings(&["b", "c", "x", "3.0"]);
        let args = parse_args(&raw).unwrap();
        let (report, regression) = evaluate(baseline, baseline, &args).unwrap();
        assert!(report.contains("ratio 1.00"));
        assert!(
            !report.contains("(vs "),
            "self-gate must not print a vs clause"
        );
        assert!(regression.is_none());
        let (_, regression) = evaluate(baseline, slow, &args).unwrap();
        assert!(regression.unwrap().contains("REGRESSION"));
    }

    #[test]
    fn cross_case_gate_reads_each_id_from_its_own_file() {
        // With a fifth arg the baseline id resolves in the baseline
        // file and the case id in the current file — here the same
        // two-entry run gates the batch case against the scalar one.
        let run = r#"[
  {"id": "scalar", "ns_per_elem": 22.0},
  {"id": "batch", "ns_per_elem": 8.8}
]"#;
        let raw = strings(&["b", "c", "batch", "0.5", "scalar"]);
        let args = parse_args(&raw).unwrap();
        let (report, regression) = evaluate(run, run, &args).unwrap();
        assert!(report.contains("(vs scalar)"));
        assert!(report.contains("ratio 0.40"));
        assert!(regression.is_none());
        // A floor of 0.25 the 0.40 ratio misses must fail the gate.
        let raw_floor = strings(&["b", "c", "batch", "0.25", "scalar"]);
        let floor = parse_args(&raw_floor).unwrap();
        let (_, regression) = evaluate(run, run, &floor).unwrap();
        assert!(regression.unwrap().contains("(vs scalar)"));
    }

    #[test]
    fn missing_ids_name_the_file_they_were_expected_in() {
        let run = r#"[{"id": "x", "ns_per_elem": 1.0}]"#;
        let raw = strings(&["base.json", "now.json", "x", "1.0", "y"]);
        let args = parse_args(&raw).unwrap();
        let err = evaluate(run, run, &args).unwrap_err();
        assert!(err.contains("\"y\"") && err.contains("base.json"), "{err}");
        let raw = strings(&["base.json", "now.json", "z", "1.0", "x"]);
        let args = parse_args(&raw).unwrap();
        let err = evaluate(run, run, &args).unwrap_err();
        assert!(err.contains("\"z\"") && err.contains("now.json"), "{err}");
    }

    #[test]
    fn gate_tolerates_probe_metadata_fields_in_either_file() {
        // Newer baselines carry `draws_per_elem` / `memo_hit_rate`
        // probe snapshots; older ones don't. The gate must read its
        // timing fields identically from both generations, in either
        // position (baseline or current).
        let old = r#"[{"id": "mc_units_batch/100000", "mean_ns": 961000.0, "elements": 100000, "ns_per_elem": 9.61, "threads": 1, "lane_width": 64}]"#;
        let new = r#"[{"id": "mc_units_batch/100000", "mean_ns": 961000.0, "elements": 100000, "ns_per_elem": 9.61, "threads": 1, "lane_width": 64, "draws_per_elem": 6.7413, "memo_hit_rate": null}]"#;
        assert_eq!(ns_per_element(old, "mc_units_batch/100000"), Some(9.61));
        assert_eq!(ns_per_element(new, "mc_units_batch/100000"), Some(9.61));
        let raw = strings(&["b", "c", "mc_units_batch/100000", "1.1"]);
        let args = parse_args(&raw).unwrap();
        for (baseline, current) in [(old, new), (new, old)] {
            let (report, regression) = evaluate(baseline, current, &args).unwrap();
            assert!(report.contains("ratio 1.00"), "{report}");
            assert!(regression.is_none());
        }
        // And the probe fields themselves are readable where present.
        assert_eq!(
            lookup(new, "mc_units_batch/100000", "draws_per_elem"),
            Some(6.7413)
        );
        assert_eq!(lookup(old, "mc_units_batch/100000", "draws_per_elem"), None);
    }

    #[test]
    fn lookup_survives_escapes_and_nesting() {
        // The cases the old brace-splitting scanner got wrong.
        let tricky = r#"[
  {"id": "a/1", "note": "brace \" } in a string", "meta": {"mean_ns": 1.0}, "mean_ns": 42.0}
]"#;
        assert_eq!(lookup(tricky, "a/1", "mean_ns"), Some(42.0));
    }
}
