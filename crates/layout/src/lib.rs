//! Area estimation and placement for substrate sizing.
//!
//! Implements step 3 of the paper's methodology ("calculate the substrate
//! area required … by the sum of the single components and performing a
//! trivial placement"), with the two sizing rules of Table 1:
//!
//! * MCM substrate: `1.1 × Σ(component area)` plus 1 mm edge clearance on
//!   either side;
//! * laminate (BGA carrier): silicon substrate plus 5 mm edge clearance
//!   on either side;
//!
//! plus a PCB rule for the reference build-up (double-sided FR4 with a
//! coarser routing overhead), and a [shelf packer](ShelfPacker) that
//! cross-checks the utilization factors against an actual rectangle
//! placement.
//!
//! # Examples
//!
//! ```
//! use ipass_layout::{BgaLaminate, SubstrateRule};
//! use ipass_units::Area;
//!
//! // Size an MCM-D substrate for 637 mm² of components…
//! let si = SubstrateRule::mcm_d_si().required_area(Area::from_mm2(637.0));
//! assert!((si.mm2() - 810.0).abs() < 5.0);
//! // …and the BGA laminate it is packaged onto:
//! let module = BgaLaminate::standard().module_area(si);
//! assert!((module.mm2() - 1480.0).abs() < 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod packer;
mod skyline;
mod substrate;

pub use packer::{PackError, Packing, Placement, Rect, ShelfPacker};
pub use skyline::SkylinePacker;
pub use substrate::{BgaLaminate, SubstrateRule};
