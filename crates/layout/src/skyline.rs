//! A bottom-left skyline rectangle packer — denser than the shelf
//! heuristic, used to bound how much of the paper's 1.1× utilization
//! claim is heuristic slack vs physics.

use crate::packer::{PackError, Packing, Placement, Rect};

/// A bottom-left skyline packer for a fixed strip width.
///
/// Maintains the "skyline" (the upper contour of placed rectangles) and
/// drops each rectangle at the lowest (then leftmost) position where it
/// fits, optionally rotated.
///
/// # Examples
///
/// ```
/// use ipass_layout::{Rect, ShelfPacker, SkylinePacker};
///
/// // A mix of sizes: the skyline packer never does worse than shelves.
/// let rects: Vec<Rect> = (1..=20)
///     .map(|i| Rect::new(1.0 + (i % 5) as f64, 1.0 + (i % 3) as f64))
///     .collect();
/// let shelf = ShelfPacker::new(12.0).pack(&rects)?;
/// let skyline = SkylinePacker::new(12.0).pack(&rects)?;
/// assert!(skyline.height() <= shelf.height() + 1e-9);
/// assert!(skyline.validate());
/// # Ok::<(), ipass_layout::PackError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkylinePacker {
    strip_width: f64,
    allow_rotation: bool,
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    x: f64,
    width: f64,
    y: f64,
}

impl SkylinePacker {
    /// Create a packer for a strip of the given width (mm).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive width.
    pub fn new(strip_width: f64) -> SkylinePacker {
        assert!(
            strip_width > 0.0 && strip_width.is_finite(),
            "strip width must be positive, got {strip_width}"
        );
        SkylinePacker {
            strip_width,
            allow_rotation: true,
        }
    }

    /// Forbid 90° rotation.
    pub fn without_rotation(mut self) -> SkylinePacker {
        self.allow_rotation = false;
        self
    }

    /// Pack rectangles, sorted by decreasing area, each at the lowest
    /// feasible skyline position.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::TooWide`] when a rectangle cannot fit the
    /// strip in any allowed orientation.
    pub fn pack(&self, rects: &[Rect]) -> Result<Packing, PackError> {
        for (i, r) in rects.iter().enumerate() {
            let fits = r.w <= self.strip_width || (self.allow_rotation && r.h <= self.strip_width);
            if !fits {
                return Err(PackError::TooWide {
                    index: i,
                    min_side: r.w.min(r.h),
                    strip_width: self.strip_width,
                });
            }
        }
        let mut order: Vec<usize> = (0..rects.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = rects[a].w * rects[a].h;
            let kb = rects[b].w * rects[b].h;
            kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut skyline = vec![Segment {
            x: 0.0,
            width: self.strip_width,
            y: 0.0,
        }];
        let mut placements = Vec::with_capacity(rects.len());
        for index in order {
            let rect = rects[index];
            let candidates: &[(Rect, bool)] =
                if self.allow_rotation && (rect.h - rect.w).abs() > 1e-12 {
                    &[(rect, false), (rect.rotated(), true)]
                } else {
                    &[(rect, false)]
                };
            let mut best: Option<(f64, f64, Rect, bool)> = None; // (y, x, rect, rotated)
            for &(r, rotated) in candidates {
                if r.w > self.strip_width {
                    continue;
                }
                if let Some((x, y)) = lowest_position(&skyline, r.w, self.strip_width) {
                    let better = match best {
                        None => true,
                        Some((by, bx, ..)) => y < by - 1e-12 || (y <= by + 1e-12 && x < bx),
                    };
                    if better {
                        best = Some((y, x, r, rotated));
                    }
                }
            }
            let (y, x, r, rotated) = best.expect("pre-checked to fit");
            placements.push(Placement {
                index,
                x,
                y,
                rect: r,
                rotated,
            });
            add_to_skyline(&mut skyline, x, r);
        }
        let height = skyline.iter().map(|s| s.y).fold(0.0, f64::max);
        Ok(Packing::from_parts(self.strip_width, height, placements))
    }
}

/// The lowest (then leftmost) x where a rectangle of width `w` can rest
/// on the skyline.
fn lowest_position(skyline: &[Segment], w: f64, strip: f64) -> Option<(f64, f64)> {
    let mut best: Option<(f64, f64)> = None;
    for (i, seg) in skyline.iter().enumerate() {
        let x = seg.x;
        if x + w > strip + 1e-9 {
            break;
        }
        // The rectangle resting at x spans segments i..; its base is the
        // max skyline height under it.
        let mut y = seg.y;
        let mut covered = 0.0;
        for s in &skyline[i..] {
            y = y.max(s.y);
            covered += s.width;
            if covered >= w - 1e-12 {
                break;
            }
        }
        match best {
            None => best = Some((x, y)),
            Some((_, by)) if y < by - 1e-12 => best = Some((x, y)),
            _ => {}
        }
    }
    best
}

/// Replace the covered skyline span with the rectangle's top edge.
fn add_to_skyline(skyline: &mut Vec<Segment>, x: f64, rect: Rect) {
    let top = {
        // Base height = max under the span (same rule as lowest_position).
        let mut y = 0.0f64;
        for s in skyline.iter() {
            if s.x + s.width <= x + 1e-12 || s.x >= x + rect.w - 1e-12 {
                continue;
            }
            y = y.max(s.y);
        }
        y + rect.h
    };
    let mut next: Vec<Segment> = Vec::with_capacity(skyline.len() + 2);
    for s in skyline.iter() {
        let s_end = s.x + s.width;
        if s_end <= x + 1e-12 || s.x >= x + rect.w - 1e-12 {
            next.push(*s);
            continue;
        }
        // Left remainder.
        if s.x < x {
            next.push(Segment {
                x: s.x,
                width: x - s.x,
                y: s.y,
            });
        }
        // Right remainder.
        if s_end > x + rect.w {
            next.push(Segment {
                x: x + rect.w,
                width: s_end - (x + rect.w),
                y: s.y,
            });
        }
    }
    next.push(Segment {
        x,
        width: rect.w,
        y: top,
    });
    next.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
    // Merge adjacent equal-height segments.
    let mut merged: Vec<Segment> = Vec::with_capacity(next.len());
    for s in next {
        if let Some(last) = merged.last_mut() {
            if (last.y - s.y).abs() < 1e-12 && (last.x + last.width - s.x).abs() < 1e-9 {
                last.width += s.width;
                continue;
            }
        }
        merged.push(s);
    }
    *skyline = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipass_sim::SimRng;
    use proptest::prelude::*;

    #[test]
    fn perfect_tiling() {
        let rects = vec![Rect::new(2.0, 2.0); 9];
        let packing = SkylinePacker::new(6.0).pack(&rects).unwrap();
        assert!(packing.validate());
        assert!((packing.height() - 6.0).abs() < 1e-9);
        assert!((packing.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fills_holes_that_shelves_waste() {
        // One tall part + many short ones: shelves open a tall shelf and
        // waste the space beside the tall part; the skyline fills it.
        let mut rects = vec![Rect::new(2.0, 6.0)];
        rects.extend(std::iter::repeat_n(Rect::new(2.0, 1.0), 12));
        let shelf = crate::packer::ShelfPacker::new(6.0)
            .without_rotation()
            .pack(&rects)
            .unwrap();
        let skyline = SkylinePacker::new(6.0)
            .without_rotation()
            .pack(&rects)
            .unwrap();
        assert!(skyline.validate());
        assert!(
            skyline.height() < shelf.height() - 0.5,
            "skyline {} vs shelf {}",
            skyline.height(),
            shelf.height()
        );
    }

    #[test]
    fn too_wide_reported() {
        let err = SkylinePacker::new(3.0)
            .without_rotation()
            .pack(&[Rect::new(4.0, 1.0)])
            .unwrap_err();
        assert!(matches!(err, PackError::TooWide { .. }));
        // Rotation rescues it.
        assert!(SkylinePacker::new(3.0).pack(&[Rect::new(4.0, 1.0)]).is_ok());
    }

    #[test]
    fn empty_is_empty() {
        let packing = SkylinePacker::new(5.0).pack(&[]).unwrap();
        assert_eq!(packing.placements().len(), 0);
        assert_eq!(packing.height(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn skyline_never_overlaps(seed in 0u64..300, n in 1usize..50, strip in 5.0f64..40.0) {
            let mut rng = SimRng::stream(seed, 0);
            let rects: Vec<Rect> = (0..n)
                .map(|_| Rect::new(rng.range_f64(0.2, 4.5), rng.range_f64(0.2, 4.5)))
                .collect();
            let packing = SkylinePacker::new(strip).pack(&rects).unwrap();
            prop_assert!(packing.validate());
            prop_assert_eq!(packing.placements().len(), n);
        }

        #[test]
        fn skyline_is_competitive_with_shelf(seed in 0u64..200, n in 5usize..40) {
            let mut rng = SimRng::stream(seed, 0);
            let rects: Vec<Rect> = (0..n)
                .map(|_| Rect::new(rng.range_f64(0.5, 4.0), rng.range_f64(0.5, 4.0)))
                .collect();
            let total: f64 = rects.iter().map(|r| r.area().mm2()).sum();
            let strip = (1.3 * total).sqrt().max(4.5);
            let shelf = crate::packer::ShelfPacker::new(strip).pack(&rects).unwrap();
            let skyline = SkylinePacker::new(strip).pack(&rects).unwrap();
            // Neither heuristic dominates on every instance (their sort
            // orders differ), but the skyline never loses badly.
            prop_assert!(
                skyline.height() <= shelf.height() * 1.35 + 1e-9,
                "skyline {} vs shelf {}", skyline.height(), shelf.height()
            );
        }
    }
}
